"""Quickstart: approximate group-by answers from a congressional sample.

The paper's motivating example (Section 1.1): per-state aggregates over a
census table where California has ~70x Wyoming's population.  A uniform
sample starves small states; a congressional sample covers every state well
while still answering whole-table queries accurately.

Run:  python examples/quickstart.py
"""

from repro import (
    AquaSystem,
    CensusConfig,
    Congress,
    House,
    generate_census,
    groupby_error,
)


def main() -> None:
    census = generate_census(CensusConfig(population=200_000, seed=42))
    budget = 4_000  # 2% of the relation

    sql = "SELECT st, avg(sal) AS avg_sal FROM census GROUP BY st ORDER BY st"

    print(f"census: {census.num_rows} rows, budget: {budget} sample tuples\n")

    for strategy in (House(), Congress()):
        aqua = AquaSystem(space_budget=budget, allocation_strategy=strategy)
        aqua.register_table("census", census)
        print(aqua.synopsis("census").describe())

        answer = aqua.answer(sql)
        exact = aqua.exact(sql)
        error = groupby_error(exact, answer.result, ["st"], "avg_sal")

        print(
            f"  states answered: {answer.result.num_rows}/50, "
            f"mean error: {error.eps_l1:.2f}%, worst state: {error.eps_inf:.2f}%"
        )
        smallest = answer.result.filter(
            answer.result.column("st") == "WY"
        ).to_dicts()
        if smallest:
            row = smallest[0]
            print(
                f"  WY (smallest state): avg_sal ~ {row['avg_sal']:.0f} "
                f"+/- {row['avg_sal_error']:.0f} "
                f"({answer.confidence:.0%} confidence)"
            )
        else:
            print("  WY (smallest state): no sample tuples -- group missing!")
        print()

    print(
        "House (uniform) answers big states well but wobbles or misses the\n"
        "small ones; Congress guarantees every state, under every grouping,\n"
        "a reasonable share of the sample."
    )


if __name__ == "__main__":
    main()
