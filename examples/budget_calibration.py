"""Calibrating the synopsis space budget (the administrator's workflow).

Figure 1 of the paper: the warehouse administrator gives Aqua "the space
available for synopses".  How much is enough?  This script plays the
calibration session: for a ladder of budgets, run a few representative
queries through ``AquaSystem.compare`` and read the error/speedup
trade-off -- then pick the knee.

It also shows ``recommend_strategy`` (the Section 7.3.3 rule) and
``explain`` (the Figure 2 rewritten-query view).

Run:  python examples/budget_calibration.py
"""

import numpy as np

from repro import (
    AquaSystem,
    LineitemConfig,
    generate_lineitem,
    recommend_strategy,
)


QUERIES = [
    (
        "flag x status rollup",
        "SELECT l_returnflag, l_linestatus, sum(l_quantity) AS qty "
        "FROM lineitem GROUP BY l_returnflag, l_linestatus",
    ),
    (
        "revenue by ship date",
        "SELECT l_shipdate, sum(l_extendedprice) AS rev "
        "FROM lineitem GROUP BY l_shipdate",
    ),
    (
        "whole-table average",
        "SELECT avg(l_extendedprice) AS avg_rev FROM lineitem",
    ),
]

BUDGET_LADDER = (1_000, 5_000, 20_000)


def main() -> None:
    lineitem = generate_lineitem(
        LineitemConfig(table_size=200_000, num_groups=512, group_skew=1.2, seed=13)
    )
    # Few updates, ~512 groups: the Section 7.3.3 rule picks a strategy.
    rewrite = recommend_strategy(updates_per_query=0.1, num_groups_hint=512)
    print(f"recommended rewrite strategy: {rewrite.name}\n")

    print(f"{'budget':>8s}  {'%rows':>6s}  {'worst err':>10s}  "
          f"{'mean err':>9s}  {'speedup':>8s}")
    for budget in BUDGET_LADDER:
        aqua = AquaSystem(
            space_budget=budget,
            rewrite_strategy=rewrite,
            rng=np.random.default_rng(1),
        )
        aqua.register_table("lineitem", lineitem)
        worst = mean = 0.0
        speedups = []
        for __, sql in QUERIES:
            report = aqua.compare(sql)
            for error in report.errors.values():
                worst = max(worst, error.eps_inf)
                mean = max(mean, error.eps_l1)
            speedups.append(report.speedup)
        fraction = 100 * budget / lineitem.num_rows
        print(
            f"{budget:>8d}  {fraction:>5.1f}%  {worst:>9.2f}%  "
            f"{mean:>8.2f}%  {np.mean(speedups):>7.1f}x"
        )

    print("\nThe Figure 2 view of the first query at the chosen budget:")
    aqua = AquaSystem(
        space_budget=BUDGET_LADDER[1],
        rewrite_strategy=rewrite,
        rng=np.random.default_rng(1),
    )
    aqua.register_table("lineitem", lineitem)
    print(aqua.explain(QUERIES[0][1]))


if __name__ == "__main__":
    main()
