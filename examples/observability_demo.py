"""Observability demo: trace a query, export metrics, self-validate.

Answers one guarded group-by over the census warehouse with telemetry
enabled, prints the per-stage span tree and the Prometheus exposition,
then checks its own output -- the acceptance criteria of the telemetry
subsystem, runnable as a CI smoke test:

* the trace has >= 5 named pipeline stages whose durations sum to within
  10% of the reported total;
* the metrics registry reflects the served query (counter, latency
  histogram, guard provenance);
* every Prometheus line matches the text exposition format.

Run:  PYTHONPATH=src python examples/observability_demo.py
Exits non-zero on any violation.
"""

import re
import sys

from repro import AquaSystem, CensusConfig, generate_census

SQL = "SELECT st, avg(sal) AS avg_sal FROM census GROUP BY st ORDER BY st"

PROM_LINE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? '
    r"(-?\d+(\.\d+)?([eE][+-]?\d+)?|[+-]Inf|NaN)$"
)


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}")
        sys.exit(1)
    print(f"ok: {message}")


def main() -> None:
    census = generate_census(CensusConfig(population=100_000, seed=7))
    aqua = AquaSystem(space_budget=4_000, telemetry=True)
    aqua.register_table("census", census)

    answer = aqua.answer(SQL)
    print(answer.trace.render())
    print()

    stage_seconds = answer.trace.stage_seconds()
    total = answer.trace.total_seconds
    check(len(stage_seconds) >= 5, f"{len(stage_seconds)} named stages >= 5")
    check(
        sum(stage_seconds.values()) >= 0.9 * total,
        f"stages sum to {sum(stage_seconds.values()):.6f}s of "
        f"{total:.6f}s total (within 10%)",
    )

    snapshot = aqua.metrics.snapshot()
    check(
        "aqua_queries_total" in snapshot, "query counter recorded"
    )
    check(
        "aqua_answer_seconds" in snapshot, "latency histogram recorded"
    )
    provenance = {
        sample["labels"]["provenance"]: sample["value"]
        for sample in snapshot["aqua_guard_groups_total"]["values"]
    }
    check(
        provenance.get("synopsis", 0) == answer.result.num_rows,
        f"guard provenance counts {provenance} match the answer",
    )

    text = aqua.metrics.to_prometheus()
    print()
    print(text.rstrip("\n"))
    print()
    for line in text.splitlines():
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            continue
        check(
            bool(PROM_LINE.match(line)),
            f"prometheus line well-formed: {line[:60]}",
        )

    print("\nall observability checks passed")


if __name__ == "__main__":
    main()
