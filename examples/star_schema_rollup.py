"""Join synopses: approximate OLAP over a star schema (Section 2).

Aqua answers multi-table queries by sampling the *result* of the star's
foreign-key joins ("join synopses"), so any rollup over fact + dimension
attributes becomes a single-relation query on the synopsis -- which is why
the rest of the paper only needs single-table machinery.

Here: an orders fact table joins a customers dimension (nation) and a parts
dimension (category); we build a congressional join synopsis stratified on
*dimension* attributes and answer a nation x category rollup.

Run:  python examples/star_schema_rollup.py
"""

import numpy as np

from repro import (
    Congress,
    ForeignKey,
    StarSchema,
    build_join_synopsis,
    groupby_error,
)
from repro.engine import (
    Catalog,
    Column,
    ColumnType,
    Schema,
    Table,
    execute,
    parse_query,
)
from repro.rewrite import Integrated


def build_star(rng: np.random.Generator, catalog: Catalog) -> StarSchema:
    num_customers, num_parts, num_orders = 500, 60, 120_000

    nations = np.array(["US", "DE", "JP", "BR", "IN", "IS"])  # IS tiny
    nation_weights = np.array([0.3, 0.25, 0.2, 0.15, 0.095, 0.005])
    customers = Table.from_columns(
        Schema(
            [
                Column("c_id", ColumnType.INT, "key"),
                Column("c_nation", ColumnType.STR, "grouping"),
            ]
        ),
        c_id=np.arange(num_customers),
        c_nation=rng.choice(nations, size=num_customers, p=nation_weights),
    )

    categories = np.array(["tools", "toys", "food"])
    parts = Table.from_columns(
        Schema(
            [
                Column("p_id", ColumnType.INT, "key"),
                Column("p_category", ColumnType.STR, "grouping"),
            ]
        ),
        p_id=np.arange(num_parts),
        p_category=rng.choice(categories, size=num_parts),
    )

    orders = Table.from_columns(
        Schema(
            [
                Column("o_id", ColumnType.INT, "key"),
                Column("o_custkey", ColumnType.INT),
                Column("o_partkey", ColumnType.INT),
                Column("o_total", ColumnType.FLOAT, "aggregate"),
            ]
        ),
        o_id=np.arange(num_orders),
        o_custkey=rng.integers(0, num_customers, size=num_orders),
        o_partkey=rng.integers(0, num_parts, size=num_orders),
        o_total=rng.gamma(2.0, 120.0, size=num_orders),
    )

    catalog.register("customers", customers)
    catalog.register("parts", parts)
    catalog.register("orders", orders)
    return StarSchema.of(
        "orders",
        ForeignKey("o_custkey", "customers", "c_id"),
        ForeignKey("o_partkey", "parts", "p_id"),
    )


def main() -> None:
    rng = np.random.default_rng(23)
    catalog = Catalog()
    star = build_star(rng, catalog)

    # Stratify the join synopsis on the *dimension* attributes the analysts
    # roll up by -- impossible without joining first.
    sample, wide = build_join_synopsis(
        catalog,
        star,
        grouping_columns=["c_nation", "p_category"],
        budget=3_000,
        strategy=Congress(),
        register_as="orders_wide",
        rng=rng,
    )
    print(
        f"join synopsis: {sample.total_sample_size} of {wide.num_rows} "
        f"joined rows across {len(sample.strata)} strata"
    )

    sql = (
        "SELECT c_nation, p_category, sum(o_total) AS revenue "
        "FROM orders_wide GROUP BY c_nation, p_category "
        "ORDER BY c_nation, p_category"
    )
    query = parse_query(sql)
    exact = execute(query, catalog)

    rewrite = Integrated()
    synopsis = rewrite.install(sample, "orders_wide", catalog)
    approx = rewrite.plan(query, synopsis).execute(catalog)

    error = groupby_error(
        exact, approx, ["c_nation", "p_category"], "revenue"
    )
    print(f"rollup groups: {exact.num_rows}, all present: "
          f"{not error.missing_groups}")
    print(f"mean error {error.eps_l1:.2f}%, worst {error.eps_inf:.2f}%")
    worst_nation = max(
        error.per_group.items(), key=lambda item: item[1]
    )
    print(f"worst cell: {worst_nation[0]} at {worst_nation[1]:.2f}%")
    print(
        "\nEven the 0.5%-of-customers nation is answered, because the join\n"
        "synopsis was stratified on the joined dimension attributes."
    )


if __name__ == "__main__":
    main()
