"""Workload-adaptive and multi-criteria allocation (Sections 4.7 and 8).

Three refinements over plain Congress, on one sales table:

1. **Workload preferences** -- the analytics team drills into ``region``
   breakdowns far more than anything else, so that grouping's groups get a
   larger share (Section 4.7).
2. **Variance criterion** -- a group whose amounts are wildly spread needs
   more sample than a same-sized uniform group (Section 8's Neyman-style
   weight vector).
3. **Recency bias** -- recent quarters matter more than old ones
   (Section 8's range-partition example).

Run:  python examples/workload_tuning.py
"""

import numpy as np

from repro import (
    Congress,
    GroupPreferences,
    GroupingCriterion,
    MultiCriteriaCongress,
    RangeBiasCriterion,
    VarianceCriterion,
    WorkloadCongress,
    allocate_from_table,
)
from repro.engine import Column, ColumnType, Schema, Table
from repro.sampling import all_groupings


SCHEMA = Schema(
    [
        Column("region", ColumnType.STR, "grouping"),
        Column("quarter", ColumnType.INT, "grouping"),
        Column("amount", ColumnType.FLOAT, "aggregate"),
    ]
)


def build_table(rng: np.random.Generator) -> Table:
    """Sales across 3 regions x 8 quarters with uneven spread per region."""
    rows = []
    sizes = {"north": 6000, "south": 3000, "east": 1000}
    spread = {"north": 5.0, "south": 5.0, "east": 80.0}  # east is volatile
    for region, size in sizes.items():
        quarters = rng.integers(1, 9, size=size)
        amounts = rng.normal(100.0, spread[region], size=size).clip(min=1.0)
        rows.extend(zip([region] * size, quarters.tolist(), amounts.tolist()))
    return Table.from_rows(SCHEMA, rows)


def by_region(allocation) -> dict:
    totals: dict = {}
    for (region, __), size in allocation.fractional.items():
        totals[region] = totals.get(region, 0.0) + size
    return {k: round(v, 1) for k, v in sorted(totals.items())}


def by_quarter(allocation) -> dict:
    totals: dict = {}
    for (__, quarter), size in allocation.fractional.items():
        totals[quarter] = totals.get(quarter, 0.0) + size
    return {k: round(v, 1) for k, v in sorted(totals.items())}


def main() -> None:
    rng = np.random.default_rng(3)
    table = build_table(rng)
    grouping = ["region", "quarter"]
    budget = 1_000

    plain = allocate_from_table(Congress(), table, grouping, budget)
    print("plain congress, per region:      ", by_region(plain))

    # 1. Workload preferences: double the share of the 'east' region when
    #    grouping by region (analysts drill into it constantly).
    preferences = GroupPreferences()
    preferences.set(["region"], ("east",), 2 / 3)
    preferences.set(["region"], ("north",), 1 / 6)
    preferences.set(["region"], ("south",), 1 / 6)
    weighted = allocate_from_table(
        WorkloadCongress(preferences), table, grouping, budget
    )
    print("workload-weighted, per region:   ", by_region(weighted))

    # 2. Variance criterion: 'east' has 16x the spread, so Neyman allocation
    #    shifts space toward it even without explicit preferences.
    criteria = [GroupingCriterion(t) for t in all_groupings(grouping)]
    criteria.append(VarianceCriterion(table, "amount"))
    variance_aware = allocate_from_table(
        MultiCriteriaCongress(criteria), table, grouping, budget
    )
    print("variance-aware, per region:      ", by_region(variance_aware))

    # 3. Recency bias: quarter 8 is 'now'; decay weight by age.
    recency = MultiCriteriaCongress(
        [GroupingCriterion(t) for t in all_groupings(grouping)]
        + [RangeBiasCriterion("quarter", lambda q: 0.6 ** (8 - int(q)))]
    )
    recent_aware = allocate_from_table(recency, table, grouping, budget)
    print("plain congress, per quarter:     ", by_quarter(plain))
    print("recency-biased, per quarter:     ", by_quarter(recent_aware))

    print(
        "\nEach refinement is just one more weight-vector column in the\n"
        "Figure 19 framework: take the per-group max, rescale to the\n"
        "budget, sample."
    )


if __name__ == "__main__":
    main()
