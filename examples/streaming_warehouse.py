"""Incremental maintenance: keep a congressional sample fresh under inserts.

Section 6 of the paper: the warehouse keeps growing -- and, worse, the data
distribution *shifts* (new products appear, old ones fade).  The Eq. 8
Congress maintainer keeps the sample valid without ever re-reading the base
relation: each insert does O(2^|G|) counter updates plus a coin flip, and
stale strata are thinned lazily.

This script streams three "monthly loads" into a sales table.  The third
load introduces a brand-new region (a new group!), then we refresh the
synopsis from the maintainer and show that queries over the new region work
-- with no rebuild from base data.

Run:  python examples/streaming_warehouse.py
"""

import numpy as np

from repro import AquaSystem, Congress, groupby_error
from repro.engine import Column, ColumnType, Schema, Table


SCHEMA = Schema(
    [
        Column("sale_id", ColumnType.INT, "key"),
        Column("region", ColumnType.STR, "grouping"),
        Column("product", ColumnType.STR, "grouping"),
        Column("amount", ColumnType.FLOAT, "aggregate"),
    ]
)

QUERY = (
    "SELECT region, sum(amount) AS total "
    "FROM sales GROUP BY region ORDER BY region"
)


def monthly_load(
    rng: np.random.Generator,
    start_id: int,
    size: int,
    regions,
    region_weights,
):
    """Generate one batch of sales rows."""
    region = rng.choice(regions, size=size, p=region_weights)
    product = rng.choice(["widget", "gadget", "gizmo"], size=size)
    amount = rng.gamma(2.0, 50.0, size=size)
    ids = np.arange(start_id, start_id + size)
    return list(zip(ids.tolist(), region.tolist(), product.tolist(), amount.tolist()))


def main() -> None:
    rng = np.random.default_rng(11)

    # Month 1: initial warehouse load.
    initial = monthly_load(
        rng, 1, 60_000,
        ["north", "south", "east"], [0.6, 0.3, 0.1],
    )
    base = Table.from_rows(SCHEMA, initial)

    aqua = AquaSystem(space_budget=2_000, allocation_strategy=Congress())
    aqua.register_table("sales", base)
    aqua.enable_maintenance("sales")
    print("after initial load:   ", aqua.synopsis("sales").describe())

    # Month 2: more of the same mix.
    batch2 = monthly_load(
        rng, 60_001, 40_000,
        ["north", "south", "east"], [0.55, 0.35, 0.10],
    )
    aqua.insert_many("sales", batch2)
    aqua.refresh_synopsis("sales")
    print("after month 2 refresh:", aqua.synopsis("sales").describe())

    # Month 3: a brand-new region ("west") opens -- a new group appears.
    batch3 = monthly_load(
        rng, 100_001, 40_000,
        ["north", "south", "east", "west"], [0.4, 0.3, 0.1, 0.2],
    )
    aqua.insert_many("sales", batch3)
    aqua.refresh_synopsis("sales")
    print("after month 3 refresh:", aqua.synopsis("sales").describe())
    print()

    answer = aqua.answer(QUERY)
    exact = aqua.exact(QUERY)
    error = groupby_error(exact, answer.result, ["region"], "total")
    print("region totals (approx vs exact):")
    exact_by_region = {row["region"]: row["total"] for row in exact.to_dicts()}
    for row in answer.result.to_dicts():
        region = str(row["region"])
        print(
            f"  {region:6s} approx={row['total']:>12.4g} "
            f"exact={exact_by_region[region]:>12.4g} "
            f"err={error.per_group[(region,)]:.2f}%"
        )
    print(
        f"\nmean error {error.eps_l1:.2f}% -- including the region that did "
        "not exist when the synopsis was first built.  No base-table rescan "
        "was needed."
    )


if __name__ == "__main__":
    main()
