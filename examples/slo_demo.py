"""SLO demo: audit served answers, burn the error budget, page on it.

The closed observability loop, runnable as a CI smoke test:

1. serve a clean workload over the census warehouse with the accuracy
   auditor sampling 100% of answers and a ManualClock-driven SLO monitor
   attached -- every audit must come back clean and no burn-rate alert
   may fire;
2. install the serve-time tamper (estimates scaled by 1.1, promised
   bounds untouched -- the silent fault the guard cannot see) and serve
   the same workload again -- the auditor must catch the violations, the
   ``bound_violation_rate`` SLO's fast burn-rate alert must fire inside
   the short window, and the violating queries must be visible in the
   event log with their trace ids scrapable as OpenMetrics exemplars.

Prints the observability report either way.

Run:  PYTHONPATH=src python examples/slo_demo.py
Exits non-zero on any violation.
"""

import sys

import numpy as np

from repro import AquaSystem, CensusConfig, generate_census
from repro.obs.audit import AccuracyAuditor, AuditConfig
from repro.obs.slo import ObservabilityReport, SLOMonitor
from repro.serve.deadline import ManualClock
from repro.testing.faults import AnswerTamper

SQL = "SELECT st, SUM(sal) AS total_sal FROM census GROUP BY st"
QUERIES = 8


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}")
        sys.exit(1)
    print(f"ok: {message}")


def build():
    census = generate_census(CensusConfig(population=50_000, seed=7))
    aqua = AquaSystem(
        space_budget=4_000,
        telemetry=True,
        rng=np.random.default_rng(3),
        cache=False,
    )
    aqua.register_table("census", census)
    clock = ManualClock()
    slo = SLOMonitor(clock=clock)
    aqua.attach_slo(slo)
    auditor = AccuracyAuditor(
        aqua,
        AuditConfig(sample_fraction=1.0),
        slo=slo,
        rng=np.random.default_rng(5),
        background=False,
    )
    aqua.attach_auditor(auditor)
    return aqua, clock, slo, auditor


def drive(aqua, clock, auditor):
    for _ in range(QUERIES):
        aqua.answer(SQL)
        auditor.drain()
        clock.advance(10.0)


def main() -> None:
    print("== clean workload ==")
    aqua, clock, slo, auditor = build()
    drive(aqua, clock, auditor)
    check(auditor.stats.audited == QUERIES, f"audited all {QUERIES} answers")
    check(
        auditor.stats.violating_queries == 0,
        "clean workload has zero bound violations",
    )
    check(slo.firing_alerts() == [], "clean workload fires no alerts")

    print("\n== tampered workload (estimates silently scaled by 1.1) ==")
    aqua, clock, slo, auditor = build()
    with AnswerTamper(aqua, scale=1.1):
        drive(aqua, clock, auditor)
    check(
        auditor.stats.violating_queries == QUERIES,
        "auditor caught every tampered answer",
    )
    firing = {(a.slo, a.rule.name) for a in slo.firing_alerts()}
    check(
        ("bound_violation_rate", "fast") in firing,
        "fast burn-rate alert fired for bound_violation_rate",
    )
    violating = aqua.telemetry.events.events(violations_only=True)
    check(
        len(violating) == QUERIES,
        "every violating query is in the event log",
    )
    exposition = aqua.telemetry.metrics.to_openmetrics()
    check(
        any(
            f'trace_id="{event.trace_id}"' in exposition
            for event in violating
        ),
        "a violating trace id is scrapable as an OpenMetrics exemplar",
    )

    print()
    print(
        ObservabilityReport(
            events=aqua.telemetry.events, slo=slo, auditor=auditor
        ).render()
    )
    print("\nslo_demo: all checks passed")


if __name__ == "__main__":
    main()
