"""OLAP exploration: roll-up/drill-down from one congressional sample.

The paper's whole premise is that an analyst explores interactively --
grouping coarser and finer over the same columns -- and a single
congressional sample must serve *every* step well.  This script walks such
a session with :class:`CubeExplorer`, then mines the session's query log
into Section 4.7 preference weights and rebuilds a workload-tuned sample.

Run:  python examples/olap_drilldown.py
"""

from repro import (
    AquaSystem,
    CubeExplorer,
    LineitemConfig,
    Measure,
    QueryLog,
    WorkloadCongress,
    allocate_from_table,
    generate_lineitem,
)


def main() -> None:
    lineitem = generate_lineitem(
        LineitemConfig(table_size=150_000, num_groups=216, group_skew=1.2, seed=9)
    )
    aqua = AquaSystem(space_budget=6_000)
    aqua.register_table("lineitem", lineitem)
    print(aqua.synopsis("lineitem").describe(), "\n")

    log = QueryLog(
        base_table="lineitem",
        grouping_columns=("l_returnflag", "l_linestatus", "l_shipdate"),
    )
    cube = CubeExplorer(
        aqua,
        "lineitem",
        measures=[
            Measure("sum", "l_quantity", "qty"),
            Measure("avg", "l_extendedprice", "avg_price"),
        ],
    )

    def step(description: str) -> None:
        answer = cube.view()
        log.record(cube.to_sql())
        rows = answer.result.num_rows
        first = answer.result.to_dicts()[0] if rows else {}
        preview = ", ".join(
            f"{k}={v:.4g}" if isinstance(v, float) else f"{k}={v}"
            for k, v in list(first.items())[:4]
        )
        print(f"{description:42s} -> {rows:4d} groups   [{preview}]")

    step("whole table")
    cube.drilldown("l_returnflag")
    step("by return flag")
    cube.drilldown("l_linestatus")
    step("by flag x status")
    flag = cube.view().result.column("l_returnflag")[0]
    cube.slice("l_returnflag", int(flag))
    step(f"sliced to flag={flag}")
    cube.drilldown("l_shipdate")
    step("...by ship date too")
    cube.rollup("l_linestatus")
    step("rolled status back up")

    print("\nsession history:", " -> ".join(cube.history()))

    # Mine the session into allocation preferences (Section 4.7).
    preferences = log.to_preferences()
    tuned = allocate_from_table(
        WorkloadCongress(preferences),
        lineitem,
        ["l_returnflag", "l_linestatus", "l_shipdate"],
        6_000,
    )
    top = sorted(
        log.grouping_frequencies().items(), key=lambda kv: -kv[1]
    )[:3]
    print("\nmost-used groupings this session:")
    for grouping, fraction in top:
        label = ",".join(grouping) or "(none)"
        print(f"  {label:45s} {fraction:.0%} of queries")
    print(
        f"\nworkload-tuned allocation ready: {tuned.total_fractional:.0f} "
        f"tuples across {len(tuned.fractional)} strata "
        f"(scale-down factor {tuned.scale_down_factor:.3f})"
    )


if __name__ == "__main__":
    main()
