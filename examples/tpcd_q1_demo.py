"""The paper's Figures 2-4: Aqua rewriting of (a simplified) TPC-D Query 1.

The original query aggregates lineitem quantities per
(l_returnflag, l_linestatus).  Aqua rewrites it to run on a 1% sample
relation, scaling the SUM and attaching an error column.  The paper uses
this example to show a *limitation* of uniform samples: the smallest group
("N, F" in TPC-D -- a factor of 35+ smaller than the others) gets a visibly
worse estimate.  We reproduce that, then fix it with a congressional sample.

Run:  python examples/tpcd_q1_demo.py
"""

import numpy as np

from repro import AquaSystem, Congress, House, groupby_error
from repro.engine import Column, ColumnType, Schema, Table


def tpcd_like_lineitem(num_rows: int = 300_000, seed: int = 7) -> Table:
    """A lineitem with TPC-D Q1's group structure.

    Four (returnflag, linestatus) groups; one of them ("N,F") is ~40x
    smaller than the others, like the real TPC-D data the paper shows.
    """
    rng = np.random.default_rng(seed)
    schema = Schema(
        [
            Column("l_id", ColumnType.INT, "key"),
            Column("l_returnflag", ColumnType.STR, "grouping"),
            Column("l_linestatus", ColumnType.STR, "grouping"),
            Column("l_shipdate", ColumnType.INT, "grouping"),
            Column("l_quantity", ColumnType.FLOAT, "aggregate"),
        ]
    )
    groups = [("A", "F"), ("N", "F"), ("N", "O"), ("R", "F")]
    weights = np.array([0.33, 0.008, 0.33, 0.332])
    weights = weights / weights.sum()
    picks = rng.choice(len(groups), size=num_rows, p=weights)
    flags = np.array([g[0] for g in groups])[picks]
    statuses = np.array([g[1] for g in groups])[picks]
    return Table.from_columns(
        schema,
        l_id=np.arange(1, num_rows + 1),
        l_returnflag=flags,
        l_linestatus=statuses,
        l_shipdate=rng.integers(0, 2192, size=num_rows),
        l_quantity=rng.integers(1, 51, size=num_rows).astype(float),
    )


QUERY = (
    "SELECT l_returnflag, l_linestatus, sum(l_quantity) AS sum_qty "
    "FROM lineitem "
    "WHERE l_shipdate <= 2000 "
    "GROUP BY l_returnflag, l_linestatus "
    "ORDER BY l_returnflag, l_linestatus"
)


def show(label: str, table, error_column: bool = True) -> None:
    print(label)
    for row in table.to_dicts():
        line = (
            f"  {row['l_returnflag']}  {row['l_linestatus']}  "
            f"sum_qty={row['sum_qty']:>12.4g}"
        )
        if error_column and "sum_qty_error" in row:
            line += f"  +/- {row['sum_qty_error']:.3g}"
        print(line)
    print()


def main() -> None:
    lineitem = tpcd_like_lineitem()
    budget = lineitem.num_rows // 100  # the paper's 1% sample

    print("Figure 3 -- exact answer:")
    exact_system = AquaSystem(space_budget=budget)
    exact_system.register_table("lineitem", lineitem, build=True)
    exact = exact_system.exact(QUERY)
    show("", exact, error_column=False)

    for strategy, figure in ((House(), "Figure 4 -- uniform 1% sample"),
                             (Congress(), "Congressional 1% sample")):
        aqua = AquaSystem(space_budget=budget, allocation_strategy=strategy)
        aqua.register_table(
            "lineitem", lineitem,
            grouping_columns=["l_returnflag", "l_linestatus"],
        )
        answer = aqua.answer(QUERY)
        show(f"{figure} (strategy={aqua.synopsis('lineitem').allocation_strategy}):",
             answer.result)
        error = groupby_error(exact, answer.result,
                              ["l_returnflag", "l_linestatus"], "sum_qty")
        nf = error.per_group.get(("N", "F"), float("nan"))
        nf_rows = [
            row for row in answer.result.to_dicts()
            if row["l_returnflag"] == "N" and row["l_linestatus"] == "F"
        ]
        bound_pct = (
            100 * nf_rows[0]["sum_qty_error"] / nf_rows[0]["sum_qty"]
            if nf_rows else float("nan")
        )
        print(
            f"  per-group error: mean {error.eps_l1:.2f}%, "
            f"smallest group (N,F): {nf:.2f}% "
            f"(90% error bound: +/-{bound_pct:.1f}% of the estimate)\n"
        )

    print(
        "With the uniform sample the tiny (N,F) group rides on a handful of\n"
        "tuples and its estimate (and error bound) is far worse than the\n"
        "other groups' -- the exact behaviour of the paper's Figure 4.  The\n"
        "congressional sample gives (N,F) its Senate share and the error\n"
        "collapses."
    )


if __name__ == "__main__":
    main()
