"""Progressive streaming answers: watch a group-by converge.

Builds a skewed sales table, then streams
``SELECT g, SUM(v), AVG(v) ... GROUP BY g`` three ways:

1. plain: every chunk down to the bit-exact final landing;
2. early stop: halt as soon as every group is within 5% relative error;
3. deadline: interrupt mid-stream and keep the last complete answer.

Run with::

    PYTHONPATH=src python examples/stream_demo.py
"""

import numpy as np

from repro.aqua import AquaSystem
from repro.engine import Column, ColumnType, Schema, Table

SQL = "SELECT g, SUM(v) AS s, AVG(v) AS a FROM sales GROUP BY g ORDER BY g"


def build_system() -> AquaSystem:
    rng = np.random.default_rng(42)
    n = 50_000
    schema = Schema(
        [
            Column("g", ColumnType.STR, "grouping"),
            Column("v", ColumnType.FLOAT, "aggregate"),
        ]
    )
    table = Table(
        schema,
        {
            "g": rng.choice(
                [f"g{i}" for i in range(8)],
                size=n,
                p=np.array([40, 20, 12, 10, 8, 5, 3, 2]) / 100.0,
            ),
            "v": rng.exponential(100.0, size=n),
        },
    )
    system = AquaSystem(
        space_budget=2000, rng=np.random.default_rng(7), telemetry=True
    )
    system.register_table("sales", table)
    return system


def show(answer) -> None:
    rel = answer.max_rel_halfwidth
    rel_text = "n/a" if rel != rel else f"{rel:8.3%}"
    print(
        f"  chunk {answer.chunk_index + 1:>2}/{answer.chunks_total:<2}"
        f"  {answer.fraction:7.1%} of data"
        f"  worst rel halfwidth {rel_text}"
        f"  [{answer.provenance}]"
    )


def main() -> None:
    system = build_system()

    print("1. Full stream to the exact landing:")
    final = None
    for answer in system.sql_stream(SQL, chunk_rows=8192):
        show(answer)
        final = answer
    assert final is not None and final.final
    exact = system.exact(SQL)
    names = [
        n for n in final.result.schema.names if not n.endswith("_error")
    ]
    assert final.result.project(names) == exact
    print("  final answer is bit-identical to exact()\n")

    print("2. Early stop at 5% relative error:")
    system2 = build_system()
    for answer in system2.sql_stream(
        SQL, chunk_rows=2048, until_rel_error=0.05
    ):
        show(answer)
    assert answer.converged and not answer.final
    print(
        f"  stopped after {answer.fraction:.1%} of the data "
        f"(worst group within 5%)\n"
    )

    print("3. Deadline mid-stream keeps the last complete answer:")
    system3 = build_system()
    answers = list(
        system3.sql_stream(SQL, chunk_rows=2048, deadline=0.005)
    )
    for answer in answers[-3:]:
        show(answer)
    terminal = answers[-1]
    if terminal.provenance == "partial":
        print(
            f"  interrupted at {terminal.fraction:.1%}; answer is the last "
            f"complete emission"
        )
    else:
        print("  fast machine: the stream finished inside the deadline")


if __name__ == "__main__":
    main()
