"""Shared benchmark machinery.

Every benchmark regenerates one table or figure of the paper (see
DESIGN.md's per-experiment index), prints the paper-style text table, and
saves it under ``benchmarks/results/`` so EXPERIMENTS.md can reference the
latest run.

Scale: benches run at ``REPRO_SCALE`` x 1M tuples (default 0.2).  Set
``REPRO_SCALE=1.0`` for paper-scale runs.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def save_result():
    """Persist a rendered experiment table to benchmarks/results/."""

    def _save(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save


@pytest.fixture(scope="session")
def save_json():
    """Persist a machine-readable result to benchmarks/results/<name>.json.

    The consolidated JSON results (e.g. ``BENCH_pipeline.json``) are what
    downstream tooling and trend tracking consume; the ``.txt`` tables
    remain the human-readable view.
    """

    def _save(name: str, payload) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"\n[saved to {path}]")

    return _save
