"""Ablation: integer rounding of fractional allocations.

DESIGN.md design-decision #1.  The allocation formulas produce fractional
sizes; we compare largest-remainder (default), floor, and randomized
rounding on (a) budget utilization and (b) Q_g2 accuracy.
"""

import numpy as np
import pytest

from repro.core import Congress, allocate_from_table
from repro.engine import Catalog, execute
from repro.experiments import default_table_size, format_mapping_table
from repro.metrics import groupby_error
from repro.rewrite import Integrated
from repro.sampling import (
    StratifiedSample,
    floor_round,
    largest_remainder_round,
    randomized_round,
)
from repro.synthetic import LineitemConfig, generate_lineitem, qg2

BUDGET = 3000


@pytest.fixture(scope="module")
def table():
    return generate_lineitem(
        LineitemConfig(
            table_size=min(default_table_size(), 100_000),
            num_groups=1000,
            group_skew=1.2,
            seed=4,
        )
    )


def _rounders(allocation):
    caps = allocation.populations
    capped = {
        key: min(value, float(caps[key]))
        for key, value in allocation.fractional.items()
    }
    rng = np.random.default_rng(0)
    return {
        "largest_remainder": largest_remainder_round(
            capped, total=BUDGET, caps=caps
        ),
        "floor": floor_round(capped, caps=caps),
        "randomized": randomized_round(capped, rng, caps=caps),
    }


def test_rounding_ablation(benchmark, table, save_result):
    grouping = ["l_returnflag", "l_linestatus", "l_shipdate"]
    allocation = allocate_from_table(Congress(), table, grouping, BUDGET)
    rounded = benchmark(lambda: _rounders(allocation))

    catalog = Catalog()
    catalog.register("lineitem", table)
    query = qg2()
    exact = execute(query.query, catalog)
    rng = np.random.default_rng(1)

    rows = {}
    for name, sizes in rounded.items():
        sample = StratifiedSample.build(table, grouping, sizes, rng=rng)
        rewrite = Integrated()
        synopsis = rewrite.install(sample, "lineitem", catalog, replace=True)
        approx = rewrite.plan(query.query, synopsis).execute(catalog)
        error = groupby_error(
            exact, approx, list(query.query.group_by), "sum_qty"
        )
        rows[name] = {
            "sample_size": sample.total_sample_size,
            "eps_l1": error.eps_l1,
        }

    save_result(
        "ablation_rounding",
        format_mapping_table(
            "rounding", rows,
            title=f"Ablation: rounding schemes, budget={BUDGET}",
        ),
    )

    # Largest remainder uses the budget exactly; floor always under-uses
    # when any allocation is fractional.
    assert rows["largest_remainder"]["sample_size"] == BUDGET
    assert rows["floor"]["sample_size"] <= BUDGET
    # All three should produce broadly comparable accuracy.
    errors = [row["eps_l1"] for row in rows.values()]
    assert max(errors) < 5 * min(errors) + 5
