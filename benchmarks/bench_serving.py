"""Concurrent serving benchmark: latency, rejection, and degradation sweep.

Drives one :class:`~repro.serve.service.QueryService` (2 workers, a queue
of 4, load shedding at 75% queue occupancy) with an increasing number of
closed-loop clients and records, per client count:

* p50 / p99 client-observed latency (submit to answer) for served queries;
* the rejection rate (admission-control 429s over total attempts);
* the degraded-answer fraction (load-shed answers over served answers).

This is the capacity story behind docs/SERVING.md: as offered load climbs
past the worker pool's throughput, the service first degrades (cheaper
synopsis-only answers, honest ``degraded`` provenance) and then rejects --
while the p99 of what it *does* serve stays bounded, because queue depth
is capped.  Emits ``benchmarks/results/BENCH_serving.json``.
"""

import statistics
import threading
import time

import numpy as np

from repro.aqua import AquaSystem
from repro.engine import Column, ColumnType, Schema, Table
from repro.errors import OverloadError, RateLimitExceeded
from repro.serve import QueryService, ServiceConfig

CLIENT_COUNTS = (1, 2, 4, 8, 16)
QUERIES_PER_CLIENT = 12
ROWS = 60_000

QUERIES = (
    "SELECT g, SUM(v) AS s FROM sales GROUP BY g",
    "SELECT g, AVG(v) AS a FROM sales GROUP BY g",
    "SELECT g, COUNT(*) AS c FROM sales GROUP BY g",
    "SELECT g, SUM(v) AS s, AVG(v) AS a FROM sales GROUP BY g",
)


def _system() -> AquaSystem:
    rng = np.random.default_rng(11)
    schema = Schema(
        [
            Column("g", ColumnType.STR, "grouping"),
            Column("v", ColumnType.FLOAT, "aggregate"),
        ]
    )
    system = AquaSystem(
        space_budget=2000, rng=np.random.default_rng(7), telemetry=True
    )
    system.register_table(
        "sales",
        Table(
            schema,
            {
                "g": rng.choice(
                    [f"g{i:02d}" for i in range(20)], size=ROWS
                ),
                "v": rng.exponential(100.0, size=ROWS),
            },
        ),
    )
    return system


def _percentile(samples, q):
    if not samples:
        return 0.0
    return float(np.percentile(np.asarray(samples), q))


def _drive(service, clients):
    """Closed-loop clients; returns (latencies, rejected, degraded, served)."""
    latencies, lock = [], threading.Lock()
    counts = {"rejected": 0, "degraded": 0, "served": 0}

    def client(k):
        for i in range(QUERIES_PER_CLIENT):
            sql = QUERIES[(k + i) % len(QUERIES)]
            start = time.perf_counter()
            try:
                result = service.query(sql, tenant=f"client-{k}")
            except (OverloadError, RateLimitExceeded):
                with lock:
                    counts["rejected"] += 1
                continue
            elapsed = time.perf_counter() - start
            with lock:
                latencies.append(elapsed)
                counts["served"] += 1
                if result.degraded:
                    counts["degraded"] += 1

    threads = [
        threading.Thread(target=client, args=(k,)) for k in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return latencies, counts


def test_serving_capacity_sweep(save_result, save_json):
    system = _system()
    sweep = {}
    for clients in CLIENT_COUNTS:
        service = QueryService(
            system,
            ServiceConfig(
                workers=2,
                queue_depth=4,
                admission_timeout_seconds=0.0,
                degrade_queue_fraction=0.75,
            ),
        )
        try:
            service.query(QUERIES[0])  # warm the caches and synopsis path
            latencies, counts = _drive(service, clients)
            stats = service.stats
        finally:
            service.close()
        attempts = clients * QUERIES_PER_CLIENT
        sweep[clients] = {
            "attempts": attempts,
            "served": counts["served"],
            "rejected": counts["rejected"],
            "degraded": counts["degraded"],
            "rejection_rate": counts["rejected"] / attempts,
            "degraded_fraction": (
                counts["degraded"] / counts["served"]
                if counts["served"]
                else 0.0
            ),
            "p50_seconds": _percentile(latencies, 50),
            "p99_seconds": _percentile(latencies, 99),
            "mean_seconds": (
                statistics.mean(latencies) if latencies else 0.0
            ),
            "retries": stats.retries,
        }

    lines = [
        f"concurrent serving sweep, {ROWS} rows, 2 workers + queue of 4, "
        f"{QUERIES_PER_CLIENT} queries/client",
        f"{'clients':>8}  {'p50 ms':>8}  {'p99 ms':>8}  "
        f"{'rejected':>9}  {'degraded':>9}",
    ]
    for clients, data in sweep.items():
        lines.append(
            f"{clients:>8}  {data['p50_seconds'] * 1000:>8.1f}  "
            f"{data['p99_seconds'] * 1000:>8.1f}  "
            f"{data['rejection_rate']:>8.0%}  "
            f"{data['degraded_fraction']:>8.0%}"
        )
    text = "\n".join(lines)
    save_result("BENCH_serving", text)
    save_json(
        "BENCH_serving",
        {
            "rows": ROWS,
            "workers": 2,
            "queue_depth": 4,
            "queries_per_client": QUERIES_PER_CLIENT,
            "sweep": {str(k): v for k, v in sweep.items()},
        },
    )

    # Sanity: every admission decision is accounted for, and the service
    # kept answering at every load level.
    for clients, data in sweep.items():
        assert data["served"] + data["rejected"] == data["attempts"]
        assert data["served"] > 0
