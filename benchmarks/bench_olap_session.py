"""OLAP session throughput: a full drill-down loop from one synopsis.

The paper's usability claim -- one congressional sample serves the whole
roll-up/drill-down process -- as a latency benchmark: time a six-step
navigation session (rollup -> drilldowns -> slice -> rollup) through the
CubeExplorer, and compare the session against running the same six queries
exactly.
"""

import numpy as np
import pytest

from repro.aqua import AquaSystem, CubeExplorer, Measure
from repro.experiments import format_mapping_table
from repro.synthetic import LineitemConfig, generate_lineitem


@pytest.fixture(scope="module")
def aqua():
    lineitem = generate_lineitem(
        LineitemConfig(table_size=150_000, num_groups=512, group_skew=1.0, seed=4)
    )
    system = AquaSystem(space_budget=5000, rng=np.random.default_rng(0))
    system.register_table("lineitem", lineitem)
    return system


def run_session(aqua, exact: bool):
    cube = CubeExplorer(
        aqua, "lineitem", [Measure("sum", "l_quantity", "qty")]
    )
    view = cube.view_exact if exact else (lambda: cube.view().result)

    results = [view()]
    cube.drilldown("l_returnflag")
    results.append(view())
    cube.drilldown("l_linestatus")
    results.append(view())
    flag = int(results[-1].column("l_returnflag")[0])
    cube.slice("l_returnflag", flag)
    results.append(view())
    cube.drilldown("l_shipdate")
    results.append(view())
    cube.rollup("l_linestatus")
    results.append(view())
    return results


def test_olap_session(benchmark, aqua, save_result):
    import time

    approx_results = benchmark(lambda: run_session(aqua, exact=False))
    assert all(table.num_rows > 0 for table in approx_results)

    start = time.perf_counter()
    exact_results = run_session(aqua, exact=True)
    exact_seconds = time.perf_counter() - start

    start = time.perf_counter()
    run_session(aqua, exact=False)
    approx_seconds = time.perf_counter() - start

    # Every navigation state is answered with full group coverage.
    for approx, exact in zip(approx_results, exact_results):
        assert approx.num_rows == exact.num_rows

    save_result(
        "olap_session",
        format_mapping_table(
            "mode",
            {
                "approximate": {"seconds": approx_seconds},
                "exact": {"seconds": exact_seconds},
                "speedup": {"seconds": exact_seconds / approx_seconds},
            },
            precision=4,
            title="OLAP six-step session: one synopsis vs exact queries",
        ),
    )
    assert approx_seconds < exact_seconds
