"""OLAP session throughput: a full drill-down loop from one synopsis.

The paper's usability claim -- one congressional sample serves the whole
roll-up/drill-down process -- as a latency benchmark: time a six-step
navigation session (rollup -> drilldowns -> slice -> rollup) through the
CubeExplorer, and compare the session against running the same six queries
exactly.

``test_cache_session`` extends the claim to the semantic answer-reuse
ladder (``docs/CACHING.md``): a seeded Zipf-weighted drill-down/roll-up
session -- repeats, respelled repeats, coarser roll-ups, whole-strata
slices -- is replayed against the tiered cache, and the combined
exact+canonical+rollup hit rate must beat exact-text matching alone.
Saved as ``BENCH_cache.json``.
"""

import time

import numpy as np
import pytest

from repro.aqua import AquaSystem, CubeExplorer, Measure
from repro.experiments import format_mapping_table
from repro.synthetic import LineitemConfig, generate_lineitem


@pytest.fixture(scope="module")
def aqua():
    lineitem = generate_lineitem(
        LineitemConfig(table_size=150_000, num_groups=512, group_skew=1.0, seed=4)
    )
    system = AquaSystem(space_budget=5000, rng=np.random.default_rng(0))
    system.register_table("lineitem", lineitem)
    return system


def run_session(aqua, exact: bool):
    cube = CubeExplorer(
        aqua, "lineitem", [Measure("sum", "l_quantity", "qty")]
    )
    view = cube.view_exact if exact else (lambda: cube.view().result)

    results = [view()]
    cube.drilldown("l_returnflag")
    results.append(view())
    cube.drilldown("l_linestatus")
    results.append(view())
    flag = int(results[-1].column("l_returnflag")[0])
    cube.slice("l_returnflag", flag)
    results.append(view())
    cube.drilldown("l_shipdate")
    results.append(view())
    cube.rollup("l_linestatus")
    results.append(view())
    return results


def test_olap_session(benchmark, aqua, save_result):
    import time

    approx_results = benchmark(lambda: run_session(aqua, exact=False))
    assert all(table.num_rows > 0 for table in approx_results)

    start = time.perf_counter()
    exact_results = run_session(aqua, exact=True)
    exact_seconds = time.perf_counter() - start

    start = time.perf_counter()
    run_session(aqua, exact=False)
    approx_seconds = time.perf_counter() - start

    # Every navigation state is answered with full group coverage.
    for approx, exact in zip(approx_results, exact_results):
        assert approx.num_rows == exact.num_rows

    save_result(
        "olap_session",
        format_mapping_table(
            "mode",
            {
                "approximate": {"seconds": approx_seconds},
                "exact": {"seconds": exact_seconds},
                "speedup": {"seconds": exact_seconds / approx_seconds},
            },
            precision=4,
            title="OLAP six-step session: one synopsis vs exact queries",
        ),
    )
    assert approx_seconds < exact_seconds


# -- semantic answer reuse across a Zipf session ---------------------------

# Dashboard-style templates over the lineitem cube.  The respelled
# variants (permuted GROUP BY clause, renamed aliases, reordered WHERE
# conjuncts) are canonical-tier food; the coarser group-bys and
# whole-strata slices are roll-up-tier food; straight repeats are
# exact-tier food.  Weights follow a Zipf law: a few views dominate a
# real session.
_SESSION_TEMPLATES = [
    # fine cube view and its respellings
    "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS qty, "
    "COUNT(*) AS cnt FROM lineitem GROUP BY l_returnflag, l_linestatus",
    "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS total_qty, "
    "COUNT(*) AS rows_seen FROM lineitem "
    "GROUP BY l_linestatus, l_returnflag",
    # roll-ups served from the fine snapshot
    "SELECT l_returnflag, SUM(l_quantity) AS qty, COUNT(*) AS cnt "
    "FROM lineitem GROUP BY l_returnflag",
    "SELECT l_linestatus, SUM(l_quantity) AS qty, COUNT(*) AS cnt "
    "FROM lineitem GROUP BY l_linestatus",
    "SELECT l_returnflag, AVG(l_quantity) AS mean_qty FROM lineitem "
    "GROUP BY l_returnflag",
    # whole-strata slices (datacube slicing)
    "SELECT l_returnflag, SUM(l_quantity) AS qty FROM lineitem "
    "WHERE l_linestatus = 0 GROUP BY l_returnflag",
    "SELECT l_linestatus, SUM(l_quantity) AS qty FROM lineitem "
    "WHERE l_returnflag = 1 GROUP BY l_linestatus",
    # a second measure, still moment-covered by its own fine view
    "SELECT l_returnflag, l_linestatus, SUM(l_extendedprice) AS rev "
    "FROM lineitem GROUP BY l_returnflag, l_linestatus",
    "SELECT l_returnflag, SUM(l_extendedprice) AS rev FROM lineitem "
    "GROUP BY l_returnflag",
]


def _zipf_session(rng, length):
    ranks = np.arange(1, len(_SESSION_TEMPLATES) + 1, dtype=np.float64)
    weights = 1.0 / ranks
    weights /= weights.sum()
    draws = rng.choice(len(_SESSION_TEMPLATES), size=length, p=weights)
    return [_SESSION_TEMPLATES[i] for i in draws]


def _fresh_system(semantic):
    lineitem = generate_lineitem(
        LineitemConfig(table_size=80_000, num_groups=64, group_skew=1.0, seed=9)
    )
    system = AquaSystem(
        space_budget=4000,
        rng=np.random.default_rng(21),
        cache=True,
        semantic_reuse=semantic,
    )
    system.register_table(
        "lineitem", lineitem, ["l_returnflag", "l_linestatus"]
    )
    return system


def test_cache_session(save_result, save_json):
    session = _zipf_session(np.random.default_rng(33), 60)

    tiered = _fresh_system(semantic=True)
    start = time.perf_counter()
    for sql in session:
        tiered.answer(sql)
    tiered_seconds = time.perf_counter() - start

    baseline = _fresh_system(semantic=False)
    start = time.perf_counter()
    for sql in session:
        baseline.answer(sql)
    baseline_seconds = time.perf_counter() - start

    stats = tiered.answer_cache.stats
    queries = len(session)
    exact_only_rate = stats.exact_hits / queries
    semantic_rate = (
        stats.exact_hits + stats.canonical_hits + stats.rollup_hits
    ) / queries
    payload = {
        "session_queries": queries,
        "exact_hits": stats.exact_hits,
        "canonical_hits": stats.canonical_hits,
        "rollup_hits": stats.rollup_hits,
        "exact_only_hit_rate": exact_only_rate,
        "semantic_hit_rate": semantic_rate,
        "rollup_index": {
            "registrations": tiered.rollup_index.stats().registrations,
            "hits": tiered.rollup_index.stats().hits,
        },
        "tiered_seconds": tiered_seconds,
        "baseline_seconds": baseline_seconds,
        "mean_ms_per_query_tiered": 1000.0 * tiered_seconds / queries,
        "mean_ms_per_query_baseline": 1000.0 * baseline_seconds / queries,
    }
    save_json("BENCH_cache", payload)
    save_result(
        "cache_session",
        format_mapping_table(
            "tier",
            {
                "exact": {"hits": stats.exact_hits},
                "canonical": {"hits": stats.canonical_hits},
                "rollup": {"hits": stats.rollup_hits},
                "semantic_rate": {"hits": semantic_rate},
                "exact_only_rate": {"hits": exact_only_rate},
            },
            precision=4,
            title="Zipf session: answers served per semantic cache tier",
        ),
    )
    # The ladder must add real coverage: canonical + rollup hits beyond
    # what exact-text matching already gets, on every tier.
    assert stats.canonical_hits > 0
    assert stats.rollup_hits > 0
    assert semantic_rate > exact_only_rate
