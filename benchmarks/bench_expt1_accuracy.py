"""Experiment 1 (Figures 14, 15, 16): accuracy per query class.

One benchmark per figure.  Each measures the approximate-query execution on
the Congress sample and regenerates the per-strategy error column for its
query class; the combined table is saved once.

Paper shapes asserted:
* Figure 14 (Qg0): Senate worst, House best-or-near-best.
* Figure 15 (Qg3): House worst, Senate best.
* Figure 16 (Qg2): Congress best-or-near-best.
* Everywhere: Congress never the worst scheme.
"""

import numpy as np
import pytest

from repro.experiments import Testbed, default_table_size, format_mapping_table
from repro.synthetic import LineitemConfig, qg0_set, qg2, qg3

SAMPLE_FRACTION = 0.07
GROUP_SKEW = 1.5
NUM_GROUPS = 1000


@pytest.fixture(scope="module")
def testbed():
    config = LineitemConfig(
        table_size=default_table_size(),
        num_groups=NUM_GROUPS,
        group_skew=GROUP_SKEW,
        seed=0,
    )
    return Testbed.create(config, SAMPLE_FRACTION)


_ERRORS = {}  # accumulated across the three benches for the saved table


def _record(save_result, query_label, errors):
    _ERRORS[query_label] = errors
    if len(_ERRORS) == 3:
        table = format_mapping_table(
            "query",
            {k: _ERRORS[k] for k in ("Qg0", "Qg2", "Qg3")},
            title=(
                "Expt 1 (Figures 14-16): avg % error, "
                f"SP={SAMPLE_FRACTION:.0%}, z={GROUP_SKEW}"
            ),
        )
        save_result("expt1_accuracy", table)


def test_fig14_qg0(benchmark, testbed, save_result):
    rng = np.random.default_rng(17)
    queries = qg0_set(
        testbed.table.num_rows, num_queries=20, selectivity=0.07, rng=rng
    )
    benchmark(lambda: testbed.approximate("congress", queries[0]))
    errors = {
        strategy: float(
            np.mean([testbed.query_error(strategy, q) for q in queries])
        )
        for strategy in testbed.samples
    }
    _record(save_result, "Qg0", errors)
    # Figure 14 shape: Senate is the worst scheme for no-group-by queries.
    assert errors["senate"] == max(errors.values())
    assert errors["house"] <= errors["senate"]
    assert errors["congress"] < errors["senate"]


def test_fig16_qg2(benchmark, testbed, save_result):
    query = qg2()
    benchmark(lambda: testbed.approximate("congress", query))
    errors = {
        strategy: testbed.query_error(strategy, query)
        for strategy in testbed.samples
    }
    _record(save_result, "Qg2", errors)
    # Figure 16 shape: Congress wins (or is within noise of the winner).
    assert errors["congress"] <= 1.25 * min(errors.values())
    assert errors["congress"] < errors["house"]


def test_fig15_qg3(benchmark, testbed, save_result):
    query = qg3()
    benchmark(lambda: testbed.approximate("congress", query))
    errors = {
        strategy: testbed.query_error(strategy, query)
        for strategy in testbed.samples
    }
    _record(save_result, "Qg3", errors)
    # Figure 15 shape: House worst, Senate best.
    assert errors["house"] == max(errors.values())
    assert errors["senate"] == min(errors.values())
    assert errors["congress"] < errors["house"]
