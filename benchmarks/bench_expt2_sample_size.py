"""Experiment 2 (Figure 17): sample size vs. accuracy on Q_g2.

Fix z = 0.86 and sweep the sample percentage; errors must fall with sample
size for every scheme, and Congress must improve markedly while House
flattens (its extra space goes to already-easy big groups).
"""

import pytest

from repro.experiments import Testbed, default_table_size, format_mapping_table
from repro.synthetic import LineitemConfig, qg2

SAMPLE_FRACTIONS = (0.01, 0.03, 0.07, 0.15, 0.30, 0.50, 0.75)


@pytest.fixture(scope="module")
def sweep():
    config = LineitemConfig(
        table_size=default_table_size(),
        num_groups=1000,
        group_skew=0.86,
        seed=0,
    )
    query = qg2()
    errors = {}
    for fraction in SAMPLE_FRACTIONS:
        bed = Testbed.create(config, fraction)
        errors[f"SP={fraction:.0%}"] = {
            strategy: bed.query_error(strategy, query)
            for strategy in bed.samples
        }
    return errors


def test_fig17_sample_size_sweep(benchmark, sweep, save_result):
    config = LineitemConfig(
        table_size=default_table_size(), num_groups=1000,
        group_skew=0.86, seed=0,
    )
    # Benchmark the smallest-sample query path (construction + answer).
    bed = Testbed.create(config, 0.07)
    benchmark(lambda: bed.approximate("congress", qg2()))

    table = format_mapping_table(
        "sample", sweep,
        title="Expt 2 (Figure 17): Qg2 avg % error vs sample size, z=0.86",
    )
    save_result("expt2_sample_size", table)

    labels = [f"SP={f:.0%}" for f in SAMPLE_FRACTIONS]
    for strategy in ("house", "senate", "basic_congress", "congress"):
        first = sweep[labels[0]][strategy]
        last = sweep[labels[-1]][strategy]
        # Errors fall from the 1% to the 75% sample for every scheme.
        assert last < first, f"{strategy}: {first} -> {last}"

    # Congress improves by a large factor across the sweep (Figure 17's
    # "errors drop rapidly with increasing sample space").
    congress_first = sweep[labels[0]]["congress"]
    congress_last = sweep[labels[-1]]["congress"]
    assert congress_last < congress_first / 3
