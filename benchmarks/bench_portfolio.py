"""Portfolio benchmark: budget-resolved answering vs always-finest.

The portfolio's selling point is that an error budget lets the planner
serve from a coarser (cheaper) synopsis whenever the cost/error model
predicts the coarse member still meets the bound.  This bench measures
that claim head-on: for a grid of ``max_rel_error`` budgets over the
seeded Zipf ``lineitem`` workload, it times ``answer(q, max_rel_error=e)``
against the same query forced onto the finest member
(``use_synopsis=<finest>``) and checks that, at equal promised error
(both paths promise ``<= e``), the budget-resolved path is no slower --
and strictly faster wherever the resolver picked a coarser member.

Pairs where the resolver itself picks the finest member are scored 1.0x
(both paths run the identical plan; timing them against each other would
only report timer noise).

Emits ``benchmarks/results/BENCH_portfolio.json`` plus the usual ``.txt``
table.

Protocol: seven runs per measurement, first discarded, medians reported.
"""

import statistics
import time

import numpy as np

from repro import AquaSystem
from repro.synthetic import LineitemConfig, generate_lineitem
from repro.synthetic.tpcd import GROUPING_COLUMNS
from repro.experiments import default_table_size

REPEATS = 7
ERROR_BUDGETS = (0.02, 0.1, 0.5)
PROMISE_RTOL = 1e-9


def _median_seconds(fn, repeats=REPEATS):
    """Median wall seconds of ``fn()`` over ``repeats`` runs, first
    discarded (the paper's timing protocol)."""
    times = []
    for i in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if i > 0:
            times.append(elapsed)
    return statistics.median(times)


def _build(table_size):
    table = generate_lineitem(
        LineitemConfig(table_size=table_size, num_groups=27, seed=2026)
    )
    system = AquaSystem(
        space_budget=max(64, table_size // 8),
        rng=np.random.default_rng(2026),
        cache=False,  # the answer cache would absorb the repeat queries
    )
    system.register_table(
        "lineitem", table, grouping_columns=list(GROUPING_COLUMNS)
    )
    system.build_portfolio("lineitem")
    return system


def _queries(table_size):
    count = max(1, int(round(0.07 * table_size)))
    start = (table_size - count) // 2
    return {
        "Qg2": (
            "SELECT l_returnflag, l_linestatus, sum(l_quantity) AS sum_qty "
            "FROM lineitem GROUP BY l_returnflag, l_linestatus"
        ),
        "Qg0": (
            "SELECT sum(l_quantity) AS sum_qty FROM lineitem "
            f"WHERE l_id BETWEEN {start} AND {start + count}"
        ),
    }


def test_portfolio_bench_json(save_json, save_result):
    table_size = default_table_size()
    system = _build(table_size)
    portfolio = system.portfolio("lineitem")
    finest = max(
        portfolio.members.values(), key=lambda m: m.sample_size
    ).name

    pairs = []
    for name, sql in _queries(table_size).items():
        for budget in ERROR_BUDGETS:
            budgeted = system.answer(sql, max_rel_error=budget)
            forced = system.answer(sql, use_synopsis=finest)
            # The budget path carries the contract: its promise must meet
            # the budget (the guard ladder enforces it).
            promised = budgeted.promised_rel_error
            assert promised is None or promised <= budget * (
                1 + PROMISE_RTOL
            ), (
                f"{name} @ {budget}: promised {promised} breaks the "
                f"budget contract ({budgeted.chosen_synopsis})"
            )
            # The forced baseline runs the default guard policy; the
            # "equal promised error" comparison only makes sense where
            # the finest member's natural promise also meets the budget.
            finest_promise = forced.promised_rel_error
            equal_promise = finest_promise is None or (
                finest_promise <= budget * (1 + PROMISE_RTOL)
            )
            member = budgeted.chosen_synopsis
            if member == finest:
                budget_s = finest_s = _median_seconds(
                    lambda: system.answer(sql, use_synopsis=finest)
                )
            else:
                budget_s = _median_seconds(
                    lambda: system.answer(sql, max_rel_error=budget)
                )
                finest_s = _median_seconds(
                    lambda: system.answer(sql, use_synopsis=finest)
                )
            pairs.append(
                {
                    "query": name,
                    "budget": budget,
                    "member": member,
                    "member_sample_size": portfolio.member(
                        member
                    ).sample_size,
                    "promised_rel_error": promised,
                    "finest_promised_rel_error": finest_promise,
                    "equal_promise": equal_promise,
                    "budget_ms": budget_s * 1000,
                    "finest_ms": finest_s * 1000,
                    "speedup": finest_s / budget_s,
                }
            )

    coarser = [
        p for p in pairs if p["member"] != finest and p["equal_promise"]
    ]
    # The acceptance bar: the resolver must actually exploit the ladder
    # (some budget resolves to a coarser member), and wherever it does,
    # the budget-resolved path beats always-finest at equal promised
    # error.  Median over the coarser pairs keeps single-run jitter out.
    assert coarser, "no budget ever resolved to a coarser member"
    median_speedup = statistics.median(p["speedup"] for p in coarser)
    assert median_speedup >= 1.0, (
        f"budget-resolved answers only {median_speedup:.2f}x vs "
        f"always-finest"
    )

    payload = {
        "schema_version": 1,
        "config": {
            "table_size": table_size,
            "space_budget": system.portfolio("lineitem")
            .member(finest)
            .spec.budget,
            "repeats": REPEATS,
            "error_budgets": list(ERROR_BUDGETS),
        },
        "members": {
            member.name: {
                "allocation": member.synopsis.allocation_strategy,
                "sample_size": member.sample_size,
            }
            for member in portfolio.members.values()
        },
        "finest": finest,
        "pairs": pairs,
        "summary": {
            "coarser_pairs": len(coarser),
            "median_speedup_coarser": median_speedup,
            "best_speedup": max(p["speedup"] for p in pairs),
        },
    }
    save_json("BENCH_portfolio", payload)

    lines = [
        f"{'query':<6s} {'budget':>7s} {'member':<8s} "
        f"{'budget ms':>10s} {'finest ms':>10s} {'speedup':>8s}"
    ]
    for p in pairs:
        lines.append(
            f"{p['query']:<6s} {p['budget']:>7.2f} {p['member']:<8s} "
            f"{p['budget_ms']:>10.3f} {p['finest_ms']:>10.3f} "
            f"{p['speedup']:>7.2f}x"
        )
    lines.append(
        f"median speedup over coarser-member pairs: {median_speedup:.2f}x "
        f"(>= 1.0x required)"
    )
    save_result("portfolio_budgets", "\n".join(lines))
