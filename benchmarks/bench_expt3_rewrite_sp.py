"""Experiment 3 (Table 3): rewrite-strategy execution time vs. sample size.

NG = 1000, SP in {1%, 5%, 10%}; times for Integrated / Nested-integrated /
Normalized / Key-normalized running Q_g2 (five runs, first discarded, per
the paper's protocol).

Paper shape: the Integrated family beats the Normalized family at every
sample size, and the Normalized times grow much faster with sample size
(the query-time join dominates).
"""

import pytest

from repro.core import Congress
from repro.experiments import (
    Testbed,
    default_table_size,
    format_mapping_table,
    time_plan,
)
from repro.rewrite import ALL_STRATEGIES
from repro.synthetic import LineitemConfig, qg2

SAMPLE_FRACTIONS = (0.01, 0.05, 0.10)


@pytest.fixture(scope="module")
def timings():
    config = LineitemConfig(
        table_size=default_table_size(), num_groups=1000,
        group_skew=0.86, seed=0,
    )
    query = qg2()
    seconds = {cls.name: {} for cls in ALL_STRATEGIES}
    exact_seconds = None
    for fraction in SAMPLE_FRACTIONS:
        bed = Testbed.create(config, fraction, strategies={"congress": Congress()})
        label = f"SP={fraction:.0%}"
        for cls in ALL_STRATEGIES:
            rewrite = cls()
            synopsis = bed.install("congress", rewrite)
            plan = rewrite.plan(query.query, synopsis)
            seconds[cls.name][label] = time_plan(
                lambda: plan.execute(bed.catalog), repeats=5
            )
        if exact_seconds is None:
            exact_seconds = time_plan(lambda: bed.exact(query), repeats=5)
    return seconds, exact_seconds


def test_table3_rewrite_times(benchmark, timings, save_result):
    seconds, exact_seconds = timings

    # Benchmark the winner's plan at 5% for the pytest-benchmark record.
    config = LineitemConfig(
        table_size=default_table_size(), num_groups=1000,
        group_skew=0.86, seed=0,
    )
    bed = Testbed.create(config, 0.05, strategies={"congress": Congress()})
    from repro.rewrite import NestedIntegrated

    rewrite = NestedIntegrated()
    synopsis = bed.install("congress", rewrite)
    plan = rewrite.plan(qg2().query, synopsis)
    benchmark(lambda: plan.execute(bed.catalog))

    table = format_mapping_table(
        "technique", seconds, precision=4,
        title="Expt 3 (Table 3): Qg2 execution seconds vs sample size, NG=1000",
    )
    table += f"\n(exact query on base table: {exact_seconds:.4f}s)"
    save_result("expt3_rewrite_sp", table)

    labels = [f"SP={f:.0%}" for f in SAMPLE_FRACTIONS]
    for label in labels:
        # Integrated is the fastest technique at every sample size, and
        # Normalized never beats it (the join always costs something).
        assert seconds["integrated"][label] == min(
            times[label] for times in seconds.values()
        ), f"{label}: {seconds}"
        assert seconds["integrated"][label] < seconds["normalized"][label]

    # At the larger sample sizes the whole Integrated family beats the
    # whole Normalized family (Table 3's main point; at 1% everything is
    # within noise, as in the paper's 1.2-1.8s column).
    for label in labels[1:]:
        fast = max(seconds["integrated"][label],
                   seconds["nested_integrated"][label])
        slow = max(seconds["normalized"][label],
                   seconds["key_normalized"][label])
        assert fast < slow * 1.1, f"{label}: {seconds}"
