"""Planner benchmark: optimized vs naive plans, plan-cache hit latency.

Runs a selective-predicate workload (the Q_g0 shape of Table 2: a 7%
``l_id`` range over the Expt-1 Zipf ``lineitem`` data) through the plan IR
twice per query -- once lowered naively, once through the rule-based
optimizer -- and measures the speedup that predicate pushdown plus
projection pruning buy on execution.  A second section times the
``plan_optimize`` stage of the answer path on a plan-cache miss vs hit.

Emits ``benchmarks/results/BENCH_planner.json`` (machine-readable, the
trajectory downstream tooling tracks) plus the usual ``.txt`` table.

Protocol: seven runs per measurement, first discarded, medians reported.
"""

import statistics
import time

import numpy as np
import pytest

from repro import AquaSystem, Telemetry
from repro.engine import Catalog, parse_query
from repro.experiments import default_table_size
from repro.plan import (
    CostModel,
    execute_plan,
    lower_query,
    optimize,
    render_plan,
)
from repro.synthetic import LineitemConfig, generate_lineitem
from repro.synthetic.tpcd import GROUPING_COLUMNS

REPEATS = 7
SELECTIVITY = 0.07


def _median_seconds(fn, repeats=REPEATS):
    """Median wall seconds of ``fn()`` over ``repeats`` runs, first
    discarded (the paper's timing protocol)."""
    times = []
    for i in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if i > 0:
            times.append(elapsed)
    return statistics.median(times)


@pytest.fixture(scope="module")
def testbed():
    table_size = default_table_size()
    table = generate_lineitem(
        LineitemConfig(table_size=table_size, num_groups=1000, seed=0)
    )
    catalog = Catalog()
    catalog.register("lineitem", table)
    def _range(selectivity):
        count = max(1, int(round(selectivity * table_size)))
        start = (table_size - count) // 2
        return f"WHERE l_id BETWEEN {start} AND {start + count}"

    # Qg0_paper is the paper's 7%-selectivity query; the two half-range
    # queries are where pushdown + pruning pay: the filter (naively) copies
    # every column of every selected row, so the wider the selection and
    # the narrower the needed column set, the bigger the win.
    queries = {
        "Qg0_paper": (
            "SELECT sum(l_quantity) AS sum_qty FROM lineitem "
            + _range(SELECTIVITY)
        ),
        "range_sum": (
            "SELECT sum(l_quantity) AS sum_qty FROM lineitem " + _range(0.5)
        ),
        "range_scan": (
            "SELECT l_id, l_quantity FROM lineitem " + _range(0.5)
        ),
    }
    return table_size, catalog, queries


def test_planner_bench_json(testbed, save_json, save_result):
    table_size, catalog, queries = testbed

    per_query = {}
    for name, sql in queries.items():
        query = parse_query(sql)
        naive = lower_query(query, catalog)
        optimized = optimize(naive)
        # Same rows either way -- the speedup must not come from skipping
        # work that changes the answer.
        assert execute_plan(optimized, catalog) == execute_plan(naive, catalog)
        naive_s = _median_seconds(lambda: execute_plan(naive, catalog))
        optimized_s = _median_seconds(lambda: execute_plan(optimized, catalog))
        per_query[name] = {
            "naive_ms": naive_s * 1000,
            "optimized_ms": optimized_s * 1000,
            "speedup": naive_s / optimized_s,
            "optimized_plan": render_plan(optimized).splitlines(),
        }

    # The acceptance bar: pushdown + pruning are worth >= 1.3x on the
    # selective-predicate workload.
    best = max(data["speedup"] for data in per_query.values())
    assert best >= 1.3, f"optimized plans only {best:.2f}x faster than naive"

    # -- cost-gated optimization: the Qg0 non-regression ----------------------
    # With a cost model wired in, a rule the model predicts to slow the
    # plan is never applied, so the gated plan must never lose to the
    # naive one.  Identical plans are scored exactly 1.0x (measuring the
    # same plan twice would only report timer noise); differing plans are
    # measured, with one re-measurement as the noise guard.
    model = CostModel.from_catalog(catalog)
    cost_gated = {}
    for name, sql in queries.items():
        query = parse_query(sql)
        naive = lower_query(query, catalog)
        gated = optimize(naive, cost_model=model)
        assert model.cost(gated) <= model.cost(naive)
        if gated == naive:
            speedup, gated_ms = 1.0, per_query[name]["naive_ms"]
        else:
            assert execute_plan(gated, catalog) == execute_plan(naive, catalog)
            gated_s = _median_seconds(lambda: execute_plan(gated, catalog))
            naive_s = per_query[name]["naive_ms"] / 1000
            if gated_s > naive_s:  # re-measure once before concluding
                gated_s = min(
                    gated_s,
                    _median_seconds(lambda: execute_plan(gated, catalog)),
                )
            speedup, gated_ms = naive_s / gated_s, gated_s * 1000
        cost_gated[name] = {
            "gated_ms": gated_ms,
            "speedup": speedup,
            "plan_changed": gated != naive,
        }
    assert cost_gated["Qg0_paper"]["speedup"] >= 1.0, (
        f"cost-gated optimizer slowed Qg0: "
        f"{cost_gated['Qg0_paper']['speedup']:.2f}x"
    )

    # -- plan-cache hit latency, measured on the answer path ------------------
    aqua = AquaSystem(
        space_budget=int(round(SELECTIVITY * table_size)),
        rng=np.random.default_rng(1),
        telemetry=Telemetry.enabled(),
        cache=False,  # the answer cache would absorb the repeat queries
    )
    aqua.register_table(
        "lineitem",
        catalog.get("lineitem"),
        grouping_columns=list(GROUPING_COLUMNS),
    )
    sql = queries["Qg0_paper"]
    miss_s = aqua.answer(sql).trace.stage_seconds()["plan_optimize"]
    hit_runs = [
        aqua.answer(sql).trace.stage_seconds()["plan_optimize"]
        for __ in range(REPEATS)
    ]
    hit_s = statistics.median(hit_runs)
    assert aqua.plan_cache.stats.hits >= REPEATS
    assert hit_s <= miss_s, "a plan-cache hit must not cost more than a miss"

    payload = {
        "schema_version": 1,
        "config": {
            "table_size": table_size,
            "selectivity": SELECTIVITY,
            "repeats": REPEATS,
        },
        "queries": per_query,
        "cost_gated": cost_gated,
        "plan_cache": {
            "miss_ms": miss_s * 1000,
            "hit_ms": hit_s * 1000,
            "stats": {
                "hits": aqua.plan_cache.stats.hits,
                "misses": aqua.plan_cache.stats.misses,
            },
        },
    }
    save_json("BENCH_planner", payload)

    lines = [
        f"{'query':<10s} {'naive ms':>9s} {'optimized ms':>13s} {'speedup':>8s}"
    ]
    for name, data in per_query.items():
        lines.append(
            f"{name:<10s} {data['naive_ms']:>9.2f} "
            f"{data['optimized_ms']:>13.2f} {data['speedup']:>7.2f}x"
        )
    lines.append(
        f"cost-gated Qg0: {cost_gated['Qg0_paper']['speedup']:.2f}x "
        f"vs naive (>= 1.0x required)"
    )
    lines.append(
        f"plan cache: miss {miss_s * 1000:.3f} ms, "
        f"hit {hit_s * 1000:.3f} ms"
    )
    save_result("planner_speedup", "\n".join(lines))
