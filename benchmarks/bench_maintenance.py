"""Section 6: maintenance throughput and validity under streaming inserts.

Not a paper table -- the paper reports no maintenance timings -- but
DESIGN.md's MAINT experiment: we measure per-insert cost of each maintainer
and check that a maintained Congress sample answers Q_g2-style queries as
well as one rebuilt from scratch after a distribution shift.
"""

import numpy as np
import pytest

from repro.core import Congress, allocate_from_table
from repro.experiments import format_mapping_table
from repro.maintenance import maintainer_for, subsample_to_budget
from repro.metrics import groupby_error
from repro.sampling import StratifiedSample
from repro.synthetic import LineitemConfig, generate_lineitem

BUDGET = 2000
STRATEGIES = ("house", "senate", "basic_congress", "congress")


@pytest.fixture(scope="module")
def stream_table():
    return generate_lineitem(
        LineitemConfig(table_size=40_000, num_groups=125, group_skew=1.0, seed=2)
    )


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_maintainer_throughput(benchmark, stream_table, strategy):
    rows = list(stream_table.head(20_000).iter_rows())
    rng = np.random.default_rng(0)

    def run():
        maintainer = maintainer_for(
            strategy, stream_table.schema,
            ["l_returnflag", "l_linestatus", "l_shipdate"], BUDGET, rng,
        )
        maintainer.insert_many(rows)
        return maintainer

    maintainer = benchmark.pedantic(run, rounds=3, iterations=1)
    snapshot = maintainer.snapshot()
    assert snapshot.total_sample_size > 0
    assert sum(snapshot.populations.values()) == len(rows)


def test_maintained_vs_rebuilt_accuracy(benchmark, stream_table, save_result):
    """After streaming the whole table, the maintained Congress sample
    should answer group-by queries about as well as a from-scratch one."""
    grouping = ["l_returnflag", "l_linestatus", "l_shipdate"]
    rng = np.random.default_rng(1)

    maintainer = maintainer_for(
        "congress", stream_table.schema, grouping, BUDGET, rng
    )
    maintainer.insert_table(stream_table)
    maintained = subsample_to_budget(maintainer.snapshot(), BUDGET, rng)
    maintained_sample = maintained.to_stratified()

    allocation = allocate_from_table(Congress(), stream_table, grouping, BUDGET)
    rebuilt_sample = StratifiedSample.build(
        stream_table, grouping, allocation.rounded(), rng=rng
    )

    from repro.engine import Catalog, execute
    from repro.rewrite import Integrated
    from repro.synthetic import qg2

    catalog = Catalog()
    catalog.register("lineitem", stream_table)
    query = qg2()
    exact = execute(query.query, catalog)

    def answer(sample, base_name):
        rewrite = Integrated()
        synopsis = rewrite.install(sample, base_name, catalog, replace=True)
        plan = rewrite.plan(
            query.query.with_from(base_name), synopsis
        )
        return plan.execute(catalog)

    # The maintained sample's base "table" is its own rows; it answers
    # queries against the synthetic name below.
    catalog.register("lineitem_m", maintained_sample.base_table, replace=True)
    approx_maintained = benchmark(
        lambda: answer(maintained_sample, "lineitem_m")
    )
    approx_rebuilt = answer(rebuilt_sample, "lineitem")

    keys = list(query.query.group_by)
    err_maintained = groupby_error(exact, approx_maintained, keys, "sum_qty")
    err_rebuilt = groupby_error(exact, approx_rebuilt, keys, "sum_qty")

    table = format_mapping_table(
        "sample",
        {
            "maintained(one-pass)": {"eps_l1": err_maintained.eps_l1,
                                     "eps_inf": err_maintained.eps_inf},
            "rebuilt(two-pass)": {"eps_l1": err_rebuilt.eps_l1,
                                  "eps_inf": err_rebuilt.eps_inf},
        },
        title="MAINT: maintained vs rebuilt Congress sample, Qg2 errors (%)",
    )
    save_result("maintenance_accuracy", table)

    assert not err_maintained.missing_groups
    # The maintained sample should be within ~3x of the rebuilt sample
    # (identical in expectation; both are noisy at this budget).
    assert err_maintained.eps_l1 < max(3 * err_rebuilt.eps_l1, 10.0)
