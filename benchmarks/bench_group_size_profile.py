"""Group-size error profile: the paper's Section 1.1 motivation, measured.

Buckets the finest groups of the skewed testbed by population and reports
mean Qg3 per-group error per bucket for each allocation scheme.  Asserts
the motivating claim: House's error explodes as groups shrink, while
Senate and Congress stay roughly flat.
"""

import math


from repro.experiments import run_group_size_profile


def test_group_size_profile(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: run_group_size_profile(num_groups=1000, group_skew=1.5),
        rounds=1,
        iterations=1,
    )
    save_result("group_size_profile", result.format())

    labels = list(result.errors)  # smallest bucket first
    smallest, largest = labels[0], labels[-1]

    house_small = result.errors[smallest]["house"]
    house_large = result.errors[largest]["house"]
    # House: errors blow up for small groups (>= 2x the large-group error).
    assert house_small > 2 * house_large

    # Congress: no small-group blow-up -- its error in the smallest bucket
    # is no worse than its large-bucket error plus noise, and its worst
    # bucket stays far below House's small-group disaster.
    congress_values = [
        result.errors[label]["congress"]
        for label in labels
        if not math.isnan(result.errors[label]["congress"])
    ]
    congress_small = result.errors[smallest]["congress"]
    congress_large = result.errors[largest]["congress"]
    assert congress_small < congress_large + 5.0
    assert max(congress_values) < house_small / 4

    # In the smallest bucket, every biased scheme beats House handily.
    for strategy in ("senate", "basic_congress", "congress"):
        assert result.errors[smallest][strategy] < house_small / 2
