"""Consolidated query-pipeline benchmark: stage latencies + accuracy.

Runs the paper's query classes (Q_g2, Q_g3, and a Q_g0 slice query) through
a fully-telemetered :class:`~repro.aqua.system.AquaSystem` and emits a
machine-readable ``benchmarks/results/BENCH_pipeline.json``: per-query
median stage latencies (from the span traces), end-to-end approximate and
exact times, speedups, the paper's per-aggregate error metrics, and the
guard's provenance counts.  The JSON is the bench trajectory downstream
tooling tracks; the ``.txt`` table stays human-readable.

Protocol: five runs per query, first discarded (the paper's timing
protocol), medians reported.
"""

import statistics

import numpy as np
import pytest

from repro import AquaSystem, Telemetry
from repro.experiments import default_table_size
from repro.synthetic import LineitemConfig, generate_lineitem, qg0_set, qg2, qg3
from repro.synthetic.tpcd import GROUPING_COLUMNS

SAMPLE_FRACTION = 0.05
REPEATS = 5

STAGES = ("parse", "validate", "rewrite", "execute", "error_bounds", "guard")


@pytest.fixture(scope="module")
def pipeline_results():
    table_size = default_table_size()
    config = LineitemConfig(table_size=table_size, num_groups=1000, seed=0)
    table = generate_lineitem(config)
    budget = int(round(SAMPLE_FRACTION * table.num_rows))
    aqua = AquaSystem(
        space_budget=budget,
        rng=np.random.default_rng(1),
        telemetry=Telemetry.enabled(),
    )
    aqua.register_table(
        "lineitem", table, grouping_columns=list(GROUPING_COLUMNS)
    )

    queries = [qg2(), qg3()]
    queries.append(
        qg0_set(table_size, num_queries=1, rng=np.random.default_rng(7))[0]
    )

    per_query = {}
    for query_class in queries:
        stage_runs = {stage: [] for stage in STAGES}
        totals = []
        provenance = {}
        for i in range(REPEATS):
            answer = aqua.answer(query_class.query)
            if i == 0:
                provenance = dict(answer.provenance_counts)
                continue  # paper protocol: discard the first run
            stage_seconds = answer.trace.stage_seconds()
            for stage in STAGES:
                stage_runs[stage].append(stage_seconds.get(stage, 0.0))
            totals.append(answer.trace.total_seconds)
        report = aqua.compare(query_class.query)
        per_query[query_class.name] = {
            "stage_seconds_median": {
                stage: statistics.median(runs)
                for stage, runs in stage_runs.items()
            },
            "total_seconds_median": statistics.median(totals),
            "exact_seconds": report.exact_elapsed_seconds,
            "speedup": report.speedup,
            "provenance": provenance,
            "accuracy": {
                alias: {
                    "mean_pct": error.eps_l1,
                    "worst_pct": error.eps_inf,
                    "coverage": error.coverage,
                }
                for alias, error in report.errors.items()
            },
        }
    return aqua, table_size, budget, per_query


def test_pipeline_bench_json(pipeline_results, save_json, save_result):
    aqua, table_size, budget, per_query = pipeline_results
    snapshot = aqua.metrics.snapshot()
    payload = {
        "schema_version": 1,
        "config": {
            "table_size": table_size,
            "budget": budget,
            "sample_fraction": SAMPLE_FRACTION,
            "repeats": REPEATS,
            "rewrite_strategy": "nested_integrated",
        },
        "queries": per_query,
        "metrics": {
            name: snapshot[name]
            for name in (
                "aqua_queries_total",
                "aqua_stage_seconds",
                "aqua_guard_groups_total",
            )
            if name in snapshot
        },
    }
    save_json("BENCH_pipeline", payload)

    lines = [
        f"{'query':<8s} {'approx ms':>10s} {'exact ms':>10s} "
        f"{'speedup':>8s} {'mean err':>9s}"
    ]
    for name, data in per_query.items():
        mean_err = statistics.mean(
            acc["mean_pct"] for acc in data["accuracy"].values()
        )
        lines.append(
            f"{name:<8s} {data['total_seconds_median'] * 1000:>10.2f} "
            f"{data['exact_seconds'] * 1000:>10.2f} "
            f"{data['speedup']:>7.1f}x {mean_err:>8.2f}%"
        )
    save_result("pipeline_telemetry", "\n".join(lines))

    # Sanity: the traced stages must account for the measured total.
    for name, data in per_query.items():
        total = data["total_seconds_median"]
        stage_sum = sum(data["stage_seconds_median"].values())
        assert stage_sum <= total * 1.05
        assert stage_sum >= total * 0.5, (name, stage_sum, total)
