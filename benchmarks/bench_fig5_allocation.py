"""Figure 5: the worked allocation example (golden numbers).

Benchmarks the allocation computation itself and regenerates the paper's
table of expected sample sizes; asserts the published values.
"""

import pytest

from repro.experiments import run_fig5


def test_fig5_allocation(benchmark, save_result):
    result = benchmark(run_fig5)
    save_result("fig5_allocation", result.format())

    congress = result.columns["congress"]
    assert congress[("a1", "b1")] == pytest.approx(23.5, abs=0.05)
    assert congress[("a1", "b2")] == pytest.approx(23.5, abs=0.05)
    assert congress[("a1", "b3")] == pytest.approx(17.6, abs=0.1)
    assert congress[("a2", "b3")] == pytest.approx(35.3, abs=0.05)

    basic = result.columns["basic"]
    assert basic[("a1", "b1")] == pytest.approx(27.3, abs=0.05)
    assert basic[("a1", "b3")] == pytest.approx(22.7, abs=0.05)
