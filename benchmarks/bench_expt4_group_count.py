"""Experiment 4 (Figure 18): rewrite execution time vs. number of groups.

SP = 7%, NG swept over orders of magnitude.  Paper shape: the Integrated
family is fastest and relatively flat in the group count; the Normalized
family pays for the join; Nested-integrated beats Integrated at low group
counts but loses ground as the per-group overhead grows toward the right
edge of the figure.
"""

import pytest

from repro.core import Congress
from repro.experiments import (
    Testbed,
    default_table_size,
    format_mapping_table,
    time_plan,
)
from repro.rewrite import ALL_STRATEGIES
from repro.synthetic import LineitemConfig, qg2

GROUP_COUNTS = (10, 100, 1000, 8000, 27000)


@pytest.fixture(scope="module")
def timings():
    table_size = default_table_size()
    query = qg2()
    seconds = {cls.name: {} for cls in ALL_STRATEGIES}
    for num_groups in GROUP_COUNTS:
        if num_groups > table_size // 4:
            continue
        config = LineitemConfig(
            table_size=table_size, num_groups=num_groups,
            group_skew=0.86, seed=0,
        )
        bed = Testbed.create(config, 0.07, strategies={"congress": Congress()})
        label = f"NG={num_groups}"
        for cls in ALL_STRATEGIES:
            rewrite = cls()
            synopsis = bed.install("congress", rewrite)
            plan = rewrite.plan(query.query, synopsis)
            seconds[cls.name][label] = time_plan(
                lambda: plan.execute(bed.catalog), repeats=5
            )
    return seconds


def test_fig18_group_count_sweep(benchmark, timings, save_result):
    seconds = timings
    labels = list(next(iter(seconds.values())))

    config = LineitemConfig(
        table_size=default_table_size(), num_groups=1000,
        group_skew=0.86, seed=0,
    )
    bed = Testbed.create(config, 0.07, strategies={"congress": Congress()})
    from repro.rewrite import Integrated

    rewrite = Integrated()
    synopsis = bed.install("congress", rewrite)
    plan = rewrite.plan(qg2().query, synopsis)
    benchmark(lambda: plan.execute(bed.catalog))

    table = format_mapping_table(
        "technique", seconds, precision=4,
        title="Expt 4 (Figure 18): Qg2 execution seconds vs group count, SP=7%",
    )
    save_result("expt4_group_count", table)

    # Integrated beats Normalized at every group count (the join penalty).
    for label in labels:
        assert seconds["integrated"][label] < seconds["normalized"][label], (
            f"{label}: {seconds}"
        )

    # Integrated's time is nearly flat across the sweep ("their times are
    # almost independent of the number of groups").
    integrated = [seconds["integrated"][label] for label in labels]
    assert max(integrated) < 5 * min(integrated)

    # Figure 18's right-edge effect: Nested-integrated's per-group overhead
    # grows with the group count, degrading it relative to Integrated.
    nested = [seconds["nested_integrated"][label] for label in labels]
    assert nested[-1] / integrated[-1] > nested[0] / integrated[0] * 0.9
    assert nested[-1] > nested[0]
