"""Construction throughput: the three one-pass paths of Section 6.

Times (a) two-pass construction (exact counts then stratified draw),
(b) one-pass streaming construction via the maintainers, and (c) the
Section 4.6 top-up construction, all building a Congress sample of the
same budget from the same table.
"""

import numpy as np
import pytest

from repro.core import Congress, build_sample
from repro.experiments import format_mapping_table
from repro.maintenance import (
    CountDataCube,
    construct_congress_topup,
    construct_from_cube,
    construct_one_pass,
)
from repro.synthetic import GROUPING_COLUMNS, LineitemConfig, generate_lineitem

BUDGET = 2000


@pytest.fixture(scope="module")
def table():
    return generate_lineitem(
        LineitemConfig(table_size=50_000, num_groups=125, group_skew=1.0, seed=3)
    )


def test_two_pass_build(benchmark, table):
    rng = np.random.default_rng(0)
    sample = benchmark(
        lambda: build_sample(
            Congress(), table, list(GROUPING_COLUMNS), BUDGET, rng=rng
        )
    )
    assert sample.total_sample_size == BUDGET


def test_from_cube_build(benchmark, table):
    rng = np.random.default_rng(0)
    cube = CountDataCube.from_table(table, GROUPING_COLUMNS)
    sample = benchmark(
        lambda: construct_from_cube(Congress(), cube, table, BUDGET, rng)
    )
    assert sample.total_sample_size == BUDGET


def test_streaming_one_pass_build(benchmark, table):
    rng = np.random.default_rng(0)

    def run():
        return construct_one_pass(
            "congress", table, table.schema, list(GROUPING_COLUMNS),
            BUDGET, rng,
        )

    sample = benchmark.pedantic(run, rounds=3, iterations=1)
    assert sample.total_sample_size <= BUDGET


def test_topup_build(benchmark, table, save_result):
    rng = np.random.default_rng(0)
    sample = benchmark.pedantic(
        lambda: construct_congress_topup(
            table, list(GROUPING_COLUMNS), BUDGET, rng
        ),
        rounds=3,
        iterations=1,
    )
    assert 0 < sample.total_sample_size <= BUDGET + len(sample.strata)
    save_result(
        "construction_sizes",
        format_mapping_table(
            "path",
            {
                "two_pass": {"size": BUDGET},
                "topup": {"size": sample.total_sample_size},
            },
            title="Construction paths: sample sizes at the same budget",
        ),
    )
