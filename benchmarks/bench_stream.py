"""Streaming benchmark: convergence speed and time-to-first-answer.

For each paper query class (Qg0, Qg2, Qg3) over the skewed ``lineitem``
table, measures:

* **chunks to 5% relative error** -- how much of the table the stream
  has to see before every group's half-width is within 5% of its
  estimate (the online-aggregation payoff: usually well under 100%);
* **time to first answer** vs **batch latency** -- the latency a client
  waits before it can show *something*, against the cost of the full
  ``exact()`` scan.

Emits ``benchmarks/results/BENCH_stream.json``.  Scale with
``REPRO_SCALE`` as for the other benches.
"""

import time

import numpy as np
import pytest

from repro.aqua import AquaSystem
from repro.experiments import default_table_size
from repro.synthetic import LineitemConfig, qg0, qg2, qg3
from repro.synthetic.tpcd import GROUPING_COLUMNS, generate_lineitem

SEED = 4242
TARGET_REL_ERROR = 0.05


@pytest.fixture(scope="module")
def system():
    table_size = default_table_size()
    table = generate_lineitem(
        LineitemConfig(table_size=table_size, num_groups=27, seed=SEED)
    )
    system = AquaSystem(
        space_budget=max(1000, table_size // 100),
        rng=np.random.default_rng(SEED + 1),
        telemetry=False,
    )
    system.register_table(
        "lineitem", table, grouping_columns=GROUPING_COLUMNS
    )
    return system


def _queries(table_size):
    # One representative Qg0 (7% selectivity window in the middle of the
    # key range), plus the two grouped classes.
    count = max(1, int(0.07 * table_size))
    start = (table_size - count) // 2
    return {
        "Qg0": qg0(start, count).sql,
        "Qg2": qg2().sql,
        "Qg3": qg3().sql,
    }


def _stream_profile(system, sql, chunk_rows):
    """One full stream pass; returns the convergence/latency profile."""
    system.answer_cache.invalidate()
    started = time.perf_counter()
    first_seconds = None
    chunks_to_target = None
    fraction_at_target = None
    emissions = 0
    for answer in system.sql_stream(
        sql, chunk_rows=chunk_rows, rng=np.random.default_rng(SEED + 3)
    ):
        emissions += 1
        if first_seconds is None:
            first_seconds = time.perf_counter() - started
        rel = answer.max_rel_halfwidth
        if (
            chunks_to_target is None
            and rel == rel
            and rel <= TARGET_REL_ERROR
        ):
            chunks_to_target = answer.chunk_index + 1
            fraction_at_target = answer.fraction
    total_seconds = time.perf_counter() - started
    return {
        "emissions": emissions,
        "time_to_first_answer_seconds": first_seconds,
        "stream_total_seconds": total_seconds,
        "chunks_to_5pct": chunks_to_target,
        "fraction_at_5pct": fraction_at_target,
    }


def test_stream_convergence_and_ttfa(system, save_json, save_result):
    table_size = default_table_size()
    chunk_rows = max(512, table_size // 32)
    rows = {}
    lines = [
        f"Streaming convergence (T={table_size}, chunk_rows={chunk_rows}, "
        f"target {TARGET_REL_ERROR:.0%} rel error)",
        f"{'query':6} {'chunks@5%':>10} {'data@5%':>9} "
        f"{'TTFA(s)':>9} {'batch(s)':>9} {'speedup':>8}",
    ]
    for name, sql in _queries(table_size).items():
        profile = _stream_profile(system, sql, chunk_rows)
        batch_started = time.perf_counter()
        system.exact(sql)
        batch_seconds = time.perf_counter() - batch_started
        profile["batch_exact_seconds"] = batch_seconds
        profile["ttfa_speedup_vs_batch"] = (
            batch_seconds / profile["time_to_first_answer_seconds"]
            if profile["time_to_first_answer_seconds"]
            else None
        )
        rows[name] = profile

        # The stream must answer early: the first emission beats (or is
        # comparable to) the batch scan, and the 5% target -- when the
        # bound family can certify it -- arrives before the full pass.
        assert profile["emissions"] >= 3
        fraction = profile["fraction_at_5pct"]
        chunks = profile["chunks_to_5pct"]
        lines.append(
            f"{name:6} "
            f"{chunks if chunks is not None else '-':>10} "
            f"{f'{fraction:.1%}' if fraction is not None else '-':>9} "
            f"{profile['time_to_first_answer_seconds']:>9.4f} "
            f"{batch_seconds:>9.4f} "
            f"{profile['ttfa_speedup_vs_batch']:>8.1f}"
        )
    save_json(
        "BENCH_stream",
        {
            "table_size": table_size,
            "chunk_rows": chunk_rows,
            "target_rel_error": TARGET_REL_ERROR,
            "queries": rows,
        },
    )
    save_result("stream_convergence", "\n".join(lines))
