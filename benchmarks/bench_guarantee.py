"""The congressional guarantee, quantified (Section 4 / DESIGN.md).

Not a paper figure, but the paper's central *claim* made measurable: for
each allocation strategy we compute the worst-case-predicate guarantee
ratio at every grouping (see ``repro.core.analysis``) on the skewed
lineitem testbed.  Congress must (a) hit its scale-down factor ``f`` at
every grouping, and (b) have the best overall worst ratio of the four.
"""

import pytest

from repro.core import (
    BasicCongress,
    Congress,
    House,
    Senate,
    allocate_from_table,
    guarantee_report,
)
from repro.experiments import format_mapping_table
from repro.synthetic import GROUPING_COLUMNS, LineitemConfig, generate_lineitem

BUDGET = 5000


@pytest.fixture(scope="module")
def table():
    return generate_lineitem(
        LineitemConfig(table_size=100_000, num_groups=216, group_skew=1.5, seed=8)
    )


def test_guarantee_ratios(benchmark, table, save_result):
    def run():
        out = {}
        for strategy in (House(), Senate(), BasicCongress(), Congress()):
            allocation = allocate_from_table(
                strategy, table, list(GROUPING_COLUMNS), BUDGET
            )
            report = guarantee_report(allocation)
            out[strategy.name] = (allocation, report)
        return out

    reports = benchmark(run)

    rows = {}
    for name, (allocation, report) in reports.items():
        row = {
            ",".join(g.grouping) or "(none)": g.worst_ratio
            for g in report.per_grouping
            if len(g.grouping) != 2  # keep the table narrow: 0, 1, 3 cols
        }
        row["overall"] = report.worst_ratio
        row["f"] = allocation.scale_down_factor
        rows[name] = row
    save_result(
        "guarantee_ratios",
        format_mapping_table(
            "strategy", rows, precision=3,
            title=(
                "Worst-case-predicate guarantee ratio per grouping "
                f"(z=1.5, X={BUDGET})"
            ),
        ),
    )

    congress_alloc, congress_report = reports["congress"]
    f = congress_alloc.scale_down_factor
    # (a) Congress achieves >= f at every grouping.
    for guarantee in congress_report.per_grouping:
        assert guarantee.worst_ratio >= f - 1e-6
    # (b) Congress has the best overall guarantee.
    overall = {name: r.worst_ratio for name, (__, r) in reports.items()}
    assert max(overall, key=overall.get) == "congress"
    # House's fine-grouping collapse and Senate's coarse-grouping collapse.
    house = {g.grouping: g.worst_ratio
             for g in reports["house"][1].per_grouping}
    senate = {g.grouping: g.worst_ratio
              for g in reports["senate"][1].per_grouping}
    assert house[tuple(GROUPING_COLUMNS)] < 0.2
    assert senate[()] < 0.5
