"""Section 4.6 analysis: the scale-down factor's range (1 down to 2^-|G|).

Regenerates the pathological-distribution sweep and asserts the paper's
closed-form bound at every configuration.
"""

import pytest

from repro.core import (
    pathological_factor_bound,
    scale_down_lower_bound,
)
from repro.experiments import run_scaledown


def test_scaledown_factor_sweep(benchmark, save_result):
    result = benchmark(run_scaledown)
    save_result("scaledown", result.format())

    for n, m, measured, bound, lower in result.rows:
        assert lower < measured < bound + 1e-9
        assert bound == pytest.approx(pathological_factor_bound(n, m))
        assert lower == pytest.approx(scale_down_lower_bound(n))

    # Uniform cross-product data needs no scaling at all.
    for factor in result.uniform_factors.values():
        assert factor == pytest.approx(1.0)

    # f approaches 2^-n as m grows (same n, larger m -> smaller gap).
    by_n = {}
    for n, m, measured, __, lower in result.rows:
        by_n.setdefault(n, []).append((m, measured - lower))
    for gaps in by_n.values():
        gaps.sort()
        deltas = [gap for __, gap in gaps]
        assert deltas == sorted(deltas, reverse=True)
