"""Audit overhead benchmark: serving cost of shadow accuracy audits.

Drives one :class:`~repro.serve.service.QueryService` with closed-loop
clients while a background :class:`~repro.obs.audit.AccuracyAuditor`
samples 0% (disabled), 5%, and 20% of served answers, recomputing each
sampled answer exactly off the serving threads.  Records, per sampling
fraction:

* p50 / p99 client-observed serving latency -- the audit runs on its own
  worker thread, so serving overhead should be bounded (the acceptance
  bar: 5% sampling costs <= 10% of p99 over auditing disabled);
* audited / skipped counts (queue overflow is a skip, never backpressure);
* violation-detection latency: with the serve-time tamper installed
  (estimates silently scaled past the promised bound), the wall time
  from the first tampered answer to the auditor's first recorded
  violation.

Emits ``benchmarks/results/BENCH_audit.json``.
"""

import threading
import time

import numpy as np

from repro.aqua import AquaSystem
from repro.engine import Column, ColumnType, Schema, Table
from repro.errors import OverloadError, RateLimitExceeded
from repro.obs.audit import AccuracyAuditor, AuditConfig
from repro.serve import QueryService, ServiceConfig
from repro.testing.faults import AnswerTamper

FRACTIONS = (0.0, 0.05, 0.20)
CLIENTS = 4
QUERIES_PER_CLIENT = 12
ROWS = 40_000

QUERIES = (
    "SELECT g, SUM(v) AS s FROM sales GROUP BY g",
    "SELECT g, AVG(v) AS a FROM sales GROUP BY g",
    "SELECT g, COUNT(*) AS c FROM sales GROUP BY g",
    "SELECT g, SUM(v) AS s, AVG(v) AS a FROM sales GROUP BY g",
)


def _system() -> AquaSystem:
    rng = np.random.default_rng(11)
    schema = Schema(
        [
            Column("g", ColumnType.STR, "grouping"),
            Column("v", ColumnType.FLOAT, "aggregate"),
        ]
    )
    system = AquaSystem(
        space_budget=2000,
        rng=np.random.default_rng(7),
        telemetry=True,
        cache=False,  # every query pays the pipeline, worst case for audit
    )
    system.register_table(
        "sales",
        Table(
            schema,
            {
                "g": rng.choice([f"g{i:02d}" for i in range(20)], size=ROWS),
                "v": rng.exponential(100.0, size=ROWS),
            },
        ),
    )
    return system


def _percentile(samples, q):
    if not samples:
        return 0.0
    return float(np.percentile(np.asarray(samples), q))


def _drive(service):
    latencies, lock = [], threading.Lock()

    def client(k):
        for i in range(QUERIES_PER_CLIENT):
            sql = QUERIES[(k + i) % len(QUERIES)]
            start = time.perf_counter()
            try:
                service.query(sql, tenant=f"client-{k}")
            except (OverloadError, RateLimitExceeded):
                continue
            elapsed = time.perf_counter() - start
            with lock:
                latencies.append(elapsed)

    threads = [
        threading.Thread(target=client, args=(k,)) for k in range(CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return latencies


def _measure(fraction):
    """One sweep point: serve the workload with audit sampling attached."""
    system = _system()
    auditor = None
    if fraction > 0.0:
        auditor = AccuracyAuditor(
            system,
            AuditConfig(sample_fraction=fraction, max_queue=256),
            rng=np.random.default_rng(23),
            background=True,
        )
        system.attach_auditor(auditor)
    service = QueryService(
        system, ServiceConfig(workers=2, queue_depth=8)
    )
    try:
        service.query(QUERIES[0])  # warm the synopsis path
        latencies = _drive(service)
    finally:
        service.close()
    stats = {"audited": 0, "skipped": {}}
    if auditor is not None:
        auditor.wait_idle(timeout=30.0)
        auditor.close()
        audit_stats = auditor.stats
        stats = {
            "audited": audit_stats.audited,
            "skipped": audit_stats.skipped,
        }
    return {
        "p50_seconds": _percentile(latencies, 50),
        "p99_seconds": _percentile(latencies, 99),
        "served": len(latencies),
        **stats,
    }


def _violation_detection_latency():
    """Wall seconds from first tampered serve to first audit verdict."""
    system = _system()
    auditor = AccuracyAuditor(
        system,
        AuditConfig(sample_fraction=1.0, max_queue=256),
        rng=np.random.default_rng(29),
        background=True,
    )
    system.attach_auditor(auditor)
    try:
        # 1.5x comfortably exceeds the ~20% relative halfwidths this
        # budget promises, so the audit verdict is deterministic.
        with AnswerTamper(system, scale=1.5):
            start = time.perf_counter()
            system.answer(QUERIES[0])
            detected = None
            deadline = start + 30.0
            while time.perf_counter() < deadline:
                if auditor.stats.violating_queries > 0:
                    detected = time.perf_counter() - start
                    break
                time.sleep(0.002)
    finally:
        auditor.close()
    return detected


def test_audit_overhead_sweep(save_result, save_json):
    sweep = {str(fraction): _measure(fraction) for fraction in FRACTIONS}
    detection = _violation_detection_latency()

    baseline = sweep["0.0"]
    five = sweep["0.05"]
    lines = [
        f"audit overhead sweep, {ROWS} rows, {CLIENTS} clients x "
        f"{QUERIES_PER_CLIENT} queries, background auditor",
        f"{'sampling':>9}  {'p50 ms':>8}  {'p99 ms':>8}  {'audited':>8}",
    ]
    for fraction in FRACTIONS:
        data = sweep[str(fraction)]
        lines.append(
            f"{fraction:>8.0%}  {data['p50_seconds'] * 1000:>8.1f}  "
            f"{data['p99_seconds'] * 1000:>8.1f}  {data['audited']:>8}"
        )
    if detection is not None:
        lines.append(
            f"violation detected {detection * 1000:.1f} ms after the "
            f"tampered answer was served"
        )
    save_result("BENCH_audit", "\n".join(lines))
    save_json(
        "BENCH_audit",
        {
            "rows": ROWS,
            "clients": CLIENTS,
            "queries_per_client": QUERIES_PER_CLIENT,
            "sweep": sweep,
            "violation_detection_seconds": detection,
        },
    )

    # Acceptance bar: 5% audit sampling costs <= 10% of serving p99 over
    # auditing disabled (absolute floor guards millisecond-scale noise).
    assert five["p99_seconds"] <= max(
        1.10 * baseline["p99_seconds"], baseline["p99_seconds"] + 0.005
    )
    # The tampered answer must actually be detected, and quickly.
    assert detection is not None and detection < 30.0
    # Audits happened at non-zero fractions.
    assert sweep["0.05"]["audited"] >= 0
    assert sweep["0.2"]["audited"] > 0
