"""Ablation: exact per-group sizes vs. Eq. 8 per-tuple probabilities.

Section 4.6 gives two definitions of a congressional sample: draw *exactly*
SampleSize(g) tuples per group, or select each tuple independently with the
Eq. 8 probability ("In practice, the difference between these approaches is
negligible").  We verify that claim: both variants' per-group sizes and
Q_g2 errors must be statistically indistinguishable.
"""

import numpy as np
import pytest

from repro.core import Congress, allocate_from_table
from repro.engine import Catalog, execute
from repro.experiments import format_mapping_table
from repro.maintenance import construct_one_pass
from repro.metrics import groupby_error
from repro.rewrite import Integrated
from repro.sampling import StratifiedSample
from repro.synthetic import LineitemConfig, generate_lineitem, qg2

BUDGET = 3000


@pytest.fixture(scope="module")
def table():
    return generate_lineitem(
        LineitemConfig(table_size=60_000, num_groups=125, group_skew=1.0, seed=6)
    )


def test_congress_variants(benchmark, table, save_result):
    grouping = ["l_returnflag", "l_linestatus", "l_shipdate"]
    catalog = Catalog()
    catalog.register("lineitem", table)
    query = qg2()
    exact = execute(query.query, catalog)
    rng = np.random.default_rng(2)

    allocation = allocate_from_table(Congress(), table, grouping, BUDGET)

    def build_exact_variant():
        return StratifiedSample.build(
            table, grouping, allocation.rounded(), rng=rng
        )

    exact_variant = benchmark(build_exact_variant)
    eq8_variant = construct_one_pass(
        "congress", table, table.schema, grouping, BUDGET, rng
    )
    from repro.maintenance import construct_congress_topup

    topup_variant = construct_congress_topup(table, grouping, BUDGET, rng)

    def error_of(sample, base_name, base_table):
        catalog.register(base_name, base_table, replace=True)
        rewrite = Integrated()
        synopsis = rewrite.install(sample, base_name, catalog, replace=True)
        approx = rewrite.plan(
            query.query.with_from(base_name), synopsis
        ).execute(catalog)
        return groupby_error(
            exact, approx, list(query.query.group_by), "sum_qty"
        )

    err_exact = error_of(exact_variant, "lineitem", table)
    err_eq8 = error_of(eq8_variant, "lineitem_p", eq8_variant.base_table)
    err_topup = error_of(topup_variant, "lineitem", table)

    rows = {
        "exact_sizes": {
            "sample_size": exact_variant.total_sample_size,
            "eps_l1": err_exact.eps_l1,
        },
        "eq8_probabilistic": {
            "sample_size": eq8_variant.total_sample_size,
            "eps_l1": err_eq8.eps_l1,
        },
        "topup_pseudocode": {
            "sample_size": topup_variant.total_sample_size,
            "eps_l1": err_topup.eps_l1,
        },
    }
    save_result(
        "ablation_congress_variants",
        format_mapping_table(
            "variant", rows,
            title="Ablation: Congress variants (Section 4.6), Qg2 error",
        ),
    )

    # "In practice, the difference between these approaches is negligible":
    # all three answer all groups with comparable error.
    assert not err_exact.missing_groups
    assert not err_eq8.missing_groups
    assert not err_topup.missing_groups
    assert err_eq8.eps_l1 < 3 * err_exact.eps_l1 + 3
    assert err_topup.eps_l1 < 3 * err_exact.eps_l1 + 3

    # Per-group sizes agree in shape (correlation over groups).
    keys = sorted(exact_variant.sample_sizes())
    a = np.array([exact_variant.sample_sizes()[k] for k in keys], dtype=float)
    b = np.array([eq8_variant.sample_sizes().get(k, 0) for k in keys], dtype=float)
    correlation = np.corrcoef(a, b)[0, 1]
    assert correlation > 0.8
