"""Partition-parallel aggregate scan benchmark: serial vs K workers.

Times a skewed group-by aggregate (the paper's Zipf-skewed data shape,
Section 7.1.1) over a ``REPRO_SCALE`` x 1M-row table executed serially and
through the :class:`~repro.engine.executor.ParallelExecutor` at several
worker counts, plus the answer-cache hit path.  Emits
``benchmarks/results/BENCH_parallel.json`` with median latencies and
speedups, and records ``cpu_count`` alongside -- thread-parallel speedup is
bounded by the physical cores of the host, so a 1-core container honestly
reports ~1.0x.

Protocol: five runs per configuration, first discarded, medians reported.
"""

import os
import statistics
import time

import numpy as np

from repro.aqua import AquaSystem
from repro.engine import (
    Catalog,
    Column,
    ColumnType,
    ParallelConfig,
    ParallelExecutor,
    Schema,
    Table,
    execute,
    parse_query,
)
from repro.experiments import default_table_size
from repro.synthetic.zipf import zipf_choice, zipf_sizes

REPEATS = 5
WORKER_COUNTS = (1, 2, 4, 8)
SQL = "select a, sum(v) s, avg(v) m, var(v) s2 from zipf group by a"


def _zipf_table(rows: int) -> Table:
    rng = np.random.default_rng(42)
    groups = 100
    sizes = zipf_sizes(rows, groups, z=1.0)
    a = np.repeat([f"g{i:03d}" for i in range(groups)], sizes)
    v = zipf_choice(np.linspace(1.0, 1000.0, 500), z=0.86, size=rows, rng=rng)
    schema = Schema(
        [
            Column("a", ColumnType.STR, "grouping"),
            Column("v", ColumnType.FLOAT, "aggregate"),
        ]
    )
    return Table(schema, {"a": a, "v": v})


def _median_seconds(fn) -> float:
    runs = []
    for i in range(REPEATS):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if i > 0:  # paper protocol: discard the warm-up run
            runs.append(elapsed)
    return statistics.median(runs)


def test_parallel_scan_speedup(save_result, save_json):
    rows = default_table_size()
    table = _zipf_table(rows)
    catalog = Catalog()
    catalog.register("zipf", table)
    query = parse_query(SQL)

    serial_median = _median_seconds(lambda: execute(query, catalog))

    per_workers = {}
    for workers in WORKER_COUNTS:
        executor = ParallelExecutor(
            ParallelConfig(max_workers=workers, min_partition_rows=10_000)
        )
        median = _median_seconds(
            lambda: execute(query, catalog, parallel=executor)
        )
        per_workers[workers] = {
            "median_seconds": median,
            "speedup_vs_serial": serial_median / median if median else 0.0,
            "partitions": executor.partition_count(rows),
        }

    # The answer cache: cost of a repeated identical query through the full
    # pipeline vs the first (uncached) answer.
    aqua = AquaSystem(
        space_budget=max(1000, rows // 100), rng=np.random.default_rng(7)
    )
    aqua.register_table("zipf", table)
    aqua_sql = "SELECT a, SUM(v) AS s FROM zipf GROUP BY a"
    start = time.perf_counter()
    aqua.answer(aqua_sql)
    miss_seconds = time.perf_counter() - start
    hit_seconds = _median_seconds(lambda: aqua.answer(aqua_sql))
    stats = aqua.answer_cache.stats

    lines = [
        f"parallel aggregate scan, {rows} Zipf rows "
        f"(host has {os.cpu_count()} cpu cores)",
        f"{'workers':>8}  {'median ms':>10}  {'speedup':>8}  {'parts':>6}",
        f"{'serial':>8}  {serial_median * 1000:>10.1f}  {'1.00x':>8}  "
        f"{'-':>6}",
    ]
    for workers, data in per_workers.items():
        lines.append(
            f"{workers:>8}  {data['median_seconds'] * 1000:>10.1f}  "
            f"{data['speedup_vs_serial']:>7.2f}x  {data['partitions']:>6}"
        )
    lines.append(
        f"answer cache: miss {miss_seconds * 1000:.1f} ms -> "
        f"hit {hit_seconds * 1000:.2f} ms "
        f"({miss_seconds / max(hit_seconds, 1e-9):.0f}x), "
        f"{stats.hits} hits / {stats.misses} misses"
    )
    save_result("BENCH_parallel", "\n".join(lines))
    save_json(
        "BENCH_parallel",
        {
            "rows": rows,
            "cpu_count": os.cpu_count(),
            "query": SQL,
            "serial_median_seconds": serial_median,
            "parallel": {
                str(workers): data for workers, data in per_workers.items()
            },
            "cache": {
                "miss_seconds": miss_seconds,
                "hit_median_seconds": hit_seconds,
                "hit_speedup": miss_seconds / max(hit_seconds, 1e-9),
            },
        },
    )

    fastest = min(
        data["median_seconds"] for data in per_workers.values()
    )
    # Thread scaling cannot beat the host's core count; on multi-core hosts
    # the 4-worker scan should win clearly, on 1-core hosts just not lose.
    if (os.cpu_count() or 1) >= 4:
        assert per_workers[4]["speedup_vs_serial"] >= 1.5, (
            "expected >= 1.5x with 4 workers on a multi-core host"
        )
    else:
        assert fastest <= serial_median * 1.35, (
            "parallel overhead should stay modest even on a 1-core host"
        )
    assert stats.hits >= REPEATS - 1
