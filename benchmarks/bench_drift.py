"""Distribution drift: maintained vs. stale vs. rebuilt synopses.

Section 6's motivation measured: after a mid-stream shift (a new group
bursts to 40% of inserts), the stale synopsis misses the group entirely
while the Eq. 8-maintained synopsis tracks a from-scratch rebuild.
"""


from repro.experiments import run_drift


def test_drift_maintained_tracks_rebuilt(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: run_drift(stream_size=60_000, budget=1500),
        rounds=1,
        iterations=1,
    )
    save_result("drift", result.format())

    stale = result.errors["stale"]
    maintained = result.errors["maintained"]
    rebuilt = result.errors["rebuilt"]

    # The stale synopsis cannot answer the new group at all.
    assert stale["missing_groups"] >= 1
    assert stale["eps_inf"] >= 100.0

    # The maintained synopsis covers everything and stays near the oracle.
    assert maintained["missing_groups"] == 0
    assert maintained["eps_l1"] < stale["eps_l1"] / 3
    assert maintained["eps_l1"] < 3 * rebuilt["eps_l1"] + 3
