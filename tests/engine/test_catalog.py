"""Unit tests for the table catalog."""

import pytest

from repro.engine import Catalog, CatalogError, ColumnType, Schema, Table


@pytest.fixture
def table():
    return Table.from_columns(Schema.of(("a", ColumnType.INT)), a=[1, 2])


class TestCatalog:
    def test_register_and_get(self, table):
        cat = Catalog()
        cat.register("t", table)
        assert cat.get("t") is table
        assert "t" in cat

    def test_double_register_rejected(self, table):
        cat = Catalog()
        cat.register("t", table)
        with pytest.raises(CatalogError, match="already registered"):
            cat.register("t", table)

    def test_replace_allowed_when_flagged(self, table):
        cat = Catalog()
        cat.register("t", table)
        other = Table.from_columns(Schema.of(("a", ColumnType.INT)), a=[9])
        cat.register("t", other, replace=True)
        assert cat.get("t") is other

    def test_get_unknown(self):
        with pytest.raises(CatalogError, match="unknown table"):
            Catalog().get("nope")

    def test_drop(self, table):
        cat = Catalog()
        cat.register("t", table)
        cat.drop("t")
        assert "t" not in cat

    def test_drop_unknown(self):
        with pytest.raises(CatalogError):
            Catalog().drop("nope")

    def test_names_sorted(self, table):
        cat = Catalog()
        cat.register("zz", table)
        cat.register("aa", table)
        assert cat.names() == ["aa", "zz"]
        assert sorted(iter(cat)) == ["aa", "zz"]
