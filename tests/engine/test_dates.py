"""Unit tests for date parsing and the date() SQL function."""

import datetime

import numpy as np
import pytest

from repro.engine import (
    Catalog,
    Column,
    ColumnType,
    Schema,
    Table,
    date_to_ordinal,
    execute,
    format_date,
    ordinal_to_date,
    parse_date,
    parse_query,
)


class TestParseDate:
    def test_iso(self):
        assert parse_date("1998-09-01") == datetime.date(1998, 9, 1)

    def test_oracle_two_digit_year(self):
        assert parse_date("01-SEP-98") == datetime.date(1998, 9, 1)

    def test_oracle_lowercase(self):
        assert parse_date("15-mar-05") == datetime.date(2005, 3, 15)

    def test_oracle_four_digit_year(self):
        assert parse_date("01-JAN-1970") == datetime.date(1970, 1, 1)

    def test_two_digit_year_window(self):
        assert parse_date("01-JAN-69").year == 2069
        assert parse_date("01-JAN-70").year == 1970

    def test_bad_month(self):
        with pytest.raises(ValueError, match="unknown month"):
            parse_date("01-XYZ-98")

    def test_unparseable(self):
        with pytest.raises(ValueError, match="cannot parse"):
            parse_date("September 1st 1998")


class TestOrdinals:
    def test_epoch_is_zero(self):
        assert date_to_ordinal("1970-01-01") == 0

    def test_round_trip(self):
        ordinal = date_to_ordinal("1998-09-01")
        assert ordinal_to_date(ordinal) == datetime.date(1998, 9, 1)
        assert format_date(ordinal) == "1998-09-01"

    def test_accepts_date_objects(self):
        assert date_to_ordinal(datetime.date(1970, 1, 2)) == 1


class TestDateFunctionInSql:
    @pytest.fixture
    def cat(self):
        schema = Schema(
            [Column("d", ColumnType.DATE), Column("v", ColumnType.FLOAT)]
        )
        days = [
            date_to_ordinal("1998-08-15"),
            date_to_ordinal("1998-09-01"),
            date_to_ordinal("1998-09-15"),
        ]
        table = Table(
            schema,
            {"d": np.array(days), "v": np.array([1.0, 2.0, 4.0])},
        )
        catalog = Catalog()
        catalog.register("t", table)
        return catalog

    def test_figure2_style_cutoff(self, cat):
        """The paper's Q1 predicate: l_shipdate <= '01-SEP-98'."""
        result = execute(
            parse_query(
                "select sum(v) s from t where d <= date('01-SEP-98')"
            ),
            cat,
        )
        assert result.column("s")[0] == 3.0

    def test_iso_literal(self, cat):
        result = execute(
            parse_query("select count(*) c from t where d = date('1998-09-15')"),
            cat,
        )
        assert result.column("c")[0] == 1.0

    def test_date_of_numeric_passthrough(self, cat):
        result = execute(
            parse_query("select count(*) c from t where date(d) = d"),
            cat,
        )
        assert result.column("c")[0] == 3.0
