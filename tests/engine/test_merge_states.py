"""Edge cases of mergeable aggregate states.

The invariants: merging must agree with a single serial pass; empty
partitions and groups absent from a partition contribute nothing (and in
particular never inject NaN/inf); single-row groups finalize to VAR 0.0,
never NaN; genuine NaN *data* propagates exactly as in the serial reducers.
"""

import numpy as np
import pytest

from repro.engine import (
    Aggregate,
    AggregateState,
    ColumnType,
    Schema,
    Table,
    col,
    finalize_state,
    group_by,
    grouped_reduce,
    merge_group_partials,
    merge_states,
    partial_group_by,
    partial_reduce,
)

FUNCS = ["count", "sum", "avg", "min", "max", "var"]


def _merge_chunks(func, chunks, num_groups):
    """Partial-reduce each (values, ids) chunk and merge over num_groups."""
    partials = [
        partial_reduce(func, np.asarray(values, dtype=np.float64),
                       np.asarray(ids, dtype=np.int64), num_groups)
        for values, ids in chunks
    ]
    identity = np.arange(num_groups)
    return merge_states(partials, [identity] * len(partials), num_groups)


class TestEmptyPartitions:
    @pytest.mark.parametrize("func", FUNCS)
    def test_empty_partition_is_identity(self, func):
        values = np.array([1.0, 5.0, 2.0, 8.0])
        ids = np.array([0, 0, 1, 1])
        serial = grouped_reduce(func, values, ids, 2)
        merged = _merge_chunks(
            func,
            [(values, ids), (np.empty(0), np.empty(0, dtype=np.int64))],
            2,
        )
        np.testing.assert_array_equal(finalize_state(merged), serial)

    @pytest.mark.parametrize("func", FUNCS)
    def test_all_partitions_empty(self, func):
        empty = (np.empty(0), np.empty(0, dtype=np.int64))
        out = finalize_state(_merge_chunks(func, [empty, empty], 2))
        serial = grouped_reduce(
            func, np.empty(0), np.empty(0, dtype=np.int64), 2
        )
        np.testing.assert_array_equal(out, serial)
        assert not np.isinf(out).any()

    @pytest.mark.parametrize("func", ["min", "max", "avg", "var"])
    def test_group_absent_from_one_partition(self, func):
        """A group missing from a partition must not poison the merge."""
        values = np.array([3.0, 7.0])
        ids = np.array([0, 1])
        serial = grouped_reduce(func, values, ids, 2)
        merged = _merge_chunks(
            func,
            [(values[:1], ids[:1]), (values[1:], ids[1:] * 0 + 1)],
            2,
        )
        np.testing.assert_array_equal(finalize_state(merged), serial)


class TestNaNData:
    @pytest.mark.parametrize("func", FUNCS)
    def test_all_nan_column_matches_serial(self, func):
        values = np.full(6, np.nan)
        ids = np.array([0, 0, 0, 1, 1, 1])
        serial = grouped_reduce(func, values, ids, 2)
        merged = finalize_state(
            _merge_chunks(func, [(values[:2], ids[:2]), (values[2:], ids[2:])], 2)
        )
        np.testing.assert_array_equal(merged, serial)
        # COUNT still counts NaN rows; nothing becomes infinite.
        if func == "count":
            np.testing.assert_array_equal(merged, [3.0, 3.0])
        assert not np.isinf(merged).any()

    @pytest.mark.parametrize("func", ["min", "max", "sum", "avg"])
    def test_nan_propagates_only_into_its_group(self, func):
        values = np.array([1.0, np.nan, 4.0, 6.0])
        ids = np.array([0, 0, 1, 1])
        serial = grouped_reduce(func, values, ids, 2)
        merged = finalize_state(
            _merge_chunks(
                func, [(values[:1], ids[:1]), (values[1:], ids[1:])], 2
            )
        )
        np.testing.assert_array_equal(merged, serial)
        assert np.isnan(merged[0]) and not np.isnan(merged[1])


class TestSingleRowGroups:
    def test_var_of_single_row_group_is_zero(self):
        values = np.array([5.0, 1.0, 2.0, 3.0])
        ids = np.array([0, 1, 1, 1])
        merged = finalize_state(
            _merge_chunks(
                "var", [(values[:2], ids[:2]), (values[2:], ids[2:])], 2
            )
        )
        assert merged[0] == 0.0
        assert np.isfinite(merged).all()

    def test_single_row_strata_split_across_partitions(self):
        """Every group has one row and every partition has one group."""
        values = np.array([2.0, 4.0, 8.0])
        chunks = [(values[i : i + 1], np.array([i])) for i in range(3)]
        for func in FUNCS:
            serial = grouped_reduce(func, values, np.arange(3), 3)
            merged = finalize_state(_merge_chunks(func, chunks, 3))
            np.testing.assert_array_equal(merged, serial)
            assert not np.isinf(merged).any()

    def test_avg_is_not_average_of_averages(self):
        """Skewed split: merged AVG must weight by count, not partitions."""
        chunk_a = (np.array([10.0] * 9), np.zeros(9, dtype=np.int64))
        chunk_b = (np.array([0.0]), np.zeros(1, dtype=np.int64))
        merged = finalize_state(_merge_chunks("avg", [chunk_a, chunk_b], 1))
        assert merged[0] == pytest.approx(9.0)  # not (10 + 0) / 2 = 5


class TestStateMerging:
    def test_merge_remaps_group_indices(self):
        """Partials over different key universes merge via index maps."""
        a = partial_reduce("sum", np.array([1.0, 2.0]), np.array([0, 1]), 2)
        b = partial_reduce("sum", np.array([10.0]), np.array([0]), 1)
        # a's groups map to merged slots (0, 2); b's group to slot 2.
        merged = merge_states(
            [a, b], [np.array([0, 2]), np.array([2])], 3
        )
        np.testing.assert_array_equal(finalize_state(merged), [1.0, 0.0, 12.0])

    def test_merge_rejects_mixed_functions(self):
        a = partial_reduce("sum", np.array([1.0]), np.array([0]), 1)
        b = partial_reduce("avg", np.array([1.0]), np.array([0]), 1)
        with pytest.raises(ValueError):
            merge_states([a, b], [np.array([0]), np.array([0])], 1)

    def test_merge_group_partials_sorted_key_union(self):
        schema = Schema.of(("g", ColumnType.STR), ("v", ColumnType.FLOAT))
        left = Table.from_columns(schema, g=["c", "a"], v=[1.0, 2.0])
        right = Table.from_columns(schema, g=["b", "a"], v=[3.0, 4.0])
        aggregates = [Aggregate("sum", col("v"), "s")]
        merged = merge_group_partials(
            [
                partial_group_by(left, ["g"], aggregates),
                partial_group_by(right, ["g"], aggregates),
            ]
        )
        assert merged.group_keys == [("a",), ("b",), ("c",)]
        out = finalize_state(merged.states["s"])
        np.testing.assert_array_equal(out, [6.0, 3.0, 1.0])

    def test_empty_partial_list_rejected(self):
        with pytest.raises(ValueError):
            merge_group_partials([])

    def test_state_num_groups(self):
        state = partial_reduce(
            "min", np.array([1.0, 2.0]), np.array([0, 1]), 2
        )
        assert isinstance(state, AggregateState)
        assert state.num_groups == 2


class TestGroupByEndToEnd:
    def test_group_by_equals_partial_then_finalize(self, skewed_table):
        """The serial group_by is literally the K=1 partial/merge path."""
        aggregates = [
            Aggregate("avg", col("q"), "m"),
            Aggregate("var", col("q"), "s2"),
        ]
        serial = group_by(skewed_table, ["a", "b"], aggregates)
        from repro.engine import finalize_group_by

        partial = partial_group_by(skewed_table, ["a", "b"], aggregates)
        rebuilt = finalize_group_by(
            merge_group_partials([partial]), skewed_table.schema, aggregates
        )
        for name in serial.schema.names:
            np.testing.assert_array_equal(
                serial.column(name), rebuilt.column(name)
            )
