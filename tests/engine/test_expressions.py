"""Unit tests for the scalar expression AST."""

import numpy as np
import pytest

from repro.engine import (
    BinaryOp,
    Col,
    ColumnType,
    Func,
    Lit,
    Schema,
    Table,
    UnaryOp,
    col,
    lit,
)


@pytest.fixture
def table():
    schema = Schema.of(("x", ColumnType.FLOAT), ("y", ColumnType.FLOAT))
    return Table.from_columns(schema, x=[1.0, 2.0, 3.0], y=[10.0, 20.0, 0.0])


class TestBasics:
    def test_col(self, table):
        assert Col("x").evaluate(table).tolist() == [1.0, 2.0, 3.0]

    def test_lit_broadcast(self, table):
        assert Lit(7).evaluate(table).tolist() == [7, 7, 7]

    def test_referenced_columns(self):
        expr = (col("a") + col("b")) * col("a")
        assert expr.referenced_columns() == ("a", "b")

    def test_lit_references_nothing(self):
        assert lit(1).referenced_columns() == ()


class TestArithmetic:
    def test_add(self, table):
        assert (col("x") + col("y")).evaluate(table).tolist() == [11.0, 22.0, 3.0]

    def test_sub(self, table):
        assert (col("y") - col("x")).evaluate(table).tolist() == [9.0, 18.0, -3.0]

    def test_mul_by_scalar(self, table):
        assert (col("x") * 100).evaluate(table).tolist() == [100.0, 200.0, 300.0]

    def test_rmul(self, table):
        assert (100 * col("x")).evaluate(table).tolist() == [100.0, 200.0, 300.0]

    def test_div(self, table):
        assert (col("y") / col("x")).evaluate(table).tolist() == [10.0, 10.0, 0.0]

    def test_div_by_zero_is_inf_not_error(self, table):
        result = (col("x") / col("y")).evaluate(table)
        assert result[2] == np.inf

    def test_neg(self, table):
        assert (-col("x")).evaluate(table).tolist() == [-1.0, -2.0, -3.0]

    def test_nested_precedence_via_composition(self, table):
        expr = col("x") * (col("y") + 1)
        assert expr.evaluate(table).tolist() == [11.0, 42.0, 3.0]

    def test_unsupported_binary_op_rejected(self):
        with pytest.raises(ValueError):
            BinaryOp("%", col("x"), col("y"))

    def test_unsupported_unary_op_rejected(self):
        with pytest.raises(ValueError):
            UnaryOp("+", col("x"))


class TestFunc:
    def test_abs(self, table):
        expr = Func("abs", col("x") - 2)
        assert expr.evaluate(table).tolist() == [1.0, 0.0, 1.0]

    def test_sqrt(self, table):
        expr = Func("sqrt", col("y"))
        np.testing.assert_allclose(
            expr.evaluate(table), [np.sqrt(10), np.sqrt(20), 0.0]
        )

    def test_unknown_func_rejected(self):
        with pytest.raises(ValueError, match="unsupported function"):
            Func("exp", col("x"))

    def test_func_referenced_columns(self):
        assert Func("abs", col("z")).referenced_columns() == ("z",)
