"""Unit tests for the immutable column-store table."""

import numpy as np
import pytest

from repro.engine import Column, ColumnType, Schema, SchemaError, Table, TableBuilder


@pytest.fixture
def schema():
    return Schema.of(
        ("name", ColumnType.STR), ("score", ColumnType.FLOAT), ("n", ColumnType.INT)
    )


@pytest.fixture
def table(schema):
    return Table.from_columns(
        schema, name=["a", "b", "c"], score=[1.0, 2.0, 3.0], n=[10, 20, 30]
    )


class TestConstruction:
    def test_from_rows(self, schema):
        t = Table.from_rows(schema, [("a", 1.0, 1), ("b", 2.0, 2)])
        assert t.num_rows == 2
        assert t.column("name").tolist() == ["a", "b"]

    def test_from_rows_empty(self, schema):
        t = Table.from_rows(schema, [])
        assert t.num_rows == 0
        assert t.column("score").dtype == np.float64

    def test_empty(self, schema):
        assert Table.empty(schema).num_rows == 0

    def test_ragged_columns_rejected(self, schema):
        with pytest.raises(SchemaError, match="ragged"):
            Table(
                schema,
                {
                    "name": np.array(["a"]),
                    "score": np.array([1.0, 2.0]),
                    "n": np.array([1]),
                },
            )

    def test_wrong_columns_rejected(self, schema):
        with pytest.raises(SchemaError):
            Table(schema, {"name": np.array(["a"])})

    def test_columns_are_read_only(self, table):
        with pytest.raises(ValueError):
            table.column("score")[0] = 99.0

    def test_type_coercion_on_build(self, schema):
        t = Table.from_columns(
            schema, name=["a"], score=[1], n=[2.0]  # int->float, float->int
        )
        assert t.column("score").dtype == np.float64
        assert t.column("n").dtype == np.int64


class TestAccessors:
    def test_row_and_iter(self, table):
        assert table.row(1) == ("b", 2.0, 20)
        assert list(table.iter_rows())[2] == ("c", 3.0, 30)

    def test_to_dicts(self, table):
        dicts = table.to_dicts()
        assert dicts[0]["name"] == "a"
        assert dicts[0]["n"] == 10

    def test_equality(self, table, schema):
        same = Table.from_columns(
            schema, name=["a", "b", "c"], score=[1.0, 2.0, 3.0], n=[10, 20, 30]
        )
        different = Table.from_columns(
            schema, name=["a", "b", "c"], score=[1.0, 2.0, 3.5], n=[10, 20, 30]
        )
        assert table == same
        assert table != different


class TestKernels:
    def test_take(self, table):
        taken = table.take(np.array([2, 0]))
        assert taken.column("name").tolist() == ["c", "a"]

    def test_filter(self, table):
        filtered = table.filter(table.column("n") > 15)
        assert filtered.column("name").tolist() == ["b", "c"]

    def test_filter_wrong_length(self, table):
        with pytest.raises(ValueError):
            table.filter(np.array([True]))

    def test_head(self, table):
        assert table.head(2).num_rows == 2
        assert table.head(10).num_rows == 3

    def test_project(self, table):
        projected = table.project(["n", "name"])
        assert projected.schema.names == ["n", "name"]

    def test_rename(self, table):
        renamed = table.rename({"n": "count"})
        assert renamed.column("count").tolist() == [10, 20, 30]
        assert "n" not in renamed.schema

    def test_with_column(self, table):
        extended = table.with_column(
            Column("double", ColumnType.FLOAT), table.column("score") * 2
        )
        assert extended.column("double").tolist() == [2.0, 4.0, 6.0]
        assert table.schema.names == ["name", "score", "n"]  # unchanged

    def test_with_column_wrong_length(self, table):
        with pytest.raises(ValueError):
            table.with_column(Column("x", ColumnType.INT), np.array([1]))

    def test_concat(self, table, schema):
        other = Table.from_columns(schema, name=["d"], score=[4.0], n=[40])
        combined = table.concat(other)
        assert combined.num_rows == 4
        assert combined.column("name").tolist() == ["a", "b", "c", "d"]

    def test_concat_schema_mismatch(self, table):
        other_schema = Schema.of(("x", ColumnType.INT))
        other = Table.from_columns(other_schema, x=[1])
        with pytest.raises(SchemaError):
            table.concat(other)

    def test_sort_by(self, schema):
        t = Table.from_columns(
            schema, name=["b", "a", "b"], score=[2.0, 1.0, 0.5], n=[1, 2, 3]
        )
        sorted_t = t.sort_by(["name", "score"])
        assert sorted_t.column("name").tolist() == ["a", "b", "b"]
        assert sorted_t.column("score").tolist() == [1.0, 0.5, 2.0]


class TestBuilder:
    def test_append_and_build(self, schema):
        builder = TableBuilder(schema)
        builder.append(("a", 1.0, 1))
        builder.extend([("b", 2.0, 2)])
        assert len(builder) == 2
        built = builder.build()
        assert built.num_rows == 2
        assert built.column("n").tolist() == [1, 2]

    def test_wrong_arity_rejected(self, schema):
        builder = TableBuilder(schema)
        with pytest.raises(SchemaError, match="arity"):
            builder.append(("a", 1.0))
