"""Unit tests for HAVING support (engine and rewrite path)."""

import numpy as np
import pytest

from repro.core import Congress, build_sample
from repro.engine import (
    Catalog,
    ColumnType,
    Schema,
    SqlError,
    Table,
    execute,
    parse_query,
)
from repro.rewrite import ALL_STRATEGIES


@pytest.fixture
def cat():
    schema = Schema.of(
        ("g", ColumnType.STR), ("v", ColumnType.FLOAT)
    )
    table = Table.from_columns(
        schema, g=["a", "a", "b", "c"], v=[1.0, 2.0, 10.0, 0.5]
    )
    catalog = Catalog()
    catalog.register("t", table)
    return catalog


class TestEngineHaving:
    def test_filters_on_aggregate_alias(self, cat):
        result = execute(
            parse_query("select g, sum(v) s from t group by g having s > 2"),
            cat,
        )
        assert set(result.column("g").tolist()) == {"a", "b"}

    def test_filters_on_key_column(self, cat):
        result = execute(
            parse_query(
                "select g, count(*) c from t group by g having g = 'b'"
            ),
            cat,
        )
        assert result.column("g").tolist() == ["b"]

    def test_having_with_where(self, cat):
        result = execute(
            parse_query(
                "select g, sum(v) s from t where v < 5 group by g having s >= 3"
            ),
            cat,
        )
        assert result.column("g").tolist() == ["a"]

    def test_having_with_order_by(self, cat):
        result = execute(
            parse_query(
                "select g, sum(v) s from t group by g having s > 0 order by s"
            ),
            cat,
        )
        assert result.column("g").tolist() == ["c", "a", "b"]

    def test_having_without_group_by_rejected(self, cat):
        with pytest.raises(SqlError):
            parse_query("select g from t having g = 'a'")

    def test_having_on_no_group_aggregate(self, cat):
        result = execute(
            parse_query("select sum(v) s from t having s > 100"), cat
        )
        assert result.num_rows == 0


class TestRewriteHaving:
    def test_having_applies_to_scaled_estimates(self, skewed_table, rng):
        """HAVING must see the scaled-up estimate, not the raw sample sum."""
        catalog = Catalog()
        catalog.register("rel", skewed_table)
        sample = build_sample(Congress(), skewed_table, ["a", "b"], 1000, rng=rng)

        exact = execute(
            parse_query("select a, sum(q) s from rel group by a"), catalog
        )
        threshold = float(np.median(exact.column("s")))
        sql = f"select a, sum(q) s from rel group by a having s > {threshold}"
        query = parse_query(sql)

        for cls in ALL_STRATEGIES:
            strategy = cls()
            synopsis = strategy.install(sample, "rel", catalog, replace=True)
            result = strategy.plan(query, synopsis).execute(catalog)
            # Every surviving estimate is above the threshold.
            assert (result.column("s") > threshold).all()
            # The raw sample sums are far below the threshold, so if HAVING
            # ran pre-scaling nothing would survive.
            assert result.num_rows >= 1
