"""Hypothesis property suite for the streaming layer (ISSUE 8 satellite).

Four invariants, over random tables / chunkings / seeds:

(a) the final streamed answer is **bit-identical** to the batch
    ``answer()``/``exact()`` result (the exact-landing contract);
(b) per-group support ``n`` is non-decreasing across chunks;
(c) normal / chebyshev / hoeffding half-widths are non-increasing in the
    rows seen for fixed per-row moments;
(d) any prefix of chunks merged equals ``partial_group_by`` over the
    concatenated prefix.

Bit-equality properties use small-integer values so every intermediate
float is exactly representable and merge order cannot introduce ULPs.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aqua import AquaSystem
from repro.engine import (
    Aggregate,
    ColumnType,
    Schema,
    Table,
    chunk_bounds,
    col,
    partial_group_by,
    stream_group_partials,
    stream_halfwidth,
)
from repro.engine.stream import expansion_variance

# -- strategies ---------------------------------------------------------------

#: Small-integer row values: exactly representable, sums/sums-of-squares
#: exactly representable, so chunk-merge order cannot change any bit.
row_values = st.integers(min_value=-50, max_value=50)

tables = st.builds(
    lambda gs, vs: Table(
        Schema.of(("g", ColumnType.STR), ("v", ColumnType.FLOAT)),
        {
            "g": np.array([f"g{i % 4}" for i in gs]),
            "v": np.array([float(v) for v in vs[: len(gs)]]),
        },
    ),
    st.lists(st.integers(min_value=0, max_value=3), min_size=2, max_size=60),
    st.lists(row_values, min_size=60, max_size=60),
)

chunk_sizes = st.integers(min_value=1, max_value=25)
seeds = st.integers(min_value=0, max_value=2**32 - 1)

AGGREGATES = [
    Aggregate("sum", col("v"), "s"),
    Aggregate("count", col("v"), "c"),
    Aggregate("min", col("v"), "lo"),
    Aggregate("max", col("v"), "hi"),
]


def _states_equal(left, right) -> bool:
    if left.func != right.func:
        return False
    for field in ("count", "total", "total_sq", "low", "high"):
        a, b = getattr(left, field), getattr(right, field)
        if a is None or b is None:
            if a is not b:
                return False
            continue
        if not np.array_equal(a, b):
            return False
    return True


class TestChunkBounds:
    @given(num_rows=st.integers(min_value=0, max_value=500), size=chunk_sizes)
    @settings(max_examples=200, deadline=None)
    def test_partition_covers_every_row_once(self, num_rows, size):
        bounds = chunk_bounds(num_rows, size)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == max(num_rows, 0)
        for (_, stop), (start, _) in zip(bounds, bounds[1:]):
            assert stop == start
        if num_rows > 0:
            assert all(stop > start for start, stop in bounds)


class TestPrefixMergeEqualsBatch:
    """(d): merged prefix partial == partial_group_by over the prefix."""

    @given(table=tables, size=chunk_sizes, seed=seeds)
    @settings(max_examples=60, deadline=None)
    def test_every_prefix_is_exact(self, table, size, seed):
        rng = np.random.default_rng(seed)
        perm = np.random.default_rng(seed).permutation(table.num_rows)
        for chunk in stream_group_partials(
            table, ["g"], AGGREGATES, size, rng=rng
        ):
            prefix = table.take(perm[: chunk.rows_seen])
            expected = partial_group_by(prefix, ["g"], AGGREGATES)
            assert chunk.partial.group_keys == expected.group_keys
            for alias in expected.states:
                assert _states_equal(
                    chunk.partial.states[alias], expected.states[alias]
                )

    @given(table=tables, size=chunk_sizes, seed=seeds)
    @settings(max_examples=60, deadline=None)
    def test_support_non_decreasing(self, table, size, seed):
        """(b): per-group n never shrinks as chunks accumulate."""
        seen = {}
        rng = np.random.default_rng(seed)
        last_rows = 0
        for chunk in stream_group_partials(
            table, ["g"], AGGREGATES, size, rng=rng
        ):
            assert chunk.rows_seen >= last_rows
            last_rows = chunk.rows_seen
            counts = chunk.partial.states["c"].count
            for i, key in enumerate(chunk.partial.group_keys):
                n = int(counts[i])
                assert n >= seen.get(key, 0)
                seen[key] = n


class TestHalfwidthMonotonicity:
    """(c): all three bound families tighten as rows accumulate."""

    @given(
        mean=st.floats(min_value=-100, max_value=100),
        spread=st.floats(min_value=0.0, max_value=100, allow_subnormal=False),
        rows_total=st.integers(min_value=10, max_value=100_000),
        confidence=st.floats(min_value=0.5, max_value=0.999),
    )
    @settings(max_examples=200, deadline=None)
    def test_se_families_non_increasing(
        self, mean, spread, rows_total, confidence
    ):
        """Fixed per-row moments: variance (hence SE bounds) shrinks in m.

        With per-row mean ``mean`` and per-row second moment
        ``q = mean^2 + spread``, the expansion variance has the closed form
        ``N^2 (1 - m/N) spread / (m - 1)`` -- exactly non-increasing in m.
        The monotonicity claim is asserted on that form (immune to the
        catastrophic cancellation of ``ss - s^2/m`` when spread ~ 0), and
        ``expansion_variance`` is pinned to it within a cancellation-sized
        tolerance.
        """
        n = rows_total
        q = mean * mean + spread  # E[y^2] >= E[y]^2 always
        widths = {"normal": [], "chebyshev": []}
        for m in range(2, n + 1, max(1, n // 23)):
            variance = n * n * (1.0 - m / n) * spread / (m - 1)
            computed = expansion_variance(
                np.array([m * mean]), np.array([m * q]), m, n
            )[0]
            # ss - s^2/m cancels to ~spread*m out of terms of size
            # ~m*mean^2; the surviving rounding noise scales with the
            # *cancelled* magnitude, not the result.
            cancellation = 1e-9 * (m * q + m * mean * mean)
            scale = n * n * (1.0 - m / n) / ((m - 1) * m)
            assert computed >= 0
            # The 1e-300 floor absorbs ulp noise when spread sits near the
            # bottom of the normal float range and every term underflows.
            assert math.isclose(
                computed,
                variance,
                rel_tol=1e-9,
                abs_tol=cancellation * scale + 1e-300,
            )
            for method in widths:
                widths[method].append(
                    stream_halfwidth(
                        method, math.sqrt(variance), confidence=confidence
                    )
                )
        for method, series in widths.items():
            for earlier, later in zip(series, series[1:]):
                assert later <= earlier * (1 + 1e-12), method

    @given(
        value_range=st.floats(min_value=0.0, max_value=1e6),
        rows_total=st.integers(min_value=10, max_value=100_000),
        confidence=st.floats(min_value=0.5, max_value=0.999),
    )
    @settings(max_examples=200, deadline=None)
    def test_hoeffding_non_increasing(
        self, value_range, rows_total, confidence
    ):
        previous = math.inf
        for m in range(1, rows_total + 1, max(1, rows_total // 23)):
            width = stream_halfwidth(
                "hoeffding",
                0.0,
                confidence=confidence,
                value_range=value_range,
                rows_seen=m,
                rows_total=rows_total,
            )
            assert width <= previous * (1 + 1e-12)
            previous = width

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError, match="unknown stream bound method"):
            stream_halfwidth("bayesian", 1.0)


class TestFinalAnswerBitIdentical:
    """(a): the terminal emission equals exact() bit for bit."""

    @given(table=tables, size=chunk_sizes, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_final_equals_exact(self, table, size, seed):
        system = AquaSystem(
            space_budget=30, rng=np.random.default_rng(0), telemetry=False
        )
        system.register_table("t", table, grouping_columns=("g",))
        sql = (
            "SELECT g, SUM(v) AS s, COUNT(*) AS c, AVG(v) AS a "
            "FROM t GROUP BY g ORDER BY g"
        )
        answers = list(
            system.sql_stream(
                sql, chunk_rows=size, rng=np.random.default_rng(seed)
            )
        )
        assert answers, "a stream always emits at least one answer"
        final = answers[-1]
        assert final.final
        assert final.provenance == "exact"
        assert final.fraction == 1.0
        exact = system.exact(sql)
        names = [n for n in final.result.schema.names if not n.endswith("_error")]
        assert final.result.project(names) == exact
        # Zero-width intervals on the exact landing.
        for name in final.result.schema.names:
            if name.endswith("_error"):
                assert np.all(final.result.column(name) == 0.0)
        # Intermediate emissions cover strictly less data, in order.
        fractions = [answer.fraction for answer in answers]
        assert fractions == sorted(fractions)
        assert all(not answer.final for answer in answers[:-1])
