"""Unit tests for CSV I/O and the LIMIT clause."""

import pytest

from repro.engine import (
    Catalog,
    ColumnType,
    Schema,
    SchemaError,
    SqlError,
    Table,
    execute,
    infer_schema,
    parse_query,
    read_csv,
    write_csv,
)


@pytest.fixture
def table():
    schema = Schema.of(
        ("name", ColumnType.STR), ("score", ColumnType.FLOAT), ("n", ColumnType.INT)
    )
    return Table.from_columns(
        schema, name=["a", "b", "c"], score=[1.5, 2.5, 3.5], n=[10, 20, 30]
    )


class TestCsvRoundTrip:
    def test_write_then_read(self, table, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(table, path)
        loaded = read_csv(path, schema=table.schema)
        assert loaded == table

    def test_inferred_schema_types(self, table, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(table, path)
        loaded = read_csv(path)
        assert loaded.schema.column("name").ctype is ColumnType.STR
        assert loaded.schema.column("score").ctype is ColumnType.FLOAT
        assert loaded.schema.column("n").ctype is ColumnType.INT

    def test_header_mismatch_rejected(self, table, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(table, path)
        wrong = Schema.of(("x", ColumnType.STR))
        with pytest.raises(SchemaError, match="header"):
            read_csv(path, schema=wrong)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError, match="empty"):
            read_csv(path)

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n1\n")
        with pytest.raises(SchemaError, match="arity"):
            read_csv(path)

    def test_custom_delimiter(self, table, tmp_path):
        path = tmp_path / "data.tsv"
        write_csv(table, path, delimiter="\t")
        loaded = read_csv(path, delimiter="\t")
        assert loaded.num_rows == 3


class TestInferSchema:
    def test_int_dominates(self):
        schema = infer_schema(["x"], [["1"], ["2"]])
        assert schema.column("x").ctype is ColumnType.INT

    def test_float_when_mixed(self):
        schema = infer_schema(["x"], [["1"], ["2.5"]])
        assert schema.column("x").ctype is ColumnType.FLOAT

    def test_str_fallback(self):
        schema = infer_schema(["x"], [["1"], ["abc"]])
        assert schema.column("x").ctype is ColumnType.STR

    def test_empty_values_ignored_for_typing(self):
        schema = infer_schema(["x"], [[""], ["3"]])
        assert schema.column("x").ctype is ColumnType.INT


class TestLimit:
    @pytest.fixture
    def cat(self, table):
        catalog = Catalog()
        catalog.register("t", table)
        return catalog

    def test_limit_caps_rows(self, cat):
        result = execute(parse_query("select name from t limit 2"), cat)
        assert result.num_rows == 2

    def test_limit_after_order_by(self, cat):
        result = execute(
            parse_query("select name, n from t order by n limit 1"), cat
        )
        assert result.column("name").tolist() == ["a"]

    def test_limit_zero(self, cat):
        result = execute(parse_query("select name from t limit 0"), cat)
        assert result.num_rows == 0

    def test_limit_larger_than_table(self, cat):
        result = execute(parse_query("select name from t limit 99"), cat)
        assert result.num_rows == 3

    def test_limit_with_group_by(self, cat):
        result = execute(
            parse_query(
                "select name, sum(n) s from t group by name order by name limit 2"
            ),
            cat,
        )
        assert result.num_rows == 2

    def test_non_integer_limit_rejected(self):
        with pytest.raises(SqlError):
            parse_query("select name from t limit 1.5")

    def test_limit_survives_rewrite(self, skewed_table, rng):
        from repro.core import Congress, build_sample
        from repro.rewrite import Integrated

        catalog = Catalog()
        catalog.register("rel", skewed_table)
        sample = build_sample(Congress(), skewed_table, ["a", "b"], 500, rng=rng)
        strategy = Integrated()
        synopsis = strategy.install(sample, "rel", catalog, replace=True)
        query = parse_query(
            "select a, sum(q) s from rel group by a order by a limit 2"
        )
        result = strategy.plan(query, synopsis).execute(catalog)
        assert result.num_rows == 2
        assert result.column("a").tolist() == ["a1", "a2"]
