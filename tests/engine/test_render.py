"""Tests for SQL rendering (round-trip + the Figure 2 explain view)."""

import numpy as np
import pytest

from repro.engine import Catalog, ColumnType, Schema, Table, execute, parse_query, render_query


@pytest.fixture(scope="module")
def cat():
    rng = np.random.default_rng(1)
    n = 300
    schema = Schema.of(
        ("g", ColumnType.STR), ("h", ColumnType.INT), ("v", ColumnType.FLOAT)
    )
    table = Table.from_columns(
        schema,
        g=rng.choice(["x", "y"], size=n),
        h=rng.integers(0, 4, size=n),
        v=rng.normal(5, 2, size=n),
    )
    catalog = Catalog()
    catalog.register("t", table)
    return catalog


ROUND_TRIP_QUERIES = [
    "select g, sum(v) as s from t group by g",
    "select g, h, count(*) as c, avg(v) as m from t group by g, h",
    "select sum(v * 2 + 1) as s from t where v > 0 and h != 2",
    "select g, min(v) lo, max(v) hi from t group by g having lo < hi",
    "select g, sum(v) s from t where g in ('x', 'y') group by g order by g",
    "select g, sum(v) s from t where v between 1 and 9 group by g limit 1",
    "select count(*) c from t where not g = 'x' or h = 3",
    (
        "select g, sum(sq) s from "
        "(select g, h, sum(v) sq from t group by g, h) group by g"
    ),
]


class TestRoundTrip:
    @pytest.mark.parametrize("sql", ROUND_TRIP_QUERIES)
    def test_render_reparse_same_answer(self, cat, sql):
        original = parse_query(sql)
        rendered = render_query(original)
        reparsed = parse_query(rendered)
        left = execute(original, cat)
        right = execute(reparsed, cat)
        assert left.schema.names == right.schema.names
        assert left.num_rows == right.num_rows
        for column in left.schema:
            if column.ctype.is_numeric:
                np.testing.assert_allclose(
                    left.column(column.name), right.column(column.name)
                )


class TestRenderedText:
    def test_count_star(self):
        query = parse_query("select count(*) as c from t")
        assert "count(*) AS c" in render_query(query)

    def test_string_literal_escaped(self):
        query = parse_query("select g from t where g = 'it''s'")
        rendered = render_query(query)
        assert "'it''s'" in rendered
        parse_query(rendered)  # still parseable

    def test_nested_query_indented(self):
        query = parse_query(
            "select g, sum(sq) s from "
            "(select g, sum(v) sq from t group by g) group by g"
        )
        rendered = render_query(query)
        assert "FROM (" in rendered
        assert rendered.count("SELECT") == 2

    def test_bare_column_not_aliased(self):
        query = parse_query("select g, sum(v) s from t group by g")
        rendered = render_query(query)
        assert "g AS g" not in rendered


class TestExplain:
    def test_integrated_explain_shape(self, skewed_table, rng):
        """The explain output matches the paper's Figure 8 shape."""
        from repro import AquaSystem, Integrated

        aqua = AquaSystem(
            space_budget=500, rewrite_strategy=Integrated(), rng=rng
        )
        aqua.register_table("rel", skewed_table)
        text = aqua.explain(
            "select a, sum(q) s from rel where id < 100 group by a"
        )
        assert "bs_rel" in text
        assert "(q * sf)" in text
        assert "WHERE id < 100" in text

    def test_nested_integrated_explain_has_subquery(self, skewed_table, rng):
        from repro import AquaSystem, NestedIntegrated

        aqua = AquaSystem(
            space_budget=500, rewrite_strategy=NestedIntegrated(), rng=rng
        )
        aqua.register_table("rel", skewed_table)
        text = aqua.explain("select a, sum(q) s from rel group by a")
        assert "FROM (" in text
        assert "GROUP BY a, sf" in text

    def test_normalized_explain_mentions_join(self, skewed_table, rng):
        from repro import AquaSystem, Normalized

        aqua = AquaSystem(
            space_budget=500, rewrite_strategy=Normalized(), rng=rng
        )
        aqua.register_table("rel", skewed_table)
        text = aqua.explain("select a, count(*) c from rel group by a")
        assert "join" in text
        assert "auxn_rel" in text
