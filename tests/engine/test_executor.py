"""Unit tests for query execution against the catalog."""

import pytest

from repro.engine import (
    Catalog,
    CatalogError,
    ColumnType,
    QueryError,
    Schema,
    Table,
    execute,
    execute_on_table,
    parse_query,
)


@pytest.fixture
def cat():
    schema = Schema.of(
        ("g", ColumnType.STR), ("n", ColumnType.INT), ("v", ColumnType.FLOAT)
    )
    table = Table.from_columns(
        schema,
        g=["a", "a", "b", "b", "b"],
        n=[1, 2, 3, 4, 5],
        v=[10.0, 20.0, 30.0, 40.0, 50.0],
    )
    catalog = Catalog()
    catalog.register("t", table)
    return catalog


class TestExecution:
    def test_aggregate_group_by(self, cat):
        result = execute(
            parse_query("select g, sum(v) s from t group by g order by g"), cat
        )
        assert result.to_dicts() == [
            {"g": "a", "s": 30.0},
            {"g": "b", "s": 120.0},
        ]

    def test_where_filters_before_aggregation(self, cat):
        result = execute(
            parse_query("select g, count(*) c from t where n >= 3 group by g"),
            cat,
        )
        assert {r["g"]: r["c"] for r in result.to_dicts()} == {"b": 3.0}

    def test_no_group_by_aggregate(self, cat):
        result = execute(parse_query("select avg(v) m from t"), cat)
        assert result.num_rows == 1
        assert result.column("m")[0] == 30.0

    def test_plain_projection(self, cat):
        result = execute(parse_query("select n, v from t where g = 'a'"), cat)
        assert result.column("n").tolist() == [1, 2]

    def test_projection_with_expression(self, cat):
        result = execute(parse_query("select v * 2 d from t where n = 1"), cat)
        assert result.column("d").tolist() == [20.0]
        assert result.schema.column("d").ctype is ColumnType.FLOAT

    def test_projection_type_inference_int(self, cat):
        result = execute(parse_query("select n + 1 m from t"), cat)
        assert result.schema.column("m").ctype is ColumnType.INT

    def test_key_alias_in_group_by(self, cat):
        result = execute(
            parse_query("select g as grp, count(*) c from t group by g"), cat
        )
        assert "grp" in result.schema

    def test_select_order_preserved(self, cat):
        result = execute(
            parse_query("select sum(v) s, g, count(*) c from t group by g"),
            cat,
        )
        assert result.schema.names == ["s", "g", "c"]

    def test_nested_subquery(self, cat):
        sql = (
            "select g, sum(sv) total from "
            "(select g, n, sum(v) sv from t group by g, n) "
            "group by g order by g"
        )
        result = execute(parse_query(sql), cat)
        assert {r["g"]: r["total"] for r in result.to_dicts()} == {
            "a": 30.0,
            "b": 120.0,
        }

    def test_order_by_multiple(self, cat):
        result = execute(
            parse_query("select g, n from t order by g, n"), cat
        )
        assert result.column("n").tolist() == [1, 2, 3, 4, 5]

    def test_unknown_table(self, cat):
        with pytest.raises(CatalogError):
            execute(parse_query("select a from missing"), cat)

    def test_execute_on_table(self, cat):
        table = cat.get("t")
        result = execute_on_table(
            parse_query("select sum(v) s from ignored"), table
        )
        assert result.column("s")[0] == 150.0

    def test_execute_on_table_rejects_nested(self, cat):
        query = parse_query(
            "select sum(s) z from (select g, sum(v) s from t group by g) "
        )
        with pytest.raises(QueryError):
            execute_on_table(query, cat.get("t"))

    def test_empty_result_group_by(self, cat):
        result = execute(
            parse_query("select g, sum(v) s from t where n > 100 group by g"),
            cat,
        )
        assert result.num_rows == 0

    def test_empty_result_no_group_by_returns_one_row(self, cat):
        # SQL semantics: aggregate without GROUP BY always returns one row.
        result = execute(
            parse_query("select count(*) c from t where n > 100"), cat
        )
        assert result.num_rows == 1
        assert result.column("c")[0] == 0.0
