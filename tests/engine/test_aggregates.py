"""Unit tests for grouped aggregate reduction."""

import numpy as np
import pytest

from repro.engine import Aggregate, AggregateFunction, grouped_reduce, lit
from repro.engine.expressions import col


class TestAggregateFunction:
    def test_known_functions(self):
        for name in ("count", "sum", "avg", "min", "max", "var"):
            assert AggregateFunction(name).name == name

    def test_case_insensitive(self):
        assert AggregateFunction("SUM") == "sum"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            AggregateFunction("median")


class TestAggregateSpec:
    def test_count_star(self):
        agg = Aggregate.count_star("c")
        assert agg.func == "count"
        assert agg.alias == "c"
        assert agg.expr == lit(1)

    def test_invalid_func_rejected(self):
        with pytest.raises(ValueError):
            Aggregate("mode", col("x"), "m")


class TestGroupedReduce:
    @pytest.fixture
    def data(self):
        values = np.array([1.0, 2.0, 3.0, 4.0, 10.0])
        group_ids = np.array([0, 0, 1, 1, 1])
        return values, group_ids

    def test_count(self, data):
        values, ids = data
        assert grouped_reduce("count", values, ids, 2).tolist() == [2.0, 3.0]

    def test_sum(self, data):
        values, ids = data
        assert grouped_reduce("sum", values, ids, 2).tolist() == [3.0, 17.0]

    def test_avg(self, data):
        values, ids = data
        np.testing.assert_allclose(
            grouped_reduce("avg", values, ids, 2), [1.5, 17.0 / 3]
        )

    def test_min(self, data):
        values, ids = data
        assert grouped_reduce("min", values, ids, 2).tolist() == [1.0, 3.0]

    def test_max(self, data):
        values, ids = data
        assert grouped_reduce("max", values, ids, 2).tolist() == [2.0, 10.0]

    def test_var_matches_numpy(self, data):
        values, ids = data
        expected = [np.var([1, 2], ddof=1), np.var([3, 4, 10], ddof=1)]
        np.testing.assert_allclose(
            grouped_reduce("var", values, ids, 2), expected
        )

    def test_var_of_singleton_is_zero(self):
        out = grouped_reduce("var", np.array([5.0]), np.array([0]), 1)
        assert out.tolist() == [0.0]

    def test_empty_group_conventions(self):
        # Group 1 has no rows.
        values = np.array([1.0])
        ids = np.array([0])
        assert grouped_reduce("count", values, ids, 2).tolist() == [1.0, 0.0]
        assert grouped_reduce("sum", values, ids, 2).tolist() == [1.0, 0.0]
        assert np.isnan(grouped_reduce("avg", values, ids, 2)[1])
        assert np.isnan(grouped_reduce("min", values, ids, 2)[1])
        assert np.isnan(grouped_reduce("max", values, ids, 2)[1])

    def test_zero_groups(self):
        out = grouped_reduce("sum", np.array([]), np.array([], dtype=int), 0)
        assert len(out) == 0

    def test_empty_input_min(self):
        out = grouped_reduce("min", np.array([]), np.array([], dtype=int), 2)
        assert np.isnan(out).all()

    def test_unsorted_group_ids_min_max(self):
        # Interleaved group ids exercise the sort-partition path.
        values = np.array([5.0, 1.0, 4.0, 2.0, 3.0])
        ids = np.array([1, 0, 1, 0, 1])
        assert grouped_reduce("min", values, ids, 2).tolist() == [1.0, 3.0]
        assert grouped_reduce("max", values, ids, 2).tolist() == [2.0, 5.0]

    def test_large_random_against_python(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=1000)
        ids = rng.integers(0, 7, size=1000)
        out = grouped_reduce("sum", values, ids, 7)
        for g in range(7):
            np.testing.assert_allclose(out[g], values[ids == g].sum())
