"""Unit tests for the hash join."""

import pytest

from repro.engine import ColumnType, Schema, SchemaError, Table, hash_join


@pytest.fixture
def left():
    schema = Schema.of(("k", ColumnType.INT), ("v", ColumnType.FLOAT))
    return Table.from_columns(schema, k=[1, 2, 2, 3], v=[1.0, 2.0, 2.5, 3.0])


@pytest.fixture
def right():
    schema = Schema.of(("k", ColumnType.INT), ("w", ColumnType.STR))
    return Table.from_columns(schema, k=[1, 2, 4], w=["one", "two", "four"])


class TestHashJoin:
    def test_inner_join_matching(self, left, right):
        joined = hash_join(left, right, ["k"], ["k"])
        assert joined.num_rows == 3  # k=3 has no match, k=2 matches twice
        rows = {(r["k"], r["v"], r["w"]) for r in joined.to_dicts()}
        assert rows == {(1, 1.0, "one"), (2, 2.0, "two"), (2, 2.5, "two")}

    def test_join_key_dropped_from_right(self, left, right):
        joined = hash_join(left, right, ["k"], ["k"])
        assert joined.schema.names == ["k", "v", "w"]

    def test_one_to_many_from_right(self, left):
        schema = Schema.of(("k", ColumnType.INT), ("tag", ColumnType.STR))
        right = Table.from_columns(schema, k=[2, 2], tag=["p", "q"])
        joined = hash_join(left, right, ["k"], ["k"])
        assert joined.num_rows == 4  # two left k=2 rows x two right rows

    def test_different_key_names(self, left):
        schema = Schema.of(("rk", ColumnType.INT), ("w", ColumnType.STR))
        right = Table.from_columns(schema, rk=[1], w=["one"])
        joined = hash_join(left, right, ["k"], ["rk"])
        assert joined.num_rows == 1
        assert "rk" not in joined.schema

    def test_name_collision_suffixed(self, left):
        schema = Schema.of(("k", ColumnType.INT), ("v", ColumnType.STR))
        right = Table.from_columns(schema, k=[1], v=["dup"])
        joined = hash_join(left, right, ["k"], ["k"])
        assert "v_r" in joined.schema
        assert joined.column("v_r").tolist() == ["dup"]

    def test_multi_key_join(self):
        schema_l = Schema.of(
            ("a", ColumnType.STR), ("b", ColumnType.INT), ("v", ColumnType.FLOAT)
        )
        schema_r = Schema.of(
            ("a", ColumnType.STR), ("b", ColumnType.INT), ("sf", ColumnType.FLOAT)
        )
        left = Table.from_columns(
            schema_l, a=["x", "x", "y"], b=[1, 2, 1], v=[1.0, 2.0, 3.0]
        )
        right = Table.from_columns(
            schema_r, a=["x", "y"], b=[1, 1], sf=[10.0, 20.0]
        )
        joined = hash_join(left, right, ["a", "b"], ["a", "b"])
        assert joined.num_rows == 2
        rows = {(r["a"], r["sf"]) for r in joined.to_dicts()}
        assert rows == {("x", 10.0), ("y", 20.0)}

    def test_empty_inputs(self, left):
        schema = Schema.of(("k", ColumnType.INT), ("w", ColumnType.STR))
        joined = hash_join(left, Table.empty(schema), ["k"], ["k"])
        assert joined.num_rows == 0
        assert joined.schema.names == ["k", "v", "w"]

    def test_mismatched_key_counts_rejected(self, left, right):
        with pytest.raises(SchemaError):
            hash_join(left, right, ["k"], [])

    def test_unknown_key_rejected(self, left, right):
        with pytest.raises(SchemaError):
            hash_join(left, right, ["missing"], ["k"])
