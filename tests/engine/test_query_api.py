"""Unit tests for the logical Query API (validation + transformations)."""

import pytest

from repro.engine import (
    Aggregate,
    Col,
    Projection,
    Query,
    QueryError,
    col,
)


def make(select, **kwargs):
    return Query(select=tuple(select), from_item="t", **kwargs)


class TestValidation:
    def test_empty_select_rejected(self):
        with pytest.raises(QueryError, match="empty"):
            make([])

    def test_duplicate_aliases_rejected(self):
        with pytest.raises(QueryError, match="duplicate"):
            make([
                Aggregate("sum", col("v"), "x"),
                Aggregate("count", col("v"), "x"),
            ])

    def test_non_column_projection_with_aggregates_rejected(self):
        with pytest.raises(QueryError, match="bare columns"):
            make(
                [Projection(col("a") + 1, "a1"), Aggregate("sum", col("v"), "s")],
                group_by=("a",),
            )

    def test_ungrouped_key_rejected(self):
        with pytest.raises(QueryError, match="not in"):
            make(
                [Projection(Col("a"), "a"), Aggregate("sum", col("v"), "s")],
                group_by=("b",),
            )

    def test_negative_limit_rejected(self):
        with pytest.raises(QueryError, match="LIMIT"):
            make([Projection(Col("a"), "a")], limit=-1)

    def test_plain_projection_query_valid(self):
        query = make([Projection(col("a") * 2, "double_a")])
        assert not query.has_aggregates()


class TestIntrospection:
    @pytest.fixture
    def query(self):
        return make(
            [
                Projection(Col("a"), "a"),
                Aggregate("sum", col("v"), "s"),
                Aggregate.count_star("c"),
            ],
            group_by=("a",),
        )

    def test_projections_and_aggregates_split(self, query):
        assert len(query.projections()) == 1
        assert [a.alias for a in query.aggregates()] == ["s", "c"]

    def test_output_aliases_in_order(self, query):
        assert query.output_aliases() == ["a", "s", "c"]

    def test_base_table_name_flat(self, query):
        assert query.base_table_name() == "t"

    def test_base_table_name_nested(self, query):
        outer = Query(
            select=(Aggregate("sum", Col("s"), "total"),),
            from_item=query,
        )
        assert outer.base_table_name() == "t"


class TestTransformations:
    @pytest.fixture
    def query(self):
        return make(
            [Projection(Col("a"), "a"), Aggregate("sum", col("v"), "s")],
            group_by=("a",),
        )

    def test_with_from(self, query):
        renamed = query.with_from("bs_t")
        assert renamed.from_item == "bs_t"
        assert query.from_item == "t"  # original untouched

    def test_with_select(self, query):
        new = query.with_select(
            (Projection(Col("a"), "a"), Aggregate("count", col("v"), "c"))
        )
        assert new.output_aliases() == ["a", "c"]

    def test_with_group_by_validates(self, query):
        with pytest.raises(QueryError):
            query.with_group_by(("zzz",))
