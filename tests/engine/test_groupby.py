"""Unit tests for the hash group-by executor."""

import pytest

from repro.engine import (
    Aggregate,
    ColumnType,
    Schema,
    Table,
    col,
    distinct,
    group_by,
    group_ids_for,
)


@pytest.fixture
def table():
    schema = Schema.of(
        ("a", ColumnType.STR), ("b", ColumnType.INT), ("v", ColumnType.FLOAT)
    )
    return Table.from_columns(
        schema,
        a=["x", "x", "y", "y", "x"],
        b=[1, 2, 1, 1, 1],
        v=[10.0, 20.0, 30.0, 40.0, 50.0],
    )


class TestGroupIds:
    def test_single_key(self, table):
        ids, keys, num = group_ids_for(table, ["a"])
        assert num == 2
        assert keys == [("x",), ("y",)]
        assert ids.tolist() == [0, 0, 1, 1, 0]

    def test_multi_key(self, table):
        ids, keys, num = group_ids_for(table, ["a", "b"])
        assert num == 3
        assert set(keys) == {("x", 1), ("x", 2), ("y", 1)}
        # Rows with equal key tuples share an id.
        assert ids[0] == ids[4]
        assert ids[2] == ids[3]

    def test_no_keys_single_group(self, table):
        ids, keys, num = group_ids_for(table, [])
        assert num == 1
        assert keys == [()]
        assert (ids == 0).all()

    def test_empty_table(self):
        schema = Schema.of(("a", ColumnType.STR))
        ids, keys, num = group_ids_for(Table.empty(schema), ["a"])
        assert num == 0
        assert len(ids) == 0


class TestGroupBy:
    def test_sum_per_group(self, table):
        result = group_by(table, ["a"], [Aggregate("sum", col("v"), "s")])
        by_key = {row["a"]: row["s"] for row in result.to_dicts()}
        assert by_key == {"x": 80.0, "y": 70.0}

    def test_multiple_aggregates(self, table):
        result = group_by(
            table,
            ["a"],
            [
                Aggregate("sum", col("v"), "s"),
                Aggregate.count_star("c"),
                Aggregate("max", col("v"), "m"),
            ],
        )
        row = [r for r in result.to_dicts() if r["a"] == "x"][0]
        assert (row["s"], row["c"], row["m"]) == (80.0, 3.0, 50.0)

    def test_expression_aggregate(self, table):
        result = group_by(
            table, ["a"], [Aggregate("sum", col("v") * col("b"), "s")]
        )
        by_key = {row["a"]: row["s"] for row in result.to_dicts()}
        assert by_key == {"x": 10.0 + 40.0 + 50.0, "y": 70.0}

    def test_no_keys_collapses_to_one_row(self, table):
        result = group_by(table, [], [Aggregate("sum", col("v"), "s")])
        assert result.num_rows == 1
        assert result.column("s")[0] == 150.0

    def test_key_types_preserved(self, table):
        result = group_by(table, ["b"], [Aggregate.count_star("c")])
        assert result.schema.column("b").ctype is ColumnType.INT

    def test_aggregate_outputs_are_float(self, table):
        result = group_by(table, ["a"], [Aggregate.count_star("c")])
        assert result.schema.column("c").ctype is ColumnType.FLOAT


class TestDistinct:
    def test_distinct_pairs(self, table):
        result = distinct(table, ["a", "b"])
        assert result.num_rows == 3
        assert set(result.iter_rows()) == {("x", 1), ("x", 2), ("y", 1)}
