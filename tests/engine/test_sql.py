"""Unit tests for the SQL tokenizer and parser."""

import pytest

from repro.engine import (
    Aggregate,
    Between,
    BinaryOp,
    Comparison,
    InList,
    Lit,
    Query,
    SqlError,
    parse_query,
)
from repro.engine.sql import tokenize


class TestTokenizer:
    def test_basic_tokens(self):
        kinds = [t.kind for t in tokenize("select a from t")]
        assert kinds == ["keyword", "ident", "keyword", "ident", "eof"]

    def test_numbers(self):
        tokens = tokenize("1 2.5 3e2 .5")
        assert [t.text for t in tokens[:-1]] == ["1", "2.5", "3e2", ".5"]

    def test_strings_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].kind == "string"

    def test_semicolons_ignored(self):
        assert tokenize("select;")[-2].text == "select"

    def test_bad_character(self):
        with pytest.raises(SqlError, match="unexpected character"):
            tokenize("select @")

    def test_keywords_case_insensitive(self):
        assert tokenize("SELECT")[0].text == "select"


class TestSelectList:
    def test_simple_columns(self):
        q = parse_query("select a, b from t")
        assert [p.alias for p in q.projections()] == ["a", "b"]

    def test_alias_with_as(self):
        q = parse_query("select a as x from t")
        assert q.select[0].alias == "x"

    def test_alias_without_as(self):
        q = parse_query("select a x from t")
        assert q.select[0].alias == "x"

    def test_aggregate_default_alias(self):
        q = parse_query("select sum(v) from t")
        agg = q.select[0]
        assert isinstance(agg, Aggregate)
        assert agg.alias == "sum"

    def test_count_star(self):
        q = parse_query("select count(*) as n from t")
        agg = q.select[0]
        assert agg.func == "count"
        assert agg.alias == "n"

    def test_star_only_for_count(self):
        with pytest.raises(SqlError):
            parse_query("select sum(*) from t")

    def test_expression_in_aggregate(self):
        q = parse_query("select sum(price * (1 - discount)) s from t")
        agg = q.select[0]
        assert isinstance(agg.expr, BinaryOp)

    def test_expression_projection_gets_synthetic_alias(self):
        q = parse_query("select v * 2 from t")
        assert q.select[0].alias == "expr_0"

    def test_duplicate_aliases_rejected(self):
        with pytest.raises(SqlError):
            parse_query("select a as x, b as x from t")


class TestWhere:
    def test_comparison(self):
        q = parse_query("select a from t where a = 'x'")
        assert isinstance(q.where, Comparison)
        assert q.where.right == Lit("x")

    def test_between(self):
        q = parse_query("select a from t where n between 1 and 10")
        assert isinstance(q.where, Between)

    def test_in_list(self):
        q = parse_query("select a from t where a in ('x', 'y')")
        assert isinstance(q.where, InList)
        assert q.where.values == ("x", "y")

    def test_and_or_precedence(self):
        q = parse_query(
            "select a from t where a = 1 or b = 2 and c = 3"
        )
        # AND binds tighter: a=1 OR (b=2 AND c=3).
        from repro.engine import And, Or

        assert isinstance(q.where, Or)
        assert isinstance(q.where.right, And)

    def test_parenthesized_predicate(self):
        from repro.engine import And, Or

        q = parse_query("select a from t where (a = 1 or b = 2) and c = 3")
        assert isinstance(q.where, And)
        assert isinstance(q.where.left, Or)

    def test_not(self):
        from repro.engine import Not

        q = parse_query("select a from t where not a = 1")
        assert isinstance(q.where, Not)

    def test_not_equal_variants(self):
        q1 = parse_query("select a from t where a != 1")
        q2 = parse_query("select a from t where a <> 1")
        assert q1.where.op == q2.where.op == "!="

    def test_arithmetic_in_predicate(self):
        q = parse_query("select a from t where x + 1 < y * 2")
        assert isinstance(q.where.left, BinaryOp)


class TestClauses:
    def test_group_by(self):
        q = parse_query("select a, sum(v) s from t group by a")
        assert q.group_by == ("a",)

    def test_group_by_multiple(self):
        q = parse_query("select a, b, count(*) c from t group by a, b")
        assert q.group_by == ("a", "b")

    def test_order_by(self):
        q = parse_query("select a, count(*) c from t group by a order by a")
        assert q.order_by == ("a",)

    def test_select_column_must_be_grouped(self):
        with pytest.raises(SqlError):
            parse_query("select a, b, sum(v) s from t group by a")

    def test_nested_subquery(self):
        q = parse_query(
            "select a, sum(sq) s from "
            "(select a, b, sum(v) as sq from t group by a, b) "
            "group by a"
        )
        assert isinstance(q.from_item, Query)
        assert q.from_item.from_item == "t"
        assert q.base_table_name() == "t"

    def test_subquery_alias_accepted(self):
        q = parse_query(
            "select a, sum(sq) s from "
            "(select a, sum(v) sq from t group by a) inner_q group by a"
        )
        assert isinstance(q.from_item, Query)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlError, match="trailing"):
            parse_query("select a from t extra")

    def test_trailing_semicolon_ok(self):
        parse_query("select a from t;")

    def test_missing_from_rejected(self):
        with pytest.raises(SqlError):
            parse_query("select a")


class TestPaperQueries:
    """The queries used throughout the paper must parse."""

    def test_figure2_original(self):
        q = parse_query(
            "select l_returnflag, l_linestatus, sum(l_quantity) "
            "from lineitem where l_shipdate <= 10470 "
            "group by l_returnflag, l_linestatus"
        )
        assert q.group_by == ("l_returnflag", "l_linestatus")

    def test_figure2_rewritten(self):
        q = parse_query(
            "select l_returnflag, l_linestatus, sum(l_quantity*100) e "
            "from bs_lineitem where l_shipdate <= 10470 "
            "group by l_returnflag, l_linestatus"
        )
        assert q.from_item == "bs_lineitem"

    def test_figure11_nested_integrated(self):
        q = parse_query(
            "select a, b, sum(sq*sf) s from "
            "(select a, b, sf, sum(q) as sq from samprel group by a, b, sf) "
            "group by a, b"
        )
        inner = q.from_item
        assert inner.group_by == ("a", "b", "sf")

    def test_qg0_shape(self):
        q = parse_query(
            "select sum(l_quantity) s from lineitem "
            "where l_id between 100 and 70100"
        )
        assert q.group_by == ()
        assert isinstance(q.where, Between)
