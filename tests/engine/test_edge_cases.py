"""Edge-case tests across the engine: empty inputs, unicode, degenerates."""

import numpy as np
import pytest

from repro.engine import (
    Aggregate,
    Catalog,
    Column,
    ColumnType,
    Schema,
    SchemaError,
    Table,
    col,
    execute,
    group_by,
    hash_join,
    parse_query,
)


class TestEmptyTables:
    @pytest.fixture
    def empty(self):
        return Table.empty(
            Schema.of(("g", ColumnType.STR), ("v", ColumnType.FLOAT))
        )

    def test_group_by_empty(self, empty):
        result = group_by(empty, ["g"], [Aggregate("sum", col("v"), "s")])
        assert result.num_rows == 0

    def test_filter_empty(self, empty):
        assert empty.filter(np.array([], dtype=bool)).num_rows == 0

    def test_sort_empty(self, empty):
        assert empty.sort_by(["g"]).num_rows == 0

    def test_join_empty_left(self, empty):
        right = Table.from_columns(
            Schema.of(("g", ColumnType.STR), ("w", ColumnType.INT)),
            g=["a"], w=[1],
        )
        assert hash_join(empty, right, ["g"], ["g"]).num_rows == 0

    def test_query_on_empty(self, empty):
        cat = Catalog()
        cat.register("t", empty)
        result = execute(
            parse_query("select g, sum(v) s from t group by g"), cat
        )
        assert result.num_rows == 0

    def test_concat_empty(self, empty):
        other = Table.from_columns(empty.schema, g=["a"], v=[1.0])
        assert empty.concat(other).num_rows == 1


class TestUnicodeAndStrings:
    def test_unicode_group_keys(self):
        schema = Schema.of(("g", ColumnType.STR), ("v", ColumnType.INT))
        table = Table.from_columns(
            schema, g=["北京", "北京", "tōkyō"], v=[1, 2, 3]
        )
        result = group_by(table, ["g"], [Aggregate("sum", col("v"), "s")])
        by_key = {row["g"]: row["s"] for row in result.to_dicts()}
        assert by_key["北京"] == 3.0
        assert by_key["tōkyō"] == 3.0

    def test_string_width_growth_on_concat(self):
        schema = Schema.of(("g", ColumnType.STR),)
        short = Table.from_columns(schema, g=["ab"])
        long = Table.from_columns(schema, g=["abcdefghij"])
        combined = short.concat(long)
        assert combined.column("g").tolist() == ["ab", "abcdefghij"]

    def test_quoted_string_in_predicate(self):
        schema = Schema.of(("g", ColumnType.STR),)
        table = Table.from_columns(schema, g=["it's", "plain"])
        cat = Catalog()
        cat.register("t", table)
        result = execute(
            parse_query("select g from t where g = 'it''s'"), cat
        )
        assert result.column("g").tolist() == ["it's"]


class TestDegenerateSchemas:
    def test_single_column_table(self):
        schema = Schema.of(("only", ColumnType.INT))
        table = Table.from_columns(schema, only=[3, 1, 2])
        assert table.sort_by(["only"]).column("only").tolist() == [1, 2, 3]

    def test_rename_collision_rejected(self):
        schema = Schema.of(("a", ColumnType.INT), ("b", ColumnType.INT))
        table = Table.from_columns(schema, a=[1], b=[2])
        with pytest.raises(SchemaError):
            table.rename({"a": "b"})

    def test_many_columns(self):
        columns = [Column(f"c{i}", ColumnType.INT) for i in range(50)]
        schema = Schema(columns)
        data = {f"c{i}": [i] for i in range(50)}
        table = Table.from_columns(schema, **data)
        assert table.row(0) == tuple(range(50))


class TestNumericEdges:
    def test_negative_and_zero_sums(self):
        schema = Schema.of(("g", ColumnType.STR), ("v", ColumnType.FLOAT))
        table = Table.from_columns(
            schema, g=["a", "a", "b"], v=[-5.0, 5.0, 0.0]
        )
        result = group_by(table, ["g"], [Aggregate("sum", col("v"), "s")])
        by_key = {row["g"]: row["s"] for row in result.to_dicts()}
        assert by_key["a"] == 0.0
        assert by_key["b"] == 0.0

    def test_large_values(self):
        schema = Schema.of(("v", ColumnType.FLOAT),)
        table = Table.from_columns(schema, v=[1e300, 1e300])
        result = group_by(table, [], [Aggregate("sum", col("v"), "s")])
        assert result.column("s")[0] == 2e300

    def test_int64_boundaries(self):
        schema = Schema.of(("v", ColumnType.INT),)
        big = 2**62
        table = Table.from_columns(schema, v=[big, -big])
        assert table.column("v").tolist() == [big, -big]

    def test_duplicate_rows_counted_separately(self):
        schema = Schema.of(("g", ColumnType.STR),)
        table = Table.from_columns(schema, g=["x"] * 5)
        result = group_by(table, ["g"], [Aggregate.count_star("c")])
        assert result.column("c")[0] == 5.0


class TestGroupingOnAggregateOutputs:
    def test_group_by_date_column(self):
        schema = Schema(
            [Column("d", ColumnType.DATE), Column("v", ColumnType.FLOAT)]
        )
        table = Table(
            schema,
            {"d": np.array([10, 10, 20]), "v": np.array([1.0, 2.0, 3.0])},
        )
        result = group_by(table, ["d"], [Aggregate("sum", col("v"), "s")])
        by_key = {row["d"]: row["s"] for row in result.to_dicts()}
        assert by_key[10] == 3.0
        assert by_key[20] == 3.0
