"""Property-based fuzzing of the SQL parser and executor.

Randomly generated queries over a fixed schema must (a) parse, (b) execute
without crashing, and (c) round-trip semantics: executing the parsed query
equals executing a manually constructed equivalent.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    Catalog,
    ColumnType,
    Schema,
    SqlError,
    Table,
    execute,
    parse_query,
)
from repro.engine.sql import tokenize


@pytest.fixture(scope="module")
def cat():
    rng = np.random.default_rng(0)
    n = 500
    schema = Schema.of(
        ("g", ColumnType.STR), ("h", ColumnType.INT), ("v", ColumnType.FLOAT)
    )
    table = Table.from_columns(
        schema,
        g=rng.choice(["x", "y", "z"], size=n),
        h=rng.integers(0, 5, size=n),
        v=rng.normal(10, 3, size=n),
    )
    catalog = Catalog()
    catalog.register("t", table)
    return catalog


aggregates = st.sampled_from(
    ["sum(v)", "count(*)", "avg(v)", "min(v)", "max(v)", "sum(v * 2)",
     "sum(v + h)"]
)
comparators = st.sampled_from(["<", "<=", "=", "!=", ">", ">="])
group_sets = st.sampled_from([[], ["g"], ["h"], ["g", "h"]])


@st.composite
def random_query(draw):
    group_by = draw(group_sets)
    num_aggs = draw(st.integers(min_value=1, max_value=3))
    select_parts = list(group_by)
    for i in range(num_aggs):
        select_parts.append(f"{draw(aggregates)} as agg{i}")
    sql = "select " + ", ".join(select_parts) + " from t"
    if draw(st.booleans()):
        op = draw(comparators)
        threshold = draw(st.integers(min_value=-5, max_value=20))
        sql += f" where v {op} {threshold}"
        if draw(st.booleans()):
            sql += f" and h != {draw(st.integers(min_value=0, max_value=5))}"
    if group_by:
        sql += " group by " + ", ".join(group_by)
        if draw(st.booleans()):
            sql += " having agg0 >= 0 or agg0 < 0"
        sql += " order by " + ", ".join(group_by)
    if draw(st.booleans()):
        sql += f" limit {draw(st.integers(min_value=0, max_value=10))}"
    return sql


class TestSqlFuzz:
    @given(sql=random_query())
    @settings(max_examples=150, deadline=None)
    def test_random_queries_execute(self, cat, sql):
        query = parse_query(sql)
        result = execute(query, cat)
        assert result.num_rows >= 0
        # Every select alias appears in the output.
        for alias in query.output_aliases():
            assert alias in result.schema

    @given(sql=random_query())
    @settings(max_examples=60, deadline=None)
    def test_tokenizer_total(self, sql):
        tokens = tokenize(sql)
        assert tokens[-1].kind == "eof"

    @given(text=st.text(max_size=60))
    @settings(max_examples=150, deadline=None)
    def test_arbitrary_text_never_crashes_unexpectedly(self, cat, text):
        """Garbage input must raise SqlError (or parse), never crash."""
        try:
            query = parse_query(text)
        except SqlError:
            return
        except RecursionError:
            pytest.fail("parser recursion blowup")
        # If garbage happened to parse, execution may still legitimately
        # fail on unknown tables/columns -- but only with typed errors.
        from repro.engine import CatalogError, SchemaError

        try:
            execute(query, cat)
        except (CatalogError, SchemaError, ValueError, KeyError):
            pass


class TestRenderRoundTripFuzz:
    @given(sql=random_query())
    @settings(max_examples=100, deadline=None)
    def test_render_reparse_equivalence(self, cat, sql):
        """render(parse(sql)) executes identically to sql."""
        from repro.engine import render_query

        original = parse_query(sql)
        reparsed = parse_query(render_query(original))
        left = execute(original, cat)
        right = execute(reparsed, cat)
        assert left.schema.names == right.schema.names
        assert left.num_rows == right.num_rows
        for column in left.schema:
            if column.ctype.is_numeric:
                np.testing.assert_allclose(
                    right.column(column.name),
                    left.column(column.name),
                    equal_nan=True,
                )
