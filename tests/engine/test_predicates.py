"""Unit tests for the predicate AST."""

import pytest

from repro.engine import (
    And,
    Between,
    ColumnType,
    Comparison,
    InList,
    Or,
    Schema,
    Table,
    TruePredicate,
    col,
)


@pytest.fixture
def table():
    schema = Schema.of(
        ("n", ColumnType.INT), ("tag", ColumnType.STR)
    )
    return Table.from_columns(
        schema, n=[1, 2, 3, 4, 5], tag=["a", "b", "a", "c", "b"]
    )


class TestComparison:
    @pytest.mark.parametrize(
        "op,expected",
        [
            ("=", [False, False, True, False, False]),
            ("!=", [True, True, False, True, True]),
            ("<", [True, True, False, False, False]),
            ("<=", [True, True, True, False, False]),
            (">", [False, False, False, True, True]),
            (">=", [False, False, True, True, True]),
        ],
    )
    def test_all_operators(self, table, op, expected):
        pred = Comparison.of(col("n"), op, 3)
        assert pred.evaluate(table).tolist() == expected

    def test_string_equality(self, table):
        pred = Comparison.of(col("tag"), "=", "a")
        assert pred.evaluate(table).tolist() == [True, False, True, False, False]

    def test_bad_operator_rejected(self):
        with pytest.raises(ValueError):
            Comparison.of(col("n"), "~", 1)

    def test_referenced_columns(self):
        pred = Comparison.of(col("n"), "<", col("m"))
        assert pred.referenced_columns() == ("n", "m")


class TestBetween:
    def test_inclusive_bounds(self, table):
        pred = Between.of(col("n"), 2, 4)
        assert pred.evaluate(table).tolist() == [False, True, True, True, False]


class TestInList:
    def test_membership(self, table):
        pred = InList.of(col("tag"), ["a", "c"])
        assert pred.evaluate(table).tolist() == [True, False, True, True, False]

    def test_empty_list_matches_nothing(self, table):
        pred = InList.of(col("n"), [])
        assert not pred.evaluate(table).any()


class TestCombinators:
    def test_and(self, table):
        pred = Comparison.of(col("n"), ">", 1) & Comparison.of(col("n"), "<", 4)
        assert pred.evaluate(table).tolist() == [False, True, True, False, False]

    def test_or(self, table):
        pred = Comparison.of(col("n"), "=", 1) | Comparison.of(col("n"), "=", 5)
        assert pred.evaluate(table).tolist() == [True, False, False, False, True]

    def test_not(self, table):
        pred = ~Comparison.of(col("tag"), "=", "a")
        assert pred.evaluate(table).tolist() == [False, True, False, True, True]

    def test_true_predicate(self, table):
        assert TruePredicate().evaluate(table).all()

    def test_combined_referenced_columns(self, table):
        pred = And(
            Comparison.of(col("n"), ">", 0),
            Or(Comparison.of(col("tag"), "=", "a"), Comparison.of(col("n"), "<", 2)),
        )
        assert pred.referenced_columns() == ("n", "tag")
