"""The parallel executor must be indistinguishable from the serial one."""

import numpy as np
import pytest

from repro.engine import (
    Catalog,
    ColumnType,
    ParallelConfig,
    ParallelExecutor,
    Schema,
    Table,
    execute,
    parse_query,
)
from repro.obs import Telemetry

QUERIES = [
    "select g, count(*) c from t group by g",
    "select g, sum(v) s from t group by g",
    "select g, avg(v) m from t group by g",
    "select g, min(v) lo, max(v) hi from t group by g",
    "select g, var(v) vv from t group by g",
    "select g, h, sum(v) s, avg(v) m from t group by g, h",
    "select g, sum(v) s from t where v > 0 group by g",
    "select g, count(*) c from t group by g having c > 50",
    "select g, sum(v) s from t group by g order by s limit 3",
    "select count(*) c, avg(v) m from t",
    "select sum(v) s from t where v > 1e9",  # empty after filter
]


def _catalog(rng, n=4000):
    schema = Schema.of(
        ("g", ColumnType.STR), ("h", ColumnType.INT), ("v", ColumnType.FLOAT)
    )
    table = Table.from_columns(
        schema,
        g=rng.choice(["a", "b", "c", "d", "e"], size=n, p=[0.5, 0.3, 0.1, 0.05, 0.05]),
        h=rng.integers(0, 4, size=n),
        v=rng.exponential(10.0, size=n) - 5.0,
    )
    catalog = Catalog()
    catalog.register("t", table)
    return catalog


def _assert_tables_match(left: Table, right: Table, rtol=1e-9):
    assert left.schema.names == right.schema.names
    assert left.num_rows == right.num_rows
    for name in left.schema.names:
        a, b = left.column(name), right.column(name)
        if np.asarray(a).dtype.kind == "f":
            np.testing.assert_allclose(a, b, rtol=rtol, equal_nan=True)
        else:
            assert np.array_equal(a, b)


class TestParallelMatchesSerial:
    @pytest.mark.parametrize("sql", QUERIES)
    @pytest.mark.parametrize("k", [1, 2, 3, 7])
    def test_range_partitions(self, rng, sql, k):
        catalog = _catalog(rng)
        executor = ParallelExecutor(
            ParallelConfig(max_workers=k, min_partition_rows=1)
        )
        serial = execute(parse_query(sql), catalog)
        parallel = execute(parse_query(sql), catalog, parallel=executor)
        _assert_tables_match(serial, parallel)

    @pytest.mark.parametrize("sql", QUERIES)
    def test_hash_partitions(self, rng, sql):
        catalog = _catalog(rng)
        executor = ParallelExecutor(
            ParallelConfig(
                max_workers=4, min_partition_rows=1, partition_mode="hash"
            )
        )
        serial = execute(parse_query(sql), catalog)
        parallel = execute(parse_query(sql), catalog, parallel=executor)
        _assert_tables_match(serial, parallel)

    def test_serial_backend_matches_threads(self, rng):
        catalog = _catalog(rng)
        sql = "select g, avg(v) m, var(v) s2 from t group by g"
        threads = ParallelExecutor(
            ParallelConfig(max_workers=4, min_partition_rows=1)
        )
        inline = ParallelExecutor(
            ParallelConfig(
                max_workers=4, min_partition_rows=1, backend="serial"
            )
        )
        _assert_tables_match(
            execute(parse_query(sql), catalog, parallel=threads),
            execute(parse_query(sql), catalog, parallel=inline),
            rtol=0,  # same partitioning, same merge order: bit-identical
        )

    def test_subquery_from_item(self, rng):
        catalog = _catalog(rng)
        sql = (
            "select g, sum(s) total from "
            "(select g, h, sum(v) s from t group by g, h) sub group by g"
        )
        executor = ParallelExecutor(
            ParallelConfig(max_workers=3, min_partition_rows=1)
        )
        _assert_tables_match(
            execute(parse_query(sql), catalog),
            execute(parse_query(sql), catalog, parallel=executor),
        )


class TestEligibility:
    def test_partition_count_respects_min_rows(self):
        executor = ParallelExecutor(
            ParallelConfig(max_workers=8, min_partition_rows=100)
        )
        assert executor.partition_count(0) == 1
        assert executor.partition_count(150) == 1
        assert executor.partition_count(250) == 2
        assert executor.partition_count(10_000) == 8

    def test_min_rows_zero_always_partitions(self):
        executor = ParallelExecutor(
            ParallelConfig(max_workers=4, min_partition_rows=0)
        )
        assert executor.partition_count(5) == 4

    def test_small_input_falls_back_serially(self, rng):
        telemetry = Telemetry.enabled()
        executor = ParallelExecutor(
            ParallelConfig(max_workers=4, min_partition_rows=1_000_000),
            telemetry,
        )
        catalog = _catalog(rng)
        execute(
            parse_query("select g, sum(v) s from t group by g"),
            catalog,
            parallel=executor,
        )
        text = telemetry.metrics.to_prometheus()
        assert (
            'engine_parallel_fallbacks_total{reason="small_input"} 1' in text
        )
        assert "engine_parallel_scans_total" not in text

    def test_projection_plan_falls_back_serially(self, rng):
        telemetry = Telemetry.enabled()
        executor = ParallelExecutor(
            ParallelConfig(max_workers=4, min_partition_rows=1), telemetry
        )
        catalog = _catalog(rng)
        execute(
            parse_query("select g, v from t where v > 0"),
            catalog,
            parallel=executor,
        )
        text = telemetry.metrics.to_prometheus()
        assert (
            'engine_parallel_fallbacks_total{reason="unsupported_plan"} 1'
            in text
        )

    def test_parallel_scan_metrics_and_spans(self, rng):
        telemetry = Telemetry.enabled()
        executor = ParallelExecutor(
            ParallelConfig(max_workers=4, min_partition_rows=1), telemetry
        )
        catalog = _catalog(rng)
        with telemetry.tracer.span("root") as root:
            execute(
                parse_query("select g, sum(v) s from t group by g"),
                catalog,
                parallel=executor,
            )
        scan = root.children[0]
        assert scan.name == "parallel_scan"
        assert scan.attributes["partitions"] == 4
        children = [c for c in scan.children if c.name == "partition_scan"]
        assert len(children) == 4
        assert sum(c.attributes["rows"] for c in children) == 4000
        text = telemetry.metrics.to_prometheus()
        assert 'engine_parallel_scans_total{backend="threads"} 1' in text
        assert "engine_partitions_scanned_total 4" in text


class TestParallelConfig:
    def test_from_env_opt_in(self):
        assert ParallelConfig.from_env({}) is None
        assert ParallelConfig.from_env({"REPRO_PARALLEL_WORKERS": ""}) is None
        assert (
            ParallelConfig.from_env({"REPRO_PARALLEL_WORKERS": "bogus"})
            is None
        )
        assert ParallelConfig.from_env({"REPRO_PARALLEL_WORKERS": "0"}) is None

    def test_from_env_full(self):
        config = ParallelConfig.from_env(
            {
                "REPRO_PARALLEL_WORKERS": "4",
                "REPRO_PARALLEL_MIN_ROWS": "123",
                "REPRO_PARALLEL_BACKEND": "serial",
            }
        )
        assert config.workers == 4
        assert config.min_partition_rows == 123
        assert config.backend == "serial"

    def test_env_default_forces_partitioning(self):
        config = ParallelConfig.from_env({"REPRO_PARALLEL_WORKERS": "2"})
        assert config.min_partition_rows == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelConfig(backend="processes")
        with pytest.raises(ValueError):
            ParallelConfig(partition_mode="radix")
        with pytest.raises(ValueError):
            ParallelConfig(max_workers=-1)

    def test_map_partitions_preserves_order(self, rng):
        catalog = _catalog(rng)
        table = catalog.get("t")
        executor = ParallelExecutor(
            ParallelConfig(max_workers=4, min_partition_rows=1)
        )
        firsts = executor.map_partitions(
            table, lambda part: part.row_offset
        )
        assert firsts == sorted(firsts)
