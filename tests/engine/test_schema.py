"""Unit tests for schema metadata and type coercion."""

import numpy as np
import pytest

from repro.engine import Column, ColumnType, Schema, SchemaError


class TestColumnType:
    def test_int_dtype(self):
        assert ColumnType.INT.numpy_dtype == np.dtype(np.int64)

    def test_float_dtype(self):
        assert ColumnType.FLOAT.numpy_dtype == np.dtype(np.float64)

    def test_date_is_stored_as_int(self):
        assert ColumnType.DATE.numpy_dtype == np.dtype(np.int64)

    def test_numeric_flags(self):
        assert ColumnType.INT.is_numeric
        assert ColumnType.FLOAT.is_numeric
        assert ColumnType.DATE.is_numeric
        assert not ColumnType.STR.is_numeric

    def test_coerce_int_from_list(self):
        arr = ColumnType.INT.coerce([1, 2, 3])
        assert arr.dtype == np.int64
        assert arr.tolist() == [1, 2, 3]

    def test_coerce_int_from_whole_floats(self):
        arr = ColumnType.INT.coerce([1.0, 2.0])
        assert arr.tolist() == [1, 2]

    def test_coerce_int_rejects_fractional_floats(self):
        with pytest.raises(SchemaError):
            ColumnType.INT.coerce([1.5])

    def test_coerce_float(self):
        arr = ColumnType.FLOAT.coerce([1, 2.5])
        assert arr.dtype == np.float64
        assert arr.tolist() == [1.0, 2.5]

    def test_coerce_str(self):
        arr = ColumnType.STR.coerce(["a", "bb"])
        assert arr.dtype.kind == "U"
        assert arr.tolist() == ["a", "bb"]

    def test_coerce_int_rejects_text(self):
        with pytest.raises(SchemaError):
            ColumnType.INT.coerce(["not a number"])


class TestColumn:
    def test_valid_roles(self):
        for role in ("key", "grouping", "aggregate", None):
            Column("c", ColumnType.INT, role)

    def test_invalid_role_rejected(self):
        with pytest.raises(SchemaError):
            Column("c", ColumnType.INT, "measure")

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("", ColumnType.INT)


class TestSchema:
    def test_names_order_preserved(self):
        schema = Schema.of(("b", ColumnType.INT), ("a", ColumnType.STR))
        assert schema.names == ["b", "a"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema.of(("a", ColumnType.INT), ("a", ColumnType.STR))

    def test_contains_and_position(self):
        schema = Schema.of(("a", ColumnType.INT), ("b", ColumnType.STR))
        assert "a" in schema
        assert "c" not in schema
        assert schema.position("b") == 1

    def test_unknown_column_raises(self):
        schema = Schema.of(("a", ColumnType.INT))
        with pytest.raises(SchemaError, match="unknown column"):
            schema.column("zzz")

    def test_role_queries(self):
        schema = Schema(
            [
                Column("g1", ColumnType.STR, "grouping"),
                Column("g2", ColumnType.INT, "grouping"),
                Column("m", ColumnType.FLOAT, "aggregate"),
                Column("k", ColumnType.INT, "key"),
            ]
        )
        assert schema.grouping_columns() == ["g1", "g2"]
        assert schema.aggregate_columns() == ["m"]

    def test_project_reorders(self):
        schema = Schema.of(("a", ColumnType.INT), ("b", ColumnType.STR))
        projected = schema.project(["b", "a"])
        assert projected.names == ["b", "a"]

    def test_project_unknown_raises(self):
        schema = Schema.of(("a", ColumnType.INT))
        with pytest.raises(SchemaError):
            schema.project(["missing"])

    def test_extend(self):
        schema = Schema.of(("a", ColumnType.INT))
        extended = schema.extend(Column("b", ColumnType.FLOAT))
        assert extended.names == ["a", "b"]
        assert schema.names == ["a"]  # original untouched

    def test_extend_duplicate_rejected(self):
        schema = Schema.of(("a", ColumnType.INT))
        with pytest.raises(SchemaError):
            schema.extend(Column("a", ColumnType.FLOAT))

    def test_rename(self):
        schema = Schema.of(("a", ColumnType.INT), ("b", ColumnType.STR))
        renamed = schema.rename({"a": "x"})
        assert renamed.names == ["x", "b"]

    def test_equality_and_hash(self):
        s1 = Schema.of(("a", ColumnType.INT))
        s2 = Schema.of(("a", ColumnType.INT))
        s3 = Schema.of(("a", ColumnType.FLOAT))
        assert s1 == s2
        assert hash(s1) == hash(s2)
        assert s1 != s3

    def test_iteration(self):
        schema = Schema.of(("a", ColumnType.INT), ("b", ColumnType.STR))
        assert [c.name for c in schema] == ["a", "b"]
        assert len(schema) == 2
