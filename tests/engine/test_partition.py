"""Unit tests for table partitioning (range and hash modes)."""

import numpy as np
import pytest

from repro.engine import ColumnType, Partitioner, Schema, Table


@pytest.fixture
def table(rng):
    schema = Schema.of(
        ("g", ColumnType.STR), ("h", ColumnType.INT), ("v", ColumnType.FLOAT)
    )
    n = 1000
    return Table.from_columns(
        schema,
        g=rng.choice(["a", "b", "c", "d"], size=n),
        h=rng.integers(0, 7, size=n),
        v=rng.normal(size=n),
    )


class TestRangePartitioner:
    def test_covers_all_rows_in_order(self, table):
        for k in (1, 2, 3, 7, 16):
            parts = Partitioner("range").split(table, k)
            assert len(parts) == k
            assert sum(p.num_rows for p in parts) == table.num_rows
            rebuilt = np.concatenate([p.table.column("v") for p in parts])
            assert np.array_equal(rebuilt, table.column("v"))

    def test_row_offsets_are_parent_indices(self, table):
        parts = Partitioner("range").split(table, 4)
        v = table.column("v")
        for part in parts:
            stop = part.row_offset + part.num_rows
            assert np.array_equal(
                part.table.column("v"), v[part.row_offset : stop]
            )
        assert parts[0].row_offset == 0
        assert [p.index for p in parts] == [0, 1, 2, 3]

    def test_partitions_are_views_not_copies(self, table):
        parts = Partitioner("range").split(table, 4)
        for part in parts:
            assert part.table.column("v").base is not None

    def test_even_split(self, table):
        parts = Partitioner("range").split(table, 3)
        sizes = [p.num_rows for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_more_partitions_than_rows(self):
        schema = Schema.of(("v", ColumnType.FLOAT))
        tiny = Table.from_columns(schema, v=[1.0, 2.0, 3.0])
        parts = Partitioner("range").split(tiny, 10)
        assert len(parts) == 3
        assert all(p.num_rows == 1 for p in parts)

    def test_empty_table_yields_single_empty_partition(self):
        schema = Schema.of(("v", ColumnType.FLOAT))
        empty = Table.from_columns(schema, v=[])
        parts = Partitioner("range").split(empty, 5)
        assert len(parts) == 1
        assert parts[0].num_rows == 0
        assert parts[0].row_offset == 0

    def test_invalid_k(self, table):
        with pytest.raises(ValueError):
            Partitioner("range").split(table, 0)


class TestHashPartitioner:
    def test_covers_all_rows(self, table):
        parts = Partitioner("hash", hash_columns=["g"]).split(table, 3)
        assert sum(p.num_rows for p in parts) == table.num_rows

    def test_groups_never_straddle_partitions(self, table):
        parts = Partitioner("hash", hash_columns=["g", "h"]).split(table, 4)
        seen = {}
        for part in parts:
            g = part.table.column("g")
            h = part.table.column("h")
            for key in {(g[i], int(h[i])) for i in range(part.num_rows)}:
                assert key not in seen, f"group {key} in two partitions"
                seen[key] = part.index
        assert len(seen) > 0

    def test_hash_partitions_have_no_offset(self, table):
        parts = Partitioner("hash", hash_columns=["g"]).split(table, 3)
        assert all(p.row_offset == -1 for p in parts)

    def test_empty_buckets_dropped(self):
        schema = Schema.of(("g", ColumnType.STR), ("v", ColumnType.FLOAT))
        two_groups = Table.from_columns(
            schema, g=["a", "a", "b"], v=[1.0, 2.0, 3.0]
        )
        parts = Partitioner("hash", hash_columns=["g"]).split(two_groups, 16)
        assert 1 <= len(parts) <= 2
        assert all(p.num_rows > 0 for p in parts)
        # Partition indices stay dense even when buckets are dropped.
        assert [p.index for p in parts] == list(range(len(parts)))

    def test_requires_hash_columns(self):
        with pytest.raises(ValueError):
            Partitioner("hash")

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            Partitioner("radix")


class TestTableSlice:
    def test_slice_matches_take(self, table):
        sliced = table.slice(100, 250)
        assert sliced.num_rows == 150
        assert np.array_equal(
            sliced.column("v"), table.column("v")[100:250]
        )

    def test_slice_is_zero_copy(self, table):
        sliced = table.slice(0, 10)
        assert np.shares_memory(sliced.column("v"), table.column("v"))
