"""End-to-end test of ``python -m repro.verify`` (statistical tier)."""

import json

import pytest

from repro.verify.cli import main

pytestmark = pytest.mark.statistical


def test_quick_cli_passes_and_writes_report(tmp_path, capsys):
    out = tmp_path / "CALIBRATION.json"
    code = main(
        ["--quick", "--output", str(out), "--no-metamorphic", "--no-control"]
    )
    captured = capsys.readouterr().out
    assert code == 0
    assert "PASS" in captured
    data = json.loads(out.read_text())
    assert data["passed"] is True
    assert data["negative_control"] is None


def test_mutually_exclusive_sizes(capsys):
    with pytest.raises(SystemExit):
        main(["--quick", "--full"])
    capsys.readouterr()
