"""The statistical acceptance suite: seeded calibration campaigns.

Everything here is marked ``statistical`` and excluded from the default
test tier (see ``pyproject.toml``); the CI ``statistical`` job and
``python -m repro.verify --quick`` run it on a fixed seed.
"""

import json

import pytest

from repro.obs import Telemetry
from repro.verify import (
    CalibrationConfig,
    CalibrationRunner,
    negative_control,
    run_verification,
)

pytestmark = pytest.mark.statistical


@pytest.fixture(scope="module")
def report():
    """One quick verification run shared by the module's assertions."""
    return run_verification(mode="quick", seed=2026)


class TestQuickCampaign:
    def test_acceptance_criterion(self, report):
        """Every allocation x rewrite pair's pooled 95% normal-bound
        coverage sits inside the Wilson tolerance band."""
        pairs = report.calibration.pairs
        grid = CalibrationConfig.quick()
        assert len(pairs) == len(grid.allocations) * len(grid.rewrites)
        for pair in pairs:
            assert pair.check.verdict == "ok", (
                f"{pair.allocation}×{pair.rewrite}: coverage "
                f"{pair.check.coverage:.4f} outside "
                f"[{pair.check.band_low:.4f}, {pair.check.band_high:.4f}]"
            )

    def test_no_defects_flagged(self, report):
        assert report.calibration.flags == []
        assert report.calibration.passed

    def test_rewrites_agree_with_direct_estimator(self, report):
        assert report.calibration.rewrite_mismatches == []

    def test_unbiasedness(self, report):
        for result in report.calibration.bias:
            assert not result.flagged_groups, (
                f"{result.allocation} {result.query}/{result.aggregate}: "
                f"max |t| = {result.max_abs_t:.2f}"
            )
            if result.func in ("sum", "count"):
                assert result.max_abs_t <= (
                    report.calibration.config.bias_t_threshold
                )

    def test_exact_level_cells_have_trials(self, report):
        """The normal-bound acceptance evidence is not vacuous: every
        allocation x rewrite pair pools hundreds of trials."""
        for pair in report.calibration.pairs:
            assert pair.check.trials >= 300

    def test_metamorphic_invariants_hold(self, report):
        assert report.metamorphic.violations == []
        assert set(report.metamorphic.checks) == {
            "scale_invariance",
            "group_permutation",
            "subset_sum",
            "execution_equivalence",
        }

    def test_overall_pass(self, report):
        assert report.passed
        assert report.failures == []

    def test_report_artifact_roundtrip(self, report, tmp_path):
        path = report.save(tmp_path / "CALIBRATION.json")
        data = json.loads(path.read_text())
        assert data["passed"] is True
        assert data["mode"] == "quick"
        assert data["negative_control"]["flagged"] is True
        assert len(data["calibration"]["pairs"]) == 16
        assert data["calibration"]["config"]["seed"] == 2026


class TestNegativeControl:
    """The harness must have power: a deliberately biased estimator
    (every estimate scaled by 1.1) is flagged by both detectors."""

    @pytest.fixture(scope="class")
    def control(self):
        return negative_control(seed=2026, tamper_scale=1.1)

    def test_biased_estimator_fails(self, control):
        assert not control.passed

    def test_coverage_detector_trips(self, control):
        assert any(
            flag.startswith(("pair ", "cell ")) for flag in control.flags
        )

    def test_bias_detector_trips(self, control):
        bias_flags = [f for f in control.flags if f.startswith("bias ")]
        assert bias_flags
        flagged = [b for b in control.bias if b.flagged_groups]
        assert flagged
        assert all(b.mean_relative_bias > 0.05 for b in flagged)

    def test_untampered_baseline_passes(self):
        """Same campaign, tamper_scale 1.0: nothing is flagged, so the
        control's failure is attributable to the injected bias alone."""
        baseline = negative_control(seed=2026, tamper_scale=1.0)
        assert baseline.passed


class TestHarnessMechanics:
    def test_runner_emits_telemetry(self):
        telemetry = Telemetry.enabled()
        config = CalibrationConfig(
            replications=2,
            allocations=("congress",),
            rewrites=("integrated",),
            bounds=("normal",),
        )
        CalibrationRunner(config, telemetry=telemetry).run()
        snapshot = telemetry.metrics.snapshot()
        assert "verify_replications_total" in snapshot
        assert "verify_cells_total" in snapshot

    def test_zero_halfwidth_with_error_fails_coverage(self):
        """An overconfident bound (zero halfwidth, real error) is counted
        as an uncovered trial, not excused as 'exact'."""
        config = CalibrationConfig(
            replications=4,
            allocations=("senate",),
            rewrites=("integrated",),
            bounds=("normal",),
            tamper_scale=1.5,
        )
        result = CalibrationRunner(config).run()
        # Unfiltered COUNT gives zero halfwidths; tampering makes the
        # value wrong, so those trials must fail coverage.
        cnt_cells = [c for c in result.cells if c.aggregate == "cnt"]
        assert cnt_cells
        for cell in cnt_cells:
            assert cell.exact == 0
            assert cell.check.trials > 0
            assert cell.check.covered == 0
