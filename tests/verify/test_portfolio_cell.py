"""The portfolio budget-contract calibration cell (seeded, statistical).

Replicated end-to-end runs: answers served under ``max_rel_error``
budgets must achieve at least the nominal coverage, and no answer may
promise more error than the requested budget.  Recorded into
``CALIBRATION.json`` via :class:`repro.verify.VerificationReport`.
"""

import pytest

from repro.verify import (
    PortfolioCellConfig,
    run_portfolio_calibration,
)

pytestmark = pytest.mark.statistical


@pytest.fixture(scope="module")
def result():
    return run_portfolio_calibration(PortfolioCellConfig.quick(seed=2026))


class TestPortfolioContract:
    def test_campaign_passes(self, result):
        assert result.flags == []
        assert result.passed

    def test_every_cell_present(self, result):
        config = result.config
        assert len(result.cells) == len(config.budgets) * len(
            config.query_names
        )

    def test_no_promise_violations(self, result):
        """Structural: the budget tightens the guard policy, so a promise
        above the budget is a wiring defect, not sampling noise."""
        for cell in result.cells:
            assert cell.promise_violations == 0, cell.to_dict()

    def test_coverage_at_or_above_nominal(self, result):
        for cell in result.cells:
            assert not cell.check.failed, cell.to_dict()
            # Conservative Chebyshev-backed promises: empirical coverage
            # itself should not sit below the nominal level on this seed.
            assert cell.check.coverage >= cell.check.nominal, cell.to_dict()

    def test_no_missing_groups(self, result):
        """The guard repairs empty strata, so every truth group must be
        present in every served answer on the testbed."""
        for cell in result.cells:
            assert cell.missing == 0, cell.to_dict()

    def test_every_answer_used_a_portfolio_member(self, result):
        for cell in result.cells:
            assert sum(cell.chosen.values()) == result.config.replications

    def test_to_dict_round_trips_through_json(self, result):
        import json

        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["passed"] is True
        assert len(payload["cells"]) == len(result.cells)
        assert payload["config"]["replications"] == (
            result.config.replications
        )
