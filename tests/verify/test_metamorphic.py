"""Metamorphic invariants on the seeded testbed (statistical tier)."""

import pytest

from repro.verify import Testbed, TestbedConfig, run_metamorphic
from repro.verify.metamorphic import (
    check_execution_equivalence,
    check_group_permutation,
    check_scale_invariance,
    check_subset_sum,
)

pytestmark = pytest.mark.statistical


@pytest.fixture(scope="module")
def testbed():
    return Testbed(TestbedConfig())


class TestInvariants:
    def test_scale_invariance(self, testbed):
        assert check_scale_invariance(testbed, seed=2026) == []

    def test_scale_invariance_other_constant(self, testbed):
        assert check_scale_invariance(testbed, seed=2026, scale=3.0) == []

    def test_group_permutation(self, testbed):
        assert check_group_permutation(testbed, seed=2026) == []

    def test_subset_sum(self, testbed):
        assert check_subset_sum(testbed, seed=2026) == []

    def test_execution_equivalence(self, testbed):
        assert check_execution_equivalence(testbed, seed=2026) == []

    def test_sweep_aggregates_all_checks(self, testbed):
        result = run_metamorphic(seed=7, testbed=testbed)
        assert result.passed
        assert len(result.checks) == 4
        assert result.to_dict()["violations"] == []

    def test_invariants_are_seed_independent(self, testbed):
        for seed in (1, 99, 4242):
            result = run_metamorphic(seed=seed, testbed=testbed)
            assert result.passed, (seed, result.violations)
