"""Unit tests for the verification harness's own statistics."""

import math

import pytest

from repro.estimators import normal_quantile
from repro.verify import bias_t_statistic, check_coverage, wilson_interval
from repro.verify.stats import (
    VERDICT_CONSERVATIVE,
    VERDICT_OK,
    VERDICT_UNDER,
)


class TestWilsonInterval:
    def test_contains_observed_proportion(self):
        low, high = wilson_interval(90, 100)
        assert low <= 0.9 <= high

    def test_within_unit_interval(self):
        for k, m in ((0, 10), (10, 10), (5, 10), (999, 1000)):
            low, high = wilson_interval(k, m)
            assert 0.0 <= low <= high <= 1.0

    def test_narrows_with_trials(self):
        narrow = wilson_interval(900, 1000)
        wide = wilson_interval(9, 10)
        assert narrow[1] - narrow[0] < wide[1] - wide[0]

    def test_no_trials_is_vacuous(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_higher_band_confidence_is_wider(self):
        tight = wilson_interval(90, 100, band_confidence=0.9)
        loose = wilson_interval(90, 100, band_confidence=0.999)
        assert loose[0] < tight[0] and loose[1] > tight[1]

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 3)
        with pytest.raises(ValueError):
            wilson_interval(-1, 3)
        with pytest.raises(ValueError):
            wilson_interval(1, 3, band_confidence=1.5)


class TestCheckCoverage:
    def test_nominal_inside_band_is_ok(self):
        check = check_coverage(95, 100, 0.95, "normal")
        assert check.verdict == VERDICT_OK
        assert not check.failed

    def test_far_below_nominal_is_under(self):
        check = check_coverage(600, 1000, 0.95, "normal")
        assert check.verdict == VERDICT_UNDER
        assert check.failed

    def test_full_coverage_of_large_sample_is_conservative(self):
        check = check_coverage(1000, 1000, 0.95, "chebyshev")
        assert check.verdict == VERDICT_CONSERVATIVE
        assert not check.failed  # conservative is fine for Chebyshev

    def test_no_trials_is_ok(self):
        assert check_coverage(0, 0, 0.95, "normal").verdict == VERDICT_OK

    def test_to_dict_roundtrips_fields(self):
        data = check_coverage(95, 100, 0.95, "normal").to_dict()
        assert data["trials"] == 100
        assert data["covered"] == 95
        assert data["coverage"] == pytest.approx(0.95)
        assert len(data["wilson"]) == 2


class TestBiasTStatistic:
    def test_too_few_replications_is_nan(self):
        assert math.isnan(bias_t_statistic(1.0, 1.0, 1))

    def test_constant_zero_error_is_zero(self):
        assert bias_t_statistic(0.0, 0.0, 20) == 0.0

    def test_constant_nonzero_error_is_infinite(self):
        # e_r = 2.0 for all r: sum = 2R, sum of squares = 4R.
        t = bias_t_statistic(40.0, 80.0, 20)
        assert math.isinf(t) and t > 0

    def test_matches_direct_computation(self):
        errors = [1.0, -1.0, 2.0, 0.5, -0.5, 1.5]
        n = len(errors)
        mean = sum(errors) / n
        sd = math.sqrt(
            sum((e - mean) ** 2 for e in errors) / (n - 1)
        )
        expected = mean / (sd / math.sqrt(n))
        got = bias_t_statistic(
            sum(errors), sum(e * e for e in errors), n
        )
        assert got == pytest.approx(expected)

    def test_sign_follows_bias_direction(self):
        positive = bias_t_statistic(10.0, 30.0, 10)
        negative = bias_t_statistic(-10.0, 30.0, 10)
        assert positive > 0 > negative


class TestNormalQuantile:
    def test_known_values(self):
        assert normal_quantile(0.975) == pytest.approx(1.959964, abs=1e-5)
        assert normal_quantile(0.95) == pytest.approx(1.644854, abs=1e-5)
        assert normal_quantile(0.5) == pytest.approx(0.0, abs=1e-9)

    def test_symmetry(self):
        for p in (0.01, 0.1, 0.3, 0.49):
            assert normal_quantile(p) == pytest.approx(
                -normal_quantile(1.0 - p), abs=1e-8
            )

    def test_tail_region(self):
        # Below the p_low switch point of the approximation.
        assert normal_quantile(0.001) == pytest.approx(-3.090232, abs=1e-4)

    def test_domain(self):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                normal_quantile(bad)
