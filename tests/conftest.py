"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import Catalog, Column, ColumnType, Schema, Table


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_schema():
    """A four-column schema with two grouping columns."""
    return Schema(
        [
            Column("a", ColumnType.STR, "grouping"),
            Column("b", ColumnType.STR, "grouping"),
            Column("q", ColumnType.FLOAT, "aggregate"),
            Column("id", ColumnType.INT, "key"),
        ]
    )


@pytest.fixture
def small_table(small_schema):
    """Eight rows over groups (x,p), (x,q), (y,p), (y,q) with known sums."""
    return Table.from_columns(
        small_schema,
        a=["x", "x", "x", "x", "y", "y", "y", "y"],
        b=["p", "p", "q", "q", "p", "p", "q", "q"],
        q=[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0],
        id=[1, 2, 3, 4, 5, 6, 7, 8],
    )


@pytest.fixture
def skewed_table(small_schema, rng):
    """20k rows with an 80/18/2 split on `a` and 95/5 on `b`."""
    n = 20_000
    return Table.from_columns(
        small_schema,
        a=rng.choice(["a1", "a2", "a3"], size=n, p=[0.80, 0.18, 0.02]),
        b=rng.choice(["b1", "b2"], size=n, p=[0.95, 0.05]),
        q=rng.exponential(10.0, size=n),
        id=np.arange(n),
    )


@pytest.fixture
def catalog(small_table):
    cat = Catalog()
    cat.register("rel", small_table)
    return cat
