"""Unit tests for the Definition 3.1 error metrics."""

import numpy as np
import pytest

from repro.engine import ColumnType, Schema, Table
from repro.metrics import (
    GroupByError,
    groupby_error,
    mean_errors,
    relative_error_pct,
)


def answer_table(rows):
    schema = Schema.of(("g", ColumnType.STR), ("v", ColumnType.FLOAT))
    return Table.from_rows(schema, rows)


class TestRelativeError:
    def test_equation_1(self):
        assert relative_error_pct(100.0, 90.0) == pytest.approx(10.0)
        assert relative_error_pct(100.0, 110.0) == pytest.approx(10.0)

    def test_exact_zero_cases(self):
        assert relative_error_pct(0.0, 0.0) == 0.0
        assert relative_error_pct(0.0, 1.0) == float("inf")

    def test_negative_exact(self):
        assert relative_error_pct(-100.0, -90.0) == pytest.approx(10.0)


class TestGroupByErrorMatching:
    def test_per_group_errors(self):
        exact = answer_table([("a", 100.0), ("b", 200.0)])
        approx = answer_table([("a", 110.0), ("b", 190.0)])
        error = groupby_error(exact, approx, ["g"], "v")
        assert error.per_group[("a",)] == pytest.approx(10.0)
        assert error.per_group[("b",)] == pytest.approx(5.0)
        assert not error.missing_groups
        assert not error.extra_groups

    def test_missing_group_scored_100(self):
        exact = answer_table([("a", 100.0), ("b", 200.0)])
        approx = answer_table([("a", 100.0)])
        error = groupby_error(exact, approx, ["g"], "v")
        assert error.missing_groups == (("b",),)
        assert error.per_group[("b",)] == 100.0
        assert error.coverage == pytest.approx(0.5)

    def test_custom_missing_penalty(self):
        exact = answer_table([("a", 100.0), ("b", 200.0)])
        approx = answer_table([("a", 100.0)])
        error = groupby_error(exact, approx, ["g"], "v", missing_error_pct=50.0)
        assert error.per_group[("b",)] == 50.0

    def test_extra_groups_reported_not_scored(self):
        exact = answer_table([("a", 100.0)])
        approx = answer_table([("a", 100.0), ("phantom", 5.0)])
        error = groupby_error(exact, approx, ["g"], "v")
        assert error.extra_groups == (("phantom",),)
        assert ("phantom",) not in error.per_group

    def test_groups_matched_by_key_not_position(self):
        exact = answer_table([("a", 100.0), ("b", 200.0)])
        approx = answer_table([("b", 200.0), ("a", 100.0)])  # reordered
        error = groupby_error(exact, approx, ["g"], "v")
        assert error.eps_inf == 0.0


class TestNorms:
    @pytest.fixture
    def error(self):
        return GroupByError(
            per_group={("a",): 3.0, ("b",): 4.0, ("c",): 5.0},
            missing_groups=(),
            extra_groups=(),
        )

    def test_eps_inf(self, error):
        assert error.eps_inf == 5.0

    def test_eps_l1(self, error):
        assert error.eps_l1 == pytest.approx(4.0)

    def test_eps_l2(self, error):
        assert error.eps_l2 == pytest.approx(np.sqrt((9 + 16 + 25) / 3))

    def test_norm_ordering(self, error):
        # L1 <= L2 <= Linf always.
        assert error.eps_l1 <= error.eps_l2 <= error.eps_inf

    def test_empty_answer(self):
        error = GroupByError(per_group={}, missing_groups=(), extra_groups=())
        assert error.eps_inf == error.eps_l1 == error.eps_l2 == 0.0
        assert error.coverage == 1.0

    def test_single_group_norms_equal(self):
        error = GroupByError(
            per_group={(): 7.0}, missing_groups=(), extra_groups=()
        )
        assert error.eps_inf == error.eps_l1 == error.eps_l2 == 7.0


class TestMeanErrors:
    def test_averages_over_queries(self):
        errors = [
            GroupByError({("a",): 2.0}, (), ()),
            GroupByError({("a",): 4.0}, (), ()),
        ]
        means = mean_errors(errors)
        assert means["eps_l1"] == pytest.approx(3.0)
        assert means["eps_inf"] == pytest.approx(3.0)

    def test_empty(self):
        assert mean_errors([]) == {
            "eps_inf": 0.0, "eps_l1": 0.0, "eps_l2": 0.0,
        }
