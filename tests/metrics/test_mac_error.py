"""Unit tests for the MAC error, including the paper's criticism of it."""

import pytest

from repro.engine import ColumnType, Schema, Table
from repro.metrics import groupby_error, mac_error, mac_error_values


def answer_table(rows):
    schema = Schema.of(("g", ColumnType.STR), ("v", ColumnType.FLOAT))
    return Table.from_rows(schema, rows)


class TestMacErrorValues:
    def test_identical_sets_zero(self):
        result = mac_error_values([1.0, 2.0, 3.0], [3.0, 1.0, 2.0])
        assert result.total == pytest.approx(0.0)

    def test_matched_differences_summed(self):
        result = mac_error_values([10.0, 20.0], [11.0, 18.0])
        assert result.total == pytest.approx(1.0 + 2.0)

    def test_unmatched_penalized_by_magnitude(self):
        result = mac_error_values([10.0, 20.0], [10.0])
        assert result.unmatched_exact == (20.0,)
        assert result.total == pytest.approx(20.0)

    def test_extra_approx_values_penalized(self):
        result = mac_error_values([10.0], [10.0, 5.0])
        assert result.unmatched_approx == (10.0,) or result.unmatched_approx == (5.0,)
        assert result.total > 0

    def test_mean(self):
        result = mac_error_values([10.0, 20.0], [12.0, 20.0])
        assert result.mean == pytest.approx(1.0)

    def test_empty(self):
        result = mac_error_values([], [])
        assert result.total == 0.0
        assert result.mean == 0.0


class TestPaperCriticism:
    def test_mac_blind_to_swapped_groups(self):
        """Section 3.2: MAC 'does not necessarily match corresponding
        groups' -- swapping two groups' values fools it completely."""
        exact = answer_table([("a", 100.0), ("b", 500.0)])
        swapped = answer_table([("a", 500.0), ("b", 100.0)])

        mac = mac_error(exact, swapped, "v")
        assert mac.total == pytest.approx(0.0)  # MAC sees a perfect answer

        matched = groupby_error(exact, swapped, ["g"], "v")
        assert matched.eps_l1 > 100  # the group-matched metric does not


class TestMacErrorTables:
    def test_basic(self):
        exact = answer_table([("a", 10.0), ("b", 30.0)])
        approx = answer_table([("a", 12.0), ("b", 30.0)])
        result = mac_error(exact, approx, "v")
        assert result.total == pytest.approx(2.0)
