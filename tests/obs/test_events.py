"""The structured event log: ring semantics, annotation, sinks, filters."""

import json

import pytest

from repro.obs.events import EventLog, QueryEvent


def _log(**kwargs):
    kwargs.setdefault("enabled", True)
    kwargs.setdefault("clock", lambda: 123.0)
    return EventLog(**kwargs)


class TestEmit:
    def test_disabled_log_drops_events(self):
        log = EventLog(enabled=False)
        assert log.emit(table="t") is None
        assert len(log) == 0

    def test_emit_assigns_monotonic_trace_ids(self):
        log = _log()
        first = log.emit(table="t")
        second = log.emit(table="t")
        assert first.trace_id != second.trace_id
        assert second.event_id > first.event_id

    def test_reserved_trace_id_is_honoured(self):
        log = _log()
        trace_id = log.next_trace_id()
        event = log.emit(trace_id=trace_id, table="t")
        assert event.trace_id == trace_id
        assert log.get(trace_id) is event

    def test_ring_evicts_oldest_and_forgets_its_trace_id(self):
        log = _log(capacity=3)
        ids = [log.emit(table="t").trace_id for _ in range(5)]
        assert len(log) == 3
        assert log.get(ids[0]) is None
        assert log.get(ids[1]) is None
        assert log.get(ids[-1]) is not None

    def test_emit_records_clock_timestamp(self):
        log = _log(clock=lambda: 42.5)
        assert log.emit(table="t").timestamp == 42.5


class TestAnnotate:
    def test_annotate_sets_fields_in_place(self):
        log = _log()
        event = log.emit(table="t")
        assert log.annotate(
            event.trace_id, audited=True, bound_violations=2
        )
        assert event.audited is True
        assert event.bound_violations == 2

    def test_annotate_unknown_trace_is_harmless(self):
        log = _log()
        assert log.annotate("q-unknown", audited=True) is False
        assert log.annotate(None, audited=True) is False

    def test_annotate_unknown_field_raises(self):
        log = _log()
        event = log.emit(table="t")
        with pytest.raises(AttributeError):
            log.annotate(event.trace_id, not_a_field=1)


class TestFilters:
    def test_filters_by_table_status_and_violations(self):
        log = _log()
        log.emit(table="a", status="ok")
        log.emit(table="b", status="error")
        violating = log.emit(table="a", status="ok")
        log.annotate(violating.trace_id, bound_violations=1)
        assert [e.table for e in log.events(table="a")] == ["a", "a"]
        assert [e.status for e in log.events(status="error")] == ["error"]
        assert [e.trace_id for e in log.events(violations_only=True)] == [
            violating.trace_id
        ]

    def test_limit_returns_most_recent(self):
        log = _log()
        ids = [log.emit(table="t").trace_id for _ in range(5)]
        assert [e.trace_id for e in log.events(limit=2)] == ids[-2:]
        assert [e.trace_id for e in log.tail(2)] == ids[-2:]


class TestSerialization:
    def test_to_dict_omits_unset_optionals(self):
        event = QueryEvent(event_id=1, trace_id="q1", timestamp=0.0)
        data = event.to_dict()
        assert "error" not in data
        assert "synopsis_version" not in data
        assert "promised_rel_error" not in data

    def test_to_json_round_trips(self):
        log = _log()
        event = log.emit(
            table="t",
            promised_rel_error={"s": 0.05},
            stage_seconds={"parse": 0.001},
        )
        data = json.loads(event.to_json())
        assert data["table"] == "t"
        assert data["promised_rel_error"] == {"s": 0.05}

    def test_to_jsonl_is_one_line_per_event(self):
        log = _log()
        log.emit(table="a")
        log.emit(table="b")
        lines = log.to_jsonl().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["table"] == "b"


class TestFileSink:
    def test_path_sink_receives_emits_and_annotations(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = _log(sink=str(path))
        event = log.emit(table="t")
        log.annotate(event.trace_id, audited=True)
        log.close()
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["table"] == "t"
        assert json.loads(lines[1]) == {
            "annotate": event.trace_id,
            "audited": True,
        }

    def test_file_object_sink_is_not_closed(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with open(path, "w") as handle:
            log = _log(sink=handle)
            log.emit(table="t")
            log.close()
            assert not handle.closed
        assert json.loads(path.read_text())["table"] == "t"


class TestMaxPromised:
    def test_max_promised_rel_error(self):
        event = QueryEvent(
            event_id=1,
            trace_id="q1",
            timestamp=0.0,
            promised_rel_error={"a": 0.1, "b": 0.3},
        )
        assert event.max_promised_rel_error == 0.3
        bare = QueryEvent(event_id=2, trace_id="q2", timestamp=0.0)
        assert bare.max_promised_rel_error == float("inf")
