"""The accuracy auditor: sampling, version guards, verdicts, wiring."""

import numpy as np
import pytest

from repro.aqua.system import AquaSystem
from repro.engine.schema import Column, ColumnType, Schema
from repro.engine.table import Table
from repro.obs.audit import (
    AccuracyAuditor,
    AuditConfig,
    SKIP_DEGRADED,
    SKIP_QUEUE_FULL,
    SKIP_VERSION_MISMATCH,
)
from repro.obs.slo import SLOMonitor
from repro.serve.deadline import ManualClock
from repro.testing.faults import AnswerTamper, FaultInjector

SQL = "SELECT g, SUM(v) AS s FROM t GROUP BY g"


def _system(budget=2000, cache=True):
    rng = np.random.default_rng(7)
    schema = Schema(
        [
            Column("g", ColumnType.STR, "grouping"),
            Column("v", ColumnType.FLOAT, "aggregate"),
        ]
    )
    system = AquaSystem(
        space_budget=budget,
        rng=np.random.default_rng(11),
        telemetry=True,
        cache=cache,
    )
    system.register_table(
        "t",
        Table(
            schema,
            {
                "g": rng.choice(["a", "b", "c", "d"], size=4000),
                "v": rng.exponential(10.0, size=4000),
            },
        ),
    )
    system.enable_maintenance("t")
    return system


def _auditor(system, fraction=1.0, slo=None, **kwargs):
    auditor = AccuracyAuditor(
        system,
        AuditConfig(sample_fraction=fraction, **kwargs),
        slo=slo,
        rng=np.random.default_rng(5),
        background=False,
    )
    system.attach_auditor(auditor)
    return auditor


class TestSampling:
    def test_fraction_zero_never_samples(self):
        system = _system()
        auditor = _auditor(system, fraction=0.0)
        for _ in range(5):
            system.answer(SQL)
        assert auditor.pending == 0
        assert auditor.stats.offered == 5
        assert auditor.stats.sampled == 0

    def test_fraction_one_samples_everything(self):
        system = _system()
        auditor = _auditor(system, fraction=1.0)
        for _ in range(3):
            system.answer(SQL)
        assert auditor.pending == 3

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            AuditConfig(sample_fraction=1.5)

    def test_queue_full_skips_instead_of_blocking(self):
        system = _system()
        auditor = _auditor(system, fraction=1.0, max_queue=2)
        for _ in range(5):
            system.answer(SQL)
        stats = auditor.stats
        assert auditor.pending == 2
        assert stats.skipped[SKIP_QUEUE_FULL] == 3

    def test_audit_false_suppresses_the_offer(self):
        system = _system()
        auditor = _auditor(system, fraction=1.0)
        system.answer(SQL, audit=False)
        assert auditor.pending == 0
        assert auditor.stats.offered == 0


class TestDegradedAnswers:
    def test_guard_degraded_answers_are_never_offered(self):
        system = _system()
        auditor = _auditor(system, fraction=1.0)
        FaultInjector(system).corrupt_scale_factor("t")
        answer = system.answer(SQL)
        assert answer.guard is not None and answer.guard.degraded
        assert auditor.pending == 0

    def test_direct_offer_of_degraded_answer_is_skipped(self):
        system = _system()
        auditor = _auditor(system, fraction=1.0)
        FaultInjector(system).corrupt_scale_factor("t")
        answer = system.answer(SQL)
        from repro.engine.sql import parse_query

        assert auditor.offer(parse_query(SQL), answer, None) is False
        assert auditor.stats.skipped[SKIP_DEGRADED] == 1


class TestVersionGuards:
    def test_insert_between_answer_and_audit_skips(self):
        system = _system()
        auditor = _auditor(system, fraction=1.0)
        system.answer(SQL)
        system.insert("t", ("a", 1.0))
        assert auditor.drain() == []
        assert auditor.stats.skipped[SKIP_VERSION_MISMATCH] == 1
        assert auditor.stats.audited == 0

    def test_table_reregistered_mid_audit_skips_not_crashes(self):
        system = _system()
        auditor = _auditor(system, fraction=1.0)
        system.answer(SQL)
        rng = np.random.default_rng(2)
        schema = system.catalog.get("t").schema
        system.register_table(
            "t",
            Table(
                schema,
                {
                    "g": rng.choice(["x", "y"], size=500),
                    "v": rng.normal(5.0, 1.0, size=500),
                },
            ),
        )
        assert auditor.drain() == []
        assert auditor.stats.skipped[SKIP_VERSION_MISMATCH] == 1

    def test_same_version_audits_cleanly(self):
        system = _system()
        auditor = _auditor(system, fraction=1.0)
        system.answer(SQL)
        (finding,) = auditor.drain()
        assert finding.groups_checked > 0
        assert finding.violations == 0


class TestVerdicts:
    def test_honest_answers_have_no_violations(self):
        system = _system()
        slo = SLOMonitor(clock=ManualClock())
        system.attach_slo(slo)
        auditor = _auditor(system, fraction=1.0, slo=slo)
        for _ in range(3):
            system.answer(SQL)
        findings = auditor.drain()
        assert all(f.violations == 0 for f in findings)
        status = next(
            s for s in slo.evaluate() if s.slo.name == "bound_violation_rate"
        )
        assert status.bad == 0 and status.good == 3

    def test_tampered_answers_are_caught(self):
        system = _system(cache=False)
        slo = SLOMonitor(clock=ManualClock())
        system.attach_slo(slo)
        auditor = _auditor(system, fraction=1.0, slo=slo)
        with AnswerTamper(system, scale=1.5):
            system.answer(SQL)
        (finding,) = auditor.drain()
        assert finding.violations > 0
        assert finding.max_observed_rel_error > 0.3
        status = next(
            s for s in slo.evaluate() if s.slo.name == "bound_violation_rate"
        )
        assert status.bad == 1

    def test_audit_back_annotates_the_event(self):
        system = _system(cache=False)
        auditor = _auditor(system, fraction=1.0)
        with AnswerTamper(system, scale=1.5):
            answer = system.answer(SQL)
        auditor.drain()
        event = system.telemetry.events.get(answer.trace_id)
        assert event.audited is True
        assert event.bound_violations > 0
        assert event.observed_rel_error > 0.3

    def test_violation_promotes_the_trace(self):
        system = _system(cache=False)
        system.telemetry.tracer.enable()
        auditor = _auditor(system, fraction=1.0)
        with AnswerTamper(system, scale=1.5):
            answer = system.answer(SQL)
        auditor.drain()
        assert (
            system.telemetry.traces.reason(answer.trace_id)
            == "bound_violation"
        )

    def test_violation_exemplar_lands_in_openmetrics(self):
        system = _system(cache=False)
        auditor = _auditor(system, fraction=1.0)
        with AnswerTamper(system, scale=1.5):
            answer = system.answer(SQL)
        auditor.drain()
        text = system.telemetry.metrics.to_openmetrics()
        assert f'# {{trace_id="{answer.trace_id}"}}' in text
        assert "# {" not in system.telemetry.metrics.to_prometheus()

    def test_zero_surviving_group_query_audits_without_crashing(self):
        system = _system()
        auditor = _auditor(system, fraction=1.0)
        # Unguarded: the guard would repair an all-groups-missing answer
        # into an exact (degraded) one, which is never offered for audit.
        answer = system.answer(
            "SELECT g, SUM(v) AS s FROM t WHERE v < -1 GROUP BY g",
            guard=False,
        )
        assert answer.result.num_rows == 0
        (finding,) = auditor.drain()
        assert finding.groups_checked == 0
        assert finding.violations == 0
        assert auditor.stats.audited == 1


class TestBackgroundWorker:
    def test_background_worker_drains_the_queue(self):
        system = _system()
        auditor = AccuracyAuditor(
            system,
            AuditConfig(sample_fraction=1.0),
            rng=np.random.default_rng(5),
            background=True,
        )
        system.attach_auditor(auditor)
        try:
            for _ in range(3):
                system.answer(SQL)
            assert auditor.wait_idle(timeout=10.0)
            deadline = 100
            while auditor.stats.audited < 3 and deadline:
                deadline -= 1
                import time

                time.sleep(0.01)
            assert auditor.stats.audited == 3
        finally:
            auditor.close()

    def test_closed_auditor_rejects_offers(self):
        system = _system()
        auditor = _auditor(system, fraction=1.0)
        auditor.close()
        system.answer(SQL)
        assert auditor.pending == 0


class TestStats:
    def test_describe_renders_counts(self):
        system = _system()
        auditor = _auditor(system, fraction=1.0)
        system.answer(SQL)
        auditor.drain()
        text = auditor.stats.describe()
        assert "audited 1/1 sampled" in text

    def test_to_dict_round_trips(self):
        system = _system()
        auditor = _auditor(system, fraction=1.0)
        system.answer(SQL)
        auditor.drain()
        data = auditor.stats.to_dict()
        assert data["audited"] == 1
        assert data["violating_queries"] == 0
