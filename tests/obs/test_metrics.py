"""Counters, gauges, histogram bucket edges, and Prometheus exposition."""

import json
import re

import pytest

from repro.obs import MetricsRegistry
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, Counter, Histogram


@pytest.fixture
def registry():
    return MetricsRegistry(enabled=True)


class TestCounter:
    def test_inc_accumulates_per_label_set(self, registry):
        counter = registry.counter("queries_total", "Queries.", ("table",))
        counter.inc(table="lineitem")
        counter.inc(2, table="lineitem")
        counter.inc(table="census")
        assert counter.value(table="lineitem") == 3
        assert counter.value(table="census") == 1

    def test_negative_increment_rejected(self, registry):
        counter = registry.counter("c_total")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_label_set_must_match_declaration(self, registry):
        counter = registry.counter("c_total", "", ("table",))
        with pytest.raises(ValueError, match="expects labels"):
            counter.inc(shard="x")
        with pytest.raises(ValueError, match="expects labels"):
            counter.inc()

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("bad-name")
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("ok_name", "", ("bad-label",))


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("pending_rows", "Pending.", ("table",))
        gauge.set(10, table="rel")
        gauge.inc(5, table="rel")
        gauge.dec(3, table="rel")
        assert gauge.value(table="rel") == 12


class TestHistogramBucketEdges:
    def test_value_on_bound_lands_in_that_bucket(self, registry):
        hist = registry.histogram("h", "", (), buckets=(1.0, 2.0, 5.0))
        hist.observe(1.0)  # le="1" is inclusive
        hist.observe(1.5)
        hist.observe(5.0)
        hist.observe(7.0)  # overflow -> +Inf only
        buckets = hist.bucket_counts()
        assert buckets[1.0] == 1
        assert buckets[2.0] == 2  # cumulative
        assert buckets[5.0] == 3
        assert buckets[float("inf")] == 4
        assert hist.count() == 4
        assert hist.sum() == pytest.approx(14.5)

    def test_cumulative_counts_are_monotone(self, registry):
        hist = registry.histogram("lat", "", (), buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.05, 0.5, 2.0):
            hist.observe(value)
        counts = list(hist.bucket_counts().values())
        assert counts == sorted(counts)
        assert counts[-1] == 5

    def test_explicit_inf_bucket_is_folded_into_implicit(self, registry):
        hist = registry.histogram(
            "h2", "", (), buckets=(1.0, float("inf"))
        )
        assert hist.buckets == (1.0,)

    def test_non_increasing_buckets_rejected(self, registry):
        with pytest.raises(ValueError, match="strictly"):
            registry.histogram("h3", "", (), buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError, match="strictly"):
            registry.histogram("h4", "", (), buckets=(2.0, 1.0))

    def test_default_buckets_cover_latency_range(self, registry):
        hist = registry.histogram("seconds")
        assert hist.buckets == DEFAULT_LATENCY_BUCKETS


class TestRegistry:
    def test_get_or_create_is_idempotent(self, registry):
        first = registry.counter("n_total", "Help.", ("table",))
        second = registry.counter("n_total", "ignored", ("table",))
        assert first is second

    def test_kind_conflict_is_an_error(self, registry):
        registry.counter("metric_one")
        with pytest.raises(ValueError, match="already registered as"):
            registry.gauge("metric_one")

    def test_label_conflict_is_an_error(self, registry):
        registry.counter("metric_two", "", ("a",))
        with pytest.raises(ValueError, match="already registered with"):
            registry.counter("metric_two", "", ("b",))

    def test_snapshot_and_json(self, registry):
        registry.counter("q_total", "Queries.", ("table",)).inc(
            table="lineitem"
        )
        registry.histogram("h_seconds", "", (), buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["q_total"]["type"] == "counter"
        assert snapshot["q_total"]["values"] == [
            {"labels": {"table": "lineitem"}, "value": 1.0}
        ]
        assert snapshot["h_seconds"]["values"][0]["count"] == 1
        assert json.loads(registry.to_json()) == snapshot

    def test_reset_clears_everything(self, registry):
        registry.counter("gone_total").inc()
        registry.reset()
        assert registry.names() == []
        assert registry.to_prometheus() == ""


class TestDisabledRegistry:
    def test_writes_are_noops_until_enabled(self):
        registry = MetricsRegistry()  # disabled by default
        counter = registry.counter("c_total")
        hist = registry.histogram("h", "", (), buckets=(1.0,))
        counter.inc()
        hist.observe(0.5)
        assert counter.value() == 0
        assert hist.count() == 0
        registry.enable()
        counter.inc()
        hist.observe(0.5)
        assert counter.value() == 1
        assert hist.count() == 1

    def test_handles_still_typed_when_disabled(self):
        registry = MetricsRegistry()
        assert isinstance(registry.counter("a_total"), Counter)
        assert isinstance(registry.histogram("b"), Histogram)


class TestPrometheusExposition:
    def test_counter_and_gauge_lines(self, registry):
        registry.counter("q_total", "Queries answered.", ("table",)).inc(
            3, table="lineitem"
        )
        registry.gauge("pending", "Pending rows.").set(1.5)
        text = registry.to_prometheus()
        assert "# HELP q_total Queries answered.\n" in text
        assert "# TYPE q_total counter\n" in text
        assert 'q_total{table="lineitem"} 3\n' in text
        assert "# TYPE pending gauge\n" in text
        assert "pending 1.5\n" in text
        assert text.endswith("\n")

    def test_histogram_exposition_shape(self, registry):
        hist = registry.histogram(
            "lat_seconds", "Latency.", ("stage",), buckets=(0.1, 1.0)
        )
        hist.observe(0.05, stage="parse")
        hist.observe(0.5, stage="parse")
        text = registry.to_prometheus()
        assert 'lat_seconds_bucket{stage="parse",le="0.1"} 1\n' in text
        assert 'lat_seconds_bucket{stage="parse",le="1"} 2\n' in text
        assert 'lat_seconds_bucket{stage="parse",le="+Inf"} 2\n' in text
        assert 'lat_seconds_sum{stage="parse"} 0.55\n' in text
        assert 'lat_seconds_count{stage="parse"} 2\n' in text

    def test_label_value_escaping(self, registry):
        registry.counter("esc_total", "", ("path",)).inc(
            path='back\\slash "quote"\nnewline'
        )
        text = registry.to_prometheus()
        assert (
            'esc_total{path="back\\\\slash \\"quote\\"\\nnewline"} 1' in text
        )
        # The physical line must not contain a raw newline mid-sample.
        sample_lines = [l for l in text.splitlines() if "esc_total{" in l]
        assert len(sample_lines) == 1

    def test_help_escaping(self, registry):
        registry.counter("h_total", "line one\nline two \\ done").inc()
        text = registry.to_prometheus()
        assert "# HELP h_total line one\\nline two \\\\ done\n" in text

    def test_every_sample_line_is_well_formed(self, registry):
        registry.counter("a_total", "A.", ("t",)).inc(t="x")
        registry.gauge("b_gauge").set(2)
        registry.histogram("c_seconds", "", (), buckets=(1.0,)).observe(0.5)
        line_re = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? '
            r"(-?\d+(\.\d+)?([eE][+-]?\d+)?|[+-]Inf|NaN)$"
        )
        for line in registry.to_prometheus().splitlines():
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
            else:
                assert line_re.match(line), line


class TestExpositionStability:
    def test_nonempty_output_ends_with_trailing_newline(self, registry):
        registry.counter("a_total").inc()
        assert registry.to_prometheus().endswith("\n")
        assert not registry.to_prometheus().endswith("\n\n")

    def test_empty_registry_renders_empty_string(self, registry):
        assert registry.to_prometheus() == ""

    def test_labels_sorted_by_name(self, registry):
        registry.counter(
            "r_total", "", ("tenant", "outcome", "zone")
        ).inc(tenant="t0", outcome="ok", zone="z1")
        text = registry.to_prometheus()
        assert 'r_total{outcome="ok",tenant="t0",zone="z1"} 1\n' in text

    def test_le_label_always_renders_last(self, registry):
        registry.histogram(
            "h_seconds", "", ("zz",), buckets=(1.0,)
        ).observe(0.5, zz="v")
        text = registry.to_prometheus()
        # "zz" sorts after "le" alphabetically, but le stays last anyway.
        assert 'h_seconds_bucket{zz="v",le="1"} 1\n' in text

    def test_metric_families_sorted_by_name(self, registry):
        registry.counter("z_total").inc()
        registry.counter("a_total").inc()
        text = registry.to_prometheus()
        assert text.index("a_total") < text.index("z_total")


class TestExemplars:
    def test_observe_stores_latest_exemplar_per_bucket(self, registry):
        hist = registry.histogram("h_seconds", "", (), buckets=(1.0, 10.0))
        hist.observe(0.5, exemplar={"trace_id": "q1"})
        hist.observe(0.7, exemplar={"trace_id": "q2"})
        hist.observe(5.0, exemplar={"trace_id": "q3"})
        stored = hist.exemplars()
        assert stored["1"] == ({"trace_id": "q2"}, 0.7)
        assert stored["10"] == ({"trace_id": "q3"}, 5.0)

    def test_overflow_bucket_exemplar(self, registry):
        hist = registry.histogram("h_seconds", "", (), buckets=(1.0,))
        hist.observe(99.0, exemplar={"trace_id": "slow"})
        assert hist.exemplars()["+Inf"] == ({"trace_id": "slow"}, 99.0)

    def test_openmetrics_renders_exemplars_and_eof(self, registry):
        hist = registry.histogram("h_seconds", "", (), buckets=(1.0,))
        hist.observe(0.5, exemplar={"trace_id": "q0000002a"})
        text = registry.to_openmetrics()
        assert (
            'h_seconds_bucket{le="1"} 1 # {trace_id="q0000002a"} 0.5'
            in text
        )
        assert text.endswith("# EOF\n")

    def test_prometheus_exposition_never_renders_exemplars(self, registry):
        hist = registry.histogram("h_seconds", "", (), buckets=(1.0,))
        hist.observe(0.5, exemplar={"trace_id": "q1"})
        assert "# {" not in registry.to_prometheus()

    def test_exemplar_label_values_are_escaped(self, registry):
        hist = registry.histogram("h_seconds", "", (), buckets=(1.0,))
        hist.observe(0.5, exemplar={"note": 'quo"te\nnl\\end'})
        text = registry.to_openmetrics()
        (line,) = [
            l
            for l in text.splitlines()
            if l.startswith('h_seconds_bucket{le="1"}')
        ]
        assert '# {note="quo\\"te\\nnl\\\\end"} 0.5' in line

    def test_observation_without_exemplar_keeps_earlier_one(self, registry):
        hist = registry.histogram("h_seconds", "", (), buckets=(1.0,))
        hist.observe(0.5, exemplar={"trace_id": "q1"})
        hist.observe(0.6)
        assert hist.exemplars()["1"] == ({"trace_id": "q1"}, 0.5)

    def test_collect_carries_exemplars(self, registry):
        hist = registry.histogram("h_seconds", "", (), buckets=(1.0,))
        hist.observe(0.5, exemplar={"trace_id": "q1"})
        (sample,) = hist.collect()
        assert sample["exemplars"]["1"] == {
            "labels": {"trace_id": "q1"},
            "value": 0.5,
        }

    def test_labelled_histograms_keep_exemplars_separate(self, registry):
        hist = registry.histogram(
            "h_seconds", "", ("table",), buckets=(1.0,)
        )
        hist.observe(0.5, exemplar={"trace_id": "qa"}, table="a")
        hist.observe(0.6, exemplar={"trace_id": "qb"}, table="b")
        assert hist.exemplars(table="a")["1"][0] == {"trace_id": "qa"}
        assert hist.exemplars(table="b")["1"][0] == {"trace_id": "qb"}
