"""End-to-end: a silent accuracy fault must trip the burn-rate alert.

The acceptance scenario for the observability loop: serve a workload
through the admission-controlled service with a serve-time tamper
(estimates silently scaled by 1.1, bounds untouched -- the failure mode
the guard cannot see), audit every answer, and require that

* the ``bound_violation_rate`` SLO's *fast* burn-rate alert fires within
  the ManualClock-driven short window,
* every violating query is visible in the event log with its exemplar
  trace id in the OpenMetrics exposition, and
* the identical workload without the tamper fires nothing.
"""

import numpy as np

from repro.aqua.system import AquaSystem
from repro.engine.schema import Column, ColumnType, Schema
from repro.engine.table import Table
from repro.obs.audit import AccuracyAuditor, AuditConfig
from repro.obs.slo import SLOMonitor
from repro.serve.deadline import ManualClock
from repro.serve.service import QueryService, ServiceConfig
from repro.testing.faults import AnswerTamper

SQL = "SELECT g, SUM(v) AS s FROM t GROUP BY g"
QUERIES = 10


def _stack():
    """System + ManualClock SLO monitor + synchronous auditor + service."""
    rng = np.random.default_rng(13)
    schema = Schema(
        [
            Column("g", ColumnType.STR, "grouping"),
            Column("v", ColumnType.FLOAT, "aggregate"),
        ]
    )
    system = AquaSystem(
        space_budget=3000,
        rng=np.random.default_rng(17),
        telemetry=True,
        cache=False,  # every query must run the (possibly tampered) pipeline
    )
    system.register_table(
        "t",
        Table(
            schema,
            {
                "g": rng.choice(["a", "b", "c", "d"], size=4000),
                "v": rng.exponential(10.0, size=4000),
            },
        ),
    )
    clock = ManualClock()
    slo = SLOMonitor(clock=clock)
    system.attach_slo(slo)
    auditor = AccuracyAuditor(
        system,
        AuditConfig(sample_fraction=1.0),
        slo=slo,
        rng=np.random.default_rng(19),
        background=False,
    )
    system.attach_auditor(auditor)
    return system, clock, slo, auditor


def _drive(system, clock, auditor, service):
    for _ in range(QUERIES):
        service.query(SQL)
        auditor.drain()
        clock.advance(10.0)  # 100s total -- inside the 300s fast window


class TestTamperedWorkloadTripsTheFastAlert:
    def test_fast_burn_rate_alert_fires_within_the_window(self):
        system, clock, slo, auditor = _stack()
        service = QueryService(
            system, ServiceConfig(workers=2), sleep=lambda _s: None
        )
        try:
            with AnswerTamper(system, scale=1.1):
                _drive(system, clock, auditor, service)
        finally:
            service.close()

        assert auditor.stats.violating_queries == QUERIES
        firing = {
            (alert.slo, alert.rule.name) for alert in slo.firing_alerts()
        }
        assert ("bound_violation_rate", "fast") in firing

    def test_violating_queries_are_in_the_event_log_with_exemplars(self):
        system, clock, _slo, auditor = _stack()
        service = QueryService(
            system, ServiceConfig(workers=2), sleep=lambda _s: None
        )
        try:
            with AnswerTamper(system, scale=1.1):
                _drive(system, clock, auditor, service)
        finally:
            service.close()

        violating = system.telemetry.events.events(violations_only=True)
        assert len(violating) == QUERIES
        exposition = system.telemetry.metrics.to_openmetrics()
        exemplar_ids = {
            event.trace_id
            for event in violating
            if f'trace_id="{event.trace_id}"' in exposition
        }
        # Exemplars keep only the latest violator per bucket, so at least
        # one violating trace id must be scrapable -- and every exemplar
        # must resolve back to a logged violating event.
        assert exemplar_ids
        for event in violating:
            assert event.audited and event.bound_violations > 0


class TestCleanWorkloadFiresNothing:
    def test_no_alerts_without_the_tamper(self):
        system, clock, slo, auditor = _stack()
        service = QueryService(
            system, ServiceConfig(workers=2), sleep=lambda _s: None
        )
        try:
            _drive(system, clock, auditor, service)
        finally:
            service.close()

        assert auditor.stats.audited == QUERIES
        assert auditor.stats.violating_queries == 0
        assert slo.firing_alerts() == []
        assert system.telemetry.events.events(violations_only=True) == []
