"""Span nesting, exception safety, and the QueryTrace accessors."""

import json

import pytest

from repro.obs import QueryTrace, Span, Tracer
from repro.obs.trace import NULL_SPAN, NULL_TRACER


@pytest.fixture
def tracer():
    return Tracer(enabled=True)


class TestSpanNesting:
    def test_children_nest_in_execution_order(self, tracer):
        with tracer.span("answer") as root:
            with tracer.span("parse"):
                pass
            with tracer.span("execute"):
                with tracer.span("scan"):
                    pass
                with tracer.span("scale_up"):
                    pass
            with tracer.span("guard"):
                pass
        assert [s.name for s in root.children] == [
            "parse", "execute", "guard",
        ]
        execute = root.children[1]
        assert [s.name for s in execute.children] == ["scan", "scale_up"]

    def test_durations_are_positive_and_nested(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                sum(range(1000))
        assert inner.duration_seconds > 0.0
        assert outer.duration_seconds >= inner.duration_seconds

    def test_current_tracks_innermost_open_span(self, tracer):
        assert tracer.current is None
        with tracer.span("a") as a:
            assert tracer.current is a
            with tracer.span("b") as b:
                assert tracer.current is b
            assert tracer.current is a
        assert tracer.current is None

    def test_attributes_at_creation_and_via_set(self, tracer):
        with tracer.span("scan", strategy="integrated") as span:
            span.set(rows=42)
        assert span.attributes == {"strategy": "integrated", "rows": 42}

    def test_find_searches_depth_first(self, tracer):
        with tracer.span("root") as root:
            with tracer.span("mid"):
                with tracer.span("leaf"):
                    pass
        assert root.find("leaf").name == "leaf"
        assert root.find("missing") is None


class TestExceptionSafety:
    def test_exception_closes_span_and_marks_error(self, tracer):
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("answer") as root:
                with tracer.span("execute") as execute:
                    raise ValueError("boom")
        assert execute.finished
        assert execute.status == "error"
        assert execute.error == "ValueError: boom"
        assert root.finished
        assert root.status == "error"
        # The stack is fully unwound; the tracer is reusable.
        assert tracer.current is None
        with tracer.span("again") as again:
            pass
        assert again.children == []

    def test_pop_closes_spans_abandoned_by_nonlocal_exit(self, tracer):
        # Simulate a child left open (e.g. a generator that never resumed):
        root = tracer.span("root")
        root.__enter__()
        child = tracer.span("child")
        child.__enter__()
        root.__exit__(None, None, None)
        assert tracer.current is None
        assert root.children == [child]

    def test_error_flag_appears_in_render(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("stage") as span:
                raise RuntimeError("bad")
        assert "!error: RuntimeError: bad" in span.render()


class TestDecorator:
    def test_traced_decorator_records_calls(self, tracer):
        @tracer.traced("compute", kind="test")
        def compute(x):
            """Docs."""
            return x * 2

        with tracer.span("root") as root:
            assert compute(21) == 42
        assert [s.name for s in root.children] == ["compute"]
        assert root.children[0].attributes == {"kind": "test"}
        assert compute.__name__ == "compute"
        assert compute.__doc__ == "Docs."

    def test_traced_defaults_to_qualname(self, tracer):
        @tracer.traced()
        def helper():
            return 1

        with tracer.span("root") as root:
            helper()
        assert root.children[0].name.endswith("helper")


class TestDisabledTracer:
    def test_disabled_span_is_shared_null_singleton(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("anything", rows=1)
        assert span is NULL_SPAN
        assert span is NULL_TRACER.span("other")
        assert not span.is_recording
        with span as entered:
            assert entered.set(rows=2) is span

    def test_enable_disable_roundtrip(self):
        tracer = Tracer()
        assert tracer.span("x") is NULL_SPAN
        tracer.enable()
        assert isinstance(tracer.span("x"), Span)
        tracer.disable()
        assert tracer.span("x") is NULL_SPAN


class TestQueryTrace:
    def _make_trace(self, tracer):
        with tracer.span("answer") as root:
            with tracer.span("parse"):
                pass
            with tracer.span("execute"):
                with tracer.span("scan"):
                    pass
            # repeated stage name: stage_seconds must sum both
            with tracer.span("execute"):
                pass
        return QueryTrace(root)

    def test_stages_and_stage_seconds(self, tracer):
        trace = self._make_trace(tracer)
        assert [s.name for s in trace.stages] == [
            "parse", "execute", "execute",
        ]
        seconds = trace.stage_seconds()
        assert set(seconds) == {"parse", "execute"}
        both = sum(
            s.duration_seconds for s in trace.stages if s.name == "execute"
        )
        assert seconds["execute"] == pytest.approx(both)

    def test_unaccounted_is_small_and_nonnegative(self, tracer):
        trace = self._make_trace(tracer)
        assert 0.0 <= trace.unaccounted_seconds <= trace.total_seconds

    def test_stage_lookup_reaches_nested_spans(self, tracer):
        trace = self._make_trace(tracer)
        assert trace.stage("answer") is trace.root
        assert trace.stage("scan").name == "scan"
        assert trace.stage("nope") is None

    def test_to_json_roundtrips(self, tracer):
        trace = self._make_trace(tracer)
        data = json.loads(trace.to_json())
        assert data["name"] == "answer"
        assert [c["name"] for c in data["children"]] == [
            "parse", "execute", "execute",
        ]

    def test_render_indents_children(self, tracer):
        trace = self._make_trace(tracer)
        lines = trace.render().splitlines()
        assert lines[0].startswith("answer")
        assert lines[1].startswith("  parse")
        assert any(line.startswith("    scan") for line in lines)
