"""SLOs, windowed counts, and multi-window burn-rate alerting."""

import json

import pytest

from repro.obs.slo import (
    DEFAULT_BURN_RATE_RULES,
    KIND_BOUND_VIOLATION,
    KIND_DEGRADED,
    KIND_LATENCY,
    BurnRateRule,
    ObservabilityReport,
    SLO,
    SLOMonitor,
    WindowedCounts,
    default_slos,
)
from repro.serve.deadline import ManualClock


class TestSLOValidation:
    def test_objective_must_be_a_fraction(self):
        with pytest.raises(ValueError):
            SLO("bad", KIND_DEGRADED, objective=1.0)
        with pytest.raises(ValueError):
            SLO("bad", KIND_DEGRADED, objective=0.0)

    def test_latency_slo_needs_threshold(self):
        with pytest.raises(ValueError):
            SLO("lat", KIND_LATENCY, objective=0.99)
        slo = SLO("lat", KIND_LATENCY, objective=0.99, threshold_ms=250.0)
        assert slo.error_budget == pytest.approx(0.01)

    def test_burn_rate_rule_windows_ordered(self):
        with pytest.raises(ValueError):
            BurnRateRule("bad", 300.0, 3600.0, 10.0)

    def test_default_slos_cover_the_three_kinds(self):
        kinds = {slo.kind for slo in default_slos()}
        assert kinds == {KIND_LATENCY, KIND_BOUND_VIOLATION, KIND_DEGRADED}


class TestWindowedCounts:
    def test_totals_respect_the_window(self):
        clock = ManualClock()
        counts = WindowedCounts(bucket_seconds=60, clock=clock)
        counts.record(good=False, n=5)
        clock.advance(600)
        counts.record(good=True, n=3)
        assert counts.totals(60) == (3, 0)
        assert counts.totals(3600) == (3, 5)

    def test_old_buckets_are_pruned_past_the_horizon(self):
        clock = ManualClock()
        counts = WindowedCounts(
            bucket_seconds=60, horizon_seconds=300, clock=clock
        )
        counts.record(good=False)
        clock.advance(600)
        counts.record(good=True)
        assert counts.totals(10_000) == (1, 0)

    def test_bucket_rollover_is_sharp(self):
        clock = ManualClock()
        counts = WindowedCounts(bucket_seconds=60, clock=clock)
        counts.record(good=False)
        clock.advance(59)
        assert counts.totals(0)[1] == 1  # same bucket
        clock.advance(2)
        assert counts.totals(0) == (0, 0)  # next bucket, window of one


def _monitor(clock):
    return SLOMonitor(clock=clock)


class TestBurnRateAlerts:
    def test_all_bad_fires_both_windows(self):
        clock = ManualClock()
        monitor = _monitor(clock)
        for _ in range(20):
            monitor.record_audit(violations=3, groups=5)
        firing = monitor.firing_alerts()
        assert any(
            alert.slo == "bound_violation_rate" and alert.rule.name == "fast"
            for alert in firing
        )

    def test_all_good_fires_nothing(self):
        clock = ManualClock()
        monitor = _monitor(clock)
        for _ in range(20):
            monitor.record_audit(violations=0, groups=5)
            monitor.record_latency(0.001)
            monitor.record_served(degraded=False)
        assert monitor.firing_alerts() == []

    def test_short_window_recovery_clears_the_fast_alert(self):
        clock = ManualClock()
        monitor = _monitor(clock)
        for _ in range(50):
            monitor.record_audit(violations=1, groups=5)
        assert any(
            a.rule.name == "fast" and a.slo == "bound_violation_rate"
            for a in monitor.firing_alerts()
        )
        # A clean recent burst: the 300s short window sees only good
        # events, so the fast rule stops firing even though the 3600s
        # long window still carries the bad history.
        clock.advance(400)
        for _ in range(200):
            monitor.record_audit(violations=0, groups=5)
        firing = {
            (a.slo, a.rule.name) for a in monitor.firing_alerts()
        }
        assert ("bound_violation_rate", "fast") not in firing

    def test_latency_threshold_splits_good_and_bad(self):
        clock = ManualClock()
        monitor = _monitor(clock)
        monitor.record_latency(0.1)  # 100ms < default 250ms
        monitor.record_latency(1.0)  # 1000ms > 250ms
        status = next(
            s for s in monitor.evaluate() if s.slo.kind == KIND_LATENCY
        )
        assert (status.good, status.bad) == (1, 1)

    def test_degraded_stream(self):
        clock = ManualClock()
        monitor = _monitor(clock)
        monitor.record_served(degraded=True)
        monitor.record_served(degraded=False)
        status = next(
            s for s in monitor.evaluate() if s.slo.kind == KIND_DEGRADED
        )
        assert (status.good, status.bad) == (1, 1)


class TestMonitorSurface:
    def test_register_rejects_duplicate_names(self):
        monitor = SLOMonitor(clock=ManualClock())
        with pytest.raises(ValueError):
            monitor.register(
                SLO("p99_latency_ms", KIND_DEGRADED, objective=0.9)
            )

    def test_to_dict_is_json_serializable(self):
        monitor = SLOMonitor(clock=ManualClock())
        monitor.record_audit(violations=0, groups=1)
        payload = json.loads(json.dumps(monitor.to_dict()))
        assert {s["name"] for s in payload["slos"]} == {
            "p99_latency_ms",
            "bound_violation_rate",
            "degraded_fraction",
        }
        assert payload["firing"] == []

    def test_describe_mentions_every_slo(self):
        monitor = SLOMonitor(clock=ManualClock())
        text = monitor.describe()
        assert "p99_latency_ms" in text
        assert "bound_violation_rate" in text
        assert "degraded_fraction" in text

    def test_default_rules_are_google_sre_shaped(self):
        fast, slow = DEFAULT_BURN_RATE_RULES
        assert fast.threshold > slow.threshold
        assert fast.long_window_seconds < slow.long_window_seconds
        assert fast.severity == "page"
        assert slow.severity == "ticket"


class TestObservabilityReport:
    def test_render_without_sources(self):
        text = ObservabilityReport().render()
        assert "observability report" in text

    def test_report_includes_slo_and_events(self):
        from repro.obs.events import EventLog

        monitor = SLOMonitor(clock=ManualClock())
        monitor.record_audit(violations=1, groups=2)
        events = EventLog(enabled=True)
        events.emit(table="t")
        report = ObservabilityReport(events=events, slo=monitor)
        data = report.to_dict()
        assert data["slo"]["slos"]
        assert data["events"]["recorded"] == 1
        assert "bound_violation_rate" in report.render()
