"""Tail-based trace retention: policy, provisional ring, promotion."""

from repro.obs.trace import QueryTrace, RetentionPolicy, Tracer, TraceStore


def _trace(seconds=0.0):
    tracer = Tracer(enabled=True)
    root = tracer.span("answer")
    with root:
        pass
    trace = QueryTrace(root)
    if seconds:
        root.seconds = seconds
    return trace


class TestRetentionPolicy:
    def test_error_beats_degraded_beats_slow(self):
        policy = RetentionPolicy(slow_threshold_seconds=0.0)
        trace = _trace()
        assert policy.reason(trace, degraded=True, error=True) == "error"
        assert policy.reason(trace, degraded=True, error=False) == "degraded"
        assert policy.reason(trace, degraded=False, error=False) == "slow"

    def test_fast_clean_trace_is_boring(self):
        policy = RetentionPolicy(slow_threshold_seconds=10.0)
        assert policy.reason(_trace(), degraded=False, error=False) is None

    def test_criteria_can_be_disabled(self):
        policy = RetentionPolicy(
            slow_threshold_seconds=None,
            keep_degraded=False,
            keep_errors=False,
        )
        assert policy.reason(_trace(), degraded=True, error=True) is None


class TestTraceStore:
    def test_interesting_traces_retained_immediately(self):
        store = TraceStore(RetentionPolicy(slow_threshold_seconds=None))
        reason = store.offer("q1", _trace(), error=True)
        assert reason == "error"
        assert store.get("q1") is not None
        assert store.reason("q1") == "error"
        assert len(store) == 1

    def test_boring_traces_ride_the_provisional_ring(self):
        store = TraceStore(RetentionPolicy(slow_threshold_seconds=None))
        assert store.offer("q1", _trace()) is None
        assert len(store) == 0  # not retained...
        assert store.get("q1") is not None  # ...but still reachable

    def test_promote_pins_a_boring_trace_after_the_fact(self):
        store = TraceStore(RetentionPolicy(slow_threshold_seconds=None))
        store.offer("q1", _trace())
        assert store.promote("q1", "bound_violation") is True
        assert store.reason("q1") == "bound_violation"
        assert len(store) == 1
        assert [t for t, _r, _tr in store.retained()] == ["q1"]

    def test_promote_after_ring_eviction_fails_gracefully(self):
        store = TraceStore(
            RetentionPolicy(recent_capacity=2, slow_threshold_seconds=None)
        )
        store.offer("q1", _trace())
        store.offer("q2", _trace())
        store.offer("q3", _trace())  # evicts q1 from the ring
        assert store.promote("q1", "bound_violation") is False
        assert store.promote("q3", "bound_violation") is True

    def test_retained_capacity_evicts_oldest(self):
        store = TraceStore(
            RetentionPolicy(capacity=2, slow_threshold_seconds=None)
        )
        for i in range(4):
            store.offer(f"q{i}", _trace(), error=True)
        assert len(store) == 2
        assert [t for t, _r, _tr in store.retained()] == ["q2", "q3"]

    def test_clear_empties_both_tiers(self):
        store = TraceStore()
        store.offer("q1", _trace(), error=True)
        store.offer("q2", _trace())
        store.clear()
        assert len(store) == 0
        assert store.get("q2") is None
