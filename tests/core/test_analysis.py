"""Unit tests for the guarantee report (Section 4's alpha, quantified)."""

import pytest

from repro.core import (
    BasicCongress,
    Congress,
    House,
    Senate,
    guarantee_report,
)

COUNTS = {
    ("a1", "b1"): 5000,
    ("a1", "b2"): 300,
    ("a2", "b1"): 150,
    ("a2", "b2"): 50,
}
G = ("A", "B")
X = 110.0


def report_for(strategy):
    return guarantee_report(strategy.allocate(COUNTS, G, X))


class TestGuaranteeReport:
    def test_congress_worst_ratio_equals_f(self):
        allocation = Congress().allocate(COUNTS, G, X)
        report = guarantee_report(allocation)
        assert report.worst_ratio == pytest.approx(
            allocation.scale_down_factor, abs=1e-6
        )

    def test_congress_ratio_uniform_across_groupings(self):
        """Equation 5 guarantees exactly f at every grouping."""
        allocation = Congress().allocate(COUNTS, G, X)
        report = guarantee_report(allocation)
        f = allocation.scale_down_factor
        for guarantee in report.per_grouping:
            assert guarantee.worst_ratio >= f - 1e-9

    def test_house_collapses_on_fine_groupings(self):
        report = report_for(House())
        by_grouping = {g.grouping: g for g in report.per_grouping}
        # Perfect at T = ∅ (House IS the uniform sample)...
        assert by_grouping[()].worst_ratio == pytest.approx(1.0)
        # ...terrible at the finest grouping (small groups starved).
        assert by_grouping[G].worst_ratio < 0.1

    def test_senate_collapses_on_coarse_groupings(self):
        report = report_for(Senate())
        by_grouping = {g.grouping: g for g in report.per_grouping}
        # Perfect at the finest grouping...
        assert by_grouping[G].worst_ratio == pytest.approx(1.0)
        # ...weak at T = ∅ (large groups sampled at a low rate).
        assert by_grouping[()].worst_ratio < 0.5

    def test_basic_congress_fails_intermediate_groupings(self):
        """The paper's criticism: Basic Congress only covers ∅ and G."""
        allocation = BasicCongress().allocate(COUNTS, G, X)
        report = guarantee_report(allocation)
        by_grouping = {g.grouping: g for g in report.per_grouping}
        f = allocation.scale_down_factor
        # Covered groupings achieve ~f...
        assert by_grouping[()].worst_ratio >= f - 1e-9
        assert by_grouping[G].worst_ratio >= f - 1e-9
        # ...but some intermediate grouping falls below f.
        intermediate = min(
            by_grouping[("A",)].worst_ratio, by_grouping[("B",)].worst_ratio
        )
        assert intermediate < f - 0.05

    def test_congress_has_best_overall_guarantee(self):
        ratios = {
            strategy.name: report_for(strategy).worst_ratio
            for strategy in (House(), Senate(), BasicCongress(), Congress())
        }
        assert max(ratios, key=ratios.get) == "congress"

    def test_uniform_data_all_perfect(self):
        counts = {(a, b): 100 for a in ("x", "y") for b in ("p", "q")}
        for strategy in (House(), Senate(), Congress()):
            allocation = strategy.allocate(counts, G, 40)
            assert guarantee_report(allocation).worst_ratio == pytest.approx(
                1.0
            )

    def test_describe_output(self):
        report = report_for(Congress())
        text = report.describe()
        assert "congress" in text
        assert "T=A,B" in text
        assert "overall worst ratio" in text

    def test_rates_capped_at_one(self):
        # A budget bigger than the population: everything fully sampled.
        counts = {("a",): 5, ("b",): 5}
        allocation = Congress().allocate(counts, ("G",), 100)
        report = guarantee_report(allocation)
        assert report.worst_ratio == pytest.approx(1.0)
