"""Unit tests for the Section 8 multi-criteria framework."""

import numpy as np
import pytest

from repro.core import (
    Congress,
    GroupingCriterion,
    MultiCriteriaCongress,
    RangeBiasCriterion,
    VarianceCriterion,
    senate_share,
)
from repro.engine import ColumnType, Schema, Table
from repro.sampling import all_groupings


COUNTS = {("a1", "b1"): 500, ("a1", "b2"): 300, ("a2", "b1"): 200}
G = ("A", "B")


@pytest.fixture
def variance_table():
    """Two equal-size groups; group 'hi' has much larger spread."""
    rng = np.random.default_rng(1)
    schema = Schema.of(("g", ColumnType.STR), ("v", ColumnType.FLOAT))
    lo = rng.normal(100, 1.0, 500)
    hi = rng.normal(100, 50.0, 500)
    return Table.from_columns(
        schema, g=["lo"] * 500 + ["hi"] * 500, v=np.concatenate([lo, hi])
    )


class TestGroupingCriterion:
    def test_equals_senate_share(self):
        for target in all_groupings(G):
            criterion = GroupingCriterion(target)
            vector = criterion.weight_vector(COUNTS, G, 100)
            expected = senate_share(COUNTS, G, target, 100)
            for group in COUNTS:
                assert vector[group] == pytest.approx(expected[group])


class TestCongressAsSpecialCase:
    def test_multi_criteria_reproduces_congress(self):
        criteria = [GroupingCriterion(t) for t in all_groupings(G)]
        multi = MultiCriteriaCongress(criteria)
        m = multi.allocate(COUNTS, G, 100)
        c = Congress().allocate(COUNTS, G, 100)
        for group in COUNTS:
            assert m.fractional[group] == pytest.approx(c.fractional[group])

    def test_weight_table_has_all_criteria(self):
        criteria = [GroupingCriterion(t) for t in all_groupings(G)]
        multi = MultiCriteriaCongress(criteria)
        table = multi.weight_table(COUNTS, G, 100)
        assert len(table) == 4

    def test_empty_criteria_rejected(self):
        with pytest.raises(ValueError):
            MultiCriteriaCongress([])


class TestVarianceCriterion:
    def test_high_variance_group_gets_more(self, variance_table):
        counts = {("lo",): 500, ("hi",): 500}
        criterion = VarianceCriterion(variance_table, "v")
        vector = criterion.weight_vector(counts, ("g",), 100)
        assert vector[("hi",)] > 10 * vector[("lo",)]

    def test_total_equals_budget(self, variance_table):
        counts = {("lo",): 500, ("hi",): 500}
        vector = VarianceCriterion(variance_table, "v").weight_vector(
            counts, ("g",), 100
        )
        assert sum(vector.values()) == pytest.approx(100)

    def test_constant_values_fall_back_to_uniform(self):
        schema = Schema.of(("g", ColumnType.STR), ("v", ColumnType.FLOAT))
        table = Table.from_columns(
            schema, g=["x", "x", "y", "y"], v=[5.0, 5.0, 5.0, 5.0]
        )
        vector = VarianceCriterion(table, "v").weight_vector(
            {("x",): 2, ("y",): 2}, ("g",), 100
        )
        assert vector[("x",)] == pytest.approx(vector[("y",)])


class TestRangeBiasCriterion:
    def test_weights_follow_function(self):
        counts = {("old", "x"): 100, ("new", "x"): 100}
        criterion = RangeBiasCriterion(
            "era", lambda era: 1.0 if era == "new" else 0.25
        )
        vector = criterion.weight_vector(counts, ("era", "other"), 100)
        assert vector[("new", "x")] == pytest.approx(80)
        assert vector[("old", "x")] == pytest.approx(20)

    def test_population_still_matters_within_equal_weight(self):
        counts = {("new", "x"): 300, ("new", "y"): 100}
        criterion = RangeBiasCriterion("era", lambda era: 1.0)
        vector = criterion.weight_vector(counts, ("era", "other"), 100)
        assert vector[("new", "x")] == pytest.approx(75)

    def test_non_grouping_column_rejected(self):
        criterion = RangeBiasCriterion("missing", lambda v: 1.0)
        with pytest.raises(ValueError):
            criterion.weight_vector({("a",): 1}, ("g",), 10)

    def test_negative_weight_rejected(self):
        criterion = RangeBiasCriterion("g", lambda v: -1.0)
        with pytest.raises(ValueError):
            criterion.weight_vector({("a",): 1}, ("g",), 10)


class TestCombination:
    def test_variance_column_lifts_volatile_group(self, variance_table):
        counts = {("lo",): 500, ("hi",): 500}
        plain = MultiCriteriaCongress(
            [GroupingCriterion(t) for t in all_groupings(("g",))]
        ).allocate(counts, ("g",), 100)
        with_var = MultiCriteriaCongress(
            [GroupingCriterion(t) for t in all_groupings(("g",))]
            + [VarianceCriterion(variance_table, "v")]
        ).allocate(counts, ("g",), 100)
        assert with_var.fractional[("hi",)] > plain.fractional[("hi",)]
