"""Golden test: the paper's Figure 5 worked example, to the printed digit.

Figure 5 lists, for the relation with finest groups
(a1,b1)=3000, (a1,b2)=3000, (a1,b3)=1500, (a2,b3)=2500 and X=100, the
expected sample sizes of every strategy and the intermediate s_{g,T}
columns.  Every number below is transcribed from the paper.
"""

import pytest

from repro.core import BasicCongress, Congress, House, Senate
from repro.experiments.fig5 import FIG5_BUDGET, FIG5_COUNTS, FIG5_GROUPING, run_fig5

G11, G12, G13, G23 = ("a1", "b1"), ("a1", "b2"), ("a1", "b3"), ("a2", "b3")


def approx(value):
    return pytest.approx(value, abs=0.05)


class TestFigure5:
    def test_house_column(self):
        allocation = House().allocate(FIG5_COUNTS, FIG5_GROUPING, FIG5_BUDGET)
        assert allocation.fractional[G11] == approx(30)
        assert allocation.fractional[G12] == approx(30)
        assert allocation.fractional[G13] == approx(15)
        assert allocation.fractional[G23] == approx(25)

    def test_senate_column(self):
        allocation = Senate().allocate(FIG5_COUNTS, FIG5_GROUPING, FIG5_BUDGET)
        for group in (G11, G12, G13, G23):
            assert allocation.fractional[group] == approx(25)

    def test_basic_congress_before_scaling(self):
        allocation = BasicCongress().allocate(
            FIG5_COUNTS, FIG5_GROUPING, FIG5_BUDGET
        )
        assert allocation.pre_scaling[G11] == approx(30)
        assert allocation.pre_scaling[G12] == approx(30)
        assert allocation.pre_scaling[G13] == approx(25)
        assert allocation.pre_scaling[G23] == approx(25)

    def test_basic_congress_after_scaling(self):
        allocation = BasicCongress().allocate(
            FIG5_COUNTS, FIG5_GROUPING, FIG5_BUDGET
        )
        assert allocation.fractional[G11] == approx(27.3)
        assert allocation.fractional[G12] == approx(27.3)
        assert allocation.fractional[G13] == approx(22.7)
        assert allocation.fractional[G23] == approx(22.7)

    def test_share_column_for_grouping_a(self):
        shares = Congress().share_table(FIG5_COUNTS, FIG5_GROUPING, FIG5_BUDGET)
        s_a = shares[("A",)]
        assert s_a[G11] == approx(20)  # "20 (of 50)"
        assert s_a[G12] == approx(20)
        assert s_a[G13] == approx(10)  # "10 (of 50)"
        assert s_a[G23] == approx(50)

    def test_share_column_for_grouping_b(self):
        shares = Congress().share_table(FIG5_COUNTS, FIG5_GROUPING, FIG5_BUDGET)
        s_b = shares[("B",)]
        assert s_b[G11] == approx(33.3)
        assert s_b[G12] == approx(33.3)
        assert s_b[G13] == approx(12.5)  # "12.5 (of 33.3)"
        assert s_b[G23] == approx(20.8)  # "20.8 (of 33.3)"

    def test_congress_before_scaling(self):
        allocation = Congress().allocate(FIG5_COUNTS, FIG5_GROUPING, FIG5_BUDGET)
        assert allocation.pre_scaling[G11] == approx(33.3)
        assert allocation.pre_scaling[G12] == approx(33.3)
        assert allocation.pre_scaling[G13] == approx(25)
        assert allocation.pre_scaling[G23] == approx(50)

    def test_congress_after_scaling(self):
        allocation = Congress().allocate(FIG5_COUNTS, FIG5_GROUPING, FIG5_BUDGET)
        assert allocation.fractional[G11] == approx(23.5)
        assert allocation.fractional[G12] == approx(23.5)
        assert allocation.fractional[G13] == approx(17.6)  # paper prints 17.7
        assert allocation.fractional[G23] == approx(35.3)

    def test_congress_scale_down_factor(self):
        allocation = Congress().allocate(FIG5_COUNTS, FIG5_GROUPING, FIG5_BUDGET)
        # f = 100 / 141.67.
        assert allocation.scale_down_factor == pytest.approx(0.7059, abs=1e-3)

    def test_runner_produces_all_columns(self):
        result = run_fig5()
        assert set(result.columns) == {
            "house(s_g,0)",
            "senate(s_g,AB)",
            "basic_pre",
            "basic",
            "s_g,A",
            "s_g,B",
            "congress_pre",
            "congress",
        }
        formatted = result.format()
        assert "Figure 5" in formatted
        assert "35.3" in formatted
