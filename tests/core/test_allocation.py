"""Unit tests for the Allocation container and strategy plumbing."""

import pytest

from repro.core import Allocation, Congress, House, allocate_from_table, build_sample
from repro.core.allocation import _validate


class TestValidation:
    def test_negative_budget(self):
        with pytest.raises(ValueError):
            _validate({("g",): 1}, -1)

    def test_empty_counts(self):
        with pytest.raises(ValueError):
            _validate({}, 10)

    def test_negative_counts(self):
        with pytest.raises(ValueError):
            _validate({("g",): -1}, 10)

    def test_zero_count_groups_rejected(self):
        with pytest.raises(ValueError, match="empty groups"):
            _validate({("g",): 0}, 10)

    def test_allocation_unknown_group_rejected(self):
        with pytest.raises(ValueError):
            Allocation(
                strategy="x",
                grouping_columns=("a",),
                budget=10,
                fractional={("g",): 5.0},
                populations={("h",): 10},
            )


class TestRounding:
    def test_rounded_total_equals_budget(self):
        counts = {("a",): 100, ("b",): 100, ("c",): 100}
        allocation = House().allocate(counts, ["g"], 10)
        rounded = allocation.rounded()
        assert sum(rounded.values()) == 10

    def test_rounded_capped_at_population(self):
        counts = {("a",): 2, ("b",): 1000}
        allocation = Congress().allocate(counts, ["g"], 100)
        rounded = allocation.rounded()
        assert rounded[("a",)] <= 2
        assert sum(rounded.values()) == 100

    def test_budget_exceeding_population_saturates(self):
        counts = {("a",): 3, ("b",): 4}
        allocation = House().allocate(counts, ["g"], 100)
        rounded = allocation.rounded()
        assert rounded == {("a",): 3, ("b",): 4}

    def test_zero_budget(self):
        counts = {("a",): 10}
        allocation = House().allocate(counts, ["g"], 0)
        assert allocation.rounded() == {("a",): 0}


class TestTableHelpers:
    def test_allocate_from_table(self, skewed_table):
        allocation = allocate_from_table(House(), skewed_table, ["a", "b"], 100)
        assert allocation.total_fractional == pytest.approx(100)
        # Proportionality check on the dominant group (~76% of rows).
        big = allocation.fractional[("a1", "b1")]
        assert 65 < big < 85

    def test_build_sample_size(self, skewed_table, rng):
        sample = build_sample(Congress(), skewed_table, ["a", "b"], 500, rng=rng)
        assert sample.total_sample_size == 500
        assert set(sample.strata) == {
            ("a1", "b1"), ("a1", "b2"), ("a2", "b1"),
            ("a2", "b2"), ("a3", "b1"), ("a3", "b2"),
        }

    def test_scale_down_factor_bounds(self, skewed_table):
        allocation = allocate_from_table(
            Congress(), skewed_table, ["a", "b"], 500
        )
        assert 0.25 < allocation.scale_down_factor <= 1.0
