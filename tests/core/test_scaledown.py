"""Unit tests for the Section 4.6 scale-down factor analysis."""

import pytest

from repro.core import (
    pathological_counts,
    pathological_factor_bound,
    scale_down_factor,
    scale_down_lower_bound,
    uniform_cross_product_counts,
)


class TestPathologicalCounts:
    def test_group_count(self):
        counts = pathological_counts(2, 3)
        assert len(counts) == 9

    def test_equation_7_values(self):
        counts = pathological_counts(2, 3)
        base = 2 * 3
        # alpha=2 for (1,1); alpha=1 for (1,2); alpha=0 for (2,3).
        assert counts[(1, 1)] == base ** 8
        assert counts[(1, 2)] == base ** 4
        assert counts[(2, 3)] == 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            pathological_counts(0, 3)
        with pytest.raises(ValueError):
            pathological_counts(1, 1)


class TestScaleDownFactor:
    def test_uniform_gives_one(self):
        counts = uniform_cross_product_counts([2, 3])
        assert scale_down_factor(counts, ("A", "B")) == pytest.approx(1.0)

    def test_budget_invariance(self):
        counts = pathological_counts(2, 4)
        f1 = scale_down_factor(counts, ("A", "B"), budget=1.0)
        f2 = scale_down_factor(counts, ("A", "B"), budget=1000.0)
        assert f1 == pytest.approx(f2)

    @pytest.mark.parametrize("n,m", [(1, 4), (2, 4), (2, 8), (3, 4)])
    def test_pathological_within_paper_bounds(self, n, m):
        counts = pathological_counts(n, m)
        grouping = tuple(f"A{i}" for i in range(n))
        f = scale_down_factor(counts, grouping)
        assert scale_down_lower_bound(n) < f
        assert f < pathological_factor_bound(n, m) + 1e-9

    def test_factor_approaches_lower_bound_with_m(self):
        grouping = ("A0", "A1")
        f_small = scale_down_factor(pathological_counts(2, 4), grouping)
        f_large = scale_down_factor(pathological_counts(2, 16), grouping)
        bound = scale_down_lower_bound(2)
        assert f_large < f_small
        assert f_large - bound < f_small - bound

    def test_lower_bound_values(self):
        assert scale_down_lower_bound(0) == 1.0
        assert scale_down_lower_bound(3) == 0.125
        with pytest.raises(ValueError):
            scale_down_lower_bound(-1)


class TestUniformCounts:
    def test_shape(self):
        counts = uniform_cross_product_counts([2, 2], per_group=7)
        assert len(counts) == 4
        assert all(v == 7 for v in counts.values())

    def test_invalid_domain(self):
        with pytest.raises(ValueError):
            uniform_cross_product_counts([0])
