"""Direct tests of individual claims the paper states in prose."""

import numpy as np
import pytest

from repro.core import BasicCongress, Congress, House, Senate, senate_share
from repro.sampling import all_groupings, projected_counts


COUNTS = {
    ("a1", "b1"): 4000,
    ("a1", "b2"): 900,
    ("a2", "b1"): 700,
    ("a2", "b2"): 250,
    ("a3", "b1"): 120,
    ("a3", "b2"): 30,
}
G = ("A", "B")
X = 300.0


class TestSection44SenateSubsetClaim:
    def test_senate_serves_coarser_groupings_at_least_as_well(self):
        """'Given a Senate sample for T, we can also provide approximate
        answers to group-by queries on any subset T' of T, with at least
        the same quality' -- every group under T' holds >= X/m_T samples."""
        senate = Senate().allocate(COUNTS, G, X)
        m_t = len(COUNTS)
        per_group_floor = X / m_t
        for target in all_groupings(G):
            sizes = {}
            for key, expected in senate.fractional.items():
                from repro.sampling import project_key

                coarse = project_key(key, G, target)
                sizes[coarse] = sizes.get(coarse, 0.0) + expected
            for coarse, total in sizes.items():
                assert total >= per_group_floor - 1e-9


class TestSection45BasicCongressBound:
    def test_pre_scaling_space_bound(self):
        """'X' <= (2 m_T - 1)/m_T * X - m_T + 1 < 2X' (Section 4.5)."""
        basic = BasicCongress().allocate(COUNTS, G, X)
        pre_total = sum(basic.pre_scaling.values())
        m_t = len(COUNTS)
        assert pre_total <= (2 * m_t - 1) / m_t * X - m_t + 1 + 1e-6
        assert pre_total < 2 * X


class TestSection43HouseTrends:
    def test_larger_selectivity_smaller_relative_error(self, skewed_table):
        """House trend 1: 'the quality of approximate answers increases
        with the query selectivity'."""
        from repro.core import build_sample
        from repro.engine import Comparison, col
        from repro.estimators import estimate_single

        deviations = {0.9: [], 0.05: []}
        for seed in range(15):
            rng = np.random.default_rng(seed)
            sample = build_sample(House(), skewed_table, ["a", "b"], 800, rng=rng)
            for selectivity in deviations:
                cutoff = int(selectivity * 20_000)
                predicate = Comparison.of(col("id"), "<", cutoff)
                estimate = estimate_single(
                    sample, "sum", "q", predicate=predicate
                )
                exact = float(
                    np.sum(
                        skewed_table.column("q")[
                            skewed_table.column("id") < cutoff
                        ]
                    )
                )
                deviations[selectivity].append(
                    abs(estimate.value - exact) / exact
                )
        assert np.mean(deviations[0.9]) < np.mean(deviations[0.05])


class TestSection46FUniform:
    def test_f_is_one_iff_uniform_cross_product(self):
        uniform = {
            (a, b): 500 for a in ("a1", "a2") for b in ("b1", "b2", "b3")
        }
        allocation = Congress().allocate(uniform, G, 60)
        assert allocation.scale_down_factor == pytest.approx(1.0)
        # Perturb one group: f drops strictly below 1.
        uniform[("a1", "b1")] = 5000
        perturbed = Congress().allocate(uniform, G, 60)
        assert perturbed.scale_down_factor < 1.0


class TestEquation4Consistency:
    def test_shares_nest_over_groupings(self):
        """Summing s_{g,T} over the subgroups of any group h equals h's
        S1 share X/m_T -- Equation 4's defining property."""
        for target in all_groupings(G):
            shares = senate_share(COUNTS, G, target, X)
            by_group = projected_counts(COUNTS, G, target)
            m_t = len(by_group)
            from repro.sampling import project_key

            sums = {}
            for key, share in shares.items():
                coarse = project_key(key, G, target)
                sums[coarse] = sums.get(coarse, 0.0) + share
            for coarse, total in sums.items():
                assert total == pytest.approx(X / m_t)
