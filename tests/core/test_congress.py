"""Unit tests for Basic Congress and Congress (Equations 4-6)."""

import pytest

from repro.core import (
    BasicCongress,
    Congress,
    House,
    Senate,
    congress_share_table,
    senate_share,
)
from repro.sampling import all_groupings


COUNTS = {
    ("a1", "b1"): 5000,
    ("a1", "b2"): 300,
    ("a2", "b1"): 150,
    ("a2", "b2"): 50,
}
G = ("A", "B")
X = 110.0


class TestBasicCongress:
    def test_pre_scaling_is_max_of_house_senate(self):
        basic = BasicCongress().allocate(COUNTS, G, X)
        house = House().allocate(COUNTS, G, X)
        senate = Senate().allocate(COUNTS, G, X)
        for group in COUNTS:
            assert basic.pre_scaling[group] == pytest.approx(
                max(house.fractional[group], senate.fractional[group])
            )

    def test_scaled_total_is_budget(self):
        basic = BasicCongress().allocate(COUNTS, G, X)
        assert basic.total_fractional == pytest.approx(X)

    def test_uniform_distribution_no_scaling(self):
        counts = {("a", "p"): 100, ("a", "q"): 100, ("b", "p"): 100, ("b", "q"): 100}
        basic = BasicCongress().allocate(counts, G, 40)
        assert basic.scale_down_factor == pytest.approx(1.0)

    def test_pre_scaling_total_below_2x(self):
        # Paper: X' <= (2 m_T - 1)/m_T * X - m_T + 1 < 2X.
        basic = BasicCongress().allocate(COUNTS, G, X)
        assert sum(basic.pre_scaling.values()) < 2 * X


class TestCongress:
    def test_share_table_covers_power_set(self):
        table = congress_share_table(COUNTS, G, X)
        assert set(table) == set(all_groupings(G))

    def test_share_table_matches_equation_4(self):
        table = congress_share_table(COUNTS, G, X)
        for target in all_groupings(G):
            expected = senate_share(COUNTS, G, target, X)
            for group in COUNTS:
                assert table[tuple(target)][group] == pytest.approx(
                    expected[group]
                )

    def test_pre_scaling_is_row_max(self):
        congress = Congress().allocate(COUNTS, G, X)
        table = congress_share_table(COUNTS, G, X)
        for group in COUNTS:
            assert congress.pre_scaling[group] == pytest.approx(
                max(table[t][group] for t in table)
            )

    def test_equation_5_scaling(self):
        congress = Congress().allocate(COUNTS, G, X)
        total_pre = sum(congress.pre_scaling.values())
        for group in COUNTS:
            assert congress.fractional[group] == pytest.approx(
                X * congress.pre_scaling[group] / total_pre
            )

    def test_f_guarantee_every_grouping(self):
        """Every group under every grouping gets >= f of its S1 share."""
        congress = Congress().allocate(COUNTS, G, X)
        f = congress.scale_down_factor
        table = congress_share_table(COUNTS, G, X)
        for target, shares in table.items():
            for group, s1_share in shares.items():
                assert congress.fractional[group] >= f * s1_share - 1e-9

    def test_f_bounds(self):
        congress = Congress().allocate(COUNTS, G, X)
        assert 2.0 ** (-len(G)) < congress.scale_down_factor <= 1.0

    def test_dominates_senate_minimum(self):
        """Congress gives the smallest group at least f * Senate share."""
        congress = Congress().allocate(COUNTS, G, X)
        f = congress.scale_down_factor
        senate = Senate().allocate(COUNTS, G, X)
        smallest = ("a2", "b2")
        assert congress.fractional[smallest] >= f * senate.fractional[smallest] - 1e-9

    def test_single_grouping_column(self):
        counts = {("g1",): 90, ("g2",): 10}
        congress = Congress().allocate(counts, ("A",), 20)
        # max(house, senate) = max(18, 10)=18 for g1; max(2,10)=10 for g2.
        assert congress.pre_scaling[("g1",)] == pytest.approx(18)
        assert congress.pre_scaling[("g2",)] == pytest.approx(10)
        assert congress.total_fractional == pytest.approx(20)

    def test_restricted_groupings_reduce_to_basic(self):
        """Congress over {∅, G} must equal Basic Congress."""
        restricted = Congress(groupings=[(), G]).allocate(COUNTS, G, X)
        basic = BasicCongress().allocate(COUNTS, G, X)
        for group in COUNTS:
            assert restricted.fractional[group] == pytest.approx(
                basic.fractional[group]
            )

    def test_restricted_single_grouping_is_senate(self):
        restricted = Congress(groupings=[G]).allocate(COUNTS, G, X)
        senate = Senate().allocate(COUNTS, G, X)
        for group in COUNTS:
            assert restricted.fractional[group] == pytest.approx(
                senate.fractional[group]
            )

    def test_unknown_grouping_column_rejected(self):
        with pytest.raises(ValueError):
            Congress(groupings=[("Z",)]).allocate(COUNTS, G, X)

    def test_name_variants(self):
        assert Congress().name == "congress"
        assert Congress(groupings=[(), ("A",)]).name == "congress[-;A]"
