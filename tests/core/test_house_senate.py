"""Unit tests for House and Senate allocation."""

import pytest

from repro.core import House, Senate, senate_share


COUNTS = {("a1", "b1"): 600, ("a1", "b2"): 300, ("a2", "b1"): 100}
G = ("A", "B")


class TestHouse:
    def test_proportional(self):
        allocation = House().allocate(COUNTS, G, 100)
        assert allocation.fractional[("a1", "b1")] == pytest.approx(60)
        assert allocation.fractional[("a1", "b2")] == pytest.approx(30)
        assert allocation.fractional[("a2", "b1")] == pytest.approx(10)

    def test_total_is_budget(self):
        allocation = House().allocate(COUNTS, G, 57)
        assert allocation.total_fractional == pytest.approx(57)

    def test_no_scaling_needed(self):
        allocation = House().allocate(COUNTS, G, 100)
        assert allocation.scale_down_factor == pytest.approx(1.0)

    def test_name(self):
        assert House().name == "house"


class TestSenate:
    def test_equal_per_finest_group(self):
        allocation = Senate().allocate(COUNTS, G, 90)
        for group in COUNTS:
            assert allocation.fractional[group] == pytest.approx(30)

    def test_subset_target(self):
        # Senate on {A}: groups a1 (900 tuples) and a2 (100) each get 50,
        # distributed within a1 by proportion.
        allocation = Senate(target=["A"]).allocate(COUNTS, G, 100)
        assert allocation.fractional[("a2", "b1")] == pytest.approx(50)
        assert allocation.fractional[("a1", "b1")] == pytest.approx(50 * 600 / 900)
        assert allocation.fractional[("a1", "b2")] == pytest.approx(50 * 300 / 900)

    def test_empty_target_is_house(self):
        senate = Senate(target=[])
        house = House()
        s = senate.allocate(COUNTS, G, 100)
        h = house.allocate(COUNTS, G, 100)
        for group in COUNTS:
            assert s.fractional[group] == pytest.approx(h.fractional[group])

    def test_unknown_target_column(self):
        with pytest.raises(ValueError, match="not in grouping"):
            Senate(target=["Z"]).allocate(COUNTS, G, 100)

    def test_name_includes_target(self):
        assert Senate().name == "senate"
        assert Senate(target=["A"]).name == "senate[A]"


class TestSenateShare:
    def test_matches_equation_4(self):
        # Grouping {B}: b1 has 700 tuples, b2 has 300; m_T = 2; X/m_T = 50.
        shares = senate_share(COUNTS, G, ["B"], 100)
        assert shares[("a1", "b1")] == pytest.approx(50 * 600 / 700)
        assert shares[("a2", "b1")] == pytest.approx(50 * 100 / 700)
        assert shares[("a1", "b2")] == pytest.approx(50)

    def test_shares_sum_to_budget(self):
        for target in ([], ["A"], ["B"], ["A", "B"]):
            shares = senate_share(COUNTS, G, target, 100)
            assert sum(shares.values()) == pytest.approx(100)
