"""Unit tests for workload-adaptive allocation (Section 4.7)."""

import pytest

from repro.core import Congress, GroupPreferences, WorkloadCongress


COUNTS = {("a1", "b1"): 700, ("a1", "b2"): 200, ("a2", "b1"): 100}
G = ("A", "B")


class TestGroupPreferences:
    def test_set_and_get(self):
        prefs = GroupPreferences().set(["A"], ("a1",), 0.9)
        assert prefs.weight(("A",), ("a1",), 0.5) == 0.9

    def test_default_when_unset(self):
        prefs = GroupPreferences()
        assert prefs.weight(("A",), ("a1",), 0.5) == 0.5

    def test_grouping_boost_multiplies(self):
        prefs = GroupPreferences().set_grouping_weight(["A"], 2.0)
        assert prefs.weight(("A",), ("a1",), 0.5) == 1.0

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            GroupPreferences().set(["A"], ("a1",), -1)
        with pytest.raises(ValueError):
            GroupPreferences().set_grouping_weight(["A"], -1)


class TestWorkloadCongress:
    def test_uniform_preferences_equal_plain_congress(self):
        workload = WorkloadCongress(GroupPreferences())
        plain = Congress()
        w = workload.allocate(COUNTS, G, 100)
        c = plain.allocate(COUNTS, G, 100)
        for group in COUNTS:
            assert w.fractional[group] == pytest.approx(c.fractional[group])

    def test_preference_shifts_allocation(self):
        # Strongly prefer group a2 under grouping {A}.
        prefs = GroupPreferences()
        prefs.set(["A"], ("a2",), 0.9)
        prefs.set(["A"], ("a1",), 0.1)
        weighted = WorkloadCongress(prefs).allocate(COUNTS, G, 100)
        plain = Congress().allocate(COUNTS, G, 100)
        assert weighted.fractional[("a2", "b1")] > plain.fractional[("a2", "b1")]

    def test_total_is_budget(self):
        prefs = GroupPreferences().set(["A"], ("a2",), 0.99)
        weighted = WorkloadCongress(prefs).allocate(COUNTS, G, 100)
        assert weighted.total_fractional == pytest.approx(100)

    def test_restricted_groupings(self):
        workload = WorkloadCongress(GroupPreferences(), groupings=[G])
        allocation = workload.allocate(COUNTS, G, 90)
        # Only the finest grouping: equals Senate (30 each).
        for group in COUNTS:
            assert allocation.fractional[group] == pytest.approx(30)
