"""Smoke tests: every example script must run cleanly end to end.

Each example is executed in a subprocess (its own interpreter, like a user
would run it) with a generous timeout; we assert a zero exit code and the
expected headline output.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

CASES = [
    ("quickstart.py", "Congress guarantees every state"),
    ("tpcd_q1_demo.py", "congressional sample"),
    ("streaming_warehouse.py", "No base-table rescan was needed"),
    ("workload_tuning.py", "weight-vector column"),
    ("star_schema_rollup.py", "join"),
    ("olap_drilldown.py", "workload-tuned allocation ready"),
    ("budget_calibration.py", "recommended rewrite strategy"),
    ("stream_demo.py", "bit-identical to exact()"),
]


@pytest.mark.parametrize("script,expected", CASES)
def test_example_runs(script, expected):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert expected in proc.stdout, proc.stdout
