"""Golden regression suite for Expt-1-style allocations and answers.

A seeded Zipf-skewed table (Section 7.1.1 shape: Zipf group sizes, skewed
measure column) is pushed through every allocation strategy and through the
full approximate-answering pipeline.  Every number -- fractional
allocations, rounded sample sizes, per-group estimates, error-bound
half-widths, and the exact answers -- is compared against a checked-in
golden file; any drift beyond 1e-9 relative fails.

The goldens pin the *implementation's* reproducibility, not the paper's
ground truth: they catch silent numerical drift from refactors (e.g. the
partial/merge aggregate rewrite) the ordinary assertions are too loose to
see.

Regenerate after an intentional change with::

    REPRO_REGEN_GOLDENS=1 PYTHONPATH=src python -m pytest \
        tests/integration/test_golden_answers.py
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.aqua import AquaSystem
from repro.core import BasicCongress, Congress, House, Senate
from repro.core.allocation import allocate_from_table
from repro.engine import Column, ColumnType, Schema, Table
from repro.synthetic.zipf import zipf_choice, zipf_sizes

GOLDEN_PATH = Path(__file__).parent / "goldens" / "expt1_zipf.json"
TOLERANCE = 1e-9

STRATEGIES = {
    "house": House,
    "senate": Senate,
    "basic_congress": BasicCongress,
    "congress": Congress,
}

QUERIES = [
    "SELECT a, SUM(v) AS s FROM zipf GROUP BY a",
    "SELECT a, COUNT(*) AS c FROM zipf GROUP BY a",
    "SELECT a, b, AVG(v) AS m FROM zipf GROUP BY a, b",
    "SELECT b, SUM(v) AS s FROM zipf WHERE v > 50 GROUP BY b",
]

BUDGET = 600
SEED = 20260806


def _zipf_table() -> Table:
    """12 Zipf(1.0)-sized groups x 2 subgroups, Zipf(0.86) measure values."""
    rng = np.random.default_rng(SEED)
    n = 10_000
    sizes = zipf_sizes(n, 12, z=1.0)
    a = np.repeat([f"g{i:02d}" for i in range(12)], sizes)
    b = rng.choice(["u", "w"], size=n, p=[0.8, 0.2])
    v = zipf_choice(
        np.linspace(1.0, 1000.0, 200), z=0.86, size=n, rng=rng
    )
    schema = Schema(
        [
            Column("a", ColumnType.STR, "grouping"),
            Column("b", ColumnType.STR, "grouping"),
            Column("v", ColumnType.FLOAT, "aggregate"),
        ]
    )
    return Table(schema, {"a": a, "b": b, "v": v})


def _key_str(key) -> str:
    return "|".join(str(part) for part in key)


def _table_payload(table: Table) -> dict:
    out = {}
    for name in table.schema.names:
        values = table.column(name)
        if np.asarray(values).dtype.kind == "f":
            out[name] = [float(x) for x in values]
        else:
            out[name] = [str(x) for x in values]
    return out


def compute_golden() -> dict:
    table = _zipf_table()
    payload = {"seed": SEED, "budget": BUDGET, "allocations": {}, "queries": {}}

    for name, strategy in STRATEGIES.items():
        allocation = allocate_from_table(
            strategy(), table, ["a", "b"], BUDGET
        )
        payload["allocations"][name] = {
            "fractional": {
                _key_str(k): v for k, v in sorted(allocation.fractional.items())
            },
            "rounded": {
                _key_str(k): v for k, v in sorted(allocation.rounded().items())
            },
            "scale_down_factor": allocation.scale_down_factor,
        }

    # Full pipeline under Congress: estimates, error bounds, exact truth.
    # Guard off: goldens pin the raw estimator output, not repair behaviour.
    system = AquaSystem(
        space_budget=BUDGET,
        allocation_strategy=Congress(),
        rng=np.random.default_rng(SEED + 1),
        guard_policy=False,
    )
    system.register_table("zipf", table)
    for sql in QUERIES:
        answer = system.answer(sql)
        exact = system.exact(sql)
        payload["queries"][sql] = {
            "approximate": _table_payload(answer.result),
            "exact": _table_payload(exact),
        }
    return payload


def _assert_close(expected, actual, path):
    assert type(expected) is type(actual) or (
        isinstance(expected, (int, float)) and isinstance(actual, (int, float))
    ), f"{path}: type changed {type(expected)} -> {type(actual)}"
    if isinstance(expected, dict):
        assert sorted(expected) == sorted(actual), f"{path}: keys drifted"
        for key in expected:
            _assert_close(expected[key], actual[key], f"{path}.{key}")
    elif isinstance(expected, list):
        assert len(expected) == len(actual), f"{path}: length drifted"
        for i, (e, a) in enumerate(zip(expected, actual)):
            _assert_close(e, a, f"{path}[{i}]")
    elif isinstance(expected, float):
        if np.isnan(expected):
            assert np.isnan(actual), f"{path}: {actual} != NaN"
        else:
            assert actual == pytest.approx(
                expected, rel=TOLERANCE, abs=TOLERANCE
            ), f"{path}: {actual} drifted from golden {expected}"
    else:
        assert expected == actual, f"{path}: {actual} != {expected}"


class TestGoldenAnswers:
    def test_matches_golden_file(self):
        actual = compute_golden()
        if os.environ.get("REPRO_REGEN_GOLDENS"):
            GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
            GOLDEN_PATH.write_text(json.dumps(actual, indent=1, sort_keys=True))
            pytest.skip(f"regenerated {GOLDEN_PATH}")
        assert GOLDEN_PATH.exists(), (
            f"golden file missing; regenerate with REPRO_REGEN_GOLDENS=1 "
            f"({GOLDEN_PATH})"
        )
        expected = json.loads(GOLDEN_PATH.read_text())
        _assert_close(expected, actual, "golden")

    def test_golden_is_deterministic(self):
        """Two fresh computations agree exactly (seeded end to end)."""
        first = compute_golden()
        second = compute_golden()
        _assert_close(first, second, "repeat")

    def test_parallel_execution_reproduces_golden_exact_answers(self):
        """The parallel executor reproduces the goldens' exact answers."""
        from repro.engine import ParallelConfig

        table = _zipf_table()
        system = AquaSystem(
            space_budget=BUDGET,
            allocation_strategy=Congress(),
            rng=np.random.default_rng(SEED + 1),
            guard_policy=False,
            parallel=ParallelConfig(max_workers=4, min_partition_rows=1),
        )
        system.register_table("zipf", table)
        if not GOLDEN_PATH.exists():
            pytest.skip("golden file not generated yet")
        expected = json.loads(GOLDEN_PATH.read_text())
        for sql in QUERIES:
            actual = _table_payload(system.exact(sql))
            _assert_close(
                expected["queries"][sql]["exact"], actual, f"parallel {sql}"
            )
