"""Golden regression for portfolio budget resolution.

Pins which synopsis the planner chooses per (query class x budget) on the
fixed seeded Zipf ``lineitem`` workload: a refactor of the cost/error
model or the resolver must not silently change which member serves which
budget.  Predicted errors are pinned to 1e-9 relative; member names,
reasons, and member sizes exactly.

Regenerate after an intentional change with::

    REPRO_REGEN_GOLDENS=1 PYTHONPATH=src python -m pytest \
        tests/integration/test_portfolio_golden.py
"""

import json
import math
import os
from pathlib import Path

import numpy as np
import pytest

from repro.aqua import AquaSystem
from repro.verify.testbed import TABLE_NAME, Testbed, TestbedConfig

GOLDEN_PATH = Path(__file__).parent / "goldens" / "portfolio_zipf.json"
TOLERANCE = 1e-9
SEED = 20260807

ERROR_BUDGETS = (0.02, 0.1, 0.3, 1.0, 5.0)
TIME_BUDGETS_MS = (0.50003, 5.0, 10_000.0)
SPACE_BUDGET = 600


def _build_system():
    testbed = Testbed(TestbedConfig(query_names=("Qg2", "Qg3", "Qg0")))
    system = AquaSystem(
        space_budget=SPACE_BUDGET,
        rng=np.random.default_rng(SEED),
        cache=False,
    )
    system.register_table(
        TABLE_NAME, testbed.table, testbed.grouping_columns
    )
    system.build_portfolio(TABLE_NAME)
    return testbed, system


def _finite(value):
    return value if math.isfinite(value) else "inf"


def compute_golden() -> dict:
    """Resolve every (query class, budget) pair; record the choices.

    Only :meth:`SynopsisPortfolio.resolve` runs -- never ``answer()`` --
    so the cost model keeps its deterministic seed coefficients (observed
    latencies would fold wall-clock noise into the golden).
    """
    testbed, system = _build_system()
    portfolio = system.portfolio(TABLE_NAME)
    payload = {
        "seed": SEED,
        "space_budget": SPACE_BUDGET,
        "members": {
            member.name: {
                "allocation": member.synopsis.allocation_strategy,
                "budget": member.spec.budget,
                "sample_size": member.sample_size,
            }
            for member in portfolio.members.values()
        },
        "resolutions": {},
    }
    for qc in testbed.queries:
        per_query = {}
        for budget in ERROR_BUDGETS:
            choice = portfolio.resolve(qc.query, max_rel_error=budget)
            per_query[f"max_rel_error={budget}"] = {
                "member": choice.member,
                "reason": choice.reason,
                "predicted_rel_error": _finite(choice.predicted_rel_error),
            }
        for budget in TIME_BUDGETS_MS:
            choice = portfolio.resolve(qc.query, max_ms=budget)
            per_query[f"max_ms={budget}"] = {
                "member": choice.member,
                "reason": choice.reason,
                "predicted_rel_error": _finite(choice.predicted_rel_error),
            }
        payload["resolutions"][qc.name] = per_query
    return payload


def _assert_close(expected, actual, path):
    if isinstance(expected, dict):
        assert sorted(expected) == sorted(actual), f"{path}: keys drifted"
        for key in expected:
            _assert_close(expected[key], actual[key], f"{path}.{key}")
    elif isinstance(expected, float):
        assert actual == pytest.approx(
            expected, rel=TOLERANCE, abs=TOLERANCE
        ), f"{path}: {actual} drifted from golden {expected}"
    else:
        assert expected == actual, f"{path}: {actual} != {expected}"


class TestPortfolioGolden:
    def test_matches_golden_file(self):
        actual = compute_golden()
        if os.environ.get("REPRO_REGEN_GOLDENS"):
            GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
            GOLDEN_PATH.write_text(
                json.dumps(actual, indent=1, sort_keys=True)
            )
            pytest.skip(f"regenerated {GOLDEN_PATH}")
        assert GOLDEN_PATH.exists(), (
            f"golden file missing; regenerate with REPRO_REGEN_GOLDENS=1 "
            f"({GOLDEN_PATH})"
        )
        expected = json.loads(GOLDEN_PATH.read_text())
        _assert_close(expected, actual, "golden")

    def test_golden_is_deterministic(self):
        first = compute_golden()
        second = compute_golden()
        _assert_close(first, second, "repeat")

    def test_budgets_resolve_against_at_least_three_members(self):
        """The acceptance criterion's portfolio-size floor."""
        __, system = _build_system()
        portfolio = system.portfolio(TABLE_NAME)
        assert len(portfolio.members) >= 3
        choice = portfolio.resolve(
            Testbed(TestbedConfig(query_names=("Qg2",))).queries[0].query,
            max_rel_error=0.3,
        )
        assert choice.considered == len(portfolio.members)

    def test_looser_budgets_never_pick_larger_members(self):
        """Within one query class, walking the error budget from tight to
        loose must never increase the chosen member's sample size."""
        testbed, system = _build_system()
        portfolio = system.portfolio(TABLE_NAME)
        for qc in testbed.queries:
            sizes = [
                portfolio.member(
                    portfolio.resolve(qc.query, max_rel_error=budget).member
                ).sample_size
                for budget in sorted(ERROR_BUDGETS)
            ]
            assert all(
                earlier >= later
                for earlier, later in zip(sizes, sizes[1:])
            ), sizes
