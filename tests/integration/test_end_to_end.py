"""Integration tests: the full paper pipeline on a small testbed.

These validate the *claims* of the paper end-to-end on scaled-down data:
allocation -> sampling -> rewriting -> estimation -> error metrics.
"""

import numpy as np
import pytest

from repro.experiments import Testbed
from repro.metrics import groupby_error
from repro.rewrite import ALL_STRATEGIES
from repro.synthetic import LineitemConfig, qg0_set, qg2, qg3


@pytest.fixture(scope="module")
def testbed():
    config = LineitemConfig(
        table_size=60_000, num_groups=216, group_skew=1.5, seed=3
    )
    return Testbed.create(config, sample_fraction=0.07)


class TestPaperClaims:
    def test_house_beats_senate_on_qg0(self, testbed):
        """Figure 14: Senate has the highest error on no-group-by queries."""
        rng = np.random.default_rng(0)
        queries = qg0_set(60_000, num_queries=10, rng=rng)
        house = np.mean([testbed.query_error("house", q) for q in queries])
        senate = np.mean([testbed.query_error("senate", q) for q in queries])
        assert house < senate

    def test_senate_beats_house_on_qg3(self, testbed):
        """Figure 15: House has the highest error at the finest grouping."""
        house = testbed.query_error("house", qg3())
        senate = testbed.query_error("senate", qg3())
        assert senate < house

    def test_congress_never_worst(self, testbed):
        """Figures 14-16: Congress is consistently best or close to best."""
        rng = np.random.default_rng(1)
        queries = {
            "Qg0": None,
            "Qg2": qg2(),
            "Qg3": qg3(),
        }
        qg0_queries = qg0_set(60_000, num_queries=10, rng=rng)
        for name, query in queries.items():
            errors = {}
            for strategy in testbed.samples:
                if name == "Qg0":
                    errors[strategy] = float(
                        np.mean(
                            [testbed.query_error(strategy, q) for q in qg0_queries]
                        )
                    )
                else:
                    errors[strategy] = testbed.query_error(strategy, query)
            worst = max(errors, key=errors.get)
            assert worst != "congress", f"congress worst on {name}: {errors}"

    def test_congress_wins_qg2(self, testbed):
        """Figure 16: Congress is the best of the four on Q_g2."""
        errors = {
            strategy: testbed.query_error(strategy, qg2())
            for strategy in testbed.samples
        }
        best = min(errors, key=errors.get)
        # Congress should be best or within a whisker of best.
        assert errors["congress"] <= errors[best] * 1.5

    def test_senate_and_congress_cover_all_groups(self, testbed):
        """The coverage requirement of Section 3.2 at the finest grouping."""
        query = qg3()
        exact = testbed.exact(query)
        for strategy in ("senate", "congress"):
            approx = testbed.approximate(strategy, query)
            error = groupby_error(
                exact, approx, list(query.query.group_by), "sum_qty"
            )
            assert not error.missing_groups

    def test_house_misses_small_groups_under_skew(self, testbed):
        """The motivating failure: uniform samples drop tiny groups."""
        query = qg3()
        exact = testbed.exact(query)
        approx = testbed.approximate("house", query)
        error = groupby_error(
            exact, approx, list(query.query.group_by), "sum_qty"
        )
        assert len(error.missing_groups) > 0


class TestRewriteEquivalenceOnTestbed:
    def test_all_strategies_agree_on_qg2(self, testbed):
        results = []
        for cls in ALL_STRATEGIES:
            table = testbed.approximate("congress", qg2(), rewrite=cls())
            results.append(table.sort_by(["l_returnflag", "l_linestatus"]))
        baseline = results[0]
        for other in results[1:]:
            np.testing.assert_allclose(
                other.column("sum_qty"), baseline.column("sum_qty"), rtol=1e-9
            )
            np.testing.assert_allclose(
                other.column("sum_price"), baseline.column("sum_price"), rtol=1e-9
            )


class TestSampleSizeSweep:
    def test_error_decreases_with_sample_size(self):
        """Figure 17's monotone trend for Congress."""
        config = LineitemConfig(
            table_size=40_000, num_groups=125, group_skew=0.86, seed=5
        )
        errors = []
        for fraction in (0.01, 0.10, 0.50):
            bed = Testbed.create(config, fraction)
            errors.append(bed.query_error("congress", qg2()))
        assert errors[2] < errors[0]
        assert errors[1] < errors[0] * 1.5  # allow sampling noise mid-sweep
