"""Golden regression for the streaming convergence trajectory (ISSUE 8).

A seeded Zipf-skewed ``lineitem`` table (the paper's Table 1 shape) is
streamed through ``sql_stream`` on ``Q_g2``; every per-chunk estimate and
error half-width along the trajectory is compared against a checked-in
golden file at 1e-9 relative.  This pins the whole streaming pipeline --
permutation, chunking, partial merge, expansion estimates, bound
half-widths, and the exact landing -- against silent numerical drift.

Regenerate after an intentional change with::

    REPRO_REGEN_GOLDENS=1 PYTHONPATH=src python -m pytest \
        tests/integration/test_stream_golden.py
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.aqua import AquaSystem
from repro.synthetic.queries import qg2
from repro.synthetic.tpcd import GROUPING_COLUMNS, LineitemConfig, generate_lineitem

GOLDEN_PATH = Path(__file__).parent / "goldens" / "stream_zipf.json"
TOLERANCE = 1e-9

SEED = 20260806
TABLE_SIZE = 8_000
CHUNK_ROWS = 1_500


def _lineitem():
    return generate_lineitem(
        LineitemConfig(
            table_size=TABLE_SIZE, num_groups=27, group_skew=1.0, seed=SEED
        )
    )


def _table_payload(table) -> dict:
    out = {}
    for name in table.schema.names:
        values = np.asarray(table.column(name))
        if values.dtype.kind == "f":
            out[name] = [float(x) for x in values]
        else:
            out[name] = [str(x) for x in values]
    return out


def compute_golden() -> dict:
    system = AquaSystem(
        space_budget=500, rng=np.random.default_rng(SEED + 1), telemetry=False
    )
    system.register_table(
        "lineitem", _lineitem(), grouping_columns=GROUPING_COLUMNS
    )
    trajectory = []
    for answer in system.sql_stream(
        qg2().sql, chunk_rows=CHUNK_ROWS, rng=np.random.default_rng(SEED + 2)
    ):
        max_rel = answer.max_rel_halfwidth
        trajectory.append(
            {
                "chunk_index": answer.chunk_index,
                "rows_seen": answer.rows_seen,
                "rows_total": answer.rows_total,
                "provenance": answer.provenance,
                "final": answer.final,
                "bound_method": answer.bound_method,
                "max_rel_halfwidth": (
                    None if max_rel != max_rel else float(max_rel)
                ),
                "result": _table_payload(answer.result),
            }
        )
    return {
        "seed": SEED,
        "table_size": TABLE_SIZE,
        "chunk_rows": CHUNK_ROWS,
        "sql": qg2().sql,
        "trajectory": trajectory,
    }


def _assert_close(expected, actual, path):
    if isinstance(expected, dict):
        assert sorted(expected) == sorted(actual), f"{path}: keys drifted"
        for key in expected:
            _assert_close(expected[key], actual[key], f"{path}.{key}")
    elif isinstance(expected, list):
        assert len(expected) == len(actual), f"{path}: length drifted"
        for i, (e, a) in enumerate(zip(expected, actual)):
            _assert_close(e, a, f"{path}[{i}]")
    elif isinstance(expected, float):
        if expected != expected:  # NaN golden
            assert actual != actual, f"{path}: {actual} != NaN"
        else:
            assert actual == pytest.approx(
                expected, rel=TOLERANCE, abs=TOLERANCE
            ), f"{path}: {actual} drifted from golden {expected}"
    else:
        assert expected == actual, f"{path}: {actual} != {expected}"


class TestStreamGolden:
    def test_matches_golden_file(self):
        actual = compute_golden()
        if os.environ.get("REPRO_REGEN_GOLDENS"):
            GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
            GOLDEN_PATH.write_text(json.dumps(actual, indent=1, sort_keys=True))
            pytest.skip(f"regenerated {GOLDEN_PATH}")
        assert GOLDEN_PATH.exists(), (
            f"golden file missing; regenerate with REPRO_REGEN_GOLDENS=1 "
            f"({GOLDEN_PATH})"
        )
        expected = json.loads(GOLDEN_PATH.read_text())
        _assert_close(expected, actual, "golden")

    def test_trajectory_shape(self):
        """The trajectory itself satisfies the emission contract."""
        actual = compute_golden()
        trajectory = actual["trajectory"]
        assert len(trajectory) >= 3
        rows = [step["rows_seen"] for step in trajectory]
        assert rows == sorted(rows)
        rels = [
            step["max_rel_halfwidth"]
            for step in trajectory
            if step["max_rel_halfwidth"] is not None
        ]
        assert all(b <= a for a, b in zip(rels, rels[1:]))
        assert trajectory[-1]["final"]
        assert trajectory[-1]["provenance"] == "exact"
        assert trajectory[-1]["max_rel_halfwidth"] == 0.0

    def test_golden_is_deterministic(self):
        first = compute_golden()
        second = compute_golden()
        _assert_close(first, second, "repeat")
