"""Property-based proof that parallel execution is exact.

For random tables, random group-by columns, random aggregate sets, random
predicates, and every partition count K in {1, 2, 3, 7}, the partitioned
executor must return exactly what the serial executor returns.

Two data regimes:

* integer-valued measures -- partition sums are exact in float64, so the
  comparison is strict bit-for-bit equality;
* skewed continuous measures (exponential tails) -- partition sums may
  differ from the serial left-to-right sum in the last ulp, so AVG/VAR/SUM
  compare under a 1e-9 relative tolerance.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    Catalog,
    ColumnType,
    ParallelConfig,
    ParallelExecutor,
    Schema,
    Table,
    execute,
    parse_query,
)

SCHEMA = Schema.of(
    ("a", ColumnType.STR), ("b", ColumnType.STR), ("v", ColumnType.FLOAT)
)

FUNC_SQL = {
    "count": "count(*) f_count",
    "sum": "sum(v) f_sum",
    "avg": "avg(v) f_avg",
    "min": "min(v) f_min",
    "max": "max(v) f_max",
    "var": "var(v) f_var",
}

K_VALUES = [1, 2, 3, 7]

tables_integer = st.builds(
    lambda a, b, v: Table.from_columns(
        SCHEMA,
        a=a[: len(v)],
        b=b[: len(v)],
        v=np.asarray(v, dtype=np.float64),
    ),
    a=st.lists(st.sampled_from(["a1", "a2", "a3"]), min_size=300, max_size=300),
    b=st.lists(st.sampled_from(["b1", "b2"]), min_size=300, max_size=300),
    v=st.lists(
        st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=300
    ),
)

queries = st.builds(
    lambda funcs, group, where: (
        "select "
        + (", ".join(group) + ", " if group else "")
        + ", ".join(FUNC_SQL[f] for f in funcs)
        + " from t"
        + (" where v > 0" if where else "")
        + ((" group by " + ", ".join(group)) if group else "")
    ),
    funcs=st.lists(
        st.sampled_from(sorted(FUNC_SQL)), min_size=1, max_size=6, unique=True
    ),
    group=st.sampled_from([[], ["a"], ["b"], ["a", "b"]]),
    where=st.booleans(),
)


def _execute_both(table, sql, k, mode="range"):
    catalog = Catalog()
    catalog.register("t", table)
    executor = ParallelExecutor(
        ParallelConfig(max_workers=k, min_partition_rows=1, partition_mode=mode)
    )
    serial = execute(parse_query(sql), catalog)
    parallel = execute(parse_query(sql), catalog, parallel=executor)
    return serial, parallel


class TestParallelIsExact:
    @given(table=tables_integer, sql=queries, k=st.sampled_from(K_VALUES))
    @settings(max_examples=80, deadline=None)
    def test_integer_data_bit_exact(self, table, sql, k):
        serial, parallel = _execute_both(table, sql, k)
        assert serial.schema.names == parallel.schema.names
        assert serial.num_rows == parallel.num_rows
        for name in serial.schema.names:
            left, right = serial.column(name), parallel.column(name)
            if np.asarray(left).dtype.kind == "f":
                np.testing.assert_array_equal(left, right)
            else:
                assert np.array_equal(left, right)

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        sql=queries,
        k=st.sampled_from(K_VALUES),
        mode=st.sampled_from(["range", "hash"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_skewed_data_within_tolerance(self, seed, sql, k, mode):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 400))
        table = Table.from_columns(
            SCHEMA,
            a=rng.choice(["a1", "a2", "a3"], size=n, p=[0.9, 0.08, 0.02]),
            b=rng.choice(["b1", "b2"], size=n, p=[0.95, 0.05]),
            # Heavy-tailed, shifted so WHERE v > 0 selects a real subset.
            v=rng.exponential(100.0, size=n) - 50.0,
        )
        serial, parallel = _execute_both(table, sql, k, mode=mode)
        assert serial.num_rows == parallel.num_rows
        for name in serial.schema.names:
            left, right = serial.column(name), parallel.column(name)
            if np.asarray(left).dtype.kind == "f":
                np.testing.assert_allclose(
                    left, right, rtol=1e-9, atol=1e-12, equal_nan=True
                )
            else:
                assert np.array_equal(left, right)
