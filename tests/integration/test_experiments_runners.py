"""Tests for the experiment runners (tiny scale) and report formatting."""

import pytest

from repro.experiments import (
    Testbed,
    default_table_size,
    format_mapping_table,
    format_table,
    run_expt1,
    run_expt2,
    run_fig5,
    run_scaledown,
    standard_strategies,
)
from repro.synthetic import LineitemConfig


class TestReportFormatting:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"], [["alpha", 1.2345], ["b", 10.0]], precision=2
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.23" in text
        assert "10.00" in text

    def test_format_table_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_format_table_nan(self):
        text = format_table(["x"], [[float("nan")]])
        assert "nan" in text

    def test_format_mapping_table(self):
        text = format_mapping_table(
            "row", {"r1": {"c1": 1.0, "c2": 2.0}, "r2": {"c1": 3.0}}
        )
        assert "r1" in text and "c2" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestRunners:
    def test_run_fig5(self):
        result = run_fig5()
        assert "congress" in result.columns
        assert "35.3" in result.format()

    def test_run_scaledown(self):
        result = run_scaledown(configurations=[(1, 4), (2, 4)])
        assert len(result.rows) == 2
        assert "2^-n" in result.format()

    def test_run_expt1_tiny(self):
        result = run_expt1(table_size=20_000, num_groups=64, seed=1)
        assert set(result.errors) == {"Qg0", "Qg2", "Qg3"}
        for by_strategy in result.errors.values():
            assert set(by_strategy) == {
                "house", "senate", "basic_congress", "congress",
            }
            assert all(v >= 0 for v in by_strategy.values())
        assert "Expt 1" in result.format()

    def test_run_expt2_tiny(self):
        result = run_expt2(
            table_size=20_000,
            sample_fractions=(0.05, 0.50),
            num_groups=64,
        )
        labels = list(result.errors)
        assert len(labels) == 2
        # More sample, less error for congress.
        assert (
            result.errors[labels[1]]["congress"]
            < result.errors[labels[0]]["congress"]
        )


class TestTestbed:
    def test_invalid_fraction(self):
        config = LineitemConfig(table_size=1000, num_groups=8)
        with pytest.raises(ValueError):
            Testbed.create(config, 0.0)

    def test_default_table_size_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.01")
        assert default_table_size() == 10_000
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ValueError):
            default_table_size()

    def test_standard_strategies_names(self):
        strategies = standard_strategies()
        assert list(strategies) == [
            "house", "senate", "basic_congress", "congress",
        ]


class TestProfileAndDrift:
    def test_group_size_profile_tiny(self):
        from repro.experiments import run_group_size_profile

        result = run_group_size_profile(
            table_size=30_000, num_groups=125, num_buckets=3
        )
        assert len(result.buckets) == 3
        assert len(result.errors) == 3
        # House degrades toward small groups.
        labels = list(result.errors)
        assert (
            result.errors[labels[0]]["house"]
            > result.errors[labels[-1]]["house"]
        )
        assert "profile" in result.format().lower()

    def test_drift_tiny(self):
        from repro.experiments import run_drift

        result = run_drift(stream_size=20_000, budget=800, seed=2)
        assert result.errors["stale"]["missing_groups"] >= 1
        assert result.errors["maintained"]["missing_groups"] == 0
        assert (
            result.errors["maintained"]["eps_l1"]
            < result.errors["stale"]["eps_l1"]
        )
        assert "Drift" in result.format()


class TestTimingRunners:
    def test_run_expt3_tiny(self):
        from repro.experiments import run_expt3

        result = run_expt3(
            table_size=20_000, sample_fractions=(0.05,), repeats=2
        )
        assert set(result.seconds) == {
            "integrated", "nested_integrated", "normalized", "key_normalized",
        }
        for times in result.seconds.values():
            assert all(v > 0 for v in times.values())
        assert result.exact_seconds > 0
        assert "Expt 3" in result.format()

    def test_run_expt4_tiny(self):
        from repro.experiments import run_expt4

        result = run_expt4(
            table_size=20_000, group_counts=(10, 100), repeats=2
        )
        labels = set()
        for times in result.seconds.values():
            labels.update(times)
        assert labels == {"NG=10", "NG=100"}
        assert "Expt 4" in result.format()

    def test_run_expt4_skips_oversized_group_counts(self):
        from repro.experiments import run_expt4

        result = run_expt4(
            table_size=5_000, group_counts=(10, 1_000_000), repeats=1
        )
        for times in result.seconds.values():
            assert "NG=1000000" not in times
