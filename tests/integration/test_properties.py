"""Property-based tests (hypothesis) on the core invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import BasicCongress, Congress, House, Senate, senate_share
from repro.engine import Aggregate, ColumnType, Schema, Table, col, group_by
from repro.sampling import StratifiedSample, all_groupings

# Random finest-partition count dictionaries over two grouping columns.
counts_2d = st.dictionaries(
    keys=st.tuples(
        st.sampled_from(["a1", "a2", "a3", "a4"]),
        st.sampled_from(["b1", "b2", "b3"]),
    ),
    values=st.integers(min_value=1, max_value=100_000),
    min_size=1,
    max_size=12,
)

budgets = st.floats(min_value=1.0, max_value=10_000.0)

G = ("A", "B")
STRATEGIES = [House(), Senate(), BasicCongress(), Congress()]


class TestAllocationProperties:
    @given(counts=counts_2d, budget=budgets)
    @settings(max_examples=120, deadline=None)
    def test_total_equals_budget(self, counts, budget):
        for strategy in STRATEGIES:
            allocation = strategy.allocate(counts, G, budget)
            assert allocation.total_fractional == pytest.approx(
                budget, rel=1e-9
            )

    @given(counts=counts_2d, budget=budgets)
    @settings(max_examples=120, deadline=None)
    def test_non_negative(self, counts, budget):
        for strategy in STRATEGIES:
            allocation = strategy.allocate(counts, G, budget)
            assert all(v >= 0 for v in allocation.fractional.values())

    @given(counts=counts_2d, budget=budgets)
    @settings(max_examples=100, deadline=None)
    def test_budget_linearity(self, counts, budget):
        """Doubling the budget doubles every fractional allocation."""
        for strategy in STRATEGIES:
            one = strategy.allocate(counts, G, budget)
            two = strategy.allocate(counts, G, 2 * budget)
            for key in counts:
                assert two.fractional[key] == pytest.approx(
                    2 * one.fractional[key], rel=1e-9
                )

    @given(counts=counts_2d, budget=budgets)
    @settings(max_examples=100, deadline=None)
    def test_congress_f_guarantee(self, counts, budget):
        """Every group under every grouping gets >= f of its S1 share."""
        congress = Congress().allocate(counts, G, budget)
        f = congress.scale_down_factor
        for target in all_groupings(G):
            shares = senate_share(counts, G, target, budget)
            for key, share in shares.items():
                assert congress.fractional[key] >= f * share - 1e-6

    @given(counts=counts_2d, budget=budgets)
    @settings(max_examples=100, deadline=None)
    def test_scale_down_factor_bounds(self, counts, budget):
        congress = Congress().allocate(counts, G, budget)
        assert 2.0 ** (-len(G)) - 1e-9 < congress.scale_down_factor <= 1.0

    @given(counts=counts_2d, budget=budgets)
    @settings(max_examples=100, deadline=None)
    def test_rounding_totals(self, counts, budget):
        for strategy in STRATEGIES:
            allocation = strategy.allocate(counts, G, budget)
            rounded = allocation.rounded()
            expected_total = min(
                int(round(budget)), sum(counts.values())
            )
            assert sum(rounded.values()) == expected_total
            for key, value in rounded.items():
                assert 0 <= value <= counts[key]

    @given(counts=counts_2d, budget=budgets)
    @settings(max_examples=80, deadline=None)
    def test_count_scale_invariance(self, counts, budget):
        """Multiplying every group count by a constant changes nothing."""
        congress = Congress()
        base = congress.allocate(counts, G, budget)
        scaled_counts = {k: v * 7 for k, v in counts.items()}
        scaled = congress.allocate(scaled_counts, G, budget)
        for key in counts:
            assert scaled.fractional[key] == pytest.approx(
                base.fractional[key], rel=1e-9
            )


class TestEngineAgainstBruteForce:
    @given(
        data=st.lists(
            st.tuples(
                st.sampled_from(["x", "y", "z"]),
                st.integers(min_value=-100, max_value=100),
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_group_by_sum_matches_python(self, data):
        schema = Schema.of(("g", ColumnType.STR), ("v", ColumnType.INT))
        table = Table.from_rows(schema, data)
        result = group_by(table, ["g"], [Aggregate("sum", col("v"), "s")])
        got = {row["g"]: row["s"] for row in result.to_dicts()}
        want = {}
        for g, v in data:
            want[g] = want.get(g, 0) + v
        assert got.keys() == want.keys()
        for key in want:
            assert got[key] == pytest.approx(want[key])


class TestEstimatorProperties:
    @given(
        rates=st.lists(
            st.integers(min_value=1, max_value=20), min_size=2, max_size=5
        ),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_count_estimate_exact_in_expectation_structure(self, rates, seed):
        """Scaled COUNT over any stratified sample of known strata sizes
        equals sum of populations exactly when SF = n_g / m_g is exact."""
        rng = np.random.default_rng(seed)
        schema = Schema.of(("g", ColumnType.STR), ("v", ColumnType.FLOAT))
        rows = []
        for i, per_group in enumerate(rates):
            rows.extend((f"g{i}", float(j)) for j in range(per_group * 3))
        table = Table.from_rows(schema, rows)
        allocation = {(f"g{i}",): rate for i, rate in enumerate(rates)}
        sample = StratifiedSample.build(table, ["g"], allocation, rng=rng)
        from repro.estimators import estimate_single

        single = estimate_single(sample, "count", None)
        # Each stratum contributes m_g * (n_g / m_g) = n_g exactly.
        assert single.value == pytest.approx(table.num_rows)
