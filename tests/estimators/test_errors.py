"""Unit and statistical tests for error bounds."""

import math

import numpy as np
import pytest

from repro.estimators import (
    ErrorBound,
    chebyshev_from_variance,
    chebyshev_halfwidth,
    hoeffding_halfwidth_mean,
    hoeffding_halfwidth_sum,
    standard_error,
)


class TestStandardError:
    def test_equation_2(self):
        # S/sqrt(n) * sqrt(1 - n/N).
        expected = 10.0 / math.sqrt(25) * math.sqrt(1 - 25 / 100)
        assert standard_error(10.0, 25, 100) == pytest.approx(expected)

    def test_full_sample_is_zero(self):
        assert standard_error(10.0, 100, 100) == pytest.approx(0.0)

    def test_zero_sample_is_infinite(self):
        assert standard_error(10.0, 0, 100) == float("inf")

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            standard_error(10.0, 50, 25)

    def test_decreases_with_sample_size(self):
        errors = [standard_error(5.0, n, 10_000) for n in (10, 100, 1000)]
        assert errors[0] > errors[1] > errors[2]


class TestHoeffding:
    def test_mean_formula(self):
        expected = 1.0 * math.sqrt(math.log(2 / 0.1) / (2 * 100))
        assert hoeffding_halfwidth_mean(1.0, 100, 0.90) == pytest.approx(expected)

    def test_sum_scales_by_population(self):
        mean = hoeffding_halfwidth_mean(1.0, 100, 0.90)
        assert hoeffding_halfwidth_sum(1.0, 100, 5000, 0.90) == pytest.approx(
            5000 * mean
        )

    def test_higher_confidence_wider(self):
        assert hoeffding_halfwidth_mean(1.0, 100, 0.99) > hoeffding_halfwidth_mean(
            1.0, 100, 0.90
        )

    def test_zero_sample_infinite(self):
        assert hoeffding_halfwidth_mean(1.0, 0) == float("inf")

    def test_invalid_confidence(self):
        for bad in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                hoeffding_halfwidth_mean(1.0, 10, bad)

    def test_negative_range_rejected(self):
        with pytest.raises(ValueError):
            hoeffding_halfwidth_mean(-1.0, 10)

    def test_coverage_simulation(self):
        """The Hoeffding bound must cover the truth >= 90% of the time."""
        rng = np.random.default_rng(2)
        population = rng.uniform(0, 1, 10_000)
        truth = population.mean()
        n, hits, trials = 200, 0, 300
        halfwidth = hoeffding_halfwidth_mean(1.0, n, 0.90)
        for __ in range(trials):
            sample = rng.choice(population, size=n, replace=False)
            if abs(sample.mean() - truth) <= halfwidth:
                hits += 1
        assert hits / trials >= 0.90


class TestChebyshev:
    def test_formula(self):
        # At 90% confidence: sigma / sqrt(0.1).
        assert chebyshev_halfwidth(2.0, 0.90) == pytest.approx(2.0 / math.sqrt(0.1))

    def test_from_variance(self):
        bound = chebyshev_from_variance(4.0, 0.90)
        assert isinstance(bound, ErrorBound)
        assert bound.halfwidth == pytest.approx(chebyshev_halfwidth(2.0, 0.90))
        assert bound.method == "chebyshev"

    def test_nan_variance_propagates(self):
        bound = chebyshev_from_variance(float("nan"))
        assert math.isnan(bound.halfwidth)

    def test_interval(self):
        bound = ErrorBound(5.0, 0.9, "chebyshev")
        assert bound.interval(100.0) == (95.0, 105.0)

    def test_negative_std_rejected(self):
        with pytest.raises(ValueError):
            chebyshev_halfwidth(-1.0)

    def test_coverage_simulation(self):
        """Chebyshev at 90% must cover the truth at least 90% of the time."""
        rng = np.random.default_rng(3)
        population = rng.exponential(5.0, 10_000)
        truth = population.sum()
        n_total, n_sample, hits, trials = len(population), 400, 0, 300
        for __ in range(trials):
            idx = rng.choice(n_total, size=n_sample, replace=False)
            sample = population[idx]
            est = sample.mean() * n_total
            s2 = sample.var(ddof=1)
            var_est = n_total**2 * (1 - n_sample / n_total) * s2 / n_sample
            halfwidth = chebyshev_halfwidth(math.sqrt(var_est), 0.90)
            if abs(est - truth) <= halfwidth:
                hits += 1
        assert hits / trials >= 0.90


class TestHoeffdingStratified:
    def test_reduces_to_single_stratum_sum(self):
        from repro.estimators import (
            hoeffding_halfwidth_stratified_sum,
            hoeffding_halfwidth_sum,
        )

        single = hoeffding_halfwidth_sum(3.0, 50, 1000, 0.90)
        stratified = hoeffding_halfwidth_stratified_sum(
            [3.0], [1000.0], [50], 0.90
        )
        assert stratified == pytest.approx(single)

    def test_zero_size_strata_ignored(self):
        from repro.estimators import hoeffding_halfwidth_stratified_sum

        with_empty = hoeffding_halfwidth_stratified_sum(
            [3.0, 9.9], [1000.0, 500.0], [50, 0], 0.90
        )
        without = hoeffding_halfwidth_stratified_sum(
            [3.0], [1000.0], [50], 0.90
        )
        assert with_empty == pytest.approx(without)

    def test_more_samples_tighter(self):
        from repro.estimators import hoeffding_halfwidth_stratified_sum

        loose = hoeffding_halfwidth_stratified_sum([1.0], [100.0], [5])
        tight = hoeffding_halfwidth_stratified_sum([1.0], [100.0], [50])
        assert tight < loose

    def test_misaligned_inputs_rejected(self):
        from repro.estimators import hoeffding_halfwidth_stratified_sum

        with pytest.raises(ValueError):
            hoeffding_halfwidth_stratified_sum([1.0], [100.0], [5, 5])

    def test_negative_inputs_rejected(self):
        from repro.estimators import hoeffding_halfwidth_stratified_sum

        with pytest.raises(ValueError):
            hoeffding_halfwidth_stratified_sum([-1.0], [100.0], [5])

    def test_coverage_simulation(self):
        """Stratified Hoeffding at 90% must cover the truth >= 90%."""
        from repro.estimators import hoeffding_halfwidth_stratified_sum

        rng = np.random.default_rng(11)
        strata = [rng.uniform(0, 10, 2000), rng.uniform(5, 25, 500)]
        truth = sum(float(s.sum()) for s in strata)
        sizes = [100, 80]
        ranges = [10.0, 20.0]
        populations = [2000.0, 500.0]
        halfwidth = hoeffding_halfwidth_stratified_sum(
            ranges, populations, sizes, 0.90
        )
        hits, trials = 0, 300
        for __ in range(trials):
            est = 0.0
            for stratum, n in zip(strata, sizes):
                sample = rng.choice(stratum, size=n, replace=False)
                est += sample.mean() * len(stratum)
            if abs(est - truth) <= halfwidth:
                hits += 1
        assert hits / trials >= 0.90
