"""Estimation across stratification boundaries (post-stratification).

The answer grouping of a user query need not align with the sample's
stratification: grouping by a *non*-stratification column slices every
stratum, and grouping by a subset of the stratification columns merges
strata.  Both paths must stay unbiased.
"""

import numpy as np
import pytest

from repro.core import Congress, Senate, build_sample
from repro.engine import Column, ColumnType, Schema, Table
from repro.estimators import estimate


@pytest.fixture(scope="module")
def table():
    rng = np.random.default_rng(21)
    n = 30_000
    schema = Schema(
        [
            Column("a", ColumnType.STR, "grouping"),
            Column("b", ColumnType.STR, "grouping"),
            Column("other", ColumnType.STR),  # NOT a stratification column
            Column("q", ColumnType.FLOAT, "aggregate"),
        ]
    )
    return Table.from_columns(
        schema,
        a=rng.choice(["a1", "a2"], size=n, p=[0.85, 0.15]),
        b=rng.choice(["b1", "b2", "b3"], size=n),
        other=rng.choice(["u", "v", "w"], size=n, p=[0.5, 0.3, 0.2]),
        q=rng.gamma(3.0, 5.0, size=n),
    )


def exact_sums(table, key_column):
    out = {}
    keys = table.column(key_column)
    values = table.column("q")
    for key in np.unique(keys):
        out[(str(key),)] = float(values[keys == key].sum())
    return out


class TestMergedStrata:
    def test_group_by_subset_of_stratification(self, table):
        """Answer groups that merge strata stay unbiased."""
        exact = exact_sums(table, "a")
        estimates = []
        for seed in range(25):
            rng = np.random.default_rng(seed)
            sample = build_sample(Congress(), table, ["a", "b"], 900, rng=rng)
            result = estimate(sample, "sum", "q", group_by=["a"])
            estimates.append({k: v.value for k, v in result.items()})
        for key, truth in exact.items():
            mean = float(np.mean([e[key] for e in estimates]))
            assert abs(mean - truth) / truth < 0.03


class TestCrossStratification:
    def test_group_by_non_stratification_column(self, table):
        """Answer groups that *slice* strata stay unbiased too."""
        exact = exact_sums(table, "other")
        estimates = []
        for seed in range(40):
            rng = np.random.default_rng(100 + seed)
            sample = build_sample(Senate(), table, ["a", "b"], 2000, rng=rng)
            result = estimate(sample, "sum", "q", group_by=["other"])
            estimates.append({k: v.value for k, v in result.items()})
        for key, truth in exact.items():
            mean = float(np.mean([e[key] for e in estimates]))
            assert abs(mean - truth) / truth < 0.05

    def test_variance_larger_for_cross_cutting_groups(self, table):
        """Slicing strata leaves fewer effective tuples per answer group,
        so reported variances should exceed the merged-strata case for a
        comparable answer magnitude."""
        rng = np.random.default_rng(7)
        sample = build_sample(Senate(), table, ["a", "b"], 900, rng=rng)
        merged = estimate(sample, "avg", "q", group_by=["a"])
        sliced = estimate(sample, "avg", "q", group_by=["other"])
        mean_merged = np.mean([e.variance for e in merged.values()])
        mean_sliced = np.mean([e.variance for e in sliced.values()])
        assert mean_sliced > 0
        assert mean_merged > 0

    def test_rewrite_path_matches_estimator_cross_cut(self, table):
        """The SQL rewrite path agrees with estimate() even when grouping
        by a non-stratification column."""
        from repro.engine import Catalog, parse_query
        from repro.rewrite import Integrated

        rng = np.random.default_rng(3)
        sample = build_sample(Congress(), table, ["a", "b"], 900, rng=rng)
        catalog = Catalog()
        catalog.register("rel", table)
        strategy = Integrated()
        synopsis = strategy.install(sample, "rel", catalog)
        query = parse_query(
            "select other, sum(q) s from rel group by other order by other"
        )
        result = strategy.plan(query, synopsis).execute(catalog)
        direct = estimate(sample, "sum", "q", group_by=["other"])
        for row in result.to_dicts():
            assert row["s"] == pytest.approx(
                direct[(str(row["other"]),)].value
            )
