"""Property-based tests for the error-bound families.

Hypothesis sweeps the bound helpers over their whole domains for the
guarantees the math promises: non-negativity, monotonicity in the sample
size and confidence level, and the dominance relations between families
(Chebyshev can never be tighter than the normal bound at the same
confidence, because ``1/sqrt(delta) >= z_{1-delta/2}`` for every
``delta``).
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimators import (
    chebyshev_halfwidth,
    hoeffding_halfwidth_mean,
    hoeffding_halfwidth_stratified_sum,
    hoeffding_halfwidth_sum,
    normal_halfwidth,
    normal_quantile,
    standard_error,
)

confidences = st.floats(
    min_value=0.5, max_value=0.999, allow_nan=False, allow_infinity=False
)
std_errors = st.floats(
    min_value=0.0, max_value=1e12, allow_nan=False, allow_infinity=False
)
value_ranges = st.floats(
    min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
)
sample_sizes = st.integers(min_value=1, max_value=10**9)


class TestNonNegativity:
    @given(std_error=std_errors, confidence=confidences)
    def test_normal(self, std_error, confidence):
        assert normal_halfwidth(std_error, confidence) >= 0.0

    @given(std_error=std_errors, confidence=confidences)
    def test_chebyshev(self, std_error, confidence):
        assert chebyshev_halfwidth(std_error, confidence) >= 0.0

    @given(
        value_range=value_ranges,
        sample_size=sample_sizes,
        confidence=confidences,
    )
    def test_hoeffding(self, value_range, sample_size, confidence):
        assert (
            hoeffding_halfwidth_mean(value_range, sample_size, confidence)
            >= 0.0
        )


class TestMonotoneInSampleSize:
    @given(
        value_range=st.floats(min_value=1e-6, max_value=1e9),
        sample_size=st.integers(min_value=1, max_value=10**8),
        growth=st.integers(min_value=1, max_value=10**8),
        confidence=confidences,
    )
    def test_hoeffding_shrinks(
        self, value_range, sample_size, growth, confidence
    ):
        smaller = hoeffding_halfwidth_mean(
            value_range, sample_size + growth, confidence
        )
        larger = hoeffding_halfwidth_mean(
            value_range, sample_size, confidence
        )
        assert smaller <= larger

    @given(
        population_std=st.floats(min_value=1e-6, max_value=1e9),
        sample_size=st.integers(min_value=1, max_value=10**6 - 1),
        growth=st.integers(min_value=1, max_value=10**6),
    )
    def test_standard_error_shrinks(
        self, population_std, sample_size, growth
    ):
        population = 2 * 10**6
        smaller = standard_error(
            population_std, sample_size + growth, population
        )
        larger = standard_error(population_std, sample_size, population)
        assert smaller <= larger

    @given(population_std=st.floats(min_value=0.0, max_value=1e9))
    def test_full_enumeration_has_zero_error(self, population_std):
        assert standard_error(population_std, 1000, 1000) == 0.0


class TestFamilyDominance:
    @given(std_error=std_errors, confidence=confidences)
    def test_chebyshev_never_tighter_than_normal(
        self, std_error, confidence
    ):
        """``1/sqrt(delta) >= Phi^{-1}(1 - delta/2)`` for all ``delta``:
        the distribution-free bound pays for its generality."""
        assert chebyshev_halfwidth(
            std_error, confidence
        ) >= normal_halfwidth(std_error, confidence)

    @given(confidence=confidences)
    def test_higher_confidence_is_wider(self, confidence):
        tighter = normal_halfwidth(1.0, confidence)
        wider = normal_halfwidth(1.0, 0.5 + (confidence - 0.5) / 2 + 0.0005)
        if confidence > 0.501:
            assert wider <= tighter


class TestNormalQuantile:
    @given(p=st.floats(min_value=1e-9, max_value=1 - 1e-9))
    def test_antisymmetric(self, p):
        assert math.isclose(
            normal_quantile(p),
            -normal_quantile(1.0 - p),
            rel_tol=1e-6,
            abs_tol=1e-7,
        )

    @given(
        p=st.floats(min_value=1e-9, max_value=1 - 2e-9),
        step=st.floats(min_value=1e-9, max_value=0.5),
    )
    def test_monotone(self, p, step):
        q = min(p + step, 1 - 1e-9)
        assert normal_quantile(p) <= normal_quantile(q) + 1e-9

    @settings(max_examples=30)
    @given(p=st.floats(min_value=0.5, max_value=1 - 1e-9))
    def test_upper_half_is_non_negative(self, p):
        assert normal_quantile(p) >= -1e-12


class TestStratifiedHoeffding:
    @given(
        value_range=value_ranges,
        population=st.integers(min_value=1, max_value=10**6),
        sample_size=st.integers(min_value=1, max_value=10**4),
        confidence=confidences,
    )
    def test_single_stratum_reduces_to_sum_bound(
        self, value_range, population, sample_size, confidence
    ):
        stratified = hoeffding_halfwidth_stratified_sum(
            [value_range], [population], [sample_size], confidence
        )
        flat = hoeffding_halfwidth_sum(
            value_range, sample_size, population, confidence
        )
        assert math.isclose(
            stratified, flat, rel_tol=1e-9, abs_tol=1e-12
        )

    @given(
        ranges=st.lists(
            st.floats(min_value=0.0, max_value=1e6),
            min_size=1,
            max_size=8,
        ),
        confidence=confidences,
        data=st.data(),
    )
    def test_more_samples_never_widen(self, ranges, confidence, data):
        populations = [10**4] * len(ranges)
        small = [
            data.draw(st.integers(min_value=1, max_value=100))
            for __ in ranges
        ]
        big = [n * 2 for n in small]
        assert hoeffding_halfwidth_stratified_sum(
            ranges, populations, big, confidence
        ) <= hoeffding_halfwidth_stratified_sum(
            ranges, populations, small, confidence
        )
