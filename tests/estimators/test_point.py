"""Unit tests for stratified point estimation (Section 5.1)."""

import numpy as np
import pytest

from repro.core import Congress, Senate, build_sample
from repro.engine import Comparison, col
from repro.estimators import estimate, estimate_single
from repro.sampling import StratifiedSample


@pytest.fixture
def full_sample(small_table, rng):
    """Sampling rate 1 in every stratum: estimates must be exact."""
    allocation = {key: 10 for key in
                  [("x", "p"), ("x", "q"), ("y", "p"), ("y", "q")]}
    return StratifiedSample.build(small_table, ["a", "b"], allocation, rng=rng)


class TestExactWhenFullyEnumerated:
    def test_sum(self, full_sample):
        result = estimate(full_sample, "sum", "q", group_by=["a"])
        assert result[("x",)].value == pytest.approx(10.0)
        assert result[("y",)].value == pytest.approx(26.0)

    def test_count(self, full_sample):
        result = estimate(full_sample, "count", None, group_by=["a", "b"])
        assert all(e.value == pytest.approx(2.0) for e in result.values())

    def test_avg(self, full_sample):
        result = estimate(full_sample, "avg", "q", group_by=["b"])
        assert result[("p",)].value == pytest.approx((1 + 2 + 5 + 6) / 4)

    def test_variance_zero_with_full_enumeration(self, full_sample):
        result = estimate(full_sample, "sum", "q", group_by=["a"])
        # FPC = 0 when n == N: no sampling error at all.
        assert result[("x",)].variance == pytest.approx(0.0)

    def test_no_group_by(self, full_sample):
        single = estimate_single(full_sample, "sum", "q")
        assert single.value == pytest.approx(36.0)

    def test_predicate(self, full_sample):
        pred = Comparison.of(col("id"), "<=", 4)
        single = estimate_single(full_sample, "sum", "q", predicate=pred)
        assert single.value == pytest.approx(10.0)

    def test_expression_column(self, full_sample):
        result = estimate(full_sample, "sum", col("q") * 2, group_by=["a"])
        assert result[("x",)].value == pytest.approx(20.0)


class TestScaling:
    def test_half_sample_scales_up(self, small_table, rng):
        sample = StratifiedSample.build(
            small_table, ["a", "b"],
            {("x", "p"): 1, ("x", "q"): 1, ("y", "p"): 1, ("y", "q"): 1},
            rng=rng,
        )
        single = estimate_single(sample, "count", None)
        # Each stratum has 1 of 2 rows: count estimate = 4 * 2 = 8, exact.
        assert single.value == pytest.approx(8.0)

    def test_unbiasedness_of_sum(self, skewed_table):
        """Mean of many sampled estimates approaches the true sum."""
        exact = float(np.sum(skewed_table.column("q")))
        estimates = []
        for seed in range(30):
            rng = np.random.default_rng(seed)
            sample = build_sample(Congress(), skewed_table, ["a", "b"], 400, rng=rng)
            estimates.append(estimate_single(sample, "sum", "q").value)
        mean_est = float(np.mean(estimates))
        assert abs(mean_est - exact) / exact < 0.02

    def test_groups_missing_from_sample_are_absent(self, small_table, rng):
        sample = StratifiedSample.build(
            small_table, ["a", "b"], {("x", "p"): 2}, rng=rng
        )
        result = estimate(sample, "sum", "q", group_by=["a"])
        assert ("y",) not in result
        assert ("x",) in result

    def test_empty_sample(self, small_table, rng):
        sample = StratifiedSample.build(small_table, ["a", "b"], {}, rng=rng)
        assert estimate(sample, "sum", "q", group_by=["a"]) == {}
        assert estimate_single(sample, "sum", "q") is None


class TestVarianceEstimates:
    def test_variance_positive_for_partial_samples(self, skewed_table, rng):
        sample = build_sample(Senate(), skewed_table, ["a", "b"], 300, rng=rng)
        result = estimate(sample, "sum", "q", group_by=["a"])
        for group_estimate in result.values():
            assert group_estimate.variance > 0

    def test_std_error_is_sqrt_variance(self, skewed_table, rng):
        sample = build_sample(Senate(), skewed_table, ["a", "b"], 300, rng=rng)
        result = estimate(sample, "sum", "q", group_by=["a"])
        estimate_obj = next(iter(result.values()))
        assert estimate_obj.std_error == pytest.approx(
            np.sqrt(estimate_obj.variance)
        )

    def test_variance_calibration(self, skewed_table):
        """Empirical spread of estimates matches the estimated std error."""
        rng_values = []
        reported = []
        for seed in range(40):
            rng = np.random.default_rng(100 + seed)
            sample = build_sample(
                Congress(), skewed_table, ["a", "b"], 500, rng=rng
            )
            single = estimate_single(sample, "sum", "q")
            rng_values.append(single.value)
            reported.append(single.std_error)
        empirical_std = float(np.std(rng_values))
        mean_reported = float(np.mean(reported))
        # Within a factor of 2 is plenty for 40 trials.
        assert 0.5 < empirical_std / mean_reported < 2.0

    def test_larger_samples_give_smaller_variance(self, skewed_table):
        rng = np.random.default_rng(0)
        small = build_sample(Congress(), skewed_table, ["a", "b"], 200, rng=rng)
        large = build_sample(Congress(), skewed_table, ["a", "b"], 2000, rng=rng)
        v_small = estimate_single(small, "sum", "q").variance
        v_large = estimate_single(large, "sum", "q").variance
        assert v_large < v_small


class TestValidation:
    def test_unknown_estimator(self, full_sample):
        with pytest.raises(ValueError):
            estimate(full_sample, "median", "q")

    def test_sum_requires_column(self, full_sample):
        with pytest.raises(ValueError):
            estimate(full_sample, "sum", None)
