"""Driver-level tests for ``AquaSystem.sql_stream`` (ISSUE 8).

The property suite (``tests/engine/test_stream_properties.py``) pins the
math; this module pins the driver contract: validation errors, emission
shape, early stopping, caching semantics (including version
invalidation), support counts, and the ``stream_*`` metrics.
"""

import numpy as np
import pytest

from repro.aqua import AquaSystem, StreamingAnswer
from repro.errors import StreamError

from repro.engine import Column, ColumnType, Schema, Table

SQL = "SELECT g, SUM(v) AS s, AVG(v) AS a FROM t GROUP BY g ORDER BY g"


def _table(n=2000, seed=11):
    rng = np.random.default_rng(seed)
    schema = Schema(
        [
            Column("g", ColumnType.STR, "grouping"),
            Column("v", ColumnType.FLOAT, "aggregate"),
        ]
    )
    return Table(
        schema,
        {
            "g": rng.choice(["a", "b", "c", "d"], size=n),
            "v": rng.normal(100.0, 15.0, size=n),
        },
    )


def _system(telemetry=False, **kwargs):
    system = AquaSystem(
        space_budget=200,
        rng=np.random.default_rng(7),
        telemetry=telemetry,
        **kwargs,
    )
    system.register_table("t", _table())
    return system


class TestValidation:
    def test_nested_from_is_not_streamable(self):
        system = _system()
        with pytest.raises(StreamError, match="nested FROM"):
            next(
                iter(
                    system.sql_stream(
                        "SELECT g, SUM(s) AS t FROM ("
                        "SELECT g, SUM(v) AS s FROM t GROUP BY g"
                        ") GROUP BY g"
                    )
                )
            )

    def test_no_aggregates_is_not_streamable(self):
        system = _system()
        with pytest.raises(StreamError, match="at least one aggregate"):
            next(iter(system.sql_stream("SELECT g, v FROM t WHERE v > 0")))

    def test_bad_chunk_rows(self):
        system = _system()
        with pytest.raises(StreamError, match="chunk_rows"):
            next(iter(system.sql_stream(SQL, chunk_rows=0)))

    def test_bad_until_rel_error(self):
        system = _system()
        with pytest.raises(StreamError, match="until_rel_error"):
            next(iter(system.sql_stream(SQL, until_rel_error=0.0)))


class TestEmissionContract:
    def test_progressively_tighter_answers(self):
        system = _system()
        answers = list(system.sql_stream(SQL, chunk_rows=400))
        assert len(answers) >= 3
        fractions = [answer.fraction for answer in answers]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0
        rels = [answer.max_rel_halfwidth for answer in answers]
        # Halfwidths shrink chunk over chunk on this well-behaved table.
        assert all(b <= a for a, b in zip(rels, rels[1:]))
        assert rels[-1] == 0.0
        final = answers[-1]
        assert final.final and final.provenance == "exact"
        names = [
            name
            for name in final.result.schema.names
            if not name.endswith("_error")
        ]
        assert final.result.project(names) == system.exact(SQL)

    def test_error_columns_follow_select_order(self):
        system = _system()
        first = next(iter(system.sql_stream(SQL, chunk_rows=500)))
        assert isinstance(first, StreamingAnswer)
        assert list(first.result.schema.names) == [
            "g", "s", "a", "s_error", "a_error",
        ]

    def test_support_counts_qualifying_rows(self):
        system = _system()
        first = next(
            iter(
                system.sql_stream(
                    "SELECT g, SUM(v) AS s FROM t WHERE v > 100 GROUP BY g",
                    chunk_rows=500,
                )
            )
        )
        assert first.support
        assert sum(first.support.values()) <= first.rows_seen
        assert all(n >= 0 for n in first.support.values())

    def test_global_aggregate_streams(self):
        system = _system()
        answers = list(
            system.sql_stream("SELECT SUM(v) AS s FROM t", chunk_rows=600)
        )
        assert answers[-1].final
        assert answers[-1].result.num_rows == 1


class TestEarlyStop:
    def test_stops_when_target_met(self):
        system = _system()
        answers = list(
            system.sql_stream(SQL, chunk_rows=100, until_rel_error=0.25)
        )
        terminal = answers[-1]
        assert terminal.converged
        assert not terminal.final
        assert terminal.rows_seen < terminal.rows_total
        assert terminal.max_rel_halfwidth <= 0.25

    def test_unreachable_target_runs_to_completion(self):
        system = _system()
        answers = list(
            system.sql_stream(SQL, chunk_rows=500, until_rel_error=1e-12)
        )
        assert answers[-1].final


class TestCaching:
    def test_completed_stream_is_cached(self):
        system = _system()
        list(system.sql_stream(SQL, chunk_rows=500))
        replay = list(system.sql_stream(SQL, chunk_rows=500))
        assert len(replay) == 1
        assert replay[0].cache_hit
        assert replay[0].final

    def test_cached_final_satisfies_any_target(self):
        system = _system()
        list(system.sql_stream(SQL, chunk_rows=500))
        replay = next(
            iter(system.sql_stream(SQL, chunk_rows=500, until_rel_error=0.01))
        )
        assert replay.cache_hit
        assert replay.converged

    def test_early_stop_is_not_cached(self):
        system = _system()
        answers = list(
            system.sql_stream(SQL, chunk_rows=100, until_rel_error=0.5)
        )
        assert not answers[-1].final
        replay = next(iter(system.sql_stream(SQL, chunk_rows=100)))
        assert not replay.cache_hit

    def test_insert_invalidates_stream_cache(self):
        system = _system()
        list(system.sql_stream(SQL, chunk_rows=500))
        system.insert("t", ["a", 250.0])
        replay = next(iter(system.sql_stream(SQL, chunk_rows=500)))
        assert not replay.cache_hit
        # The fresh stream sees the inserted row.
        assert replay.rows_total == 2001


class TestMetrics:
    def test_stream_counters(self):
        system = _system(telemetry=True)
        answers = list(system.sql_stream(SQL, chunk_rows=400))
        metrics = system.metrics
        assert metrics.get("stream_queries_total").value(table="t") == 1
        assert metrics.get("stream_chunks_total").value(table="t") == len(
            answers
        )
        assert metrics.get("stream_deadline_total").value(table="t") == 0

    def test_early_stop_counter(self):
        system = _system(telemetry=True)
        list(system.sql_stream(SQL, chunk_rows=100, until_rel_error=0.25))
        assert (
            system.metrics.get("stream_early_stops_total").value(table="t")
            == 1
        )

    def test_time_to_first_answer_histogram(self):
        system = _system(telemetry=True)
        list(system.sql_stream(SQL, chunk_rows=400))
        snapshot = system.metrics.snapshot()
        assert "stream_time_to_first_answer_seconds" in snapshot
