"""Unit tests for star-schema join synopses."""

import numpy as np
import pytest

from repro.aqua import ForeignKey, StarSchema, build_join_synopsis, materialize_star_join
from repro.engine import Catalog, ColumnType, Schema, Table


@pytest.fixture
def star_catalog(rng):
    catalog = Catalog()
    catalog.register(
        "dim",
        Table.from_columns(
            Schema.of(("d_id", ColumnType.INT), ("d_name", ColumnType.STR)),
            d_id=[0, 1, 2],
            d_name=["red", "green", "blue"],
        ),
    )
    n = 3000
    catalog.register(
        "fact",
        Table.from_columns(
            Schema.of(
                ("f_id", ColumnType.INT),
                ("f_dim", ColumnType.INT),
                ("f_val", ColumnType.FLOAT),
            ),
            f_id=np.arange(n),
            f_dim=rng.choice([0, 1, 2], size=n, p=[0.7, 0.25, 0.05]),
            f_val=rng.normal(100, 10, n),
        ),
    )
    return catalog


@pytest.fixture
def star():
    return StarSchema.of("fact", ForeignKey("f_dim", "dim", "d_id"))


class TestMaterialize:
    def test_cardinality_preserved(self, star_catalog, star):
        wide = materialize_star_join(star_catalog, star)
        assert wide.num_rows == star_catalog.get("fact").num_rows

    def test_dimension_columns_present(self, star_catalog, star):
        wide = materialize_star_join(star_catalog, star)
        assert "d_name" in wide.schema
        assert "d_id" not in wide.schema  # join key dropped

    def test_dangling_fk_detected(self, star_catalog):
        bad = StarSchema.of("fact", ForeignKey("f_id", "dim", "d_id"))
        with pytest.raises(ValueError, match="dangling"):
            materialize_star_join(star_catalog, bad)

    def test_non_unique_dimension_key_rejected(self, star_catalog, star):
        dup = Table.from_columns(
            Schema.of(("d_id", ColumnType.INT), ("d_name", ColumnType.STR)),
            d_id=[0, 0],
            d_name=["x", "y"],
        )
        star_catalog.register("dim", dup, replace=True)
        with pytest.raises(ValueError, match="not unique"):
            materialize_star_join(star_catalog, star)


class TestBuildJoinSynopsis:
    def test_sample_over_dimension_attribute(self, star_catalog, star, rng):
        sample, wide = build_join_synopsis(
            star_catalog, star, ["d_name"], 300, rng=rng
        )
        assert sample.total_sample_size == 300
        assert set(sample.strata) == {("red",), ("green",), ("blue",)}
        # Congress guarantees the 5% dimension value a solid share.
        assert sample.stratum(("blue",)).sample_size > 30

    def test_register_as(self, star_catalog, star, rng):
        build_join_synopsis(
            star_catalog, star, ["d_name"], 100,
            register_as="fact_wide", rng=rng,
        )
        assert "fact_wide" in star_catalog
