"""Unit tests for the Aqua shell."""

import io

import pytest

from repro.aqua import AquaSystem
from repro.aqua.cli import AquaShell, build_system, main
from repro.engine import write_csv


@pytest.fixture
def shell(skewed_table, rng):
    aqua = AquaSystem(space_budget=500, rng=rng)
    aqua.register_table("rel", skewed_table)
    out = io.StringIO()
    return AquaShell(aqua, out=out), out


class TestShellCommands:
    def test_sql_answer(self, shell):
        sh, out = shell
        assert sh.execute_line("select a, sum(q) s from rel group by a")
        text = out.getvalue()
        assert "s_error" in text
        assert "approximate" in text

    def test_exact(self, shell):
        sh, out = shell
        sh.execute_line(".exact select count(*) c from rel")
        assert "20000" in out.getvalue()

    def test_tables(self, shell):
        sh, out = shell
        sh.execute_line(".tables")
        assert "rel" in out.getvalue()

    def test_synopsis(self, shell):
        sh, out = shell
        sh.execute_line(".synopsis")
        assert "congress" in out.getvalue()

    def test_budget(self, shell):
        sh, out = shell
        sh.execute_line(".budget")
        assert "500" in out.getvalue()

    def test_help(self, shell):
        sh, out = shell
        sh.execute_line(".help")
        assert ".exact" in out.getvalue()

    def test_quit_returns_false(self, shell):
        sh, __ = shell
        assert sh.execute_line(".quit") is False

    def test_unknown_command(self, shell):
        sh, out = shell
        sh.execute_line(".bogus")
        assert "unknown command" in out.getvalue()

    def test_sql_error_reported_not_raised(self, shell):
        sh, out = shell
        sh.execute_line("select from nowhere")
        assert "error:" in out.getvalue()

    def test_empty_line_ignored(self, shell):
        sh, out = shell
        assert sh.execute_line("   ")
        assert out.getvalue() == ""

    def test_run_over_lines_stops_at_quit(self, shell):
        sh, out = shell
        sh.run([".budget", ".quit", ".tables"])
        assert "rel" not in out.getvalue()

    def test_row_cap(self, shell):
        sh, out = shell
        sh.execute_line(".exact select id from rel order by id")
        assert "more rows" in out.getvalue()


class TestBuildSystem:
    def test_demo_census(self):
        import argparse

        args = argparse.Namespace(
            csv=None, table=None, grouping=None, budget=100
        )
        aqua = build_system(args)
        assert "census" in aqua.catalog

    def test_csv_loading(self, small_table, tmp_path):
        import argparse

        path = tmp_path / "rel.csv"
        write_csv(small_table, path)
        args = argparse.Namespace(
            csv=str(path), table="rel", grouping="a,b", budget=4
        )
        aqua = build_system(args)
        assert aqua.synopsis("rel").sample_size == 4

    def test_csv_requires_table_and_grouping(self, tmp_path):
        import argparse

        args = argparse.Namespace(
            csv=str(tmp_path / "x.csv"), table=None, grouping=None, budget=4
        )
        with pytest.raises(SystemExit):
            build_system(args)


class TestMain:
    def test_execute_mode(self, small_table, tmp_path, capsys):
        path = tmp_path / "rel.csv"
        write_csv(small_table, path)
        code = main(
            [
                "--csv", str(path),
                "--table", "rel",
                "--grouping", "a,b",
                "--budget", "8",
                "-e", "select a, count(*) c from rel group by a order by a",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "c_error" in out


class TestExplainCompareCommands:
    def test_explain(self, shell):
        # The `shell` fixture runs with telemetry disabled: strategy name,
        # sample-table provenance, and the operator tree must show anyway.
        sh, out = shell
        sh.execute_line(".explain select a, sum(q) s from rel group by a")
        text = out.getvalue()
        assert "rewrite strategy" in text
        assert "bs_rel" in text
        assert "-- synopsis tables: bs_rel" in text
        assert "-- sample:" in text
        assert "-- plan:" in text
        assert "Scan bs_rel" in text
        assert "GroupBy" in text

    def test_compare(self, shell):
        sh, out = shell
        sh.execute_line(".compare select a, sum(q) s from rel group by a")
        text = out.getvalue()
        assert "speedup" in text
        assert "coverage" in text

    def test_usage_messages(self, shell):
        sh, out = shell
        sh.execute_line(".explain")
        sh.execute_line(".compare")
        text = out.getvalue()
        assert "usage: .explain" in text
        assert "usage: .compare" in text


class TestObservabilityCommands:
    @pytest.fixture
    def telemetry_shell(self, skewed_table, rng):
        import io

        from repro.obs import Telemetry

        aqua = AquaSystem(
            space_budget=500, rng=rng, telemetry=Telemetry.enabled()
        )
        aqua.register_table("rel", skewed_table)
        out = io.StringIO()
        return AquaShell(aqua, out=out), out

    def test_trace_prints_result_and_span_tree(self, telemetry_shell):
        sh, out = telemetry_shell
        sh.execute_line(".trace select a, sum(q) s from rel group by a")
        text = out.getvalue()
        assert "s_error" in text  # the answer table itself
        for stage in ("answer", "parse", "execute", "scan"):
            assert stage in text
        assert "ms" in text

    def test_trace_works_when_telemetry_disabled(self, shell):
        sh, out = shell
        sh.execute_line(".trace select a, sum(q) s from rel group by a")
        assert "answer" in out.getvalue()
        assert not sh._aqua.tracer.enabled  # restored afterwards

    def test_trace_usage(self, telemetry_shell):
        sh, out = telemetry_shell
        sh.execute_line(".trace")
        assert "usage: .trace" in out.getvalue()

    def test_stats_human_view(self, telemetry_shell):
        sh, out = telemetry_shell
        sh.execute_line("select a, sum(q) s from rel group by a")
        sh.execute_line(".stats")
        text = out.getvalue()
        assert "aqua_queries_total{table=rel}  1" in text
        assert "aqua_answer_seconds" in text

    def test_stats_json(self, telemetry_shell):
        import json

        sh, out = telemetry_shell
        sh.execute_line("select a, sum(q) s from rel group by a")
        out.truncate(0)
        out.seek(0)
        sh.execute_line(".stats json")
        data = json.loads(out.getvalue())
        assert data["aqua_queries_total"]["type"] == "counter"

    def test_stats_prometheus(self, telemetry_shell):
        sh, out = telemetry_shell
        sh.execute_line("select a, sum(q) s from rel group by a")
        sh.execute_line(".stats prom")
        text = out.getvalue()
        assert "# TYPE aqua_queries_total counter" in text
        assert 'aqua_queries_total{table="rel"} 1' in text

    def test_stats_before_any_activity(self):
        import io

        from repro.obs import Telemetry

        aqua = AquaSystem(space_budget=100, telemetry=Telemetry.enabled())
        out = io.StringIO()
        AquaShell(aqua, out=out).execute_line(".stats")
        assert "no metrics recorded yet" in out.getvalue()

    def test_stats_shows_synopsis_build(self, telemetry_shell):
        sh, out = telemetry_shell
        sh.execute_line(".stats")
        assert "aqua_synopsis_build_seconds" in out.getvalue()

    def test_stats_when_registry_disabled(self, shell):
        sh, out = shell
        sh.execute_line(".stats")
        assert "metrics registry is disabled" in out.getvalue()

    def test_stats_usage(self, telemetry_shell):
        sh, out = telemetry_shell
        sh.execute_line(".stats xml")
        assert "usage: .stats" in out.getvalue()

    def test_build_system_telemetry_flag(self):
        import argparse

        on = build_system(argparse.Namespace(
            csv=None, table=None, grouping=None, budget=100,
        ))
        assert on.tracer.enabled and on.metrics.enabled
        off = build_system(argparse.Namespace(
            csv=None, table=None, grouping=None, budget=100,
            no_telemetry=True,
        ))
        assert not off.tracer.enabled and not off.metrics.enabled


class TestParallelAndCacheCommands:
    def test_parallel_show_and_set(self, shell):
        sh, out = shell
        sh.execute_line(".parallel")
        assert "parallel scans:" in out.getvalue()
        sh.execute_line(".parallel 4")
        assert sh._aqua.parallel_config.workers == 4
        sh.execute_line(".parallel off")
        assert sh._aqua.executor is None
        assert "parallel scans: off" in out.getvalue()

    def test_parallel_usage(self, shell):
        sh, out = shell
        sh.execute_line(".parallel lots")
        assert "usage: .parallel" in out.getvalue()

    def test_cache_stats_and_clear(self, shell):
        sh, out = shell
        sh.execute_line("select a, sum(q) s from rel group by a")
        sh.execute_line("select a, sum(q) s from rel group by a")
        sh.execute_line(".cache")
        assert "1 hits / 1 misses" in out.getvalue()
        sh.execute_line(".cache clear")
        assert "dropped 1 cached answers" in out.getvalue()

    def test_cache_resize_and_off(self, shell):
        sh, out = shell
        sh.execute_line(".cache 5")
        assert sh._aqua.answer_cache.capacity == 5
        sh.execute_line(".cache off")
        assert sh._aqua.answer_cache is None
        assert "answer cache: off" in out.getvalue()
        sh.execute_line(".cache")  # showing the disabled cache is fine
        sh.execute_line(".cache clear")

    def test_cache_usage(self, shell):
        sh, out = shell
        sh.execute_line(".cache everything")
        assert "usage: .cache" in out.getvalue()

    def test_build_system_workers_flag(self):
        import argparse

        aqua = build_system(argparse.Namespace(
            csv=None, table=None, grouping=None, budget=100, workers=2,
        ))
        assert aqua.parallel_config.workers == 2


class TestServeCommand:
    def test_serve_off_by_default(self, shell):
        sh, out = shell
        sh.execute_line(".serve")
        assert "serving: off" in out.getvalue()

    def test_serve_sql_requires_service(self, shell):
        sh, out = shell
        sh.execute_line(".serve select a, sum(q) s from rel group by a")
        assert "serving is off" in out.getvalue()

    def test_serve_on_query_stats_off(self, shell):
        sh, out = shell
        sh.execute_line(".serve on 2")
        assert "serving: on (2 workers" in out.getvalue()
        sh.execute_line(".serve select a, sum(q) s from rel group by a")
        assert "[served: full" in out.getvalue()
        sh.execute_line(".serve")
        assert "admitted 1" in out.getvalue()
        sh.execute_line(".serve off")
        assert sh._service is None

    def test_serve_usage_on_bad_workers(self, shell):
        sh, out = shell
        sh.execute_line(".serve on many")
        assert "usage: .serve" in out.getvalue()

    def test_close_shuts_service_down(self, shell):
        sh, out = shell
        sh.execute_line(".serve on 1")
        sh.close()
        assert sh._service is None


@pytest.fixture
def observed_shell(skewed_table, rng):
    aqua = AquaSystem(space_budget=500, rng=rng, telemetry=True)
    aqua.register_table("rel", skewed_table)
    out = io.StringIO()
    return AquaShell(aqua, out=out), out, aqua


class TestEventAndSloCommands:
    def test_events_disabled_message(self, shell):
        sh, out = shell
        sh.execute_line(".events")
        assert "event log is disabled" in out.getvalue()

    def test_events_lists_recent_queries(self, observed_shell):
        sh, out, _aqua = observed_shell
        sh.execute_line("select a, sum(q) s from rel group by a")
        sh.execute_line(".events")
        text = out.getvalue()
        assert "ok" in text
        assert "rel" in text
        assert "groups" in text

    def test_events_limit_argument(self, observed_shell):
        sh, out, _aqua = observed_shell
        for _ in range(3):
            sh.execute_line("select a, sum(q) s from rel group by a")
        out.truncate(0), out.seek(0)
        sh.execute_line(".events 2")
        lines = [l for l in out.getvalue().splitlines() if l.strip()]
        assert len(lines) == 2

    def test_events_bad_argument(self, observed_shell):
        sh, out, _aqua = observed_shell
        sh.execute_line(".events nope")
        assert "usage: .events" in out.getvalue()

    def test_slo_without_monitor(self, observed_shell):
        sh, out, _aqua = observed_shell
        sh.execute_line(".slo")
        assert "no SLO monitor attached" in out.getvalue()

    def test_slo_describes_attached_monitor(self, observed_shell):
        from repro.obs.slo import SLOMonitor

        sh, out, aqua = observed_shell
        aqua.attach_slo(SLOMonitor())
        sh.execute_line("select a, sum(q) s from rel group by a")
        sh.execute_line(".slo")
        text = out.getvalue()
        assert "p99_latency_ms" in text
        assert "bound_violation_rate" in text

    def test_report_renders(self, observed_shell):
        sh, out, _aqua = observed_shell
        sh.execute_line("select a, sum(q) s from rel group by a")
        sh.execute_line(".report")
        assert "observability report" in out.getvalue()

    def test_help_mentions_new_commands(self, shell):
        sh, out = shell
        sh.execute_line(".help")
        text = out.getvalue()
        assert ".events" in text
        assert ".slo" in text
        assert ".report" in text
