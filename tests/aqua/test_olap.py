"""Unit tests for the roll-up/drill-down cube explorer."""

import pytest

from repro.aqua import AquaError, AquaSystem, CubeExplorer, Measure


@pytest.fixture
def aqua(skewed_table, rng):
    system = AquaSystem(space_budget=1000, rng=rng)
    system.register_table("rel", skewed_table)
    return system


@pytest.fixture
def explorer(aqua):
    return CubeExplorer(
        aqua, "rel", [Measure("sum", "q", "total"), Measure("count", None, "n")]
    )


class TestNavigation:
    def test_starts_rolled_up(self, explorer):
        assert explorer.grouping == ()
        answer = explorer.view()
        assert answer.result.num_rows == 1

    def test_drilldown(self, explorer):
        explorer.drilldown("a")
        assert explorer.grouping == ("a",)
        assert explorer.view().result.num_rows == 3

    def test_drilldown_twice(self, explorer):
        explorer.drilldown("a").drilldown("b")
        assert explorer.view().result.num_rows == 6

    def test_rollup_default_removes_last(self, explorer):
        explorer.drilldown("a").drilldown("b").rollup()
        assert explorer.grouping == ("a",)

    def test_rollup_named(self, explorer):
        explorer.drilldown("a").drilldown("b").rollup("a")
        assert explorer.grouping == ("b",)

    def test_rollup_when_empty_rejected(self, explorer):
        with pytest.raises(AquaError, match="rolled up"):
            explorer.rollup()

    def test_drilldown_unknown_column(self, explorer):
        with pytest.raises(AquaError, match="stratification"):
            explorer.drilldown("q")

    def test_double_drilldown_rejected(self, explorer):
        explorer.drilldown("a")
        with pytest.raises(AquaError, match="already"):
            explorer.drilldown("a")

    def test_slice_restricts(self, explorer):
        explorer.drilldown("b").slice("a", "a1")
        result = explorer.view().result
        assert result.num_rows == 2  # only b values within a1

    def test_unslice(self, explorer):
        explorer.slice("a", "a1").unslice("a")
        assert explorer.slices == ()

    def test_unslice_missing_rejected(self, explorer):
        with pytest.raises(AquaError):
            explorer.unslice("a")

    def test_history(self, explorer):
        explorer.drilldown("a").slice("b", "b1").rollup("a")
        assert explorer.history() == [
            "drilldown(a)", "slice(b='b1')", "rollup(a)",
        ]


class TestAnswers:
    def test_sql_shape(self, explorer):
        explorer.drilldown("a")
        sql = explorer.to_sql()
        assert "GROUP BY a" in sql
        assert "sum(q) AS total" in sql

    def test_view_close_to_exact(self, explorer):
        explorer.drilldown("a")
        approx = explorer.view().result
        exact = explorer.view_exact()
        approx_by_key = {r["a"]: r["total"] for r in approx.to_dicts()}
        for row in exact.to_dicts():
            assert approx_by_key[row["a"]] == pytest.approx(
                row["total"], rel=0.25
            )

    def test_error_columns_present(self, explorer):
        explorer.drilldown("a")
        result = explorer.view().result
        assert "total_error" in result.schema
        assert "n_error" in result.schema

    def test_every_navigation_state_covered(self, explorer):
        """Congress's core promise: all groupings answered from one sample."""
        states = [
            [],
            ["a"],
            ["b"],
            ["a", "b"],
        ]
        for grouping in states:
            explorer._grouping = list(grouping)
            exact = explorer.view_exact()
            approx = explorer.view().result
            assert approx.num_rows == exact.num_rows

    def test_requires_measures(self, aqua):
        with pytest.raises(AquaError):
            CubeExplorer(aqua, "rel", [])

    def test_requires_synopsis(self, skewed_table, rng):
        system = AquaSystem(space_budget=10, rng=rng)
        system.register_table("rel", skewed_table, build=False)
        with pytest.raises(AquaError):
            CubeExplorer(system, "rel", [Measure("sum", "q", "s")])
