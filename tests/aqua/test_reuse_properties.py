"""Property: roll-up answers are bit-identical to direct computation.

Two systems built from the same seed hold identical synopses.  System A
answers a fine GROUP BY (registering a reuse snapshot) and then a coarser
probe, served from the roll-up tier; system B answers the coarse probe
directly through the full pipeline.  Every aggregate value *and* every
Chebyshev half-width must agree bit for bit -- ``np.array_equal``, no
tolerance -- because both paths share :meth:`ReuseSnapshot.finalize`'s
arithmetic (see ``repro/aqua/reuse.py``).  Only the provenance column may
differ (``synopsis`` vs ``rollup``), which is the tier's audit trail.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.aqua import AquaSystem  # noqa: E402
from repro.engine import Column, ColumnType, Schema, Table  # noqa: E402

_AGG_POOL = [
    "SUM(v) AS s",
    "COUNT(*) AS c",
    "AVG(v) AS m",
    "SUM(w) AS sw",
    "AVG(w) AS mw",
]
_ALIAS = {"SUM(v) AS s": "s", "COUNT(*) AS c": "c", "AVG(v) AS m": "m",
          "SUM(w) AS sw": "sw", "AVG(w) AS mw": "mw"}
_SLICES = [None, "h = 'x'", "h != 'y'", "g IN ('a', 'b')"]


def _table(n, seed):
    rng = np.random.default_rng(seed)
    schema = Schema(
        [
            Column("g", ColumnType.STR, "grouping"),
            Column("h", ColumnType.STR, "grouping"),
            Column("v", ColumnType.FLOAT, "aggregate"),
            Column("w", ColumnType.FLOAT, "aggregate"),
        ]
    )
    return Table.from_columns(
        schema,
        g=rng.choice(["a", "b", "c"], size=n),
        h=rng.choice(["x", "y"], size=n),
        v=rng.gamma(2.0, 40.0, size=n),
        w=rng.normal(50.0, 12.0, size=n),
    )


def _system(seed, budget):
    system = AquaSystem(
        space_budget=budget, rng=np.random.default_rng(seed), cache=True
    )
    system.register_table("t", _table(2000, seed), grouping_columns=["g", "h"])
    return system


@settings(deadline=None, max_examples=25)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    budget=st.sampled_from([150, 400, 900]),
    aggs=st.lists(
        st.sampled_from(_AGG_POOL), min_size=1, max_size=4, unique=True
    ),
    coarse_col=st.sampled_from(["g", "h"]),
    where=st.sampled_from(_SLICES),
)
def test_rollup_is_bit_identical_to_direct(
    seed, budget, aggs, coarse_col, where
):
    select = ", ".join(aggs)
    fine = f"SELECT g, h, {select} FROM t GROUP BY g, h"
    clause = f" WHERE {where}" if where else ""
    coarse = (
        f"SELECT {coarse_col}, {select} FROM t{clause} "
        f"GROUP BY {coarse_col}"
    )

    warmed = _system(seed, budget)
    warmed.answer(fine)
    rollup = warmed.answer(coarse)
    assert rollup.cache_tier == "rollup", coarse

    direct = _system(seed, budget).answer(coarse)
    assert direct.cache_tier is None

    np.testing.assert_array_equal(
        rollup.result.column(coarse_col), direct.result.column(coarse_col)
    )
    for spec in aggs:
        alias = _ALIAS[spec]
        values_a = np.asarray(rollup.result.column(alias))
        values_b = np.asarray(direct.result.column(alias))
        assert np.array_equal(values_a, values_b), (coarse, alias)
        errors_a = np.asarray(rollup.result.column(f"{alias}_error"))
        errors_b = np.asarray(direct.result.column(f"{alias}_error"))
        assert np.array_equal(
            errors_a, errors_b, equal_nan=True
        ), (coarse, alias)


@settings(deadline=None, max_examples=15)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    coarse_col=st.sampled_from(["g", "h"]),
)
def test_replayed_rollup_equals_the_first_serving(seed, coarse_col):
    """The cached roll-up answer replays exactly (exact tier)."""
    system = _system(seed, 400)
    system.answer("SELECT g, h, SUM(v) AS s FROM t GROUP BY g, h")
    coarse = f"SELECT {coarse_col}, SUM(v) AS s FROM t GROUP BY {coarse_col}"
    first = system.answer(coarse)
    second = system.answer(coarse)
    assert first.cache_tier == "rollup"
    assert second.cache_tier == "exact"
    for name in first.result.schema.names:
        np.testing.assert_array_equal(
            first.result.column(name), second.result.column(name)
        )
