"""Hypothesis properties of the portfolio cost/error model and resolver.

The ISSUE's pinned surface:

* predicted relative error is monotone **non-increasing** in sample size;
* predicted relative error is monotone **non-decreasing** in predicate
  selectivity (the fraction of rows the WHERE eliminates);
* ``answer(q, max_rel_error=e)`` with an achievable ``e`` always returns
  an answer whose promised bound is ``<= e`` -- exact per-group repair
  counts as achieving the bound, so *every* positive ``e`` is achievable
  through the guard ladder.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aqua import AquaSystem, CostErrorModel
from repro.engine import Column, ColumnType, Schema, Table

_SIZES = st.floats(min_value=0.0, max_value=1e9, allow_nan=False)
_SELECTIVITIES = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
_CVS = st.floats(min_value=1e-3, max_value=100.0, allow_nan=False)
_CONFIDENCES = st.floats(
    min_value=0.5, max_value=0.999, allow_nan=False
)


class TestClosedFormMonotonicity:
    @given(
        m1=_SIZES, m2=_SIZES, selectivity=_SELECTIVITIES,
        cv=_CVS, confidence=_CONFIDENCES,
    )
    @settings(max_examples=200, deadline=None)
    def test_non_increasing_in_sample_size(
        self, m1, m2, selectivity, cv, confidence
    ):
        lo, hi = sorted((m1, m2))
        err_lo = CostErrorModel.predicted_rel_error(
            lo, selectivity, cv=cv, confidence=confidence
        )
        err_hi = CostErrorModel.predicted_rel_error(
            hi, selectivity, cv=cv, confidence=confidence
        )
        assert err_hi <= err_lo

    @given(
        m=_SIZES, s1=_SELECTIVITIES, s2=_SELECTIVITIES,
        cv=_CVS, confidence=_CONFIDENCES,
    )
    @settings(max_examples=200, deadline=None)
    def test_non_decreasing_in_selectivity(self, m, s1, s2, cv, confidence):
        lo, hi = sorted((s1, s2))
        err_lo = CostErrorModel.predicted_rel_error(
            m, lo, cv=cv, confidence=confidence
        )
        err_hi = CostErrorModel.predicted_rel_error(
            m, hi, cv=cv, confidence=confidence
        )
        assert err_hi >= err_lo

    @given(m=_SIZES, selectivity=_SELECTIVITIES)
    @settings(max_examples=100, deadline=None)
    def test_prediction_is_positive_or_inf(self, m, selectivity):
        err = CostErrorModel.predicted_rel_error(m, selectivity)
        assert err > 0.0 or err == float("inf") or math.isinf(err)

    @given(c1=_CONFIDENCES, c2=_CONFIDENCES)
    @settings(max_examples=100, deadline=None)
    def test_z_multiplier_monotone_in_confidence(self, c1, c2):
        lo, hi = sorted((c1, c2))
        assert CostErrorModel.z_multiplier(hi) >= CostErrorModel.z_multiplier(
            lo
        )

    @given(
        rows1=st.integers(min_value=0, max_value=10_000_000),
        rows2=st.integers(min_value=0, max_value=10_000_000),
    )
    @settings(max_examples=100, deadline=None)
    def test_latency_monotone_in_rows(self, rows1, rows2):
        model = CostErrorModel()
        lo, hi = sorted((rows1, rows2))
        assert model.predicted_seconds(hi) >= model.predicted_seconds(lo)


# -- end-to-end budget promise ------------------------------------------------

_QUERIES = (
    "SELECT a, SUM(q) AS s FROM rel GROUP BY a",
    "SELECT a, COUNT(*) AS c FROM rel GROUP BY a",
    "SELECT a, AVG(q) AS m FROM rel WHERE q > 2.0 GROUP BY a",
)

_SYSTEM = None


def _shared_system():
    """One built system for the property sweep (module-lazy, not a pytest
    fixture: Hypothesis re-runs the test body per example, and rebuilding
    a portfolio hundreds of times would dominate the suite)."""
    global _SYSTEM
    if _SYSTEM is None:
        rng = np.random.default_rng(17)
        n = 3000
        schema = Schema(
            [
                Column("a", ColumnType.STR, "grouping"),
                Column("q", ColumnType.FLOAT, "aggregate"),
            ]
        )
        table = Table(
            schema,
            {
                "a": rng.choice(
                    ["u", "v", "w", "x"], size=n, p=[0.6, 0.25, 0.1, 0.05]
                ),
                "q": rng.exponential(5.0, size=n),
            },
        )
        _SYSTEM = AquaSystem(
            space_budget=300, rng=rng, cache=False
        )
        _SYSTEM.register_table("rel", table)
        _SYSTEM.build_portfolio("rel")
    return _SYSTEM


class TestBudgetPromise:
    @given(
        budget=st.floats(
            min_value=1e-3, max_value=5.0, allow_nan=False
        ),
        query_index=st.integers(min_value=0, max_value=len(_QUERIES) - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_promise_never_exceeds_achievable_budget(
        self, budget, query_index
    ):
        system = _shared_system()
        answer = system.answer(
            _QUERIES[query_index], max_rel_error=budget
        )
        promised = answer.promised_rel_error
        assert promised is None or promised <= budget * (1.0 + 1e-9), (
            f"promised {promised} exceeds requested budget {budget} "
            f"(member {answer.chosen_synopsis})"
        )

    @given(budget=st.floats(min_value=1e-3, max_value=5.0, allow_nan=False))
    @settings(max_examples=15, deadline=None)
    def test_choice_is_always_a_member(self, budget):
        system = _shared_system()
        answer = system.answer(_QUERIES[0], max_rel_error=budget)
        assert answer.chosen_synopsis in system.portfolio("rel").members
