"""Tests for Aqua's bound-method option and rewrite-strategy selection."""

import numpy as np
import pytest

from repro.aqua import AquaError, AquaSystem
from repro.rewrite import (
    Integrated,
    KeyNormalized,
    NestedIntegrated,
    recommend_strategy,
)


class TestBoundMethods:
    @pytest.fixture
    def census(self):
        from repro.synthetic import CensusConfig, generate_census

        return generate_census(CensusConfig(population=40_000, seed=3))

    def _answer(self, census, method, sql):
        aqua = AquaSystem(
            space_budget=2000,
            bound_method=method,
            rng=np.random.default_rng(0),
        )
        aqua.register_table("census", census)
        return aqua.answer(sql)

    def test_invalid_method_rejected(self):
        with pytest.raises(AquaError, match="bound_method"):
            AquaSystem(space_budget=10, bound_method="bootstrap")

    def test_hoeffding_bounds_attached(self, census):
        answer = self._answer(
            census, "hoeffding",
            "SELECT st, sum(sal) s FROM census GROUP BY st",
        )
        errors = answer.result.column("s_error")
        assert np.isfinite(errors).all()
        assert (errors > 0).all()

    def test_hoeffding_wider_than_chebyshev(self, census):
        """Distribution-free bounds cost width; both must be positive."""
        sql = "SELECT st, sum(sal) s FROM census GROUP BY st ORDER BY st"
        cheb = self._answer(census, "chebyshev", sql).result
        hoef = self._answer(census, "hoeffding", sql).result
        assert (
            hoef.column("s_error").mean() > cheb.column("s_error").mean()
        )

    def test_hoeffding_count_supported(self, census):
        answer = self._answer(
            census, "hoeffding",
            "SELECT gen, count(*) c FROM census GROUP BY gen",
        )
        assert np.isfinite(answer.result.column("c_error")).all()

    def test_hoeffding_avg_falls_back(self, census):
        """AVG has no clean Hoeffding form; Chebyshev is used instead."""
        answer = self._answer(
            census, "hoeffding",
            "SELECT st, avg(sal) m FROM census GROUP BY st",
        )
        # Still bounded -- the fallback worked.
        errors = answer.result.column("m_error")
        assert np.isfinite(errors).any()

    def test_hoeffding_coverage(self, census):
        """90% Hoeffding bounds must cover the exact answer >= 90%."""
        sql = "SELECT st, sum(sal) s FROM census GROUP BY st"
        aqua = AquaSystem(
            space_budget=2000, bound_method="hoeffding",
            rng=np.random.default_rng(1),
        )
        aqua.register_table("census", census)
        exact = {
            row["st"]: row["s"] for row in aqua.exact(sql).to_dicts()
        }
        covered = total = 0
        for __ in range(5):
            aqua.build_synopsis("census")  # fresh sample
            answer = aqua.answer(sql)
            for row in answer.result.to_dicts():
                total += 1
                if abs(row["s"] - exact[row["st"]]) <= row["s_error"]:
                    covered += 1
        assert covered / total >= 0.90


class TestRecommendStrategy:
    def test_rare_updates_small_groups(self):
        assert isinstance(recommend_strategy(0.0, 100), NestedIntegrated)

    def test_rare_updates_many_groups(self):
        assert isinstance(recommend_strategy(1.0, 50_000), Integrated)

    def test_heavy_updates(self):
        assert isinstance(recommend_strategy(10_000.0), KeyNormalized)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="must be >= 0"):
            recommend_strategy(-1.0)

    def test_boundaries(self):
        # 1000 updates/query is still "moderate"; just above tips over.
        assert isinstance(recommend_strategy(1000.0, 50_000), Integrated)
        assert isinstance(recommend_strategy(1000.01), KeyNormalized)
        # num_groups_hint boundary: 1000 groups still favors per-group
        # scaling, 1001 favors plain Integrated.
        assert isinstance(recommend_strategy(0.0, 1000), NestedIntegrated)
        assert isinstance(recommend_strategy(0.0, 1001), Integrated)
