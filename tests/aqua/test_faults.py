"""Acceptance suite: every injected fault yields a guarded answer or a
typed AquaError -- never NaN aggregates and never a bare crash."""

import numpy as np
import pytest

from repro import AquaSystem, GuardPolicy
from repro.aqua import PROVENANCE_COLUMN, PROVENANCE_EXACT
from repro.errors import AquaError, SynopsisCorruptError
from repro.testing import FAULT_KINDS, FaultInjector, inject

from test_guard import SQL, make_table

# Faults whose damage is structural (the synopsis itself is no longer a
# valid stratified sample) -- they must trigger the full exact fallback.
STRUCTURAL = {"drop_stratum", "corrupt_scale_factor", "corrupt_row_indices"}


@pytest.fixture
def system():
    system = AquaSystem(space_budget=400, rng=np.random.default_rng(1))
    system.register_table("rel", make_table())
    return system


def assert_no_nan(result, aliases):
    for alias in aliases:
        values = np.asarray(result.column(alias), dtype=float)
        assert not np.isnan(values).any(), f"NaN in {alias}"
        errors = np.asarray(result.column(f"{alias}_error"), dtype=float)
        assert not np.isnan(errors).any(), f"NaN in {alias}_error"


class TestFaultAcceptance:
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_default_policy_never_serves_nan(self, system, kind):
        inject(system, kind, "rel")
        # Default policy, plus a staleness limit so the "stale" fault is in
        # scope for the guard rather than silently accepted.
        policy = GuardPolicy(staleness_limit=10)
        try:
            answer = system.answer(SQL, guard=policy)
        except AquaError:
            return  # a typed error is an acceptable outcome
        assert answer.guard is not None
        assert_no_nan(answer.result, ["s"])
        tags = answer.result.column(PROVENANCE_COLUMN)
        assert set(tags) <= {"synopsis", "repaired", "exact"}
        # Guarded answers must agree with the exact answer on every
        # repaired/exact group and stay close on synopsis groups.
        exact = {
            (r["a"], r["b"]): r["s"] for r in system.exact(SQL).to_dicts()
        }
        for row in answer.result.to_dicts():
            key = (row["a"], row["b"])
            if row[PROVENANCE_COLUMN] in ("repaired", "exact"):
                assert row["s"] == pytest.approx(exact[key])

    @pytest.mark.parametrize("kind", sorted(STRUCTURAL))
    def test_structural_faults_fall_back_to_exact(self, system, kind):
        inject(system, kind, "rel")
        answer = system.answer(SQL)
        assert answer.guard.fallback_reason is not None
        assert set(answer.result.column(PROVENANCE_COLUMN)) == {
            PROVENANCE_EXACT
        }

    @pytest.mark.parametrize("kind", sorted(STRUCTURAL))
    def test_on_corrupt_raise_gives_typed_error(self, system, kind):
        inject(system, kind, "rel")
        policy = GuardPolicy(on_corrupt="raise")
        with pytest.raises(SynopsisCorruptError):
            system.answer(SQL, guard=policy)

    def test_unguarded_answers_still_degrade_silently(self, system):
        """Documents WHY the guard exists: unguarded answers mis-scale."""
        FaultInjector(system).corrupt_scale_factor("rel")
        answer = system.answer(SQL, guard=False)
        exact = {
            (r["a"], r["b"]): r["s"] for r in system.exact(SQL).to_dicts()
        }
        approx = {
            (r["a"], r["b"]): r["s"] for r in answer.result.to_dicts()
        }
        worst = max(
            abs(approx[k] - exact[k]) / max(abs(exact[k]), 1e-9)
            for k in exact
            if k in approx
        )
        assert worst > 0.5  # the zeroed scale factor wipes out a group


class TestInjectorMechanics:
    def test_fault_record_fields(self, system):
        fault = FaultInjector(system).truncate_sample("rel", keep=2)
        assert fault.kind == "truncate_sample"
        assert fault.table == "rel"
        assert fault.key in system.synopsis("rel").sample.strata
        assert "2" in fault.detail

    def test_explicit_key_targeting(self, system):
        sample = system.synopsis("rel").sample
        target = sorted(
            k for k, s in sample.strata.items() if s.sample_size > 0
        )[-1]
        fault = FaultInjector(system).drop_stratum("rel", key=target)
        assert fault.key == target
        assert target not in system.synopsis("rel").sample.strata

    def test_unknown_kind_rejected(self, system):
        with pytest.raises(AquaError, match="unknown fault kind"):
            inject(system, "gamma_rays", "rel")

    def test_unknown_key_rejected(self, system):
        with pytest.raises(AquaError, match="no stratum"):
            FaultInjector(system).drop_stratum("rel", key=("zz", "zz"))

    def test_corrupt_indices_detected_by_validation(self, system):
        FaultInjector(system).corrupt_row_indices("rel")
        issues = system.synopsis("rel").validate()
        assert any("out of bounds" in issue for issue in issues)

    def test_dropped_stratum_detected_by_coverage(self, system):
        FaultInjector(system).drop_stratum("rel")
        health = system.health("rel")
        assert health.status == "corrupt"
        assert any("cover" in issue for issue in health.issues)

    def test_empty_allocation_visible_in_synopsis(self, system):
        fault = FaultInjector(system).empty_allocation("rel")
        assert fault.key in system.synopsis("rel").empty_strata
