"""Property test: guarded answers never surface NaN, whatever the damage."""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro import AquaSystem, GuardPolicy  # noqa: E402
from repro.engine import Column, ColumnType, Schema, Table  # noqa: E402
from repro.errors import AquaError  # noqa: E402
from repro.testing import FAULT_KINDS, inject  # noqa: E402

SQL = "select g, sum(v) s, count(*) c, avg(v) m from rel group by g order by g"


def build_system(seed, group_sizes, budget):
    rng = np.random.default_rng(seed)
    g = np.concatenate(
        [np.full(size, f"g{i}") for i, size in enumerate(group_sizes)]
    )
    v = rng.normal(10.0, 3.0, len(g))
    schema = Schema(
        [
            Column("g", ColumnType.STR, "grouping"),
            Column("v", ColumnType.FLOAT, "aggregate"),
        ]
    )
    table = Table.from_columns(schema, g=g, v=v)
    system = AquaSystem(space_budget=budget, rng=np.random.default_rng(seed))
    system.register_table("rel", table)
    return system


@settings(deadline=None, max_examples=25)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    group_sizes=st.lists(
        st.integers(min_value=1, max_value=200), min_size=1, max_size=5
    ),
    budget=st.integers(min_value=1, max_value=80),
    kind=st.sampled_from((None,) + FAULT_KINDS),
)
def test_guarded_answer_is_never_nan(seed, group_sizes, budget, kind):
    system = build_system(seed, group_sizes, budget)
    if kind is not None:
        inject(system, kind, "rel")
    policy = GuardPolicy(staleness_limit=10)
    try:
        answer = system.answer(SQL, guard=policy)
    except AquaError:
        return  # a typed error is within the contract
    assert answer.guard is not None
    for alias in ("s", "c", "m"):
        values = np.asarray(answer.result.column(alias), dtype=float)
        assert not np.isnan(values).any(), f"NaN {alias} for fault {kind}"
        errors = np.asarray(
            answer.result.column(f"{alias}_error"), dtype=float
        )
        assert not np.isnan(errors).any(), f"NaN {alias}_error for {kind}"
    tags = set(answer.result.column(policy.provenance_column))
    assert tags <= {"synopsis", "repaired", "exact"}
