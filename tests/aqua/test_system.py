"""Unit tests for the Aqua middleware."""

import numpy as np
import pytest

from repro.aqua import AquaError, AquaSystem
from repro.core import Senate
from repro.rewrite import Integrated


@pytest.fixture
def aqua(skewed_table, rng):
    system = AquaSystem(space_budget=1000, rng=rng)
    system.register_table("rel", skewed_table)
    return system


SQL = "select a, sum(q) as s from rel group by a order by a"


class TestRegistration:
    def test_synopsis_built_on_register(self, aqua):
        synopsis = aqua.synopsis("rel")
        assert synopsis.sample_size == 1000
        assert synopsis.grouping_columns == ("a", "b")

    def test_grouping_columns_from_roles(self, aqua):
        assert aqua.synopsis("rel").grouping_columns == ("a", "b")

    def test_explicit_grouping_columns(self, skewed_table, rng):
        system = AquaSystem(space_budget=500, rng=rng)
        system.register_table("rel", skewed_table, grouping_columns=["a"])
        assert system.synopsis("rel").grouping_columns == ("a",)

    def test_no_grouping_columns_rejected(self, rng):
        from repro.engine import ColumnType, Schema, Table

        table = Table.from_columns(Schema.of(("x", ColumnType.INT)), x=[1])
        system = AquaSystem(space_budget=10, rng=rng)
        with pytest.raises(AquaError, match="grouping"):
            system.register_table("t", table)

    def test_deferred_build(self, skewed_table, rng):
        system = AquaSystem(space_budget=100, rng=rng)
        assert system.register_table("rel", skewed_table, build=False) is None
        with pytest.raises(AquaError, match="no synopsis"):
            system.synopsis("rel")
        system.build_synopsis("rel")
        assert system.synopsis("rel").sample_size == 100

    def test_invalid_budget(self):
        with pytest.raises(AquaError):
            AquaSystem(space_budget=0)

    def test_unknown_table(self, aqua):
        with pytest.raises(AquaError, match="not registered"):
            aqua.build_synopsis("nope")


class TestAnswering:
    def test_answer_close_to_exact(self, aqua):
        answer = aqua.answer(SQL)
        exact = aqua.exact(SQL)
        approx_by_key = {r["a"]: r["s"] for r in answer.result.to_dicts()}
        for row in exact.to_dicts():
            assert approx_by_key[row["a"]] == pytest.approx(
                row["s"], rel=0.25
            )

    def test_error_columns_attached(self, aqua):
        answer = aqua.answer(SQL)
        assert "s_error" in answer.result.schema
        errors = answer.result.column("s_error")
        assert (errors[~np.isnan(errors)] > 0).all()

    def test_confidence_recorded(self, aqua):
        assert aqua.answer(SQL).confidence == pytest.approx(0.90)

    def test_elapsed_positive(self, aqua):
        assert aqua.answer(SQL).elapsed_seconds > 0

    def test_avg_and_count(self, aqua):
        answer = aqua.answer(
            "select b, avg(q) m, count(*) c from rel group by b order by b"
        )
        assert {"m", "c", "m_error", "c_error"} <= set(
            answer.result.schema.names
        )

    def test_query_object_accepted(self, aqua):
        from repro.engine import parse_query

        answer = aqua.answer(parse_query(SQL))
        assert answer.result.num_rows == 3

    def test_answer_without_synopsis_rejected(self, skewed_table, rng):
        system = AquaSystem(space_budget=100, rng=rng)
        system.register_table("rel", skewed_table, build=False)
        with pytest.raises(AquaError):
            system.answer(SQL)

    def test_custom_strategies(self, skewed_table, rng):
        system = AquaSystem(
            space_budget=600,
            allocation_strategy=Senate(),
            rewrite_strategy=Integrated(),
            rng=rng,
        )
        system.register_table("rel", skewed_table)
        synopsis = system.synopsis("rel")
        assert synopsis.allocation_strategy == "senate"
        assert synopsis.rewrite_strategy == "integrated"
        # Senate targets 100 per stratum; tiny strata cap at their
        # population and the spare tuples go to the largest remainders.
        sizes = synopsis.sample.sample_sizes()
        populations = {
            key: stratum.population
            for key, stratum in synopsis.sample.strata.items()
        }
        assert sum(sizes.values()) == 600
        for key, size in sizes.items():
            assert size >= min(95, populations[key])


class TestMaintenance:
    def test_insert_and_refresh(self, aqua):
        aqua.enable_maintenance("rel")
        new_rows = [("znew", "b1", 5.0, 10_000_000 + i) for i in range(3000)]
        aqua.insert_many("rel", new_rows)
        aqua.refresh_synopsis("rel")
        answer = aqua.answer(SQL)
        groups = set(answer.result.column("a").tolist())
        assert "znew" in groups

    def test_exact_sees_pending_inserts(self, aqua):
        aqua.insert("rel", ("brand_new", "b1", 1.0, 99_999_999))
        exact = aqua.exact(SQL)
        assert "brand_new" in set(exact.column("a").tolist())

    def test_refresh_without_maintainer_rebuilds(self, aqua):
        aqua.insert("rel", ("fresh", "b2", 2.0, 88_888_888))
        synopsis = aqua.refresh_synopsis("rel")
        assert synopsis.sample_size == 1000

    def test_describe(self, aqua):
        text = aqua.synopsis("rel").describe()
        assert "congress" in text
        assert "1000" in text


class TestCompareAndExplain:
    def test_compare_report(self, aqua):
        report = aqua.compare(SQL)
        assert "s" in report.errors
        assert report.errors["s"].coverage == 1.0
        assert report.exact.num_rows == 3
        assert report.speedup > 0
        text = report.describe()
        assert "speedup" in text
        assert "coverage" in text

    def test_compare_multiple_aggregates(self, aqua):
        report = aqua.compare(
            "select b, sum(q) s, count(*) c from rel group by b"
        )
        assert set(report.errors) == {"s", "c"}

    def test_explain_contains_sample_relation(self, aqua):
        text = aqua.explain(SQL)
        assert "bs_rel" in text
        assert "rewrite strategy" in text
