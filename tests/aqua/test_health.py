"""SynopsisHealth reporting, refresh policies, and the .health command."""

import io

import numpy as np
import pytest

from repro import AquaSystem, RefreshPolicy
from repro.aqua.cli import AquaShell
from repro.errors import TableNotRegisteredError
from repro.testing import FaultInjector

from test_guard import make_table


@pytest.fixture
def system():
    system = AquaSystem(space_budget=400, rng=np.random.default_rng(1))
    system.register_table("rel", make_table())
    return system


class TestHealthReport:
    def test_healthy_synopsis_is_ok(self, system):
        health = system.health("rel")
        assert health.status == "ok"
        assert health.built
        assert health.sample_size == 400
        assert health.strata_coverage == 1.0
        assert health.issues == ()
        assert 0 < health.sample_ratio < 1

    def test_unbuilt_synopsis_is_missing(self):
        system = AquaSystem(space_budget=100)
        system.register_table("rel", make_table(), build=False)
        health = system.health("rel")
        assert health.status == "missing"
        assert not health.built
        assert "missing" in health.describe()

    def test_unregistered_table_raises_typed_error(self, system):
        with pytest.raises(TableNotRegisteredError):
            system.health("nope")

    def test_drift_makes_stale(self, system):
        row = next(iter(system._state("rel").table.iter_rows()))
        for __ in range(600):  # > 10% of 5000 rows
            system.insert("rel", row)
        health = system.health("rel")
        assert health.status == "stale"
        assert health.inserts_since_refresh == 600
        assert health.drift_fraction > 0.1
        # Refresh resolves it.
        system.refresh_synopsis("rel")
        assert system.health("rel").status == "ok"

    def test_empty_stratum_degrades_coverage(self, system):
        FaultInjector(system).empty_allocation("rel")
        health = system.health("rel")
        assert health.status == "degraded"
        assert health.strata_coverage < 1.0

    def test_corruption_reported_with_issues(self, system):
        FaultInjector(system).corrupt_scale_factor("rel")
        health = system.health("rel")
        assert health.status == "corrupt"
        assert health.issues
        assert "issues" in health.describe()

    def test_describe_mentions_table_and_status(self, system):
        text = system.health("rel").describe()
        assert "health[rel]" in text
        assert "status=ok" in text


class TestRefreshPolicy:
    def test_auto_refresh_after_max_inserts(self, system):
        system.set_refresh_policy("rel", RefreshPolicy(max_inserts=10))
        row = next(iter(system._state("rel").table.iter_rows()))
        for __ in range(11):
            system.insert("rel", row)
        # The 11th insert crossed the limit and triggered a refresh.
        assert system._state("rel").inserts_since_refresh == 0

    def test_auto_refresh_on_drift_fraction(self, system):
        system.set_refresh_policy(
            "rel", RefreshPolicy(max_drift_fraction=0.001)
        )
        row = next(iter(system._state("rel").table.iter_rows()))
        # The 6th insert pushes drift over 0.1% of the 5000-row base.
        for __ in range(6):
            system.insert("rel", row)
        assert system._state("rel").inserts_since_refresh == 0
        assert system._state("rel").rows_at_refresh == 5006

    def test_no_policy_accumulates_drift(self, system):
        row = next(iter(system._state("rel").table.iter_rows()))
        for __ in range(10):
            system.insert("rel", row)
        assert system._state("rel").inserts_since_refresh == 10

    def test_policy_cleared(self, system):
        system.set_refresh_policy("rel", RefreshPolicy(max_inserts=1))
        system.set_refresh_policy("rel", None)
        row = next(iter(system._state("rel").table.iter_rows()))
        for __ in range(5):
            system.insert("rel", row)
        assert system._state("rel").inserts_since_refresh == 5

    def test_should_refresh_thresholds(self):
        policy = RefreshPolicy(max_inserts=5, max_drift_fraction=0.5)
        assert not policy.should_refresh(5, 1000)
        assert policy.should_refresh(6, 1000)
        assert policy.should_refresh(3, 4)  # 75% drift
        assert not RefreshPolicy().should_refresh(10_000, 1)


class TestHealthCommand:
    def run_shell(self, system, lines):
        out = io.StringIO()
        AquaShell(system, out=out).run(lines)
        return out.getvalue()

    def test_health_command_lists_tables(self, system):
        text = self.run_shell(system, [".health"])
        assert "health[rel]" in text
        assert "status=ok" in text

    def test_health_command_shows_issues(self, system):
        FaultInjector(system).corrupt_scale_factor("rel")
        text = self.run_shell(system, [".health"])
        assert "status=corrupt" in text

    def test_health_command_no_tables(self):
        system = AquaSystem(space_budget=10)
        text = self.run_shell(system, [".health"])
        assert "no tables registered" in text

    def test_help_mentions_health(self, system):
        text = self.run_shell(system, [".help"])
        assert ".health" in text
