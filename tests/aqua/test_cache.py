"""Answer-cache correctness: invalidation, degraded answers, counters."""

import numpy as np
import pytest

from repro.aqua import AnswerCache, AquaSystem, CacheStats, GuardPolicy
from repro.engine import Column, ColumnType, Schema, Table

SQL = "SELECT g, SUM(v) AS s FROM t GROUP BY g"


def _table(n=2000, seed=3):
    rng = np.random.default_rng(seed)
    schema = Schema(
        [
            Column("g", ColumnType.STR, "grouping"),
            Column("v", ColumnType.FLOAT, "aggregate"),
        ]
    )
    return Table(
        schema,
        {
            "g": rng.choice(["a", "b", "c"], size=n),
            "v": rng.normal(100.0, 10.0, size=n),
        },
    )


def _system(**kwargs):
    system = AquaSystem(
        space_budget=300, rng=np.random.default_rng(9), **kwargs
    )
    system.register_table("t", _table())
    return system


class TestCacheHits:
    def test_repeated_identical_sql_hits(self):
        system = _system()
        first = system.answer(SQL)
        second = system.answer(SQL)
        stats = system.answer_cache.stats
        assert (stats.hits, stats.misses) == (1, 1)
        np.testing.assert_array_equal(
            first.result.column("s"), second.result.column("s")
        )

    def test_normalized_plan_shares_entry(self):
        """Different SQL spellings of the same plan share a cache entry."""
        system = _system()
        system.answer("select g, sum(v) s from t group by g")
        system.answer("SELECT g, SUM(v) AS s FROM t GROUP BY g")
        stats = system.answer_cache.stats
        assert (stats.hits, stats.misses) == (1, 1)

    def test_different_queries_miss(self):
        system = _system()
        system.answer(SQL)
        system.answer("SELECT g, AVG(v) AS s FROM t GROUP BY g")
        assert system.answer_cache.stats.hits == 0

    def test_different_guard_policies_do_not_share(self):
        system = _system()
        system.answer(SQL)
        system.answer(SQL, guard=GuardPolicy(min_group_support=1))
        system.answer(SQL, guard=False)
        stats = system.answer_cache.stats
        assert (stats.hits, stats.misses) == (0, 3)

    def test_cached_answer_carries_fresh_trace(self):
        system = _system(telemetry=True)
        system.answer(SQL)
        hit = system.answer(SQL)
        assert hit.trace is not None
        assert hit.trace.root.attributes.get("cache") == "exact"


class TestCacheInvalidation:
    def test_insert_invalidates(self):
        system = _system()
        system.answer(SQL)
        system.insert("t", ("a", 50.0))
        system.answer(SQL)
        stats = system.answer_cache.stats
        assert (stats.hits, stats.misses) == (0, 2)

    def test_refresh_invalidates(self):
        system = _system()
        system.answer(SQL)
        system.refresh_synopsis("t")
        system.answer(SQL)
        assert system.answer_cache.stats.hits == 0

    def test_reregistration_invalidates(self):
        system = _system()
        system.answer(SQL)
        version = system.table_version("t")
        system.register_table("t", _table(seed=4), ["g"])
        assert system.table_version("t") > version
        system.answer(SQL)
        assert system.answer_cache.stats.hits == 0

    def test_version_monotonic_across_mutations(self):
        system = _system()
        seen = [system.table_version("t")]
        system.insert("t", ("a", 1.0))
        seen.append(system.table_version("t"))
        system.exact(SQL)  # flushes the pending row
        seen.append(system.table_version("t"))
        system.refresh_synopsis("t")
        seen.append(system.table_version("t"))
        assert seen == sorted(set(seen)), f"versions not monotonic: {seen}"

    def test_hit_resumes_after_invalidation(self):
        system = _system()
        system.answer(SQL)
        system.insert("t", ("b", 1.0))
        system.answer(SQL)
        system.answer(SQL)
        stats = system.answer_cache.stats
        assert (stats.hits, stats.misses) == (1, 2)


class TestDegradedAnswersNeverCached:
    def test_exact_fallback_not_cached(self):
        # Impossible support threshold: every group fails, guard escalates
        # to the full exact fallback -- a degraded answer.
        policy = GuardPolicy(
            min_group_support=10**9, max_repair_fraction=0.0
        )
        system = _system(guard_policy=policy)
        first = system.answer(SQL)
        assert first.guard is not None and first.guard.degraded
        second = system.answer(SQL)
        assert second.guard is not None and second.guard.degraded
        stats = system.answer_cache.stats
        assert (stats.hits, stats.misses) == (0, 2)
        assert stats.size == 0

    def test_repaired_answer_not_cached(self):
        policy = GuardPolicy(min_group_support=10**9, max_repair_fraction=1.0)
        system = _system(guard_policy=policy)
        answer = system.answer(SQL)
        assert answer.guard is not None and answer.guard.degraded
        assert len(system.answer_cache) == 0

    def test_clean_guarded_answer_is_cached(self):
        system = _system(guard_policy=GuardPolicy(min_group_support=1))
        answer = system.answer(SQL)
        assert answer.guard is not None and not answer.guard.degraded
        assert len(system.answer_cache) == 1


class TestCountersAgree:
    def test_obs_counters_match_stats(self):
        system = _system(telemetry=True)
        system.answer(SQL)
        system.answer(SQL)
        system.answer(SQL)
        system.answer("SELECT g, COUNT(*) AS c FROM t GROUP BY g")
        stats = system.answer_cache.stats
        assert (stats.hits, stats.misses) == (2, 2)
        text = system.metrics.to_prometheus()
        assert f"aqua_answer_cache_hits_total {stats.hits}" in text
        assert f"aqua_answer_cache_misses_total {stats.misses}" in text

    def test_stats_describe(self):
        stats = CacheStats(hits=3, misses=1, evictions=0, size=2, capacity=8)
        assert stats.hit_rate == 0.75
        assert "3 hits / 1 misses" in stats.describe()


class TestCacheMechanics:
    def test_lru_eviction(self):
        cache = AnswerCache(capacity=2)
        cache.put("k1", "v1")
        cache.put("k2", "v2")
        assert cache.get("k1") == "v1"  # promotes k1 over k2
        cache.put("k3", "v3")
        assert cache.get("k2") is None  # k2 was least recently used
        assert cache.get("k1") == "v1"
        assert cache.stats.evictions == 1

    def test_invalidate_by_table_prefix(self):
        cache = AnswerCache()
        cache.put(("t", 0, "sql-a"), 1)
        cache.put(("t", 0, "sql-b"), 2)
        cache.put(("u", 0, "sql-a"), 3)
        assert cache.invalidate("t") == 2
        assert cache.get(("u", 0, "sql-a")) == 3

    def test_invalidate_all(self):
        cache = AnswerCache()
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.invalidate() == 2
        assert len(cache) == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            AnswerCache(capacity=0)

    def test_system_cache_configuration(self):
        assert _system(cache=False).answer_cache is None
        assert _system(cache=7).answer_cache.capacity == 7
        shared = AnswerCache(capacity=3)
        assert _system(cache=shared).answer_cache is shared

    def test_set_cache_runtime(self):
        system = _system()
        system.answer(SQL)
        system.set_cache(False)
        assert system.answer_cache is None
        system.answer(SQL)  # runs uncached, no error
        system.set_cache(16)
        assert system.answer_cache.capacity == 16
        system.answer(SQL)
        system.answer(SQL)
        assert system.answer_cache.stats.hits == 1


class TestCachedBounds:
    """A cache hit is indistinguishable from recomputation: the stored
    answer keeps the original error bounds and guard provenance."""

    def test_cached_answer_carries_original_error_bounds(self):
        system = _system()
        first = system.answer(SQL)
        hit = system.answer(SQL)
        assert system.answer_cache.stats.hits == 1
        np.testing.assert_array_equal(
            first.result.column("s_error"), hit.result.column("s_error")
        )
        errors = hit.result.column("s_error")
        assert np.all(np.isfinite(errors)) and np.all(errors > 0.0)
        assert hit.confidence == first.confidence

    def test_cached_answer_keeps_provenance_and_guard(self):
        system = _system()
        first = system.answer(SQL)
        hit = system.answer(SQL)
        assert hit.guard is not None
        assert hit.provenance_counts == first.provenance_counts
        np.testing.assert_array_equal(
            first.result.column("provenance"),
            hit.result.column("provenance"),
        )

    def test_bounds_recomputed_after_invalidation(self):
        """After an insert the cache misses and bounds come from the new
        synopsis state -- never from the stale entry."""
        system = _system()
        before = system.answer(SQL)
        system.insert("t", ("a", 10_000.0))
        after = system.answer(SQL)
        assert system.answer_cache.stats.hits == 0
        assert before.result.num_rows == after.result.num_rows
