"""Statistical contract of the guard's escalation ladder.

A repaired or exact-served group is computed from the base table, so its
answer is *exact* -- the guard must say so honestly: provenance tags name
the path each group took, and the error columns of repaired/exact groups
are zeroed rather than reusing the synopsis's now-stale bounds.
"""

import numpy as np
import pytest

from repro import AquaSystem, GuardPolicy
from repro.aqua import (
    PROVENANCE_COLUMN,
    PROVENANCE_EXACT,
    PROVENANCE_REPAIRED,
    PROVENANCE_SYNOPSIS,
)
from repro.engine import Column, ColumnType, Schema, Table

SQL = "select g, sum(v) s from t group by g order by g"


def table_with_tiny_group(n=4000, seed=5):
    """Two big groups plus one single-row group (the paper's small-group
    problem in miniature: support 1 < the default min_group_support 2)."""
    rng = np.random.default_rng(seed)
    g = np.where(rng.random(n) < 0.5, "big1", "big2")
    g[0] = "tiny"
    v = rng.normal(100.0, 15.0, n)
    schema = Schema(
        [
            Column("g", ColumnType.STR, "grouping"),
            Column("v", ColumnType.FLOAT, "aggregate"),
        ]
    )
    return Table.from_columns(schema, g=g, v=v)


@pytest.fixture
def system():
    system = AquaSystem(space_budget=200, rng=np.random.default_rng(17))
    system.register_table("t", table_with_tiny_group())
    return system


def _row(answer, group):
    i = list(answer.result.column("g")).index(group)
    return {
        name: answer.result.column(name)[i]
        for name in answer.result.schema.names
    }


class TestRepairedStatistics:
    def test_tiny_group_is_repaired_with_provenance(self, system):
        answer = system.answer(SQL)
        assert answer.guard is not None
        assert _row(answer, "tiny")[PROVENANCE_COLUMN] == (
            PROVENANCE_REPAIRED
        )
        assert answer.provenance_counts[PROVENANCE_REPAIRED] == 1
        assert answer.provenance_counts[PROVENANCE_SYNOPSIS] == 2

    def test_repaired_group_is_exact(self, system):
        answer = system.answer(SQL)
        base = system.catalog.get("t")
        truth = float(
            base.column("v")[base.column("g") == "tiny"].sum()
        )
        assert _row(answer, "tiny")["s"] == pytest.approx(truth)

    def test_repaired_group_never_reuses_stale_bounds(self, system):
        """The synopsis bound described a discarded estimate; the repaired
        value is exact, so its error half-width must be exactly zero."""
        answer = system.answer(SQL)
        assert _row(answer, "tiny")["s_error"] == 0.0

    def test_synopsis_groups_keep_their_bounds(self, system):
        answer = system.answer(SQL)
        for group in ("big1", "big2"):
            row = _row(answer, group)
            assert row[PROVENANCE_COLUMN] == PROVENANCE_SYNOPSIS
            assert np.isfinite(row["s_error"])
            assert row["s_error"] > 0.0

    def test_flag_reason_recorded(self, system):
        answer = system.answer(SQL)
        assert ("tiny",) in answer.guard.flagged
        assert "support" in answer.guard.flagged[("tiny",)]


class TestExactFallbackStatistics:
    @pytest.fixture
    def fallback(self, system):
        # Forbid per-group repair so the guard escalates to a full exact
        # answer for the same failing group.
        return system.answer(
            SQL,
            guard=GuardPolicy(max_repair_fraction=0.0),
        )

    def test_all_groups_exact(self, fallback):
        tags = fallback.result.column(PROVENANCE_COLUMN)
        assert all(tag == PROVENANCE_EXACT for tag in tags)
        assert fallback.guard.degraded
        assert fallback.guard.fallback_reason

    def test_exact_answer_reports_zero_error(self, fallback):
        errors = fallback.result.column("s_error")
        assert np.all(errors == 0.0)

    def test_exact_values_match_base_table(self, fallback, system):
        base = system.catalog.get("t")
        for group in ("big1", "big2", "tiny"):
            truth = float(
                base.column("v")[base.column("g") == group].sum()
            )
            assert _row(fallback, group)["s"] == pytest.approx(truth)


class TestUnguardedPath:
    def test_unguarded_answer_keeps_raw_bounds(self, system):
        """guard=False serves the raw synopsis estimate: no provenance, no
        repair -- the tiny group keeps whatever bound the estimator gave."""
        answer = system.answer(SQL, guard=False)
        assert answer.guard is None
        assert PROVENANCE_COLUMN not in answer.result.schema
