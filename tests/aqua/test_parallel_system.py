"""Parallel machinery inside AquaSystem: construction, exact, guard reuse."""

import numpy as np
import pytest

from repro.aqua import AquaSystem, GuardPolicy, ParallelConfig
from repro.engine import Column, ColumnType, Schema, Table

SQL = "SELECT g, SUM(v) AS s, AVG(v) AS m FROM t GROUP BY g"


def _table(n=6000, seed=11):
    rng = np.random.default_rng(seed)
    schema = Schema(
        [
            Column("g", ColumnType.STR, "grouping"),
            Column("h", ColumnType.STR, "grouping"),
            Column("v", ColumnType.FLOAT, "aggregate"),
        ]
    )
    return Table(
        schema,
        {
            "g": rng.choice(
                ["a", "b", "c", "d"], size=n, p=[0.7, 0.2, 0.08, 0.02]
            ),
            "h": rng.choice(["x", "y"], size=n),
            "v": rng.exponential(50.0, size=n),
        },
    )


def _pair(**parallel_kwargs):
    """Identically-seeded systems: one serial, one partition-parallel."""
    serial = AquaSystem(
        space_budget=400, rng=np.random.default_rng(5), parallel=False
    )
    parallel = AquaSystem(
        space_budget=400,
        rng=np.random.default_rng(5),
        parallel=ParallelConfig(
            max_workers=4, min_partition_rows=1, **parallel_kwargs
        ),
    )
    table = _table()
    serial.register_table("t", table)
    parallel.register_table("t", table)
    return serial, parallel


class TestParallelConstruction:
    def test_synopsis_bit_identical_to_serial(self):
        serial, parallel = _pair()
        left = serial.synopsis("t").sample
        right = parallel.synopsis("t").sample
        assert left.sample_sizes() == right.sample_sizes()
        assert left.scale_factors() == right.scale_factors()
        for key, stratum in left.strata.items():
            assert np.array_equal(
                stratum.row_indices, right.strata[key].row_indices
            ), f"stratum {key} drew different rows"

    def test_answers_identical_to_serial(self):
        serial, parallel = _pair()
        left = serial.answer(SQL).result
        right = parallel.answer(SQL).result
        for name in left.schema.names:
            np.testing.assert_array_equal(
                left.column(name), right.column(name)
            )


class TestParallelExact:
    def test_exact_matches_serial(self):
        serial, parallel = _pair()
        left = serial.exact(SQL)
        right = parallel.exact(SQL)
        assert list(left.column("g")) == list(right.column("g"))
        np.testing.assert_allclose(
            left.column("s"), right.column("s"), rtol=1e-12
        )
        np.testing.assert_allclose(
            left.column("m"), right.column("m"), rtol=1e-12
        )

    def test_hash_mode_exact_matches_serial(self):
        serial, parallel = _pair(partition_mode="hash")
        left = serial.exact(SQL)
        right = parallel.exact(SQL)
        np.testing.assert_allclose(
            left.column("s"), right.column("s"), rtol=1e-12
        )

    def test_exact_scans_run_partitioned(self):
        system = AquaSystem(
            space_budget=400,
            rng=np.random.default_rng(5),
            parallel=ParallelConfig(max_workers=4, min_partition_rows=1),
            telemetry=True,
        )
        system.register_table("t", _table())
        system.exact(SQL)
        text = system.metrics.to_prometheus()
        assert "engine_parallel_scans_total" in text


class TestGuardReusesExecutor:
    def test_exact_fallback_scan_is_partitioned(self):
        policy = GuardPolicy(
            min_group_support=10**9, max_repair_fraction=0.0
        )
        system = AquaSystem(
            space_budget=400,
            rng=np.random.default_rng(5),
            guard_policy=policy,
            parallel=ParallelConfig(max_workers=4, min_partition_rows=1),
            telemetry=True,
        )
        system.register_table("t", _table())
        # Synopsis construction's group-count scan already runs partitioned;
        # the guard's exact fallback must add scans on top of it.
        before = system.metrics.get("engine_parallel_scans_total").value(
            backend="threads"
        )
        answer = system.answer(SQL)
        assert answer.guard is not None and answer.guard.degraded
        after = system.metrics.get("engine_parallel_scans_total").value(
            backend="threads"
        )
        assert after > before
        assert 'engine_parallel_scans_total{backend="threads"}' in (
            system.metrics.to_prometheus()
        )

    def test_repair_scan_matches_serial_repair(self):
        policy = GuardPolicy(min_group_support=40, max_repair_fraction=1.0)
        results = []
        for parallel in (
            False,
            ParallelConfig(max_workers=3, min_partition_rows=1),
        ):
            system = AquaSystem(
                space_budget=400,
                rng=np.random.default_rng(5),
                guard_policy=policy,
                parallel=parallel,
            )
            system.register_table("t", _table())
            results.append(system.answer(SQL))
        left, right = results
        assert left.provenance_counts == right.provenance_counts
        for name in left.result.schema.names:
            np.testing.assert_array_equal(
                left.result.column(name), right.result.column(name)
            )


class TestConfiguration:
    def test_env_opt_in(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_WORKERS", "3")
        system = AquaSystem(space_budget=100)
        assert system.parallel_config.workers == 3
        assert system.parallel_config.min_partition_rows == 0

    def test_parallel_false_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_WORKERS", "3")
        system = AquaSystem(space_budget=100, parallel=False)
        assert system.executor is None
        assert system.parallel_config is None

    def test_set_parallel_runtime(self):
        system = AquaSystem(space_budget=100, parallel=False)
        system.set_parallel(ParallelConfig(max_workers=2))
        assert system.parallel_config.workers == 2
        system.set_parallel(False)
        assert system.executor is None

    def test_invalid_parallel_rejected(self):
        from repro.aqua import AquaError

        with pytest.raises(AquaError):
            AquaSystem(space_budget=100, parallel="yes")
