"""Unit tests for workload mining (QueryLog -> GroupPreferences)."""

import pytest

from repro.aqua import QueryLog
from repro.core import Congress, WorkloadCongress


@pytest.fixture
def log():
    return QueryLog(base_table="rel", grouping_columns=("a", "b"))


class TestRecording:
    def test_counts_groupings(self, log):
        log.record("select a, sum(q) s from rel group by a")
        log.record("select a, sum(q) s from rel group by a")
        log.record("select a, b, sum(q) s from rel group by a, b")
        freqs = log.grouping_frequencies()
        assert freqs[("a",)] == pytest.approx(2 / 3)
        assert freqs[("a", "b")] == pytest.approx(1 / 3)
        assert log.total_queries == 3

    def test_no_group_by_counts_as_empty_grouping(self, log):
        log.record("select sum(q) s from rel")
        assert log.grouping_frequencies() == {(): 1.0}

    def test_other_tables_ignored(self, log):
        log.record("select x, sum(y) s from other group by x")
        assert log.total_queries == 0

    def test_non_grouping_columns_filtered(self, log):
        log.record("select id, sum(q) s from rel group by id")
        assert log.grouping_frequencies() == {(): 1.0}

    def test_slices_extracted(self, log):
        log.record("select b, sum(q) s from rel where a = 'a1' group by b")
        log.record(
            "select sum(q) s from rel where a = 'a1' and b = 'b2'"
        )
        freqs = log.slice_frequencies()
        assert freqs[("a", "a1")] == pytest.approx(1.0)
        assert freqs[("b", "b2")] == pytest.approx(0.5)

    def test_range_predicates_not_slices(self, log):
        log.record("select sum(q) s from rel where id between 1 and 10")
        assert log.slice_frequencies() == {}

    def test_empty_log(self, log):
        assert log.grouping_frequencies() == {}
        assert log.slice_frequencies() == {}


class TestPreferenceDerivation:
    COUNTS = {
        ("a1", "b1"): 700,
        ("a1", "b2"): 200,
        ("a2", "b1"): 100,
    }

    def test_heavy_grouping_gets_more_space(self, log):
        # Analysts group by {a} constantly.
        for __ in range(50):
            log.record("select a, sum(q) s from rel group by a")
        preferences = log.to_preferences()
        weighted = WorkloadCongress(preferences).allocate(
            self.COUNTS, ("a", "b"), 100
        )
        plain = Congress().allocate(self.COUNTS, ("a", "b"), 100)
        # The {a}-grouping's starved group (a2) benefits.
        assert weighted.fractional[("a2", "b1")] > plain.fractional[("a2", "b1")]

    def test_sliced_value_gets_boost(self, log):
        for __ in range(20):
            log.record("select sum(q) s from rel where a = 'a2'")
        preferences = log.to_preferences()
        # a2 under grouping (a,) gets a boost over the uniform default.
        boosted = preferences.weight(("a",), ("a2",), 0.5)
        unboosted = preferences.weight(("a",), ("a1",), 0.5)
        assert boosted > unboosted

    def test_smoothing_keeps_unseen_groupings_alive(self, log):
        for __ in range(100):
            log.record("select a, sum(q) s from rel group by a")
        preferences = log.to_preferences(smoothing=1.0)
        # Unseen grouping {b} still has a positive weight.
        weight = preferences.weight(("b",), ("b1",), 0.5)
        assert weight > 0

    def test_negative_smoothing_rejected(self, log):
        with pytest.raises(ValueError):
            log.to_preferences(smoothing=-1)

    def test_uniform_workload_is_neutral(self, log):
        """Equal use of every grouping should reproduce plain Congress."""
        log.record("select sum(q) s from rel")
        log.record("select a, sum(q) s from rel group by a")
        log.record("select b, sum(q) s from rel group by b")
        log.record("select a, b, sum(q) s from rel group by a, b")
        preferences = log.to_preferences(smoothing=0.0)
        weighted = WorkloadCongress(preferences).allocate(
            self.COUNTS, ("a", "b"), 100
        )
        plain = Congress().allocate(self.COUNTS, ("a", "b"), 100)
        for key in self.COUNTS:
            assert weighted.fractional[key] == pytest.approx(
                plain.fractional[key]
            )
