"""Concurrency hammers for the shared serving-path state.

The caches, the metrics registry, and the tracer are all shared by the
query service's worker pool; these tests drive them from many threads and
assert the bookkeeping stays exact (no lost updates, no torn reads, no
exceptions out of internal data structures).
"""

import threading

import numpy as np

from repro.aqua import AnswerCache, AquaSystem
from repro.aqua.cache import CacheStats
from repro.engine import Column, ColumnType, Schema, Table
from repro.obs import MetricsRegistry
from repro.obs.trace import Tracer
from repro.plan.cache import PlanCache

THREADS = 8
OPS = 200


def _run_threads(worker):
    threads = [
        threading.Thread(target=worker, args=(k,)) for k in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestAnswerCacheConcurrency:
    def test_counters_stay_exact_under_contention(self):
        cache = AnswerCache(capacity=16)

        def worker(k):
            for i in range(OPS):
                key = ("t", i % 8, "sql")
                if cache.get(key) is None:
                    cache.put(key, f"answer-{k}-{i}")

        _run_threads(worker)
        stats = cache.stats
        assert isinstance(stats, CacheStats)
        assert stats.hits + stats.misses == THREADS * OPS
        assert stats.size <= 16

    def test_eviction_under_contention_keeps_capacity(self):
        cache = AnswerCache(capacity=4)

        def worker(k):
            for i in range(OPS):
                cache.put((k, i), i)
                cache.get((k, i % 7))

        _run_threads(worker)
        assert len(cache) <= 4
        assert cache.stats.evictions >= THREADS * OPS - 4


class TestPlanCacheConcurrency:
    def test_counters_stay_exact_under_contention(self):
        cache = PlanCache(capacity=8)

        def worker(k):
            for i in range(OPS):
                key = ("t", i % 4, "strategy", "sql")
                if cache.get(key) is None:
                    cache.put(key, object())

        _run_threads(worker)
        stats = cache.stats
        assert stats.hits + stats.misses == THREADS * OPS
        assert stats.size <= 8


class TestMetricsRegistryConcurrency:
    def test_counter_increments_are_not_lost(self):
        registry = MetricsRegistry(enabled=True)

        def worker(k):
            for _ in range(OPS):
                registry.counter("hammer_total", "hammer").inc()
                registry.counter(
                    "hammer_labeled_total", "hammer", ("who",)
                ).inc(who=f"t{k % 2}")

        _run_threads(worker)
        assert registry.counter("hammer_total", "hammer").value() == (
            THREADS * OPS
        )
        labeled = registry.counter("hammer_labeled_total", "hammer", ("who",))
        assert labeled.value(who="t0") + labeled.value(who="t1") == (
            THREADS * OPS
        )

    def test_histogram_observations_are_not_lost(self):
        registry = MetricsRegistry(enabled=True)

        def worker(k):
            for i in range(OPS):
                registry.histogram("hammer_seconds", "hammer").observe(
                    (i % 10) / 10.0
                )

        _run_threads(worker)
        histogram = registry.histogram("hammer_seconds", "hammer")
        assert histogram.count() == THREADS * OPS

    def test_exposition_is_safe_during_writes(self):
        registry = MetricsRegistry(enabled=True)
        stop = threading.Event()
        errors = []

        def writer(k):
            i = 0
            while not stop.is_set():
                registry.counter("spin_total", "spin").inc()
                registry.histogram("spin_seconds", "spin").observe(i % 5)
                i += 1
                if i >= OPS:
                    break

        def reader(_k):
            try:
                for _ in range(50):
                    registry.to_prometheus()
                    registry.snapshot()
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(k,)) for k in range(4)
        ] + [threading.Thread(target=reader, args=(k,)) for k in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        assert errors == []


class TestTracerConcurrency:
    def test_span_stacks_are_per_thread(self):
        tracer = Tracer(enabled=True)
        roots = {}
        barrier = threading.Barrier(THREADS)

        def worker(k):
            with tracer.span(f"root-{k}") as root:
                barrier.wait(timeout=10)  # all threads hold an open span
                with tracer.span(f"child-{k}"):
                    pass
            roots[k] = root

        _run_threads(worker)
        for k, root in roots.items():
            # Each thread's child nested under its own root -- never under
            # another thread's concurrently-open span.
            assert [span.name for span in root.children] == [f"child-{k}"]


class TestConcurrentAnswers:
    def test_parallel_answers_agree_and_nothing_corrupts(self):
        rng = np.random.default_rng(3)
        schema = Schema(
            [
                Column("g", ColumnType.STR, "grouping"),
                Column("v", ColumnType.FLOAT, "aggregate"),
            ]
        )
        system = AquaSystem(
            space_budget=300, rng=np.random.default_rng(9), telemetry=True
        )
        system.register_table(
            "t",
            Table(
                schema,
                {
                    "g": rng.choice(["a", "b", "c"], size=4000),
                    "v": rng.normal(100.0, 10.0, size=4000),
                },
            ),
        )
        queries = [
            "SELECT g, SUM(v) AS s FROM t GROUP BY g",
            "SELECT g, AVG(v) AS a FROM t GROUP BY g",
            "SELECT g, COUNT(*) AS c FROM t GROUP BY g",
        ]
        reference = {
            sql: system.answer(sql).result.column(
                system.answer(sql).result.schema.names[1]
            )
            for sql in queries
        }
        errors = []

        def worker(k):
            try:
                for i in range(20):
                    sql = queries[(k + i) % len(queries)]
                    answer = system.answer(sql)
                    value_col = answer.result.schema.names[1]
                    np.testing.assert_allclose(
                        answer.result.column(value_col), reference[sql]
                    )
            except Exception as exc:
                errors.append(exc)

        _run_threads(worker)
        assert errors == []
        stats = system.answer_cache.stats
        assert stats.hits + stats.misses >= THREADS * 20
