"""Roll-up subsumption: serving rules, invalidation, tier surfacing."""

import io

import numpy as np
import pytest

from repro.aqua import AquaSystem, GuardPolicy
from repro.aqua.cli import AquaShell
from repro.aqua.guard import PROVENANCE_ROLLUP
from repro.aqua.reuse import RollupIndex
from repro.engine import Column, ColumnType, Schema, Table

FINE = (
    "SELECT g, h, SUM(v) AS s, COUNT(*) AS c, AVG(v) AS m "
    "FROM t GROUP BY g, h"
)
COARSE = (
    "SELECT g, SUM(v) AS s, COUNT(*) AS c, AVG(v) AS m FROM t GROUP BY g"
)


def _table(n=3000, seed=11):
    rng = np.random.default_rng(seed)
    schema = Schema(
        [
            Column("g", ColumnType.STR, "grouping"),
            Column("h", ColumnType.STR, "grouping"),
            Column("v", ColumnType.FLOAT, "aggregate"),
        ]
    )
    return Table.from_columns(
        schema,
        g=rng.choice(["a", "b", "c", "d"], size=n),
        h=rng.choice(["x", "y"], size=n),
        v=rng.gamma(2.0, 40.0, size=n),
    )


def _system(seed=11, **kwargs):
    system = AquaSystem(
        space_budget=600, rng=np.random.default_rng(seed), **kwargs
    )
    system.register_table("t", _table(seed=seed), grouping_columns=["g", "h"])
    return system


class TestRollupServing:
    def test_coarse_query_served_from_fine_snapshot(self):
        system = _system()
        system.answer(FINE)
        answer = system.answer(COARSE)
        assert answer.cache_tier == "rollup"
        assert "GROUP BY (g, h)" in answer.reused_from
        assert system.rollup_index.stats().hits == 1

    def test_rollup_matches_direct_answer_bit_for_bit(self):
        served = _system()
        served.answer(FINE)
        rollup = served.answer(COARSE)
        direct = _system().answer(COARSE)
        assert rollup.cache_tier == "rollup"
        assert direct.cache_tier is None
        for alias in ("s", "c", "m"):
            np.testing.assert_array_equal(
                rollup.result.column(alias), direct.result.column(alias)
            )
            np.testing.assert_array_equal(
                rollup.result.column(f"{alias}_error"),
                direct.result.column(f"{alias}_error"),
            )

    def test_whole_strata_slice_is_served(self):
        system = _system()
        system.answer(FINE)
        answer = system.answer(
            "SELECT g, SUM(v) AS s FROM t WHERE h = 'x' GROUP BY g"
        )
        assert answer.cache_tier == "rollup"
        assert "sliced by (h = 'x')" in answer.reused_from

    def test_non_stratification_slice_recomputes(self):
        system = _system()
        system.answer(FINE)
        answer = system.answer(
            "SELECT g, SUM(v) AS s FROM t WHERE v > 10 GROUP BY g"
        )
        assert answer.cache_tier is None

    def test_entry_predicate_must_cover_probe(self):
        # The snapshot's own WHERE must be a subset of the probe's
        # conjuncts -- a *narrower* probe predicate cannot be served.
        system = _system()
        system.answer(
            "SELECT g, h, SUM(v) AS s FROM t WHERE h = 'x' GROUP BY g, h"
        )
        answer = system.answer(COARSE)
        assert answer.cache_tier is None

    def test_avg_served_from_sum_and_count_moments(self):
        system = _system()
        system.answer("SELECT g, h, SUM(v) AS s FROM t GROUP BY g, h")
        answer = system.answer("SELECT g, AVG(v) AS m FROM t GROUP BY g")
        assert answer.cache_tier == "rollup"

    def test_rollup_answer_is_cached_for_replay(self):
        system = _system()
        system.answer(FINE)
        first = system.answer(COARSE)
        second = system.answer(COARSE)
        assert first.cache_tier == "rollup"
        assert second.cache_tier == "exact"
        assert system.answer_cache.stats.rollup_hits == 1

    def test_provenance_column_is_retagged(self):
        system = _system()
        system.answer(FINE)
        answer = system.answer(COARSE)
        tags = set(np.asarray(answer.result.column("provenance")).tolist())
        assert tags == {PROVENANCE_ROLLUP}
        assert answer.guard is not None and not answer.guard.degraded

    def test_guard_policy_applies_to_rollup_answers(self):
        system = _system()
        system.answer(FINE)
        answer = system.answer(
            COARSE, guard=GuardPolicy(min_group_support=1)
        )
        assert answer.cache_tier == "rollup"
        assert answer.guard is not None


class TestExclusions:
    def test_semantic_reuse_false_disables_the_tier(self):
        system = _system(semantic_reuse=False)
        assert system.rollup_index is None
        system.answer(FINE)
        assert system.answer(COARSE).cache_tier is None

    def test_cache_false_disables_reuse_too(self):
        system = _system(cache=False)
        assert system.rollup_index is None
        system.answer(FINE)
        assert system.answer(COARSE).cache_tier is None

    def test_set_cache_false_drops_reuse(self):
        system = _system()
        system.answer(FINE)
        system.set_cache(False)
        assert system.rollup_index is None
        assert system.answer(COARSE).cache_tier is None

    def test_degraded_answers_never_register_snapshots(self):
        system = _system(
            guard_policy=GuardPolicy(
                min_group_support=10**9, max_repair_fraction=0.0
            )
        )
        fine = system.answer(FINE)
        assert fine.guard is not None and fine.guard.degraded
        assert system.rollup_index.stats().registrations == 0
        assert system.answer(COARSE).cache_tier is None

    def test_budgeted_answers_bypass_the_rollup_tier(self):
        system = _system()
        system.build_portfolio("t")
        system.answer(FINE)
        answer = system.answer(COARSE, max_rel_error=1e9)
        assert answer.cache_tier is None


class TestInvalidation:
    def test_insert_drops_snapshots(self):
        system = _system()
        system.answer(FINE)
        assert system.rollup_index.stats().entries == 1
        system.insert("t", ("a", "x", 5.0))
        assert system.rollup_index.stats().entries == 0
        assert system.answer(COARSE).cache_tier is None

    def test_refresh_drops_snapshots(self):
        system = _system()
        system.answer(FINE)
        system.refresh_synopsis("t")
        assert system.rollup_index.stats().entries == 0
        assert system.answer(COARSE).cache_tier is None

    def test_reregistration_drops_snapshots(self):
        system = _system()
        system.answer(FINE)
        system.register_table("t", _table(seed=12), ["g", "h"])
        assert system.rollup_index.stats().entries == 0
        assert system.answer(COARSE).cache_tier is None

    def test_snapshots_resume_after_mutation(self):
        system = _system()
        system.answer(FINE)
        system.insert("t", ("a", "x", 5.0))
        system.answer(FINE)
        assert system.answer(COARSE).cache_tier == "rollup"


class TestSurfacing:
    def test_event_carries_tier_and_source(self):
        system = _system(telemetry=True)
        system.answer(FINE)
        system.answer(COARSE)
        event = system.telemetry.events.tail(1)[0]
        assert event.cache_tier == "rollup"
        assert "GROUP BY (g, h)" in event.reused_from
        assert "rollup" in event.to_json()

    def test_explain_reports_the_tier(self):
        system = _system()
        system.answer(FINE)
        text = system.explain(COARSE)
        assert "-- cache: rollup (from " in text
        system.answer(COARSE)
        assert "-- cache: exact" in system.explain(COARSE)

    def test_explain_probe_leaves_counters_alone(self):
        system = _system()
        system.answer(FINE)
        before = system.rollup_index.stats()
        system.explain(COARSE)
        after = system.rollup_index.stats()
        assert (before.hits, before.misses) == (after.hits, after.misses)

    def test_compare_describe_mentions_the_tier(self):
        system = _system()
        system.answer(FINE)
        report = system.compare(COARSE)
        text = report.describe()
        assert "cache tier rollup" in text
        assert "GROUP BY (g, h)" in text

    def test_shell_cache_shows_tier_breakdown(self):
        system = _system()
        system.answer(FINE)
        system.answer(COARSE)
        system.answer(COARSE)
        out = io.StringIO()
        AquaShell(system, out=out).execute_line(".cache")
        text = out.getvalue()
        assert "tiers: exact=1 canonical=0 rollup=1" in text
        assert "rollup index: entries=1 hits=1" in text

    def test_shell_events_flag_the_tier(self):
        system = _system(telemetry=True)
        system.answer(FINE)
        system.answer(COARSE)
        out = io.StringIO()
        AquaShell(system, out=out).execute_line(".events")
        assert "cache:rollup" in out.getvalue()

    def test_metrics_count_semantic_hits_by_tier(self):
        system = _system(telemetry=True)
        system.answer(FINE)
        system.answer(COARSE)
        system.answer(COARSE)
        text = system.metrics.to_prometheus()
        assert 'aqua_answer_cache_semantic_hits_total{tier="rollup"} 1' in text
        assert 'aqua_answer_cache_semantic_hits_total{tier="exact"} 1' in text


class TestRollupIndexMechanics:
    def test_capacity_bounds_and_lru(self):
        system = _system(semantic_reuse=1)
        system.answer(FINE)
        system.answer(
            "SELECT g, h, SUM(v) AS s FROM t WHERE h = 'x' GROUP BY g, h"
        )
        assert system.rollup_index.stats().entries == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            RollupIndex(capacity=0)

    def test_stats_describe(self):
        stats = RollupIndex().stats()
        assert "rollup index: entries=0" in stats.describe()
