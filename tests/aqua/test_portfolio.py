"""SynopsisPortfolio: membership, budget resolution, staleness, caching.

The stale-prediction edge the ISSUE pins: an insert after a portfolio
build bumps the table version, so a cached budget resolution from before
the insert must never serve a post-insert query.
"""

import numpy as np
import pytest

from repro.aqua import (
    AquaError,
    AquaSystem,
    CostErrorModel,
    SynopsisPortfolio,
    SynopsisSpec,
    default_portfolio_specs,
)
from repro.aqua.portfolio import (
    REASON_BEST_EFFORT,
    REASON_ERROR_BUDGET,
    REASON_FORCED,
    REASON_TIME_BUDGET,
)
from repro.aqua.workload_log import QueryLog
from repro.core import Congress, House
from repro.engine import Column, ColumnType, Schema, Table
from repro.engine.schema import SchemaError
from repro.engine.sql import parse_query
from repro.errors import SynopsisMissingError

SQL = "SELECT a, SUM(q) AS s FROM rel GROUP BY a"


def _table(n=4000, seed=11):
    rng = np.random.default_rng(seed)
    schema = Schema(
        [
            Column("a", ColumnType.STR, "grouping"),
            Column("b", ColumnType.STR, "grouping"),
            Column("q", ColumnType.FLOAT, "aggregate"),
        ]
    )
    return Table(
        schema,
        {
            "a": rng.choice(["x", "y", "z"], size=n, p=[0.7, 0.25, 0.05]),
            "b": rng.choice(["p", "q"], size=n),
            "q": rng.exponential(10.0, size=n),
        },
    )


@pytest.fixture
def system():
    sys_ = AquaSystem(space_budget=400, rng=np.random.default_rng(5))
    sys_.register_table("rel", _table())
    return sys_


@pytest.fixture
def built(system):
    system.build_portfolio("rel")
    return system


class TestSpecsAndDefaults:
    def test_default_ladder_has_three_members(self):
        specs = default_portfolio_specs(400, ("a", "b"))
        assert [s.name for s in specs] == ["fine", "mid", "coarse"]
        assert [s.budget for s in specs] == [400, 100, 25]

    def test_hot_member_added_for_dominant_grouping(self):
        log = QueryLog("rel", ("a", "b"))
        for _ in range(4):
            log.record(SQL)  # groups by just `a`
        specs = default_portfolio_specs(400, ("a", "b"), workload=log)
        hot = {s.name: s for s in specs}["hot"]
        assert hot.grouping_columns == ("a",)
        assert hot.budget == 200

    def test_no_hot_member_when_grouping_is_full_set(self):
        log = QueryLog("rel", ("a", "b"))
        log.record("SELECT a, b, SUM(q) AS s FROM rel GROUP BY a, b")
        specs = default_portfolio_specs(400, ("a", "b"), workload=log)
        assert [s.name for s in specs] == ["fine", "mid", "coarse"]

    def test_tiny_budget_rejected(self):
        with pytest.raises(AquaError):
            default_portfolio_specs(3, ("a",))

    def test_spec_validation(self):
        with pytest.raises(AquaError):
            SynopsisSpec(name="", budget=10, allocation=House())
        with pytest.raises(AquaError):
            SynopsisSpec(name="m", budget=0, allocation=House())


class TestCostErrorModel:
    def test_prediction_shrinks_with_sample_size(self):
        small = CostErrorModel.predicted_rel_error(16)
        large = CostErrorModel.predicted_rel_error(1024)
        assert large < small

    def test_prediction_grows_with_selectivity(self):
        keep_all = CostErrorModel.predicted_rel_error(100, selectivity=0.0)
        keep_some = CostErrorModel.predicted_rel_error(100, selectivity=0.9)
        assert keep_some > keep_all

    def test_unanswerable_sample_predicts_inf(self):
        assert CostErrorModel.predicted_rel_error(0) == float("inf")
        assert CostErrorModel.predicted_rel_error(
            10, selectivity=0.99
        ) == float("inf")

    def test_latency_line(self):
        model = CostErrorModel(
            overhead_seconds=1e-3, seconds_per_row=1e-6
        )
        assert model.predicted_seconds(1000) == pytest.approx(2e-3)
        assert model.predicted_seconds(0) == pytest.approx(1e-3)

    def test_observe_latency_moves_slope(self):
        model = CostErrorModel(seconds_per_row=1e-7, ewma_alpha=0.5)
        before = model.predicted_seconds(10_000)
        model.observe_latency(10_000, 1.0)  # much slower than predicted
        assert model.predicted_seconds(10_000) > before

    def test_observe_latency_ignores_garbage(self):
        model = CostErrorModel()
        before = model.predicted_seconds(1000)
        model.observe_latency(0, 1.0)
        model.observe_latency(1000, -1.0)
        model.observe_latency(1000, float("nan"))
        assert model.predicted_seconds(1000) == before

    def test_observe_rel_error_recalibrates_cv(self):
        model = CostErrorModel(cv=1.0, ewma_alpha=1.0)
        model.observe_rel_error(100, 2.0)
        assert model.cv == pytest.approx(
            2.0 * 10.0 / CostErrorModel.z_multiplier(model.confidence)
        )

    def test_invalid_config_rejected(self):
        with pytest.raises(AquaError):
            CostErrorModel(confidence=1.0)
        with pytest.raises(AquaError):
            CostErrorModel(ewma_alpha=0.0)


class TestBuildPortfolio:
    def test_default_build_installs_decorated_members(self, built):
        portfolio = built.portfolio("rel")
        assert set(portfolio.members) == {"fine", "mid", "coarse"}
        names = built.catalog.names()
        for member in portfolio.members.values():
            assert member.synopsis.installed.sample_name in names
            assert "__pf_" in member.synopsis.installed.sample_name
        assert portfolio.coarsest().name == "coarse"

    def test_member_sizes_follow_budgets(self, built):
        portfolio = built.portfolio("rel")
        assert (
            portfolio.member("fine").sample_size
            > portfolio.member("mid").sample_size
            > portfolio.member("coarse").sample_size
        )

    def test_custom_specs(self, system):
        system.build_portfolio(
            "rel",
            specs=[
                SynopsisSpec("big", 300, Congress()),
                SynopsisSpec("tiny", 30, House()),
            ],
        )
        assert set(system.portfolio("rel").members) == {"big", "tiny"}

    def test_duplicate_member_names_rejected(self, system):
        with pytest.raises(AquaError):
            system.build_portfolio(
                "rel",
                specs=[
                    SynopsisSpec("m", 50, House()),
                    SynopsisSpec("m", 60, House()),
                ],
            )

    def test_unknown_grouping_column_rejected(self, system):
        with pytest.raises(SchemaError):
            system.build_portfolio(
                "rel",
                specs=[
                    SynopsisSpec(
                        "m", 50, House(), grouping_columns=("nope",)
                    )
                ],
            )

    def test_portfolio_before_build_raises(self, system):
        assert not system.has_portfolio("rel")
        with pytest.raises(SynopsisMissingError):
            system.portfolio("rel")

    def test_refresh_rebuilds_at_current_rows(self, built):
        rows_before = built.portfolio("rel").member("fine").rows_at_build
        built.insert_many("rel", [("x", "p", 1.0)] * 50)
        built.refresh_portfolio("rel")
        member = built.portfolio("rel").member("fine")
        assert member.rows_at_build == rows_before + 50
        assert member.staleness(member.rows_at_build) == 0


class TestResolution:
    def test_loose_error_budget_picks_cheapest_satisfying(self, built):
        portfolio = built.portfolio("rel")
        query = parse_query(SQL)
        choice = portfolio.resolve(query, max_rel_error=10.0)
        assert choice.reason == REASON_ERROR_BUDGET
        assert choice.member == "coarse"  # cheapest member suffices
        assert choice.within_error_budget

    def test_tight_error_budget_prefers_accuracy(self, built):
        portfolio = built.portfolio("rel")
        query = parse_query(SQL)
        loose = portfolio.resolve(query, max_rel_error=10.0)
        tight = portfolio.resolve(query, max_rel_error=1e-6)
        assert tight.reason == REASON_BEST_EFFORT
        assert (
            portfolio.member(tight.member).sample_size
            >= portfolio.member(loose.member).sample_size
        )

    def test_time_budget_picks_most_accurate_fitting(self, built):
        portfolio = built.portfolio("rel")
        query = parse_query(SQL)
        generous = portfolio.resolve(query, max_ms=10_000.0)
        assert generous.reason == REASON_TIME_BUDGET
        assert generous.member == "fine"
        hopeless = portfolio.resolve(query, max_ms=1e-6)
        assert hopeless.reason == REASON_BEST_EFFORT
        assert hopeless.member == "coarse"

    def test_forced_choice(self, built):
        portfolio = built.portfolio("rel")
        choice = portfolio.forced_choice("mid", parse_query(SQL))
        assert choice.member == "mid"
        assert choice.reason == REASON_FORCED

    def test_resolve_requires_a_budget(self, built):
        with pytest.raises(AquaError):
            built.portfolio("rel").resolve(parse_query(SQL))
        with pytest.raises(AquaError):
            built.portfolio("rel").resolve(
                parse_query(SQL), max_rel_error=0.0
            )
        with pytest.raises(AquaError):
            built.portfolio("rel").resolve(parse_query(SQL), max_ms=-1.0)

    def test_unknown_member_raises(self, built):
        with pytest.raises(AquaError):
            built.portfolio("rel").member("nope")

    def test_empty_portfolio_raises(self):
        portfolio = SynopsisPortfolio("rel", CostErrorModel())
        with pytest.raises(AquaError):
            portfolio.resolve(parse_query(SQL), max_rel_error=0.1)
        with pytest.raises(AquaError):
            portfolio.coarsest()


class TestResolutionCache:
    def test_repeat_resolution_is_cached(self, built):
        portfolio = built.portfolio("rel")
        query = parse_query(SQL)
        first = portfolio.resolve(query, max_rel_error=0.5, version=1)
        again = portfolio.resolve(query, max_rel_error=0.5, version=1)
        assert again is first
        assert portfolio.resolution_cache_size == 1

    def test_version_bump_misses_cache(self, built):
        portfolio = built.portfolio("rel")
        query = parse_query(SQL)
        portfolio.resolve(query, max_rel_error=0.5, version=1)
        portfolio.resolve(query, max_rel_error=0.5, version=2)
        assert portfolio.resolution_cache_size == 2

    def test_insert_invalidates_cached_budget_choice(self, built):
        """The stale-prediction edge: a post-insert budget query must be
        re-resolved, not served from the pre-insert cached choice."""
        query = parse_query(SQL)
        built.answer(query, max_rel_error=0.5)
        portfolio = built.portfolio("rel")
        size_before = portfolio.resolution_cache_size
        assert size_before >= 1
        built.insert("rel", ("z", "q", 123.0))
        answer = built.answer(query, max_rel_error=0.5)
        # The insert bumped the table version, so the second answer's
        # resolution landed under a fresh cache key.
        assert portfolio.resolution_cache_size > size_before
        assert answer.chosen_synopsis in portfolio.members
        promised = answer.promised_rel_error
        assert promised is None or promised <= 0.5 * (1 + 1e-9)

    def test_rebuild_clears_resolutions(self, built):
        portfolio = built.portfolio("rel")
        portfolio.resolve(parse_query(SQL), max_rel_error=0.5)
        assert portfolio.resolution_cache_size == 1
        built.refresh_portfolio("rel")
        rebuilt = built.portfolio("rel")
        assert rebuilt.resolution_cache_size == 0


class TestAnswerIntegration:
    def test_budget_answer_reports_choice_and_honors_bound(self, built):
        answer = built.answer(SQL, max_rel_error=0.2)
        assert answer.chosen_synopsis in built.portfolio("rel").members
        assert answer.predicted_rel_error is not None
        promised = answer.promised_rel_error
        assert promised is None or promised <= 0.2 * (1 + 1e-9)

    def test_use_synopsis_forces_member(self, built):
        answer = built.answer(SQL, use_synopsis="coarse")
        assert answer.chosen_synopsis == "coarse"

    def test_budget_without_portfolio_raises(self, system):
        with pytest.raises(SynopsisMissingError):
            system.answer(SQL, max_rel_error=0.2)

    def test_explain_shows_portfolio_choice(self, built):
        text = built.explain(SQL, max_rel_error=0.5)
        assert "portfolio" in text

    def test_describe_renders(self, built):
        text = built.portfolio("rel").describe()
        assert "fine" in text and "coarse" in text and "model:" in text
