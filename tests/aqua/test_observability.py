"""End-to-end observability: traced answers, pipeline metrics, overhead."""

import time

import numpy as np
import pytest

from repro import AquaSystem, GuardPolicy, Telemetry
from repro.aqua import (
    PROVENANCE_EXACT,
    PROVENANCE_REPAIRED,
    PROVENANCE_SYNOPSIS,
)
from repro.obs import MetricsRegistry
from repro.testing import FaultInjector

SQL = "select a, b, sum(q) s from rel group by a, b order by a, b"


@pytest.fixture
def system(skewed_table, rng):
    aqua = AquaSystem(
        space_budget=500, rng=rng, telemetry=Telemetry.enabled()
    )
    aqua.register_table("rel", skewed_table)
    return aqua


def _counter_values(snapshot, name):
    """{label tuple -> value} for one counter in a snapshot."""
    return {
        tuple(sorted(sample["labels"].items())): sample["value"]
        for sample in snapshot[name]["values"]
    }


class TestTracedAnswer:
    def test_trace_has_named_stages_summing_to_total(self, system):
        answer = system.answer(SQL)
        trace = answer.trace
        assert trace is not None
        stage_seconds = trace.stage_seconds()
        # The acceptance bar: at least five named pipeline stages whose
        # durations account for the reported total within 10%.
        assert len(stage_seconds) >= 5
        for stage in ("parse", "validate", "rewrite", "execute",
                      "error_bounds", "guard"):
            assert stage in stage_seconds, stage
        assert sum(stage_seconds.values()) >= 0.9 * trace.total_seconds
        assert sum(stage_seconds.values()) <= trace.total_seconds * 1.001

    def test_stages_are_ordered_and_execute_has_children(self, system):
        trace = system.answer(SQL).trace
        names = [span.name for span in trace.stages]
        assert names.index("parse") < names.index("rewrite")
        assert names.index("rewrite") < names.index("plan_optimize")
        assert names.index("plan_optimize") < names.index("execute")
        execute = trace.stage("execute")
        descendants = []
        stack = list(execute.children)
        while stack:
            span = stack.pop()
            descendants.append(span.name)
            stack.extend(span.children)
        # The execute stage runs the physical operator tree: one op_* span
        # per plan node, nested to match the tree shape.
        assert "op_scan" in descendants
        assert "op_scale_up" in descendants
        assert "op_group_by" in descendants

    def test_root_records_table_and_guard_attributes(self, system):
        trace = system.answer(SQL).trace
        assert trace.root.attributes["table"] == "rel"
        assert trace.root.attributes["guarded"] is True

    def test_total_seconds_prefers_trace(self, system):
        answer = system.answer(SQL)
        assert answer.total_seconds == answer.trace.total_seconds
        assert answer.total_seconds >= answer.elapsed_seconds

    def test_untraced_system_attaches_no_trace(self, skewed_table, rng):
        aqua = AquaSystem(space_budget=500, rng=rng)
        aqua.register_table("rel", skewed_table)
        answer = aqua.answer(SQL)
        assert answer.trace is None
        assert answer.total_seconds == answer.elapsed_seconds

    def test_trace_answer_force_enables_and_restores(self, skewed_table, rng):
        aqua = AquaSystem(space_budget=500, rng=rng)  # telemetry off
        aqua.register_table("rel", skewed_table)
        assert not aqua.tracer.enabled
        answer = aqua.trace_answer(SQL)
        assert answer.trace is not None
        assert len(answer.trace.stage_seconds()) >= 5
        assert not aqua.tracer.enabled  # restored

    def test_explain_analyze_appends_span_tree(self, system):
        text = system.explain(SQL, analyze=True)
        assert "-- analyze:" in text
        for stage in ("answer", "parse", "execute"):
            assert stage in text


class TestAnswerMetrics:
    def test_query_counter_and_latency(self, system):
        system.answer(SQL)
        system.answer(SQL)
        snapshot = system.metrics.snapshot()
        assert _counter_values(snapshot, "aqua_queries_total") == {
            (("table", "rel"),): 2.0
        }
        latency = system.metrics.get("aqua_answer_seconds")
        assert latency.count(table="rel") == 2
        assert latency.sum(table="rel") > 0.0

    def test_stage_latency_histogram_covers_stages(self, system):
        system.answer(SQL)
        stage_latency = system.metrics.get("aqua_stage_seconds")
        for stage in ("parse", "execute", "guard"):
            assert stage_latency.count(stage=stage) == 1

    def test_healthy_answer_counts_synopsis_provenance(self, system):
        answer = system.answer(SQL)
        counts = _counter_values(
            system.metrics.snapshot(), "aqua_guard_groups_total"
        )
        assert counts == {
            (
                ("provenance", PROVENANCE_SYNOPSIS),
                ("table", "rel"),
            ): float(answer.result.num_rows)
        }


class TestGuardProvenanceMetrics:
    def test_truncated_stratum_counts_repaired_groups(self, system):
        FaultInjector(system).truncate_sample("rel", keep=1)
        answer = system.answer(SQL)
        assert answer.guard.counts.get(PROVENANCE_REPAIRED, 0) >= 1
        counts = _counter_values(
            system.metrics.snapshot(), "aqua_guard_groups_total"
        )
        for tag, expected in answer.guard.counts.items():
            key = (("provenance", tag), ("table", "rel"))
            assert counts[key] == float(expected)
        flagged = system.metrics.get("aqua_guard_flagged_groups_total")
        assert flagged.value(table="rel") >= 1

    def test_full_fallback_counts_exact_groups_and_fallbacks(self, system):
        policy = GuardPolicy(max_relative_halfwidth=1e-12)
        answer = system.answer(SQL, guard=policy)
        snapshot = system.metrics.snapshot()
        counts = _counter_values(snapshot, "aqua_guard_groups_total")
        key = (("provenance", PROVENANCE_EXACT), ("table", "rel"))
        assert counts[key] == float(answer.result.num_rows)
        fallbacks = system.metrics.get("aqua_guard_fallbacks_total")
        assert fallbacks.value(table="rel") == 1

    def test_provenance_counters_accumulate_across_scenarios(self, system):
        system.answer(SQL)  # healthy: all synopsis
        FaultInjector(system).empty_allocation("rel")
        system.answer(SQL)  # repaired groups
        snapshot = system.metrics.snapshot()
        counts = _counter_values(snapshot, "aqua_guard_groups_total")
        tags = {key_labels[0][1] for key_labels in counts}
        assert PROVENANCE_SYNOPSIS in tags
        assert PROVENANCE_REPAIRED in tags


class TestMaintenanceMetrics:
    def test_insert_flush_refresh_counters(self, system, skewed_table):
        row = next(iter(skewed_table.iter_rows()))
        system.insert("rel", row)
        system.insert("rel", row)
        assert system.metrics.get("aqua_inserts_total").value(
            table="rel"
        ) == 2
        assert system.metrics.get("aqua_pending_rows").value(
            table="rel"
        ) == 2
        system.exact(SQL)  # forces a flush of pending rows
        assert system.metrics.get("aqua_flushes_total").value(
            table="rel"
        ) == 1
        assert system.metrics.get("aqua_flushed_rows_total").value(
            table="rel"
        ) == 2
        assert system.metrics.get("aqua_pending_rows").value(
            table="rel"
        ) == 0
        system.refresh_synopsis("rel")
        refreshes = system.metrics.get("aqua_refreshes_total")
        assert refreshes.value(table="rel", trigger="manual") == 1
        assert refreshes.value(table="rel", trigger="auto") == 0

    def test_build_synopsis_records_build_time(self, system):
        builds = system.metrics.get("aqua_synopsis_build_seconds")
        assert builds.count(table="rel") == 1


class TestQueryLogAutoRecording:
    def test_every_answer_is_recorded(self, system):
        assert system.query_log("rel").total_queries == 0
        system.answer(SQL)
        system.answer("select a, sum(q) s from rel group by a")
        log = system.query_log("rel")
        assert log.total_queries == 2
        frequencies = log.grouping_frequencies()
        assert frequencies[("a", "b")] == pytest.approx(0.5)
        assert frequencies[("a",)] == pytest.approx(0.5)


class TestCompareStageBreakdown:
    def test_describe_includes_stage_timings(self, system):
        report = system.compare(SQL)
        text = report.describe()
        assert "approx stages:" in text
        assert "parse" in text
        assert "execute" in text

    def test_speedup_uses_traced_total(self, system):
        report = system.compare(SQL)
        expected = (
            report.exact_elapsed_seconds / report.approximate.total_seconds
        )
        assert report.speedup == pytest.approx(expected)


class TestDisabledTelemetryOverhead:
    @staticmethod
    def _instrumentation_loop(tracer, counter, hist, iterations=10_000):
        start = time.perf_counter()
        for __ in range(iterations):
            with tracer.span("noop"):
                pass
            counter.inc(table="rel")
            hist.observe(0.001)
        return time.perf_counter() - start

    def test_disabled_ops_cost_less_than_enabled(self, skewed_table, rng):
        """Disabled telemetry must be the cheap path: the same 10k
        instrumentation points cost measurably less than when enabled, and
        record nothing.  (A/B on the same machine moment, so the bound is
        stable under CI load; an absolute ceiling guards against an
        accidentally-expensive disabled path.)"""
        aqua = AquaSystem(space_budget=500, rng=rng, telemetry=False)
        aqua.register_table("rel", skewed_table)
        assert not aqua.telemetry.active
        tracer = aqua.tracer
        counter = aqua.metrics.counter("noop_total", "", ("table",))
        hist = aqua.metrics.histogram("noop_seconds", "", ())

        best_disabled = best_enabled = float("inf")
        for __ in range(3):  # best-of-3 smooths scheduler noise
            disabled = self._instrumentation_loop(tracer, counter, hist)
            aqua.telemetry.enable()
            enabled = self._instrumentation_loop(tracer, counter, hist)
            aqua.telemetry.disable()
            best_disabled = min(best_disabled, disabled)
            best_enabled = min(best_enabled, enabled)

        assert best_disabled < best_enabled
        # 10k disabled (span + counter + histogram) triples in well under a
        # second: each instrumentation point is sub-microsecond-scale, so
        # the ~30 points on an answer() path are unmeasurable.
        assert best_disabled < 0.25
        aqua.metrics.reset()
        counter = aqua.metrics.counter("noop_total", "", ("table",))
        counter.inc(table="rel")
        assert aqua.metrics.snapshot() == {}  # disabled: nothing recorded

    def test_metrics_registry_snapshot_empty_when_disabled(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc()
        assert registry.snapshot() == {}


class TestOnePassAndTestbedTelemetry:
    def test_onepass_construction_is_traced(self, skewed_table):
        from repro.maintenance import construct_one_pass

        telemetry = Telemetry.enabled()
        with telemetry.tracer.span("build") as root:
            construct_one_pass(
                "congress",
                skewed_table,
                skewed_table.schema,
                ["a", "b"],
                budget=400,
                rng=np.random.default_rng(3),
                telemetry=telemetry,
            )
        names = [span.name for span in root.children]
        assert names == ["onepass_stream", "onepass_subsample"]
        assert root.children[0].attributes["rows"] == skewed_table.num_rows
        assert telemetry.metrics.get(
            "aqua_onepass_rows_total"
        ).value(strategy="congress") == skewed_table.num_rows


class TestObservabilityWrapperOverhead:
    """PR guard: the answer() observability wrapper must stay free when off.

    The wrapper added around ``_answer_pipeline`` (trace-id reservation,
    event emission, SLO recording, audit offers) is gated on one enablement
    check per pillar.  With everything disabled the end-to-end cost of
    ``answer()`` must stay within 5% of calling the bare pipeline."""

    def test_disabled_event_log_emit_is_noop_cheap(self):
        from repro.obs.events import EventLog

        log = EventLog(enabled=False)
        start = time.perf_counter()
        for __ in range(10_000):
            log.emit(table="rel")
        elapsed = time.perf_counter() - start
        assert len(log) == 0
        assert elapsed < 0.25  # one attribute check per call

    def test_disabled_overhead_within_five_percent(self, skewed_table, rng):
        aqua = AquaSystem(
            space_budget=500, rng=rng, telemetry=False, cache=False
        )
        aqua.register_table("rel", skewed_table)
        assert not aqua.telemetry.active
        assert aqua.auditor is None and aqua.slo is None
        sql = "SELECT a, SUM(q) AS s FROM rel GROUP BY a"
        tracer = aqua.telemetry.tracer

        def bare(n):
            start = time.perf_counter()
            for __ in range(n):
                root = tracer.span("answer")
                with root:
                    aqua._answer_pipeline(sql, None, tracer, root)
            return time.perf_counter() - start

        def wrapped(n):
            start = time.perf_counter()
            for __ in range(n):
                aqua.answer(sql)
            return time.perf_counter() - start

        bare(3), wrapped(3)  # warm caches/JIT'd numpy paths
        best_bare = min(bare(10) for __ in range(5))
        best_wrapped = min(wrapped(10) for __ in range(5))
        # Same-moment A/B with best-of-5 smooths CI scheduler noise; the
        # absolute floor guards the ratio against sub-microsecond bases.
        assert best_wrapped <= max(1.05 * best_bare, best_bare + 0.005)
