"""The guarded answering escalation ladder: synopsis -> repaired -> exact."""

import numpy as np
import pytest

from repro import AquaSystem, GuardPolicy
from repro.aqua import (
    PROVENANCE_COLUMN,
    PROVENANCE_EXACT,
    PROVENANCE_REPAIRED,
    PROVENANCE_SYNOPSIS,
)
from repro.engine import Column, ColumnType, Schema, Table
from repro.errors import GuardViolationError, StaleSynopsisError
from repro.testing import FaultInjector

SQL = "select a, b, sum(q) s from rel group by a, b order by a, b"


def make_table(n=5000, seed=7):
    rng = np.random.default_rng(seed)
    a = np.where(
        rng.random(n) < 0.8, "a1", np.where(rng.random(n) < 0.9, "a2", "a3")
    )
    b = np.where(rng.random(n) < 0.95, "b1", "b2")
    q = rng.normal(100.0, 10.0, n)
    schema = Schema(
        [
            Column("a", ColumnType.STR, "grouping"),
            Column("b", ColumnType.STR, "grouping"),
            Column("q", ColumnType.FLOAT, "aggregate"),
        ]
    )
    return Table.from_columns(schema, a=a, b=b, q=q)


@pytest.fixture
def system():
    system = AquaSystem(space_budget=400, rng=np.random.default_rng(1))
    system.register_table("rel", make_table())
    return system


class TestHealthyAnswers:
    def test_provenance_all_synopsis(self, system):
        answer = system.answer(SQL)
        assert answer.guard is not None
        tags = answer.result.column(PROVENANCE_COLUMN)
        assert all(tag == PROVENANCE_SYNOPSIS for tag in tags)
        assert answer.provenance_counts == {
            PROVENANCE_SYNOPSIS: answer.result.num_rows
        }
        assert not answer.guard.degraded

    def test_guard_false_serves_legacy_answer(self, system):
        answer = system.answer(SQL, guard=False)
        assert answer.guard is None
        assert PROVENANCE_COLUMN not in answer.result.schema

    def test_system_level_guard_disable(self):
        system = AquaSystem(
            space_budget=400,
            rng=np.random.default_rng(1),
            guard_policy=False,
        )
        system.register_table("rel", make_table())
        assert system.guard_policy is None
        assert system.answer(SQL).guard is None
        # Per-call opt-in still works.
        assert system.answer(SQL, guard=GuardPolicy()).guard is not None

    def test_limit_does_not_trigger_missing_group_fallback(self, system):
        """LIMIT legitimately trims groups from the answer; the guard must
        not mistake the trimmed groups for missing ones and go exact."""
        answer = system.answer(
            "select a, b, sum(q) s from rel group by a, b order by a, b "
            "limit 2"
        )
        assert answer.result.num_rows == 2
        tags = set(answer.result.column(PROVENANCE_COLUMN))
        assert tags == {PROVENANCE_SYNOPSIS}
        assert answer.guard.fallback_reason is None

    def test_answer_matches_unguarded_on_healthy_synopsis(self, system):
        guarded = system.answer(SQL)
        plain = system.answer(SQL, guard=False)
        assert guarded.result.num_rows == plain.result.num_rows
        np.testing.assert_allclose(
            np.asarray(guarded.result.column("s"), dtype=float),
            np.asarray(plain.result.column("s"), dtype=float),
        )


class TestRepair:
    def test_truncated_stratum_repaired_exactly(self, system):
        fault = FaultInjector(system).truncate_sample("rel", keep=1)
        answer = system.answer(SQL)
        assert answer.guard.counts.get(PROVENANCE_REPAIRED, 0) >= 1
        assert fault.key in answer.guard.flagged
        exact = {
            (r["a"], r["b"]): r["s"] for r in system.exact(SQL).to_dicts()
        }
        for row in answer.result.to_dicts():
            if row[PROVENANCE_COLUMN] == PROVENANCE_REPAIRED:
                key = (row["a"], row["b"])
                assert row["s"] == pytest.approx(exact[key])
                assert row["s_error"] == 0.0

    def test_missing_group_restored(self, system):
        FaultInjector(system).empty_allocation("rel")
        answer = system.answer(SQL)
        exact = system.exact(SQL)
        assert answer.result.num_rows == exact.num_rows
        assert answer.guard.counts.get(PROVENANCE_REPAIRED, 0) >= 1

    def test_order_by_preserved_after_repair(self, system):
        FaultInjector(system).truncate_sample("rel", keep=1)
        answer = system.answer(SQL)
        keys = list(
            zip(answer.result.column("a"), answer.result.column("b"))
        )
        assert keys == sorted(keys)

    def test_where_clause_respected_in_repair(self, system):
        FaultInjector(system).truncate_sample("rel", keep=1)
        sql = (
            "select a, b, sum(q) s from rel where q > 100 "
            "group by a, b order by a, b"
        )
        answer = system.answer(sql)
        exact = {
            (r["a"], r["b"]): r["s"] for r in system.exact(sql).to_dicts()
        }
        for row in answer.result.to_dicts():
            if row[PROVENANCE_COLUMN] == PROVENANCE_REPAIRED:
                assert row["s"] == pytest.approx(exact[(row["a"], row["b"])])


class TestFullFallback:
    def test_tight_halfwidth_budget_forces_exact(self, system):
        policy = GuardPolicy(max_relative_halfwidth=1e-12)
        answer = system.answer(SQL, guard=policy)
        tags = answer.result.column(PROVENANCE_COLUMN)
        assert all(tag == PROVENANCE_EXACT for tag in tags)
        assert answer.guard.fallback_reason is not None
        errors = np.asarray(answer.result.column("s_error"), dtype=float)
        assert (errors == 0.0).all()
        exact = {
            (r["a"], r["b"]): r["s"] for r in system.exact(SQL).to_dicts()
        }
        for row in answer.result.to_dicts():
            assert row["s"] == pytest.approx(exact[(row["a"], row["b"])])

    def test_guard_violation_when_fallback_disabled(self, system):
        policy = GuardPolicy(
            max_relative_halfwidth=1e-12, exact_fallback=False
        )
        with pytest.raises(GuardViolationError):
            system.answer(SQL, guard=policy)

    def test_no_group_by_falls_back_whole_query(self, system):
        policy = GuardPolicy(max_relative_halfwidth=1e-12)
        answer = system.answer(
            "select sum(q) s from rel", guard=policy
        )
        assert list(answer.result.column(PROVENANCE_COLUMN)) == [
            PROVENANCE_EXACT
        ]

    def test_repair_disabled_goes_exact(self, system):
        FaultInjector(system).truncate_sample("rel", keep=1)
        answer = system.answer(SQL, guard=GuardPolicy(repair=False))
        tags = set(answer.result.column(PROVENANCE_COLUMN))
        assert tags == {PROVENANCE_EXACT}


class TestStaleness:
    def insert_rows(self, system, count):
        row = next(iter(system._state("rel").table.iter_rows()))
        for __ in range(count):
            system.insert("rel", row)

    def test_on_stale_raise(self, system):
        self.insert_rows(system, 10)
        policy = GuardPolicy(staleness_limit=5, on_stale="raise")
        with pytest.raises(StaleSynopsisError, match="stale"):
            system.answer(SQL, guard=policy)

    def test_on_stale_refresh_clears_drift(self, system):
        self.insert_rows(system, 10)
        policy = GuardPolicy(staleness_limit=5, on_stale="refresh")
        answer = system.answer(SQL, guard=policy)
        assert system._state("rel").inserts_since_refresh == 0
        assert answer.guard.stale_inserts == 0

    def test_on_stale_exact(self, system):
        self.insert_rows(system, 10)
        policy = GuardPolicy(staleness_limit=5, on_stale="exact")
        answer = system.answer(SQL, guard=policy)
        tags = set(answer.result.column(PROVENANCE_COLUMN))
        assert tags == {PROVENANCE_EXACT}
        assert "stale" in answer.guard.fallback_reason

    def test_on_stale_serve_reports_drift(self, system):
        self.insert_rows(system, 10)
        policy = GuardPolicy(staleness_limit=5, on_stale="serve")
        answer = system.answer(SQL, guard=policy)
        assert answer.guard.stale_inserts == 10


class TestPolicyValidation:
    def test_negative_support_rejected(self):
        with pytest.raises(ValueError, match="min_group_support"):
            GuardPolicy(min_group_support=-1)

    def test_bad_on_stale_rejected(self):
        with pytest.raises(ValueError, match="on_stale"):
            GuardPolicy(on_stale="panic")

    def test_bad_repair_fraction_rejected(self):
        with pytest.raises(ValueError, match="max_repair_fraction"):
            GuardPolicy(max_repair_fraction=1.5)

    def test_report_describe_mentions_tags(self, system):
        FaultInjector(system).truncate_sample("rel", keep=1)
        answer = system.answer(SQL)
        text = answer.guard.describe()
        assert "repaired" in text and "flagged" in text
