"""Property-based tests for group-key machinery."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling import (
    all_groupings,
    project_key,
    projected_counts,
)

counts_3d = st.dictionaries(
    keys=st.tuples(
        st.sampled_from(["a1", "a2"]),
        st.sampled_from(["b1", "b2", "b3"]),
        st.sampled_from(["c1", "c2"]),
    ),
    values=st.integers(min_value=1, max_value=10_000),
    min_size=1,
    max_size=12,
)

G3 = ("A", "B", "C")


class TestGroupingProperties:
    @given(n=st.integers(min_value=0, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_power_set_cardinality(self, n):
        columns = [f"c{i}" for i in range(n)]
        groupings = all_groupings(columns)
        assert len(groupings) == 2 ** n
        assert len(set(groupings)) == 2 ** n  # no duplicates

    @given(counts=counts_3d)
    @settings(max_examples=80, deadline=None)
    def test_projection_preserves_total(self, counts):
        total = sum(counts.values())
        for target in all_groupings(G3):
            projected = projected_counts(counts, G3, target)
            assert sum(projected.values()) == total

    @given(counts=counts_3d)
    @settings(max_examples=80, deadline=None)
    def test_projection_composes(self, counts):
        """Projecting to B,C then to C equals projecting straight to C."""
        via_bc = projected_counts(counts, G3, ["B", "C"])
        via_bc_then_c = projected_counts(via_bc, ["B", "C"], ["C"])
        direct = projected_counts(counts, G3, ["C"])
        assert via_bc_then_c == direct

    @given(counts=counts_3d)
    @settings(max_examples=50, deadline=None)
    def test_group_count_monotone_in_grouping_size(self, counts):
        """Finer groupings never have fewer groups than coarser subsets."""
        for target in all_groupings(G3):
            finer = projected_counts(counts, G3, G3)
            coarser = projected_counts(counts, G3, target)
            assert len(coarser) <= len(finer)

    @given(
        key=st.tuples(
            st.sampled_from(["x", "y"]),
            st.integers(min_value=0, max_value=9),
            st.sampled_from(["p", "q"]),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_project_key_identity_and_empty(self, key):
        assert project_key(key, G3, G3) == key
        assert project_key(key, G3, []) == ()

    @given(
        key=st.tuples(
            st.sampled_from(["x", "y"]),
            st.integers(min_value=0, max_value=9),
            st.sampled_from(["p", "q"]),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_project_key_composition(self, key):
        via = project_key(project_key(key, G3, ["A", "C"]), ["A", "C"], ["C"])
        direct = project_key(key, G3, ["C"])
        assert via == direct
