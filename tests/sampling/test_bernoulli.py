"""Unit and statistical tests for Bernoulli sampling helpers."""

import numpy as np
import pytest

from repro.sampling import BernoulliSampler, subsample_exact, thin_to_probability


class TestBernoulliSampler:
    def test_probability_zero_never_accepts(self, rng):
        sampler = BernoulliSampler(rng)
        assert not any(sampler.accept(0.0) for __ in range(100))
        assert sampler.accepted == 0
        assert sampler.offered == 100

    def test_probability_one_always_accepts(self, rng):
        sampler = BernoulliSampler(rng)
        assert all(sampler.accept(1.0) for __ in range(100))

    def test_out_of_range_clamped(self, rng):
        sampler = BernoulliSampler(rng)
        assert sampler.accept(5.0)  # clamped to 1
        assert not sampler.accept(-2.0)  # clamped to 0

    def test_acceptance_rate(self):
        rng = np.random.default_rng(4)
        sampler = BernoulliSampler(rng)
        n = 20_000
        for __ in range(n):
            sampler.accept(0.3)
        rate = sampler.accepted / sampler.offered
        assert abs(rate - 0.3) < 0.02


class TestThinToProbability:
    def test_no_op_when_equal(self, rng):
        items = list(range(10))
        assert thin_to_probability(items, 0.5, 0.5, rng) == items

    def test_upward_thinning_rejected(self, rng):
        with pytest.raises(ValueError):
            thin_to_probability([1], 0.2, 0.5, rng)

    def test_zero_old_probability(self, rng):
        assert thin_to_probability([1, 2], 0.0, 0.0, rng) == []

    def test_marginal_probability(self):
        """Each item retained w.p. new/old across many trials."""
        rng = np.random.default_rng(8)
        old, new, trials, n = 0.8, 0.2, 2000, 20
        kept_counts = np.zeros(n)
        for __ in range(trials):
            kept = thin_to_probability(list(range(n)), old, new, rng)
            for item in kept:
                kept_counts[item] += 1
        freqs = kept_counts / trials
        assert np.all(np.abs(freqs - new / old) < 0.05)

    def test_order_preserved(self, rng):
        kept = thin_to_probability(list(range(100)), 1.0, 0.5, rng)
        assert kept == sorted(kept)


class TestSubsampleExact:
    def test_exact_size(self, rng):
        out = subsample_exact(list(range(50)), 7, rng)
        assert len(out) == 7
        assert len(set(out)) == 7  # without replacement

    def test_size_larger_than_input(self, rng):
        items = [1, 2, 3]
        assert subsample_exact(items, 10, rng) == items

    def test_zero_size(self, rng):
        assert subsample_exact([1, 2, 3], 0, rng) == []
