"""Unit tests for group-key machinery."""

import numpy as np
import pytest

from repro.sampling import (
    all_groupings,
    finest_group_ids,
    group_counts,
    make_key,
    project_key,
    projected_counts,
)


class TestAllGroupings:
    def test_power_set_sizes(self):
        assert len(all_groupings([])) == 1
        assert len(all_groupings(["a"])) == 2
        assert len(all_groupings(["a", "b", "c"])) == 8

    def test_order_empty_first_full_last(self):
        groupings = all_groupings(["a", "b"])
        assert groupings[0] == ()
        assert groupings[-1] == ("a", "b")

    def test_order_by_size(self):
        groupings = all_groupings(["a", "b", "c"])
        sizes = [len(t) for t in groupings]
        assert sizes == sorted(sizes)

    def test_column_order_within_subset(self):
        groupings = all_groupings(["b", "a"])
        assert ("b", "a") in groupings  # original column order preserved
        assert ("a", "b") not in groupings


class TestMakeKey:
    def test_numpy_scalars_normalized(self):
        key = make_key((np.int64(3), np.str_("x")))
        assert key == (3, "x")
        assert type(key[0]) is int

    def test_plain_values_passthrough(self):
        assert make_key(("a", 1.5)) == ("a", 1.5)


class TestProjectKey:
    def test_projection(self):
        assert project_key(("v1", "v2", "v3"), ["A", "B", "C"], ["C", "A"]) == (
            "v3",
            "v1",
        )

    def test_empty_target(self):
        assert project_key(("v1",), ["A"], []) == ()

    def test_unknown_column(self):
        with pytest.raises(KeyError):
            project_key(("v1",), ["A"], ["Z"])


class TestCounts:
    def test_group_counts(self, small_table):
        counts = group_counts(small_table, ["a", "b"])
        assert counts == {
            ("x", "p"): 2,
            ("x", "q"): 2,
            ("y", "p"): 2,
            ("y", "q"): 2,
        }

    def test_finest_group_ids_cover_all_rows(self, small_table):
        ids, keys = finest_group_ids(small_table, ["a", "b"])
        assert len(ids) == small_table.num_rows
        assert set(ids.tolist()) == set(range(len(keys)))

    def test_projected_counts(self):
        finest = {("a1", "b1"): 3, ("a1", "b2"): 5, ("a2", "b1"): 7}
        by_a = projected_counts(finest, ["A", "B"], ["A"])
        assert by_a == {("a1",): 8, ("a2",): 7}
        by_none = projected_counts(finest, ["A", "B"], [])
        assert by_none == {(): 15}

    def test_projected_counts_identity(self):
        finest = {("a", "b"): 2}
        assert projected_counts(finest, ["A", "B"], ["A", "B"]) == finest
