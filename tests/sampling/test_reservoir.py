"""Unit and statistical tests for reservoir sampling."""

import numpy as np
import pytest

from repro.sampling import ReservoirSampler, SkipReservoirSampler, reservoir_sample


@pytest.mark.parametrize("cls", [ReservoirSampler, SkipReservoirSampler])
class TestCommonBehaviour:
    def test_fills_to_capacity(self, cls, rng):
        sampler = cls(5, rng)
        sampler.extend(range(3))
        assert sorted(sampler.items()) == [0, 1, 2]
        sampler.extend(range(3, 10))
        assert len(sampler) == 5
        assert sampler.seen == 10

    def test_items_subset_of_stream(self, cls, rng):
        sampler = cls(10, rng)
        sampler.extend(range(100))
        assert set(sampler.items()) <= set(range(100))
        assert len(set(sampler.items())) == 10  # without replacement

    def test_zero_capacity(self, cls, rng):
        sampler = cls(0, rng)
        sampler.extend(range(10))
        assert len(sampler) == 0
        assert sampler.seen == 10

    def test_negative_capacity_rejected(self, cls, rng):
        with pytest.raises(ValueError):
            cls(-1, rng)

    def test_shrink_to(self, cls, rng):
        sampler = cls(10, rng)
        sampler.extend(range(50))
        evicted = sampler.shrink_to(4)
        assert len(sampler) == 4
        assert len(evicted) == 6
        assert set(evicted).isdisjoint(set(sampler.items()))

    def test_shrink_negative_rejected(self, cls, rng):
        sampler = cls(5, rng)
        with pytest.raises(ValueError):
            sampler.shrink_to(-1)

    def test_inclusion_probability_uniform(self, cls):
        """Every stream item should appear with probability ~k/n."""
        rng = np.random.default_rng(99)
        n, k, trials = 20, 5, 3000
        counts = np.zeros(n)
        for __ in range(trials):
            sampler = cls(k, rng)
            sampler.extend(range(n))
            for item in sampler.items():
                counts[item] += 1
        freqs = counts / trials
        expected = k / n
        # 4-sigma band for a binomial proportion.
        sigma = np.sqrt(expected * (1 - expected) / trials)
        assert np.all(np.abs(freqs - expected) < 4 * sigma + 0.01)


class TestReservoirEvictionNotice:
    def test_offer_returns_none_while_filling(self, rng):
        sampler = ReservoirSampler(3, rng)
        assert sampler.offer("a") is None
        assert sampler.offer("b") is None
        assert sampler.offer("c") is None

    def test_offer_returns_someone_once_full(self, rng):
        sampler = ReservoirSampler(2, rng)
        sampler.extend(["a", "b"])
        evicted = sampler.offer("c")
        # Either "c" bounced or it displaced one of a/b.
        assert evicted in ("a", "b", "c")
        assert len(sampler) == 2

    def test_grow_to_only_increases(self, rng):
        sampler = ReservoirSampler(2, rng)
        sampler.grow_to(5)
        assert sampler.capacity == 5
        with pytest.raises(ValueError):
            sampler.grow_to(1)


class TestSkipDistribution:
    def test_matches_plain_reservoir_statistics(self):
        """Skip-based and per-item reservoirs draw from the same law."""
        rng = np.random.default_rng(7)
        n, k, trials = 30, 6, 2000
        first_item_count = 0
        for __ in range(trials):
            sampler = SkipReservoirSampler(k, rng)
            sampler.extend(range(n))
            if 0 in sampler.items():
                first_item_count += 1
        freq = first_item_count / trials
        expected = k / n
        assert abs(freq - expected) < 0.03


class TestOneShot:
    def test_reservoir_sample_size(self, rng):
        out = reservoir_sample(range(100), 7, rng)
        assert len(out) == 7

    def test_reservoir_sample_small_stream(self, rng):
        out = reservoir_sample(range(3), 10, rng)
        assert sorted(out) == [0, 1, 2]
