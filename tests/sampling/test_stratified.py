"""Unit tests for the stratified sample container and materializations."""

import numpy as np
import pytest

from repro.sampling import GID_COLUMN, SF_COLUMN, StratifiedSample, Stratum


@pytest.fixture
def sample(small_table, rng):
    allocation = {
        ("x", "p"): 1,
        ("x", "q"): 2,
        ("y", "p"): 2,
        ("y", "q"): 0,
    }
    return StratifiedSample.build(small_table, ["a", "b"], allocation, rng=rng)


class TestStratum:
    def test_rates_and_scale_factors(self):
        stratum = Stratum(("g",), 100, np.array([1, 5, 9]))
        assert stratum.sample_size == 3
        assert stratum.sampling_rate == 0.03
        assert stratum.scale_factor == pytest.approx(100 / 3)

    def test_empty_stratum(self):
        stratum = Stratum(("g",), 10, np.array([], dtype=np.int64))
        assert stratum.sampling_rate == 0.0
        assert np.isnan(stratum.scale_factor)


class TestBuild:
    def test_allocation_honored(self, sample):
        assert sample.sample_sizes() == {
            ("x", "p"): 1,
            ("x", "q"): 2,
            ("y", "p"): 2,
            ("y", "q"): 0,
        }
        assert sample.total_sample_size == 5

    def test_allocation_capped_at_population(self, small_table, rng):
        sample = StratifiedSample.build(
            small_table, ["a", "b"], {("x", "p"): 100}, rng=rng
        )
        assert sample.stratum(("x", "p")).sample_size == 2

    def test_rows_actually_belong_to_their_group(self, sample, small_table):
        for key, stratum in sample.strata.items():
            for idx in stratum.row_indices:
                row = small_table.row(int(idx))
                assert (row[0], row[1]) == key

    def test_without_replacement(self, sample):
        for stratum in sample.strata.values():
            assert len(set(stratum.row_indices.tolist())) == stratum.sample_size

    def test_population_totals(self, sample):
        assert sample.total_population == 8

    def test_missing_groups_get_zero(self, small_table, rng):
        sample = StratifiedSample.build(small_table, ["a", "b"], {}, rng=rng)
        assert sample.total_sample_size == 0
        assert len(sample.strata) == 4  # strata exist, just empty


class TestMaterializations:
    def test_sample_table_rows(self, sample):
        table = sample.sample_table()
        assert table.num_rows == 5
        assert table.schema == sample.base_table.schema

    def test_integrated_relation_sf(self, sample):
        rel = sample.integrated_relation()
        assert SF_COLUMN in rel.schema
        # The (x,p) stratum has 1 of 2 rows: SF = 2.
        mask = (rel.column("a") == "x") & (rel.column("b") == "p")
        assert rel.column(SF_COLUMN)[mask].tolist() == [2.0]
        # The (x,q) stratum has 2 of 2 rows: SF = 1.
        mask = (rel.column("a") == "x") & (rel.column("b") == "q")
        assert rel.column(SF_COLUMN)[mask].tolist() == [1.0, 1.0]

    def test_normalized_relations(self, sample):
        samp, aux = sample.normalized_relations()
        assert SF_COLUMN not in samp.schema
        assert aux.schema.names == ["a", "b", SF_COLUMN]
        assert aux.num_rows == 3  # only non-empty strata
        by_key = {
            (r["a"], r["b"]): r[SF_COLUMN] for r in aux.to_dicts()
        }
        assert by_key[("x", "p")] == 2.0

    def test_key_normalized_relations(self, sample):
        samp, aux = sample.key_normalized_relations()
        assert GID_COLUMN in samp.schema
        assert aux.schema.names == [GID_COLUMN, SF_COLUMN]
        # GIDs in the sample relation must all resolve in aux.
        sample_gids = set(samp.column(GID_COLUMN).tolist())
        aux_gids = set(aux.column(GID_COLUMN).tolist())
        assert sample_gids <= aux_gids

    def test_scale_factors_only_for_nonempty(self, sample):
        factors = sample.scale_factors()
        assert ("y", "q") not in factors
        assert len(factors) == 3

    def test_empty_sample_materializations(self, small_table, rng):
        sample = StratifiedSample.build(small_table, ["a", "b"], {}, rng=rng)
        assert sample.integrated_relation().num_rows == 0
        samp, aux = sample.normalized_relations()
        assert samp.num_rows == 0 and aux.num_rows == 0


class TestFromMemberLists:
    def test_round_trip(self, small_table):
        sample = StratifiedSample.from_member_lists(
            small_table,
            ["a", "b"],
            members={("x", "p"): [0, 1]},
            populations={("x", "p"): 2},
        )
        assert sample.stratum(("x", "p")).scale_factor == 1.0
        assert sample.total_sample_size == 2
