"""Unit and property tests for allocation rounding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling import floor_round, largest_remainder_round, randomized_round


class TestLargestRemainder:
    def test_preserves_total(self):
        out = largest_remainder_round({"a": 1.4, "b": 2.3, "c": 3.3}, total=7)
        assert sum(out.values()) == 7

    def test_default_total_is_rounded_sum(self):
        out = largest_remainder_round({"a": 1.5, "b": 2.5})
        assert sum(out.values()) == 4

    def test_largest_remainders_win(self):
        out = largest_remainder_round({"a": 1.9, "b": 1.1}, total=3)
        assert out == {"a": 2, "b": 1}

    def test_within_one_of_fractional(self):
        fractional = {"a": 10.7, "b": 0.2, "c": 5.1}
        out = largest_remainder_round(fractional, total=16)
        for key, value in fractional.items():
            assert abs(out[key] - value) < 1.0 + 1e-9

    def test_caps_respected(self):
        out = largest_remainder_round(
            {"a": 5.0, "b": 5.0}, total=10, caps={"a": 2, "b": 100}
        )
        assert out["a"] <= 2
        assert sum(out.values()) == 10

    def test_infeasible_caps_saturate(self):
        out = largest_remainder_round(
            {"a": 5.0, "b": 5.0}, total=10, caps={"a": 2, "b": 3}
        )
        assert out == {"a": 2, "b": 3}

    def test_total_below_floor_sum(self):
        out = largest_remainder_round({"a": 5.0, "b": 5.0}, total=6)
        assert sum(out.values()) == 6
        assert all(v >= 0 for v in out.values())

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            largest_remainder_round({"a": -1.0})

    def test_negative_caps_rejected(self):
        with pytest.raises(ValueError):
            largest_remainder_round({"a": 1.0}, caps={"a": -1})

    @given(
        values=st.lists(
            st.floats(min_value=0, max_value=1000, allow_nan=False),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_property_total_and_proximity(self, values):
        fractional = {i: v for i, v in enumerate(values)}
        total = int(round(sum(values)))
        out = largest_remainder_round(fractional, total=total)
        assert sum(out.values()) == total
        assert all(v >= 0 for v in out.values())
        for key, target in fractional.items():
            assert abs(out[key] - target) <= 1.0 + 1e-6


class TestFloorRound:
    def test_floors(self):
        assert floor_round({"a": 1.9, "b": 2.0}) == {"a": 1, "b": 2}

    def test_caps(self):
        assert floor_round({"a": 5.9}, caps={"a": 3}) == {"a": 3}

    def test_negative_clamped_to_zero(self):
        assert floor_round({"a": -0.5}) == {"a": 0}


class TestRandomizedRound:
    def test_expectation(self):
        rng = np.random.default_rng(5)
        trials = 5000
        total = sum(
            randomized_round({"a": 1.25}, rng)["a"] for __ in range(trials)
        )
        assert abs(total / trials - 1.25) < 0.05

    def test_caps(self, rng):
        out = randomized_round({"a": 7.9}, rng, caps={"a": 5})
        assert out["a"] <= 5
