"""Unit and cross-validation tests for the four rewriting strategies."""

import numpy as np
import pytest

from repro.core import Congress, build_sample
from repro.engine import Catalog, parse_query
from repro.estimators import estimate
from repro.rewrite import (
    ALL_STRATEGIES,
    Integrated,
    KeyNormalized,
    NestedIntegrated,
    Normalized,
    RewriteError,
    strategy_by_name,
)


@pytest.fixture
def setup(skewed_table, rng):
    catalog = Catalog()
    catalog.register("rel", skewed_table)
    sample = build_sample(Congress(), skewed_table, ["a", "b"], 1000, rng=rng)
    return catalog, sample


QUERIES = {
    "sum": "select a, sum(q) s from rel group by a order by a",
    "count": "select a, b, count(*) c from rel group by a, b order by a, b",
    "avg": "select b, avg(q) m from rel group by b order by b",
    "mixed": (
        "select a, sum(q) s, count(*) c, avg(q) m "
        "from rel group by a order by a"
    ),
    "where": (
        "select a, sum(q) s from rel where id < 10000 group by a order by a"
    ),
    "no_group_by": "select sum(q) s from rel",
    "expression": "select a, sum(q * 2 + 1) s from rel group by a order by a",
}


class TestCrossStrategyAgreement:
    """All four strategies are algebraic rewrites of the same estimator,
    so they must agree to floating-point precision."""

    @pytest.mark.parametrize("query_name", sorted(QUERIES))
    def test_identical_answers(self, setup, query_name):
        catalog, sample = setup
        query = parse_query(QUERIES[query_name])
        results = []
        for cls in ALL_STRATEGIES:
            strategy = cls()
            synopsis = strategy.install(sample, "rel", catalog, replace=True)
            plan = strategy.plan(query, synopsis)
            table = plan.execute(catalog)
            if query.group_by:
                table = table.sort_by(list(query.group_by))
            results.append(table)
        baseline = results[0]
        for other in results[1:]:
            assert other.schema.names == baseline.schema.names
            assert other.num_rows == baseline.num_rows
            for column in baseline.schema:
                if column.ctype.is_numeric:
                    np.testing.assert_allclose(
                        other.column(column.name),
                        baseline.column(column.name),
                        rtol=1e-9,
                    )
                else:
                    assert (
                        other.column(column.name).tolist()
                        == baseline.column(column.name).tolist()
                    )

    def test_matches_direct_estimator(self, setup):
        catalog, sample = setup
        query = parse_query(QUERIES["sum"])
        strategy = Integrated()
        synopsis = strategy.install(sample, "rel", catalog, replace=True)
        table = strategy.plan(query, synopsis).execute(catalog).sort_by(["a"])
        direct = estimate(sample, "sum", "q", group_by=["a"])
        for row in table.to_dicts():
            assert row["s"] == pytest.approx(direct[(str(row["a"]),)].value)


class TestExactnessOnFullSample:
    def test_full_rate_sample_reproduces_exact_answer(self, skewed_table, rng):
        from repro.sampling import StratifiedSample, group_counts

        counts = group_counts(skewed_table, ["a", "b"])
        sample = StratifiedSample.build(
            skewed_table, ["a", "b"], counts, rng=rng
        )
        catalog = Catalog()
        catalog.register("rel", skewed_table)
        query = parse_query(QUERIES["mixed"])
        from repro.engine import execute

        exact = execute(query, catalog).sort_by(["a"])
        strategy = NestedIntegrated()
        synopsis = strategy.install(sample, "rel", catalog, replace=True)
        approx = strategy.plan(query, synopsis).execute(catalog).sort_by(["a"])
        for name in ("s", "c", "m"):
            np.testing.assert_allclose(
                approx.column(name), exact.column(name), rtol=1e-9
            )


class TestSchemas:
    def test_integrated_installs_one_relation(self, setup):
        catalog, sample = setup
        synopsis = Integrated().install(sample, "rel", catalog, replace=True)
        assert synopsis.sample_name == "bs_rel"
        assert synopsis.aux_name is None
        assert "sf" in catalog.get("bs_rel").schema

    def test_normalized_installs_two_relations(self, setup):
        catalog, sample = setup
        synopsis = Normalized().install(sample, "rel", catalog, replace=True)
        assert synopsis.aux_name == "auxn_rel"
        assert "sf" not in catalog.get("bsn_rel").schema
        assert "sf" in catalog.get("auxn_rel").schema

    def test_key_normalized_gid(self, setup):
        catalog, sample = setup
        KeyNormalized().install(sample, "rel", catalog, replace=True)
        assert "gid" in catalog.get("bsk_rel").schema
        assert catalog.get("auxk_rel").schema.names == ["gid", "sf"]

    def test_aux_rel_smaller_than_sample(self, setup):
        catalog, sample = setup
        Normalized().install(sample, "rel", catalog, replace=True)
        assert catalog.get("auxn_rel").num_rows < catalog.get("bsn_rel").num_rows


class TestRewriteValidation:
    def test_wrong_table_rejected(self, setup):
        catalog, sample = setup
        synopsis = Integrated().install(sample, "rel", catalog, replace=True)
        query = parse_query("select a, sum(q) s from other group by a")
        with pytest.raises(RewriteError, match="synopsis covers"):
            Integrated().plan(query, synopsis)

    def test_non_aggregate_query_rejected(self, setup):
        catalog, sample = setup
        synopsis = Integrated().install(sample, "rel", catalog, replace=True)
        query = parse_query("select a, b from rel")
        with pytest.raises(RewriteError, match="aggregate"):
            Integrated().plan(query, synopsis)

    def test_internal_alias_collision_rejected(self, setup):
        catalog, sample = setup
        synopsis = Integrated().install(sample, "rel", catalog, replace=True)
        query = parse_query("select a, sum(q) as __num0 from rel group by a")
        with pytest.raises(RewriteError, match="internal"):
            Integrated().plan(query, synopsis)

    def test_var_aggregate_has_no_rewrite(self, setup):
        catalog, sample = setup
        synopsis = Integrated().install(sample, "rel", catalog, replace=True)
        query = parse_query("select a, var(q) v from rel group by a")
        with pytest.raises(RewriteError, match="no rewrite rule"):
            Integrated().plan(query, synopsis)

    def test_min_max_pass_through(self, setup):
        catalog, sample = setup
        for cls in (Integrated, NestedIntegrated):
            strategy = cls()
            synopsis = strategy.install(sample, "rel", catalog, replace=True)
            query = parse_query(
                "select a, min(q) lo, max(q) hi from rel group by a"
            )
            result = strategy.plan(query, synopsis).execute(catalog)
            assert result.num_rows == 3
            lows = result.column("lo")
            highs = result.column("hi")
            assert (lows <= highs).all()


class TestStrategyRegistry:
    def test_lookup_by_name(self):
        for cls in ALL_STRATEGIES:
            assert isinstance(strategy_by_name(cls.name), cls)

    def test_lookup_is_case_insensitive(self):
        for cls in ALL_STRATEGIES:
            assert isinstance(strategy_by_name(cls.name.upper()), cls)
            assert isinstance(strategy_by_name(cls.name.title()), cls)
            assert isinstance(strategy_by_name(f"  {cls.name}  "), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown rewrite strategy"):
            strategy_by_name("bogus")

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="integrated"):
            strategy_by_name("bogus")
