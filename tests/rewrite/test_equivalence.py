"""Rewrite equivalence on the paper's query classes.

All four rewriting strategies are algebraically equivalent (Section 5.2):
over the *same* congressional sample they must produce identical answers,
group for group, on every query class of Table 2 -- including the
no-GROUP-BY form -- and agree with the direct stratified estimator.
"""

import math

import numpy as np
import pytest

from repro.core import Congress, build_sample
from repro.engine import Catalog
from repro.estimators import estimate
from repro.rewrite import ALL_STRATEGIES
from repro.synthetic.queries import QueryClass, qg0, qg2, qg3
from repro.synthetic.tpcd import (
    GROUPING_COLUMNS,
    LineitemConfig,
    generate_lineitem,
)

TABLE = "lineitem"

STRATEGIES = tuple(cls() for cls in ALL_STRATEGIES)


@pytest.fixture(scope="module")
def lineitem():
    return generate_lineitem(
        LineitemConfig(table_size=3000, num_groups=27, seed=11)
    )


@pytest.fixture(scope="module")
def sample(lineitem):
    return build_sample(
        Congress(),
        lineitem,
        GROUPING_COLUMNS,
        500,
        rng=np.random.default_rng(42),
    )


def no_group_by() -> QueryClass:
    return QueryClass(
        "Qtotal", f"SELECT sum(l_quantity) AS sum_qty FROM {TABLE}"
    )


PAPER_QUERIES = [qg2(), qg3(), qg0(900, 600), no_group_by()]


def _answers(strategy, sample, lineitem, query):
    catalog = Catalog()
    catalog.register(TABLE, lineitem)
    synopsis = strategy.install(sample, TABLE, catalog, replace=True)
    result = strategy.plan(query, synopsis).execute(catalog)
    group_by = list(query.group_by)
    keys = (
        [
            tuple(result.column(c)[i] for c in group_by)
            for i in range(result.num_rows)
        ]
        if group_by
        else [()] * result.num_rows
    )
    return {
        alias: {
            key: float(result.column(alias)[i])
            for i, key in enumerate(keys)
        }
        for alias in (a.alias for a in query.aggregates())
    }


@pytest.mark.parametrize(
    "query_class", PAPER_QUERIES, ids=lambda qc: qc.name
)
def test_all_rewrites_identical(query_class, sample, lineitem):
    query = query_class.query
    reference_name = STRATEGIES[0].name
    reference = _answers(STRATEGIES[0], sample, lineitem, query)
    for strategy in STRATEGIES[1:]:
        other = _answers(strategy, sample, lineitem, query)
        for alias, groups in reference.items():
            assert set(groups) == set(other[alias]), (
                f"{strategy.name} and {reference_name} disagree on the "
                f"group set of {query_class.name}/{alias}"
            )
            for key, value in groups.items():
                assert math.isclose(
                    value, other[alias][key], rel_tol=1e-9, abs_tol=1e-9
                ), (
                    f"{strategy.name} vs {reference_name} on "
                    f"{query_class.name}/{alias} group {key}: "
                    f"{other[alias][key]!r} != {value!r}"
                )


@pytest.mark.parametrize(
    "query_class", PAPER_QUERIES, ids=lambda qc: qc.name
)
def test_rewrites_match_direct_estimator(query_class, sample, lineitem):
    query = query_class.query
    for strategy in STRATEGIES:
        executed = _answers(strategy, sample, lineitem, query)
        for aggregate in query.aggregates():
            direct = estimate(
                sample,
                aggregate.func,
                None if aggregate.func == "count" else aggregate.expr,
                predicate=query.where,
                group_by=query.group_by,
            )
            for key, value in executed[aggregate.alias].items():
                assert math.isclose(
                    value,
                    direct[key].value,
                    rel_tol=1e-9,
                    abs_tol=1e-9,
                ), (
                    f"{strategy.name} {query_class.name}/"
                    f"{aggregate.alias} group {key}: executed {value!r} "
                    f"!= direct {direct[key].value!r}"
                )
