"""Unit tests for the rewritten-plan executor."""

import numpy as np
import pytest

from repro.engine import (
    Aggregate,
    Catalog,
    Col,
    ColumnType,
    Projection,
    Query,
    Schema,
    Table,
    col,
)
from repro.rewrite import JoinSpec, RatioColumn, RewrittenPlan


@pytest.fixture
def catalog():
    cat = Catalog()
    samp_schema = Schema.of(
        ("g", ColumnType.STR), ("v", ColumnType.FLOAT), ("gid", ColumnType.INT)
    )
    aux_schema = Schema.of(("gid", ColumnType.INT), ("sf", ColumnType.FLOAT))
    cat.register(
        "samp",
        Table.from_columns(
            samp_schema,
            g=["a", "a", "b"],
            v=[1.0, 2.0, 3.0],
            gid=[0, 0, 1],
        ),
    )
    cat.register(
        "aux", Table.from_columns(aux_schema, gid=[0, 1], sf=[10.0, 5.0])
    )
    return cat


def make_query(select, group_by=("g",)):
    return Query(select=tuple(select), from_item="samp", group_by=group_by)


class TestPlainPlan:
    def test_projection_order(self, catalog):
        query = make_query(
            [
                Aggregate("sum", col("v"), "s"),
                Projection(Col("g"), "g"),
            ]
        )
        plan = RewrittenPlan(
            strategy="test", query=query, output=("g", "s")
        )
        result = plan.execute(catalog)
        assert result.schema.names == ["g", "s"]


class TestJoinPlan:
    def test_join_then_aggregate(self, catalog):
        query = Query(
            select=(
                Projection(Col("g"), "g"),
                Aggregate("sum", col("v") * col("sf"), "s"),
            ),
            from_item="samp",
            group_by=("g",),
        )
        plan = RewrittenPlan(
            strategy="test",
            query=query,
            output=("g", "s"),
            join=JoinSpec("samp", "aux", ("gid",), ("gid",)),
        )
        result = plan.execute(catalog).sort_by(["g"])
        assert result.column("s").tolist() == [30.0, 15.0]


class TestRatioColumns:
    def test_ratio_computed_and_internals_dropped(self, catalog):
        query = make_query(
            [
                Projection(Col("g"), "g"),
                Aggregate("sum", col("v"), "__num"),
                Aggregate.count_star("__den"),
            ]
        )
        plan = RewrittenPlan(
            strategy="test",
            query=query,
            output=("g", "m"),
            ratios=(RatioColumn("m", "__num", "__den"),),
        )
        result = plan.execute(catalog).sort_by(["g"])
        assert result.schema.names == ["g", "m"]
        assert result.column("m").tolist() == [1.5, 3.0]

    def test_zero_denominator_gives_nan(self, catalog):
        query = make_query(
            [
                Projection(Col("g"), "g"),
                Aggregate("sum", col("v"), "__num"),
                Aggregate("sum", col("v") * 0, "__den"),
            ]
        )
        plan = RewrittenPlan(
            strategy="test",
            query=query,
            output=("g", "m"),
            ratios=(RatioColumn("m", "__num", "__den"),),
        )
        result = plan.execute(catalog)
        assert np.isnan(result.column("m")).all()
