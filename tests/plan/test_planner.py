"""Lowering: plans execute value-identically to the serial engine."""

import pytest

from repro.core import Congress, build_sample
from repro.engine import Catalog, execute, parse_query
from repro.plan import (
    Filter,
    GroupBy,
    Limit,
    Project,
    ScaleUp,
    Scan,
    Sort,
    execute_plan,
    lower_query,
    lower_rewritten,
    optimize,
    walk,
)
from repro.rewrite import ALL_STRATEGIES

QUERIES = [
    "select a, b, q from rel",
    "select a, q * 2 + 1 as d from rel where q > 3",
    "select a, sum(q) s from rel group by a",
    "select a, b, sum(q) s, count(*) c, avg(q) m from rel "
    "group by a, b order by a, b",
    "select sum(q) s from rel",
    "select a, sum(q) s from rel where id < 6 group by a "
    "having s > 1 order by a limit 3",
    "select a, min(q) lo, max(q) hi from rel group by a order by a",
    # Nested FROM subquery -- the Nested-integrated shape.
    "select a, sum(d) t from "
    "(select a, q * 2 as d from rel where q > 2) group by a order by a",
]


class TestLowerQuery:
    @pytest.mark.parametrize("sql", QUERIES)
    def test_matches_serial_executor(self, catalog, sql):
        query = parse_query(sql)
        plan = lower_query(query, catalog)
        assert execute_plan(plan, catalog) == execute(query, catalog)

    @pytest.mark.parametrize("sql", QUERIES)
    def test_optimized_plan_matches_too(self, catalog, sql):
        query = parse_query(sql)
        plan = optimize(lower_query(query, catalog))
        assert execute_plan(plan, catalog) == execute(query, catalog)

    def test_scan_hint_stamped_from_catalog(self, catalog):
        plan = lower_query(parse_query("select a from rel"), catalog)
        scans = [n for __, n in walk(plan) if isinstance(n, Scan)]
        assert scans[0].table_columns == ("a", "b", "q", "id")

    def test_scan_hint_absent_without_catalog(self):
        plan = lower_query(parse_query("select a from rel"))
        scans = [n for __, n in walk(plan) if isinstance(n, Scan)]
        assert scans[0].table_columns is None

    def test_clause_order_mirrors_executor(self, catalog):
        query = parse_query(
            "select a, sum(q) s from rel where id < 6 group by a "
            "having s > 1 order by a limit 3"
        )
        plan = lower_query(query, catalog)
        kinds = [type(n).__name__ for __, n in walk(plan)]
        assert kinds == [
            "Limit", "Sort", "Filter", "Project", "GroupBy", "Filter", "Scan"
        ]

    def test_plain_select_is_compute_project(self, catalog):
        plan = lower_query(parse_query("select q * 2 as d from rel"), catalog)
        assert isinstance(plan, Project) and plan.mode == "compute"

    def test_aggregate_shaping_is_view_project(self, catalog):
        plan = lower_query(
            parse_query("select a, sum(q) s from rel group by a"), catalog
        )
        assert isinstance(plan, Project) and plan.mode == "view"
        assert isinstance(plan.child, GroupBy)


@pytest.fixture
def installed(skewed_table, rng):
    catalog = Catalog()
    catalog.register("rel", skewed_table)
    sample = build_sample(Congress(), skewed_table, ["a", "b"], 1000, rng=rng)
    return catalog, sample


class TestLowerRewritten:
    @pytest.mark.parametrize("cls", ALL_STRATEGIES, ids=lambda c: c.name)
    def test_always_carries_scale_up(self, installed, cls):
        catalog, sample = installed
        strategy = cls()
        synopsis = strategy.install(sample, "rel", catalog, replace=True)
        query = parse_query("select a, sum(q) s from rel group by a")
        rewritten = strategy.plan(query, synopsis)
        logical = lower_rewritten(rewritten, catalog)
        kinds = {n.kind for __, n in walk(logical)}
        assert "scale_up" in kinds

    @pytest.mark.parametrize("cls", ALL_STRATEGIES, ids=lambda c: c.name)
    def test_naive_and_optimized_agree(self, installed, cls):
        catalog, sample = installed
        strategy = cls()
        synopsis = strategy.install(sample, "rel", catalog, replace=True)
        query = parse_query(
            "select a, sum(q) s, avg(q) m from rel "
            "where id < 10000 group by a order by a"
        )
        rewritten = strategy.plan(query, synopsis)
        naive = execute_plan(lower_rewritten(rewritten, catalog), catalog)
        optimized = execute_plan(
            optimize(lower_rewritten(rewritten, catalog)), catalog
        )
        assert naive == optimized

    @pytest.mark.parametrize("cls", ALL_STRATEGIES, ids=lambda c: c.name)
    def test_execute_goes_through_the_plan(self, installed, cls):
        catalog, sample = installed
        strategy = cls()
        synopsis = strategy.install(sample, "rel", catalog, replace=True)
        query = parse_query("select a, sum(q) s from rel group by a order by a")
        rewritten = strategy.plan(query, synopsis)
        via_spec = rewritten.execute(catalog)
        via_plan = execute_plan(
            optimize(rewritten.to_logical(catalog)), catalog
        )
        assert via_spec == via_plan

    def test_user_clauses_sit_above_scale_up(self, installed):
        catalog, sample = installed
        strategy = ALL_STRATEGIES[0]()
        synopsis = strategy.install(sample, "rel", catalog, replace=True)
        query = parse_query(
            "select a, sum(q) s from rel group by a "
            "having s > 0 order by a limit 2"
        )
        logical = lower_rewritten(strategy.plan(query, synopsis), catalog)
        assert isinstance(logical, Limit)
        assert isinstance(logical.child, Sort)
        assert isinstance(logical.child.child, Filter)  # HAVING
        assert isinstance(logical.child.child.child, ScaleUp)


class TestGroupCountScan:
    def test_matches_direct_group_counts(self, skewed_table, rng):
        """Synopsis construction's planner-based counting scan must agree
        with the sampling layer's direct ``group_counts`` -- same keys,
        same counts -- or allocations (and therefore samples) drift."""
        from repro.aqua import AquaSystem
        from repro.sampling import group_counts

        system = AquaSystem(space_budget=500, rng=rng)
        system.register_table("rel", skewed_table)
        via_plan = system._group_count_scan("rel", ("a", "b"))
        direct = group_counts(skewed_table, ("a", "b"))
        assert via_plan == direct
        assert list(via_plan) == sorted(direct)  # sorted-key contract
