"""Optimizer rules: unit behavior, fixpoint, and semantics preservation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    Aggregate,
    And,
    Between,
    BinaryOp,
    Catalog,
    Col,
    Comparison,
    InList,
    Lit,
    Not,
    Or,
    Projection,
    Query,
    TruePredicate,
    execute,
    parse_query,
)
from repro.plan import (
    DEFAULT_RULES,
    Filter,
    GroupBy,
    Join,
    Limit,
    Project,
    Scan,
    execute_plan,
    fold_constants,
    fuse_filters,
    lower_query,
    optimize,
    prune_projections,
    push_down_predicates,
    transform,
    walk,
)

COLS = ("a", "b", "q", "id")
SCAN = Scan("rel", table_columns=COLS)
Q_POS = Comparison(">", Col("q"), Lit(1.0))
ID_SMALL = Comparison("<", Col("id"), Lit(5))


def _scans(plan):
    return [n for __, n in walk(plan) if isinstance(n, Scan)]


class TestFoldConstants:
    def test_folds_arithmetic_in_compute_projects(self):
        item = Projection(BinaryOp("*", Col("q"), BinaryOp("+", Lit(1), Lit(1))), "d")
        plan = fold_constants(Project(SCAN, (item,), mode="compute"))
        assert plan.items[0].expr == BinaryOp("*", Col("q"), Lit(2))

    def test_folds_aggregate_inputs(self):
        agg = Aggregate("sum", BinaryOp("+", Lit(2), Lit(3)), "s")
        plan = fold_constants(GroupBy(SCAN, ("a",), (agg,)))
        assert plan.aggregates[0].expr == Lit(5)

    def test_drops_always_true_filters(self):
        true_cmp = Comparison("<", Lit(1), Lit(2))
        assert fold_constants(Filter(SCAN, true_cmp)) == SCAN
        assert fold_constants(Filter(SCAN, TruePredicate())) == SCAN

    def test_clears_always_true_scan_predicates(self):
        scan = Scan("rel", predicate=Comparison("=", Lit(3), Lit(3)))
        assert fold_constants(scan).predicate is None

    def test_false_comparison_becomes_canonical_false(self):
        plan = fold_constants(Filter(SCAN, Comparison(">", Lit(1), Lit(2))))
        assert plan == Filter(SCAN, Not(TruePredicate()))

    def test_and_or_simplification(self):
        true_cmp = Comparison("=", Lit(1), Lit(1))
        plan = fold_constants(Filter(SCAN, And(true_cmp, Q_POS)))
        assert plan.predicate == Q_POS
        plan = fold_constants(Filter(SCAN, Or(Not(true_cmp), Q_POS)))
        assert plan.predicate == Q_POS

    def test_double_negation_removed(self):
        plan = fold_constants(Filter(SCAN, Not(Not(Q_POS))))
        assert plan.predicate == Q_POS

    def test_never_folds_division_by_zero(self):
        expr = BinaryOp("/", Lit(1), Lit(0))
        item = Projection(expr, "d")
        plan = fold_constants(Project(SCAN, (item,), mode="compute"))
        assert plan.items[0].expr == expr

    def test_never_folds_mixed_type_comparisons(self):
        cmp = Comparison("=", Lit(1), Lit("1"))
        assert fold_constants(Filter(SCAN, cmp)).predicate == cmp

    def test_folds_inside_between(self):
        pred = Between(Col("id"), Lit(1), BinaryOp("+", Lit(2), Lit(2)))
        plan = fold_constants(Filter(SCAN, pred))
        assert plan.predicate == Between(Col("id"), Lit(1), Lit(4))


class TestFuseFilters:
    def test_stacks_collapse_to_one_conjunction(self):
        plan = fuse_filters(Filter(Filter(SCAN, Q_POS), ID_SMALL))
        assert plan == Filter(SCAN, And(Q_POS, ID_SMALL))

    def test_triple_stack(self):
        third = InList(Col("a"), ("x",))
        plan = Filter(Filter(Filter(SCAN, Q_POS), ID_SMALL), third)
        fused = optimize(plan, rules=(fuse_filters,))
        assert isinstance(fused, Filter) and fused.child == SCAN

    def test_single_filter_untouched(self):
        plan = Filter(SCAN, Q_POS)
        assert fuse_filters(plan) == plan


class TestPushDownPredicates:
    def test_filter_merges_into_scan(self):
        plan = push_down_predicates(Filter(SCAN, Q_POS))
        assert plan == Scan("rel", predicate=Q_POS, table_columns=COLS)

    def test_second_filter_conjoins(self):
        scan = Scan("rel", predicate=Q_POS, table_columns=COLS)
        plan = push_down_predicates(Filter(scan, ID_SMALL))
        assert plan.predicate == And(Q_POS, ID_SMALL)

    def test_join_routes_conjuncts_by_side(self):
        left = Scan("l", table_columns=("k", "v"))
        right = Scan("r", table_columns=("k", "w"))
        join = Join(left, right, ("k",), ("k",))
        pred = And(Comparison(">", Col("v"), Lit(1)),
                   Comparison("<", Col("w"), Lit(2)))
        plan = push_down_predicates(Filter(join, pred))
        # Both conjuncts pushed through (and then into the scans).
        assert isinstance(plan, Join)
        assert plan.left.predicate == Comparison(">", Col("v"), Lit(1))
        assert plan.right.predicate == Comparison("<", Col("w"), Lit(2))

    def test_cross_side_conjunct_stays_above(self):
        left = Scan("l", table_columns=("k", "v"))
        right = Scan("r", table_columns=("k", "w"))
        join = Join(left, right, ("k",), ("k",))
        cross = Comparison("=", Col("v"), Col("w"))
        plan = push_down_predicates(Filter(join, cross))
        assert isinstance(plan, Filter) and plan.predicate == cross

    def test_suffixed_collision_column_not_pushed_right(self):
        # Right "v" is renamed "v_r" in the join output, so a filter on
        # "v_r" cannot be routed to the right input (where no such column
        # exists) and a filter on "v" refers to the LEFT column only.
        left = Scan("l", table_columns=("k", "v"))
        right = Scan("r", table_columns=("k", "v"))
        join = Join(left, right, ("k",), ("k",))
        on_suffixed = Comparison(">", Col("v_r"), Lit(0))
        plan = push_down_predicates(Filter(join, on_suffixed))
        assert isinstance(plan, Filter)  # stayed above
        on_left = Comparison(">", Col("v"), Lit(0))
        plan = push_down_predicates(Filter(join, on_left))
        assert isinstance(plan, Join)
        assert plan.left.predicate == on_left
        assert plan.right.predicate is None

    def test_no_hint_is_a_noop(self):
        join = Join(Scan("l"), Scan("r"), ("k",), ("k",))
        plan = Filter(join, Comparison(">", Col("v"), Lit(1)))
        assert push_down_predicates(plan) == plan


class TestPruneProjections:
    def test_scan_restricted_to_referenced_columns(self):
        plan = GroupBy(SCAN, ("a",), (Aggregate("sum", Col("q"), "s"),))
        pruned = prune_projections(plan)
        assert _scans(pruned)[0].columns == ("a", "q")

    def test_kept_in_table_order(self):
        plan = GroupBy(SCAN, ("q",), (Aggregate("sum", Col("a"), "s"),))
        assert _scans(prune_projections(plan))[0].columns == ("a", "q")

    def test_predicate_columns_survive_pruning(self):
        scan = Scan("rel", predicate=ID_SMALL, table_columns=COLS)
        plan = GroupBy(scan, ("a",), (Aggregate("sum", Col("q"), "s"),))
        assert _scans(prune_projections(plan))[0].columns == ("a", "q", "id")

    def test_count_star_keeps_one_column(self):
        plan = GroupBy(SCAN, (), (Aggregate.count_star("c"),))
        assert _scans(prune_projections(plan))[0].columns == ("a",)

    def test_no_pruning_when_everything_used(self):
        items = tuple(Projection(Col(c), c) for c in COLS)
        plan = Project(SCAN, items, mode="view")
        assert prune_projections(plan) == plan

    def test_no_hint_is_a_noop(self):
        bare = Scan("rel")
        plan = GroupBy(bare, ("a",), (Aggregate("sum", Col("q"), "s"),))
        assert prune_projections(plan) == plan

    def test_join_prunes_each_side_keeping_keys(self):
        left = Scan("l", table_columns=("k", "v", "junk"))
        right = Scan("r", table_columns=("k", "w", "junk2"))
        join = Join(left, right, ("k",), ("k",))
        plan = Project(
            join,
            (Projection(Col("v"), "v"), Projection(Col("w"), "w")),
            mode="view",
        )
        pruned = prune_projections(plan)
        assert pruned.child.left.columns == ("k", "v")
        assert pruned.child.right.columns == ("k", "w")


class TestFixpointDriver:
    SQLS = [
        "select a, sum(q) s from rel where id < 6 group by a order by a",
        "select a, b, q from rel where q > 1 and id < 7",
        "select sum(q) s from rel",
    ]

    @pytest.mark.parametrize("sql", SQLS)
    def test_optimize_is_idempotent(self, catalog, sql):
        plan = optimize(lower_query(parse_query(sql), catalog))
        assert optimize(plan) == plan

    @pytest.mark.parametrize("rule", DEFAULT_RULES, ids=lambda r: r.__name__)
    @pytest.mark.parametrize("sql", SQLS)
    def test_each_rule_noop_on_optimal_plans(self, catalog, sql, rule):
        plan = optimize(lower_query(parse_query(sql), catalog))
        assert rule(plan) == plan

    def test_max_passes_bounds_runaway_rules(self):
        def grow(plan):
            return Limit(plan, 10)  # never reaches a fixpoint

        result = optimize(SCAN, rules=(grow,), max_passes=3)
        assert len(list(walk(result))) == 4  # 3 Limits + the Scan

    def test_transform_rebuilds_bottom_up(self):
        plan = Filter(Filter(SCAN, Q_POS), ID_SMALL)
        seen = []
        result = transform(plan, lambda n: seen.append(n.kind) or n)
        assert result == plan
        assert seen == ["scan", "filter", "filter"]


# -- randomized semantics preservation ---------------------------------------

_comparisons = st.sampled_from(
    [
        Comparison(">", Col("q"), Lit(2.0)),
        Comparison("<=", Col("q"), Lit(6.5)),
        Comparison("<", Col("id"), Lit(6)),
        Comparison("=", Col("a"), Lit("x")),
        Comparison("!=", Col("b"), Lit("p")),
        Between(Col("id"), Lit(2), Lit(7)),
        InList(Col("a"), ("x",)),
        Comparison("<", Lit(1), Lit(2)),  # constant-foldable
        Comparison(">", Lit(1), Lit(2)),  # constant-false
    ]
)


@st.composite
def _predicates(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        return draw(_comparisons)
    combiner = draw(st.sampled_from(["and", "or", "not"]))
    if combiner == "not":
        return Not(draw(_predicates(depth=depth - 1)))
    left = draw(_predicates(depth=depth - 1))
    right = draw(_predicates(depth=depth - 1))
    return And(left, right) if combiner == "and" else Or(left, right)


_AGG_EXPRS = [
    Col("q"),
    BinaryOp("*", Col("q"), BinaryOp("+", Lit(1), Lit(1))),
    Lit(1),
]


@st.composite
def _queries(draw):
    group_by = tuple(
        draw(st.sampled_from([(), ("a",), ("b",), ("a", "b")]))
    )
    where = draw(st.none() | _predicates())
    aggregate = draw(st.booleans()) or bool(group_by)
    if aggregate:
        select = tuple(Projection(Col(c), c) for c in group_by)
        funcs = draw(
            st.lists(
                st.sampled_from(["sum", "count", "avg", "min", "max"]),
                min_size=1,
                max_size=3,
                unique=True,
            )
        )
        select += tuple(
            Aggregate(func, draw(st.sampled_from(_AGG_EXPRS)), f"{func}_v")
            for func in funcs
        )
        order_by = group_by
    else:
        select = (
            Projection(Col("a"), "a"),
            Projection(BinaryOp("+", Col("q"), Lit(0.5)), "d"),
        )
        order_by = ()
    limit = draw(st.none() | st.integers(min_value=0, max_value=5))
    return Query(
        select=select,
        from_item="rel",
        where=where,
        group_by=group_by,
        order_by=order_by,
        limit=limit,
    )


def _tables_equal(left, right):
    """Table equality with NaN == NaN (an empty-input avg yields NaN on
    both the engine and the plan path; ``Table.__eq__`` would call them
    different)."""
    import numpy as np

    if left.schema != right.schema or left.num_rows != right.num_rows:
        return False
    for name in left.schema.names:
        a, b = left.column(name), right.column(name)
        if a.dtype.kind == "f" and b.dtype.kind == "f":
            if not np.array_equal(a, b, equal_nan=True):
                return False
        elif not np.array_equal(a, b):
            return False
    return True


class TestRandomizedSemantics:
    @given(query=_queries())
    @settings(max_examples=120, deadline=None)
    def test_optimized_plan_matches_engine(self, query):
        import numpy as np

        from repro.engine import Column, ColumnType, Schema, Table

        catalog = Catalog()
        catalog.register(
            "rel",
            Table.from_columns(
                Schema(
                    [
                        Column("a", ColumnType.STR, "grouping"),
                        Column("b", ColumnType.STR, "grouping"),
                        Column("q", ColumnType.FLOAT, "aggregate"),
                        Column("id", ColumnType.INT, "key"),
                    ]
                ),
                a=["x", "x", "x", "x", "y", "y", "y", "y"],
                b=["p", "p", "q", "q", "p", "p", "q", "q"],
                q=[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0],
                id=np.arange(1, 9),
            ),
        )
        naive = lower_query(query, catalog)
        optimized = optimize(naive)
        expected = execute(query, catalog)
        assert _tables_equal(execute_plan(naive, catalog), expected)
        assert _tables_equal(execute_plan(optimized, catalog), expected)
