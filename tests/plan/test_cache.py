"""PlanCache: LRU mechanics, stats, metrics, and AquaSystem integration."""

import pytest

from repro.aqua import AquaSystem
from repro.obs import MetricsRegistry, Telemetry
from repro.plan import PlanCache, Scan

A, B, C = Scan("a"), Scan("b"), Scan("c")


class TestPlanCacheUnit:
    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            PlanCache(capacity=0)

    def test_miss_then_hit(self):
        cache = PlanCache(capacity=4)
        assert cache.get(("t", 1)) is None
        cache.put(("t", 1), A)
        assert cache.get(("t", 1)) is A
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = PlanCache(capacity=2)
        cache.put("a", A)
        cache.put("b", B)
        cache.get("a")  # promote a; b is now least-recent
        cache.put("c", C)
        assert cache.get("b") is None
        assert cache.get("a") is A
        assert cache.get("c") is C
        assert cache.stats.evictions == 1

    def test_put_same_key_replaces_without_evicting(self):
        cache = PlanCache(capacity=1)
        cache.put("k", A)
        cache.put("k", B)
        assert cache.get("k") is B
        assert cache.stats.evictions == 0

    def test_invalidate_all(self):
        cache = PlanCache()
        cache.put(("t", 1), A)
        cache.put(("u", 1), B)
        assert cache.invalidate() == 2
        assert len(cache) == 0

    def test_invalidate_by_table_prefix(self):
        cache = PlanCache()
        cache.put(("t", 1, "integrated", "sql1"), A)
        cache.put(("t", 2, "integrated", "sql2"), B)
        cache.put(("u", 1, "integrated", "sql1"), C)
        assert cache.invalidate("t") == 2
        assert len(cache) == 1
        assert cache.invalidate("missing") == 0

    def test_describe(self):
        cache = PlanCache(capacity=8)
        cache.put("k", A)
        cache.get("k")
        text = cache.stats.describe()
        assert "1/8 entries" in text
        assert "1 hits / 0 misses" in text

    def test_metrics_mirroring(self):
        registry = MetricsRegistry(enabled=True)
        cache = PlanCache(capacity=1, metrics=registry)
        cache.get("k")  # miss
        cache.put("k", A)
        cache.get("k")  # hit
        cache.put("other", B)  # evicts k
        assert registry.get("aqua_plan_cache_hits_total").value() == 1
        assert registry.get("aqua_plan_cache_misses_total").value() == 1
        assert registry.get("aqua_plan_cache_evictions_total").value() == 1

    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        cache = PlanCache(metrics=registry)
        cache.get("k")
        assert registry.snapshot() == {}


SQL = "select a, sum(q) s from rel group by a order by a"


class TestSystemIntegration:
    @pytest.fixture
    def system(self, skewed_table, rng):
        aqua = AquaSystem(
            space_budget=500, rng=rng, telemetry=Telemetry.enabled()
        )
        # The answer cache would serve repeats before planning; turn it
        # off so repeated queries actually exercise the plan cache.
        aqua.set_cache(False)
        aqua.register_table("rel", skewed_table)
        return aqua

    def test_default_system_has_a_plan_cache(self, system):
        assert isinstance(system.plan_cache, PlanCache)

    def test_second_answer_hits(self, system):
        system.answer(SQL)
        before = system.plan_cache.stats
        system.answer(SQL)
        after = system.plan_cache.stats
        assert after.hits == before.hits + 1
        assert after.misses == before.misses

    def test_hit_recorded_on_plan_optimize_span(self, system):
        system.answer(SQL)
        trace = system.answer(SQL).trace
        assert trace.stage("plan_optimize").attributes["cache"] == "hit"

    def test_different_queries_miss(self, system):
        system.answer(SQL)
        misses = system.plan_cache.stats.misses
        system.answer("select b, sum(q) s from rel group by b")
        assert system.plan_cache.stats.misses == misses + 1

    def test_version_keying_invalidates_on_refresh(self, system):
        system.answer(SQL)
        system.refresh_synopsis("rel")
        misses = system.plan_cache.stats.misses
        system.answer(SQL)  # same SQL, new data version -> new key
        assert system.plan_cache.stats.misses == misses + 1

    def test_plan_cache_false_disables(self, skewed_table, rng):
        aqua = AquaSystem(space_budget=500, rng=rng, plan_cache=False)
        aqua.register_table("rel", skewed_table)
        assert aqua.plan_cache is None
        aqua.answer(SQL)  # still answers, just never caches
        aqua.answer(SQL)

    def test_plan_cache_int_sets_capacity(self, skewed_table, rng):
        aqua = AquaSystem(space_budget=500, rng=rng, plan_cache=7)
        assert aqua.plan_cache.capacity == 7

    def test_invalid_plan_cache_rejected(self):
        from repro.aqua import AquaError

        with pytest.raises(AquaError):
            AquaSystem(space_budget=100, plan_cache="big")

    def test_cached_plan_answers_identically(self, system):
        first = system.answer(SQL).result
        second = system.answer(SQL).result  # via cached plan
        assert first == second

    def test_metrics_exported(self, system):
        system.answer(SQL)
        system.answer(SQL)
        text = system.metrics.to_prometheus()
        assert "aqua_plan_cache_hits_total" in text
        assert "aqua_plan_cache_misses_total" in text
