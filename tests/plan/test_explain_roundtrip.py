"""explain() round-trips the optimized operator tree for every query class.

The acceptance bar: for Qg0 / Qg2 / Qg3 / Qmix over the paper's lineitem
testbed, the tree ``explain()`` renders is exactly the tree the answer
path plans -- one line per :func:`repro.plan.walk` node, indented by tree
depth -- and ``explain(analyze=True)`` annotates every operator with the
rows it actually produced.
"""

import numpy as np
import pytest

from repro.aqua import AquaSystem
from repro.engine import parse_query
from repro.plan import lower_rewritten, optimize, render_plan, walk
from repro.synthetic.queries import qg0, qg2, qg3
from repro.synthetic.tpcd import LineitemConfig, generate_lineitem
from repro.verify.testbed import qmix

QUERY_CLASSES = {
    "Qg0": qg0(100, 600),
    "Qg2": qg2(),
    "Qg3": qg3(),
    "Qmix": qmix(),
}


@pytest.fixture(scope="module")
def system():
    table = generate_lineitem(
        LineitemConfig(table_size=3000, num_groups=27, seed=7)
    )
    aqua = AquaSystem(space_budget=600, rng=np.random.default_rng(7))
    aqua.register_table("lineitem", table)
    return aqua


def _plan_section(text: str, marker: str = "-- plan:"):
    lines = text.splitlines()
    start = lines.index(marker) + 1
    section = []
    for line in lines[start:]:
        if line.startswith("--"):
            break
        section.append(line)
    return section


@pytest.mark.parametrize("name", sorted(QUERY_CLASSES))
class TestExplainRoundTrip:
    def test_rendered_tree_matches_planned_tree(self, system, name):
        qc = QUERY_CLASSES[name]
        text = system.explain(qc.sql)
        rendered = _plan_section(text)

        # Rebuild the logical plan exactly as the answer path does.
        query = parse_query(qc.sql)
        installed = system.synopsis("lineitem").installed
        rewritten = system._rewrite.plan(query, installed)
        logical = optimize(lower_rewritten(rewritten, system.catalog))

        assert rendered == render_plan(
            logical, catalog=system.catalog
        ).splitlines()

        # One line per node, indentation = tree depth: the text and the
        # tree are interconvertible.
        nodes = list(walk(logical))
        assert len(rendered) == len(nodes)
        for line, (path, __) in zip(rendered, nodes):
            indent = len(line) - len(line.lstrip(" "))
            assert indent == 2 * len(path)

    def test_header_names_strategy_and_provenance(self, system, name):
        text = system.explain(QUERY_CLASSES[name].sql)
        assert "-- rewrite strategy:" in text
        assert "-- synopsis tables:" in text
        assert "-- sample:" in text
        assert "~rows=" in text  # estimated cardinalities on the tree

    def test_analyze_annotates_every_operator(self, system, name):
        text = system.explain(QUERY_CLASSES[name].sql, analyze=True)
        actual = _plan_section(text, marker="-- plan (actual):")
        assert actual  # the section exists and is non-empty
        for line in actual:
            assert " rows=" in line and "time=" in line
        assert "-- analyze:" in text
