"""Cost model estimates and the cost-gated optimizer regression.

The load-bearing assertion here is the Qg0 regression: with a cost model
wired in, :func:`repro.plan.optimize` must never apply a rule whose
output the model predicts to be slower than the plan it replaces -- the
defect ``BENCH_planner.json`` once recorded as a 0.93x "speedup" on the
paper's own single-group query shape.
"""

import numpy as np
import pytest

from repro.engine import (
    Catalog,
    Col,
    Column,
    ColumnType,
    Comparison,
    Lit,
    Schema,
    Table,
    execute,
    parse_query,
)
from repro.plan import (
    CostModel,
    DEFAULT_RULES,
    Filter,
    GroupBy,
    Scan,
    Sort,
    TableStats,
    execute_plan,
    lower_query,
    optimize,
    plan_cost,
    plan_rows,
    transform,
)
from repro.synthetic.zipf import zipf_choice, zipf_sizes

COLS = ("a", "b", "q", "id")
SCAN = Scan("rel", table_columns=COLS)
Q_POS = Comparison(">", Col("q"), Lit(1.0))


def _zipf_catalog(n=5000, groups=12, seed=7):
    """A seeded Zipf table matching the benchmark's Qg0 shape."""
    rng = np.random.default_rng(seed)
    sizes = zipf_sizes(n, groups, z=1.0)
    schema = Schema(
        [
            Column("a", ColumnType.STR, "grouping"),
            Column("v", ColumnType.FLOAT, "aggregate"),
            Column("k", ColumnType.INT, "key"),
        ]
    )
    table = Table(
        schema,
        {
            "a": np.repeat([f"g{i:02d}" for i in range(groups)], sizes),
            "v": zipf_choice(
                np.linspace(1.0, 1000.0, 100), z=0.86, size=n, rng=rng
            ),
            "k": np.arange(n),
        },
    )
    catalog = Catalog()
    catalog.register("zipf", table)
    return catalog


QG0 = "SELECT SUM(v) AS s FROM zipf WHERE k >= 1000 AND k < 2000"
QG2 = "SELECT a, SUM(v) AS s FROM zipf GROUP BY a"


class TestRowEstimates:
    def test_scan_rows_come_from_stats(self):
        model = CostModel({"rel": TableStats(rows=500)})
        assert model.rows(SCAN) == 500.0

    def test_unknown_relation_uses_conservative_default(self):
        model = CostModel()
        assert model.rows(Scan("mystery")) == 100_000.0

    def test_predicate_shrinks_scan_rows(self):
        model = CostModel({"rel": TableStats(rows=900)})
        filtered = Scan("rel", predicate=Q_POS)
        assert model.rows(filtered) == pytest.approx(300.0)
        assert model.rows(filtered) < model.rows(SCAN)

    def test_per_table_selectivity_overrides_heuristic(self):
        model = CostModel({"rel": TableStats(rows=1000, selectivity=0.01)})
        assert model.rows(Scan("rel", predicate=Q_POS)) == pytest.approx(10.0)

    def test_selectivity_hook_wins_over_table_stats(self):
        model = CostModel(
            {"rel": TableStats(rows=1000, selectivity=0.5)},
            selectivity=lambda table, predicate: 0.1,
        )
        assert model.rows(Scan("rel", predicate=Q_POS)) == pytest.approx(100.0)

    def test_group_by_collapses_rows(self):
        model = CostModel({"rel": TableStats(rows=10_000)})
        grouped = GroupBy(SCAN, ("a",), ())
        assert model.rows(grouped) == pytest.approx(100.0)

    def test_rows_never_below_one(self):
        model = CostModel({"rel": TableStats(rows=0)})
        assert model.rows(SCAN) == 1.0

    def test_plan_rows_against_live_catalog(self):
        catalog = _zipf_catalog()
        plan = lower_query(parse_query(QG2), catalog)
        assert plan_rows(plan, catalog) >= 1.0


class TestCostOrdering:
    def test_smaller_relation_costs_less(self):
        small = CostModel({"rel": TableStats(rows=100)})
        large = CostModel({"rel": TableStats(rows=100_000)})
        plan = GroupBy(Filter(SCAN, Q_POS), ("a",), ())
        assert small.cost(plan) < large.cost(plan)

    def test_redundant_sort_costs_extra(self):
        model = CostModel({"rel": TableStats(rows=5000)})
        assert model.cost(Sort(SCAN, ("a",))) > model.cost(SCAN)

    def test_plan_cost_matches_from_catalog(self):
        catalog = _zipf_catalog()
        plan = lower_query(parse_query(QG2), catalog)
        model = CostModel.from_catalog(catalog)
        assert plan_cost(plan, catalog) == pytest.approx(model.cost(plan))


class TestCostGatedOptimize:
    """The PR's planner regression: no rule predicted to slow a plan is
    ever applied, and the gated output is never predicted slower than the
    input."""

    def test_slowing_rule_never_applied(self):
        catalog = _zipf_catalog()
        model = CostModel.from_catalog(catalog)
        plan = lower_query(parse_query(QG0), catalog)

        def pessimize(p):
            # A semantics-preserving rewrite the model correctly predicts
            # to be slower: sort the whole base scan for no reason.
            def fn(node):
                if isinstance(node, Scan):
                    return Sort(node, (node.table_columns[0],))
                return node

            return transform(p, fn)

        assert model.cost(pessimize(plan)) > model.cost(plan)
        # Ungated, the rule fires; gated, it must be rejected.
        assert optimize(plan, rules=(pessimize,)) != plan
        assert optimize(plan, rules=(pessimize,), cost_model=model) == plan

    @pytest.mark.parametrize("sql", [QG0, QG2])
    def test_gated_output_never_predicted_slower(self, sql):
        catalog = _zipf_catalog()
        model = CostModel.from_catalog(catalog)
        plan = lower_query(parse_query(sql), catalog)
        optimized = optimize(plan, cost_model=model)
        assert model.cost(optimized) <= model.cost(plan)

    def test_qg0_model_speedup_at_least_one(self):
        """Micro-benchmark shape of the BENCH_planner Qg0 assertion: on
        the seeded Zipf table, predicted speedup of the gated optimizer
        over the raw lowered plan is >= 1.0x."""
        catalog = _zipf_catalog()
        model = CostModel.from_catalog(catalog)
        plan = lower_query(parse_query(QG0), catalog)
        optimized = optimize(plan, cost_model=model)
        speedup = model.cost(plan) / model.cost(optimized)
        assert speedup >= 1.0

    @pytest.mark.parametrize("sql", [QG0, QG2])
    def test_gated_plans_stay_correct(self, sql):
        catalog = _zipf_catalog()
        model = CostModel.from_catalog(catalog)
        query = parse_query(sql)
        plan = lower_query(query, catalog)
        gated = execute_plan(optimize(plan, cost_model=model), catalog)
        ungated = execute_plan(optimize(plan), catalog)
        exact = execute(query, catalog)
        for alias in ("s",):
            np.testing.assert_allclose(
                gated.column(alias), exact.column(alias)
            )
            np.testing.assert_allclose(
                ungated.column(alias), exact.column(alias)
            )

    def test_default_rules_unchanged_without_model(self):
        catalog = _zipf_catalog()
        plan = lower_query(parse_query(QG2), catalog)
        assert optimize(plan) == optimize(plan, rules=DEFAULT_RULES)
