"""Plan IR structure: validation, traversal, output schema, rendering."""

import pytest

from repro.engine import Aggregate, Col, Comparison, Lit, Projection
from repro.plan import (
    Filter,
    GroupBy,
    Join,
    Limit,
    PlanError,
    Project,
    Ratio,
    ScaleUp,
    Scan,
    Sort,
    output_columns,
    render_plan,
    walk,
)

PRED = Comparison(">", Col("q"), Lit(1.0))


def _tree():
    """Scan -> Filter -> GroupBy -> Project, the canonical shape."""
    scan = Scan("rel", table_columns=("a", "b", "q", "id"))
    grouped = GroupBy(
        Filter(scan, PRED), ("a",), (Aggregate("sum", Col("q"), "s"),)
    )
    return Project(
        grouped,
        (Projection(Col("a"), "a"), Projection(Col("s"), "s")),
        mode="view",
    )


class TestValidation:
    def test_project_rejects_bad_mode(self):
        with pytest.raises(PlanError, match="view or compute"):
            Project(Scan("rel"), (Projection(Col("a"), "a"),), mode="lazy")

    def test_project_rejects_empty_items(self):
        with pytest.raises(PlanError, match="at least one item"):
            Project(Scan("rel"), (), mode="view")

    def test_view_project_rejects_expressions(self):
        item = Projection(Lit(1), "one")
        with pytest.raises(PlanError, match="bare columns"):
            Project(Scan("rel"), (item,), mode="view")
        Project(Scan("rel"), (item,), mode="compute")  # compute is fine

    def test_join_rejects_key_mismatch(self):
        with pytest.raises(PlanError, match="join keys"):
            Join(Scan("l"), Scan("r"), ("a", "b"), ("a",))
        with pytest.raises(PlanError, match="join keys"):
            Join(Scan("l"), Scan("r"), (), ())

    def test_group_by_needs_keys_or_aggregates(self):
        with pytest.raises(PlanError, match="keys or aggregates"):
            GroupBy(Scan("rel"), (), ())

    def test_scale_up_needs_output(self):
        with pytest.raises(PlanError, match="output columns"):
            ScaleUp(Scan("rel"), (), ())

    def test_sort_needs_keys(self):
        with pytest.raises(PlanError, match="at least one key"):
            Sort(Scan("rel"), ())

    def test_limit_rejects_negative(self):
        with pytest.raises(PlanError, match=">= 0"):
            Limit(Scan("rel"), -1)
        assert Limit(Scan("rel"), 0).count == 0

    def test_leaf_takes_no_children(self):
        with pytest.raises(PlanError, match="no children"):
            Scan("rel").with_children((Scan("other"),))


class TestStructure:
    def test_plans_are_hashable_and_comparable(self):
        assert _tree() == _tree()
        assert hash(_tree()) == hash(_tree())
        assert _tree() != Limit(_tree(), 5)

    def test_with_children_rebuilds(self):
        tree = _tree()
        other = tree.with_children((Scan("other"),))
        assert other.children == (Scan("other"),)
        assert other.items == tree.items

    def test_walk_yields_parents_before_children(self):
        paths = [path for path, __ in walk(_tree())]
        assert paths == [(), (0,), (0, 0), (0, 0, 0)]

    def test_walk_join_paths_branch(self):
        join = Join(Scan("l"), Filter(Scan("r"), PRED), ("k",), ("k",))
        nodes = dict(walk(join))
        assert nodes[()] is join
        assert nodes[(0,)] == Scan("l")
        assert nodes[(1, 0)] == Scan("r")


class TestOutputColumns:
    def test_scan_uses_hint_or_pruned_columns(self):
        assert output_columns(Scan("rel")) is None
        hinted = Scan("rel", table_columns=("a", "b"))
        assert output_columns(hinted) == ("a", "b")
        assert output_columns(
            Scan("rel", columns=("b",), table_columns=("a", "b"))
        ) == ("b",)

    def test_group_by_emits_keys_then_aliases(self):
        plan = GroupBy(
            Scan("rel", table_columns=("a", "q")),
            ("a",),
            (Aggregate("sum", Col("q"), "s"),),
        )
        assert output_columns(plan) == ("a", "s")

    def test_project_and_scale_up_define_their_output(self):
        assert output_columns(_tree()) == ("a", "s")
        scaled = ScaleUp(_tree(), (Ratio("m", "s", "c"),), ("a", "m"))
        assert output_columns(scaled) == ("a", "m")

    def test_join_drops_right_keys_and_suffixes_collisions(self):
        left = Scan("l", table_columns=("k", "v"))
        right = Scan("r", table_columns=("k", "v", "w"))
        plan = Join(left, right, ("k",), ("k",))
        assert output_columns(plan) == ("k", "v", "v_r", "w")

    def test_join_unknown_side_is_unknown(self):
        plan = Join(Scan("l"), Scan("r", table_columns=("k",)), ("k",), ("k",))
        assert output_columns(plan) is None


class TestRendering:
    def test_one_line_per_node_with_indentation(self):
        tree = _tree()
        lines = render_plan(tree).splitlines()
        nodes = list(walk(tree))
        assert len(lines) == len(nodes)
        for line, (path, __) in zip(lines, nodes):
            indent = len(line) - len(line.lstrip(" "))
            assert indent == 2 * len(path)

    def test_describes_each_operator(self):
        text = render_plan(_tree())
        assert "Project[view] a, s" in text
        assert "GroupBy [a] sum(q) AS s" in text
        assert "Filter q > 1.0" in text
        assert "Scan rel" in text

    def test_estimates_with_catalog(self, catalog):
        text = render_plan(_tree(), catalog=catalog)
        assert "~rows=" in text
        # The Scan line carries the full table cardinality.
        scan_line = [l for l in text.splitlines() if "Scan rel" in l][0]
        assert "~rows=8" in scan_line

    def test_estimate_unknown_table_omitted(self, catalog):
        text = render_plan(Scan("nope"), catalog=catalog)
        assert "~rows" not in text

    def test_actuals_annotation(self):
        tree = _tree()
        actuals = {path: (7, 0.002) for path, __ in walk(tree)}
        text = render_plan(tree, actuals=actuals)
        for line in text.splitlines():
            assert "rows=7 time=2.00ms" in line

    def test_scan_renders_pushed_state(self):
        scan = Scan("rel", predicate=PRED, columns=("a", "q"))
        assert render_plan(scan) == "Scan rel WHERE q > 1.0 cols=[a, q]"

    def test_scale_up_renders_ratios(self):
        scaled = ScaleUp(_tree(), (Ratio("m", "s", "c"),), ("a", "m"))
        assert "ScaleUp m = s / c -> [a, m]" in render_plan(scaled)
        bare = ScaleUp(_tree(), (), ("a",))
        assert "ScaleUp (no ratios) -> [a]" in render_plan(bare)
