"""Physical execution: spans, collected actuals, parallel GroupBy parity."""

import numpy as np
import pytest
from dataclasses import dataclass

from repro.engine import (
    Aggregate,
    Catalog,
    Col,
    ColumnType,
    Comparison,
    Lit,
    ParallelConfig,
    ParallelExecutor,
    Projection,
)
from repro.obs import Tracer
from repro.plan import (
    Filter,
    GroupBy,
    Plan,
    PlanError,
    Project,
    Ratio,
    ScaleUp,
    Scan,
    execute_plan,
    walk,
)


def _grouped(scan=None):
    scan = scan if scan is not None else Scan("rel")
    return GroupBy(
        scan,
        ("a",),
        (Aggregate("sum", Col("q"), "s"), Aggregate("count", Lit(1), "c")),
    )


class TestOperatorSpans:
    def test_one_span_per_node_nested_by_tree_shape(self, catalog):
        tracer = Tracer().enable()
        plan = Project(
            _grouped(),
            (Projection(Col("a"), "a"), Projection(Col("s"), "s")),
            mode="view",
        )
        with tracer.span("root") as root:
            execute_plan(plan, catalog, tracer=tracer)
        (project,) = root.children
        assert project.name == "op_project"
        (group,) = project.children
        assert group.name == "op_group_by"
        (scan,) = group.children
        assert scan.name == "op_scan"
        assert scan.children == []

    def test_spans_carry_depth_rows_and_table(self, catalog):
        tracer = Tracer().enable()
        with tracer.span("root") as root:
            execute_plan(_grouped(), catalog, tracer=tracer)
        group = root.children[0]
        scan = group.children[0]
        assert group.attributes["depth"] == 0
        assert scan.attributes["depth"] == 1
        assert scan.attributes["table"] == "rel"
        assert scan.attributes["rows"] == 8
        assert group.attributes["rows"] == 2

    def test_no_tracer_still_executes(self, catalog):
        result = execute_plan(_grouped(), catalog)
        assert result.num_rows == 2


class TestCollectedActuals:
    def test_every_path_measured(self, catalog):
        plan = Filter(_grouped(), Comparison(">", Col("s"), Lit(0.0)))
        collect = {}
        execute_plan(plan, catalog, collect=collect)
        assert set(collect) == {path for path, __ in walk(plan)}

    def test_rows_and_inclusive_seconds(self, catalog):
        plan = _grouped()
        collect = {}
        execute_plan(plan, catalog, collect=collect)
        rows, seconds = collect[()]
        assert rows == 2 and seconds > 0
        scan_rows, scan_seconds = collect[(0,)]
        assert scan_rows == 8
        # Inclusive timing: a parent's clock covers its children.
        assert seconds >= scan_seconds


class TestParallelGroupBy:
    @pytest.fixture
    def big_catalog(self, skewed_table):
        catalog = Catalog()
        catalog.register("rel", skewed_table)
        return catalog

    def _executor(self, **kwargs):
        return ParallelExecutor(
            ParallelConfig(max_workers=4, min_partition_rows=1, **kwargs)
        )

    def test_parallel_matches_serial(self, big_catalog):
        plan = _grouped()
        serial = execute_plan(plan, big_catalog)
        parallel = execute_plan(
            plan, big_catalog, parallel=self._executor()
        )
        assert list(serial.column("a")) == list(parallel.column("a"))
        np.testing.assert_array_equal(
            serial.column("c"), parallel.column("c")
        )
        np.testing.assert_allclose(
            serial.column("s"), parallel.column("s"), rtol=1e-12
        )

    def test_parallel_mode_recorded_on_span(self, big_catalog):
        tracer = Tracer().enable()
        with tracer.span("root") as root:
            execute_plan(
                _grouped(), big_catalog, parallel=self._executor(),
                tracer=tracer,
            )
        group = root.children[0]
        assert group.attributes["mode"] == "parallel"

    def test_small_input_falls_back_to_serial(self, catalog):
        executor = ParallelExecutor(
            ParallelConfig(max_workers=4, min_partition_rows=10_000)
        )
        tracer = Tracer().enable()
        with tracer.span("root") as root:
            execute_plan(_grouped(), catalog, parallel=executor, tracer=tracer)
        group = root.children[0]
        assert "mode" not in group.attributes  # serial group_by ran


class TestOperatorSemantics:
    def test_scan_applies_columns_then_predicate(self, catalog):
        scan = Scan(
            "rel",
            predicate=Comparison("=", Col("a"), Lit("x")),
            columns=("a", "q"),
        )
        result = execute_plan(scan, catalog)
        assert result.schema.names == ["a", "q"]
        assert result.num_rows == 4

    def test_compute_project_infers_types(self, catalog):
        plan = Project(
            Scan("rel"),
            (Projection(Col("id"), "id"), Projection(Lit(1.5), "w")),
            mode="compute",
        )
        result = execute_plan(plan, catalog)
        assert result.schema.column("id").ctype == ColumnType.INT
        assert result.schema.column("w").ctype == ColumnType.FLOAT

    def test_scale_up_divides_and_guards_zero_denominator(self, catalog):
        grouped = GroupBy(
            Scan("rel"),
            ("a",),
            (
                Aggregate("sum", Col("q"), "num"),
                Aggregate("min", Lit(0), "den"),
            ),
        )
        plan = ScaleUp(grouped, (Ratio("m", "num", "den"),), ("a", "m"))
        result = execute_plan(plan, catalog)
        assert result.schema.names == ["a", "m"]
        assert np.isnan(result.column("m")).all()
        assert result.schema.column("m").ctype == ColumnType.FLOAT

    def test_scale_up_without_ratios_is_a_projection(self, catalog):
        plan = ScaleUp(_grouped(), (), ("s", "a"))
        result = execute_plan(plan, catalog)
        assert result.schema.names == ["s", "a"]

    def test_unknown_operator_raises_plan_error(self, catalog):
        @dataclass(frozen=True)
        class Mystery(Plan):
            kind = "mystery"

        with pytest.raises(PlanError, match="no physical operator"):
            execute_plan(Mystery(), catalog)
