"""Canonical forms and fingerprints: units + Hypothesis properties.

The load-bearing claims, per ``docs/CACHING.md``:

* canonicalization is *idempotent* -- canonical form of a canonical form
  is itself, fingerprints included;
* the semantic fingerprint is invariant under spelling permutations
  (conjunct order, IN-list order, GROUP BY column order, output alias
  names) -- and those spellings produce *bit-identical* answers when
  served through the cache's canonical tier;
* the structural fingerprint stays alias- and order-sensitive, because
  streaming/plan caches bake output schemas into their values.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.aqua.system import AquaSystem  # noqa: E402
from repro.engine import Column, ColumnType, Schema, Table  # noqa: E402
from repro.engine.sql import parse_query  # noqa: E402
from repro.plan import (  # noqa: E402
    canonicalize,
    canonicalize_predicate,
    canonicalize_query,
    lower_query,
    predicate_conjuncts,
)


def _query(sql):
    return parse_query(sql)


class TestPredicateCanonicalization:
    def test_conjunct_order_is_normalized(self):
        a = _query("SELECT g FROM t WHERE g = 'x' AND v > 2 GROUP BY g")
        b = _query("SELECT g FROM t WHERE v > 2 AND g = 'x' GROUP BY g")
        assert canonicalize_predicate(a.where) == canonicalize_predicate(
            b.where
        )

    def test_duplicate_conjuncts_are_absorbed(self):
        a = _query("SELECT g FROM t WHERE v > 2 AND v > 2 GROUP BY g")
        b = _query("SELECT g FROM t WHERE v > 2 GROUP BY g")
        assert canonicalize_predicate(a.where) == canonicalize_predicate(
            b.where
        )

    def test_in_list_order_is_normalized(self):
        a = _query("SELECT g FROM t WHERE g IN ('b', 'a') GROUP BY g")
        b = _query("SELECT g FROM t WHERE g IN ('a', 'b') GROUP BY g")
        assert canonicalize_predicate(a.where) == canonicalize_predicate(
            b.where
        )

    def test_conjunct_texts_cover_where_and_none(self):
        q = _query("SELECT g FROM t WHERE v > 2 AND g = 'x' GROUP BY g")
        assert predicate_conjuncts(q.where) == ("g = 'x'", "v > 2")
        assert predicate_conjuncts(None) == ()


class TestQueryFingerprints:
    def test_alias_rename_shares_semantic_fingerprint(self):
        a = canonicalize_query(
            _query("SELECT g, SUM(v) AS s FROM t GROUP BY g")
        )
        b = canonicalize_query(
            _query("SELECT g, SUM(v) AS total FROM t GROUP BY g")
        )
        assert a.fingerprint == b.fingerprint
        assert a.structural != b.structural

    def test_group_by_permutation_shares_semantic_fingerprint(self):
        a = canonicalize_query(
            _query("SELECT g, h, SUM(v) AS s FROM t GROUP BY g, h")
        )
        b = canonicalize_query(
            _query("SELECT g, h, SUM(v) AS s FROM t GROUP BY h, g")
        )
        assert a.fingerprint == b.fingerprint
        assert a.structural != b.structural

    def test_different_aggregates_do_not_collide(self):
        a = canonicalize_query(
            _query("SELECT g, SUM(v) AS s FROM t GROUP BY g")
        )
        b = canonicalize_query(
            _query("SELECT g, AVG(v) AS s FROM t GROUP BY g")
        )
        assert a.fingerprint != b.fingerprint

    def test_having_falls_back_to_alias_sensitive(self):
        a = canonicalize_query(
            _query(
                "SELECT g, SUM(v) AS s FROM t GROUP BY g HAVING s > 10"
            )
        )
        b = canonicalize_query(
            _query(
                "SELECT g, SUM(v) AS total FROM t GROUP BY g "
                "HAVING total > 10"
            )
        )
        assert a.fingerprint != b.fingerprint

    def test_aliases_recorded_in_select_order(self):
        c = canonicalize_query(
            _query("SELECT g, SUM(v) AS s, COUNT(*) AS c FROM t GROUP BY g")
        )
        assert c.aliases == ("g", "s", "c")


# -- Hypothesis: idempotence + permutation invariance ----------------------

_CONJUNCTS = ["v > 2", "g != 'zz'", "h IN ('x', 'y')", "v < 900"]
_AGGS = [
    ("SUM(v)", "sum"),
    ("COUNT(*)", "count"),
    ("AVG(v)", "avg"),
]


@st.composite
def _spellings(draw):
    """One query in two spellings that must share a semantic fingerprint.

    The SELECT list order is held fixed across both spellings -- it is
    output-schema-significant (the cache reconciles hits positionally),
    so only fingerprint-invariant degrees of freedom vary: GROUP BY
    clause order, WHERE conjunct order, and output alias names.
    """
    group = draw(st.permutations(["g", "h"]))
    group2 = draw(st.permutations(list(group)))
    n_aggs = draw(st.integers(min_value=1, max_value=3))
    aggs = _AGGS[:n_aggs]
    n_conj = draw(st.integers(min_value=0, max_value=3))
    conjuncts = draw(
        st.lists(
            st.sampled_from(_CONJUNCTS),
            min_size=n_conj,
            max_size=n_conj,
            unique=True,
        )
    )
    conjuncts2 = draw(st.permutations(conjuncts))
    rename = draw(st.booleans())

    def spell(group_clause, conj, suffix):
        select = "g, h, " + ", ".join(
            f"{expr} AS a{i}{suffix}" for i, (expr, _f) in enumerate(aggs)
        )
        where = (" WHERE " + " AND ".join(conj)) if conj else ""
        return (
            f"SELECT {select} FROM t{where} "
            f"GROUP BY {', '.join(group_clause)}"
        )

    return spell(group, conjuncts, ""), spell(
        group2, conjuncts2, "x" if rename else ""
    )


@settings(deadline=None, max_examples=60)
@given(pair=_spellings())
def test_equivalent_spellings_share_the_semantic_fingerprint(pair):
    sql_a, sql_b = pair
    a = canonicalize_query(_query(sql_a))
    b = canonicalize_query(_query(sql_b))
    assert a.fingerprint == b.fingerprint, (sql_a, sql_b)


@settings(deadline=None, max_examples=60)
@given(pair=_spellings())
def test_canonicalize_query_is_idempotent(pair):
    sql, _other = pair
    first = canonicalize_query(_query(sql))
    second = canonicalize_query(first.query)
    assert second.query == first.query
    assert second.fingerprint == first.fingerprint
    assert second.structural == first.structural


@settings(deadline=None, max_examples=60)
@given(pair=_spellings())
def test_canonicalize_plan_is_idempotent(pair):
    sql, _other = pair
    table = _table(200, 5)
    system = AquaSystem(space_budget=64, rng=np.random.default_rng(5))
    system.register_table("t", table, build=False)
    lowered = lower_query(_query(sql), system.catalog)
    once, fp_once = canonicalize(lowered)
    twice, fp_twice = canonicalize(once)
    assert twice == once
    assert fp_twice == fp_once


# -- Hypothesis: equivalent spellings produce bit-identical answers --------


def _table(n, seed):
    rng = np.random.default_rng(seed)
    schema = Schema(
        [
            Column("g", ColumnType.STR, "grouping"),
            Column("h", ColumnType.STR, "grouping"),
            Column("v", ColumnType.FLOAT, "aggregate"),
        ]
    )
    return Table.from_columns(
        schema,
        g=rng.choice(["a", "b", "c"], size=n),
        h=rng.choice(["x", "y"], size=n),
        v=rng.gamma(2.0, 30.0, size=n),
    )


def _sorted_values(answer, group_cols, aliases):
    """Aggregate (+error) arrays row-aligned by sorted group key."""
    result = answer.result
    keys = list(
        zip(*(np.asarray(result.column(c)).tolist() for c in group_cols))
    )
    order = sorted(range(len(keys)), key=lambda i: keys[i])
    out = {}
    for alias in aliases:
        for name in (alias, f"{alias}_error"):
            out[name] = np.asarray(result.column(name))[order]
    return [key for key in sorted(keys)], out


@settings(deadline=None, max_examples=20)
@given(pair=_spellings(), seed=st.integers(min_value=0, max_value=2**16))
def test_equivalent_spellings_answer_bit_identically(pair, seed):
    sql_a, sql_b = pair
    table = _table(600, seed)
    system = AquaSystem(
        space_budget=150, rng=np.random.default_rng(seed), cache=True
    )
    system.register_table("t", table, grouping_columns=["g", "h"])

    first = system.answer(sql_a)
    second = system.answer(sql_b)
    assert second.cache_tier in ("exact", "canonical"), (sql_a, sql_b)

    aliases_a = [
        a for a in canonicalize_query(_query(sql_a)).aliases
        if a not in ("g", "h")
    ]
    aliases_b = [
        b for b in canonicalize_query(_query(sql_b)).aliases
        if b not in ("g", "h")
    ]
    group_cols = ["g", "h"]
    keys_a, vals_a = _sorted_values(first, group_cols, aliases_a)
    keys_b, vals_b = _sorted_values(second, group_cols, aliases_b)
    assert keys_a == keys_b
    for a, b in zip(aliases_a, aliases_b):
        np.testing.assert_array_equal(vals_a[a], vals_b[b])
        np.testing.assert_array_equal(
            vals_a[f"{a}_error"], vals_b[f"{b}_error"]
        )
