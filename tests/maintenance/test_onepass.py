"""Tests for one-pass construction drivers."""

import numpy as np
import pytest

from repro.core import Congress, House, Senate, allocate_from_table
from repro.maintenance import (
    CountDataCube,
    construct_from_cube,
    construct_one_pass,
    maintainer_for,
    subsample_to_budget,
)
from repro.maintenance.base import MaintainedSample


class TestSubsampleToBudget:
    def _maintained(self, sizes, schema):
        rows_by_group = {
            (f"g{i}",): [(f"g{i}", float(j)) for j in range(size)]
            for i, size in enumerate(sizes)
        }
        populations = {key: len(rows) * 10 for key, rows in rows_by_group.items()}
        return MaintainedSample(
            schema=schema,
            grouping_columns=("g",),
            rows_by_group=rows_by_group,
            populations=populations,
        )

    @pytest.fixture
    def schema(self):
        from repro.engine import ColumnType, Schema

        return Schema.of(("g", ColumnType.STR), ("v", ColumnType.FLOAT))

    def test_exact_total(self, schema, rng):
        maintained = self._maintained([50, 30, 20], schema)
        out = subsample_to_budget(maintained, 60, rng)
        assert out.total_sample_size == 60

    def test_proportional_shares(self, schema, rng):
        maintained = self._maintained([80, 20], schema)
        out = subsample_to_budget(maintained, 50, rng)
        sizes = out.sample_sizes()
        assert sizes[("g0",)] == 40
        assert sizes[("g1",)] == 10

    def test_no_op_when_under_budget(self, schema, rng):
        maintained = self._maintained([10, 10], schema)
        out = subsample_to_budget(maintained, 100, rng)
        assert out is maintained

    def test_populations_preserved(self, schema, rng):
        maintained = self._maintained([50, 50], schema)
        out = subsample_to_budget(maintained, 40, rng)
        assert out.populations == maintained.populations


class TestConstructOnePass:
    @pytest.mark.parametrize(
        "strategy", ["house", "senate", "basic_congress", "congress"]
    )
    def test_size_within_budget(self, strategy, skewed_table, rng):
        sample = construct_one_pass(
            strategy, skewed_table, skewed_table.schema, ["a", "b"], 500, rng
        )
        assert sample.total_sample_size <= 500
        if strategy != "senate":  # senate's lazy shrink may under-fill
            assert sample.total_sample_size == 500

    def test_congress_one_pass_tracks_two_pass(self, skewed_table):
        """Streaming construction approximates the exact allocation.

        The one-pass path draws each group at its *pre-scaling* target
        (capped by the group population -- you cannot retain more tuples
        than exist) and then scales every group down uniformly to the
        budget, so the expected size is ``f * min(pre_scaling_g, n_g)``
        with ``f = X / sum_j min(pre_scaling_j, n_j)``.
        """
        rng = np.random.default_rng(9)
        budget = 1000
        allocation = allocate_from_table(
            Congress(), skewed_table, ["a", "b"], budget
        )
        capped_pre = {
            key: min(value, allocation.populations[key])
            for key, value in allocation.pre_scaling.items()
        }
        factor = budget / sum(capped_pre.values())
        trials = 5
        sums = {}
        for __ in range(trials):
            sample = construct_one_pass(
                "congress", skewed_table, skewed_table.schema,
                ["a", "b"], budget, rng,
            )
            for key, size in sample.sample_sizes().items():
                sums[key] = sums.get(key, 0) + size
        for key, pre in capped_pre.items():
            expected = factor * pre
            mean_size = sums.get(key, 0) / trials
            assert abs(mean_size - expected) <= max(0.35 * expected, 8)

    def test_unknown_strategy(self, skewed_table, rng):
        with pytest.raises(ValueError, match="no maintainer"):
            construct_one_pass(
                "bogus", skewed_table, skewed_table.schema, ["a", "b"], 10, rng
            )

    def test_accepts_row_iterable(self, skewed_table, rng):
        sample = construct_one_pass(
            "house",
            skewed_table.iter_rows(),
            skewed_table.schema,
            ["a", "b"],
            100,
            rng,
        )
        assert sample.total_sample_size == 100


class TestConstructFromCube:
    def test_matches_direct_build_sizes(self, skewed_table, rng):
        cube = CountDataCube.from_table(skewed_table, ["a", "b"])
        sample = construct_from_cube(Congress(), cube, skewed_table, 600, rng)
        allocation = allocate_from_table(
            Congress(), skewed_table, ["a", "b"], 600
        )
        assert sample.sample_sizes() == allocation.rounded()

    def test_works_for_all_strategies(self, skewed_table, rng):
        cube = CountDataCube.from_table(skewed_table, ["a", "b"])
        for strategy in (House(), Senate(), Congress()):
            sample = construct_from_cube(strategy, cube, skewed_table, 300, rng)
            assert sample.total_sample_size == 300


class TestMaintainerFactory:
    def test_factory_names(self, skewed_table, rng):
        from repro.maintenance import (
            BasicCongressMaintainer,
            CongressMaintainer,
            HouseMaintainer,
            SenateMaintainer,
        )

        schema = skewed_table.schema
        assert isinstance(
            maintainer_for("house", schema, ["a"], 10, rng), HouseMaintainer
        )
        assert isinstance(
            maintainer_for("senate", schema, ["a"], 10, rng), SenateMaintainer
        )
        assert isinstance(
            maintainer_for("basic_congress", schema, ["a"], 10, rng),
            BasicCongressMaintainer,
        )
        assert isinstance(
            maintainer_for("congress", schema, ["a"], 10, rng),
            CongressMaintainer,
        )
