"""Unit tests for the count data cube."""

import pytest

from repro.maintenance import CountDataCube
from repro.sampling import all_groupings


class TestConstruction:
    def test_from_table(self, small_table):
        cube = CountDataCube.from_table(small_table, ["a", "b"])
        assert cube.total == 8
        assert cube.finest_counts() == {
            ("x", "p"): 2, ("x", "q"): 2, ("y", "p"): 2, ("y", "q"): 2,
        }

    def test_incremental_matches_bulk(self, small_table):
        bulk = CountDataCube.from_table(small_table, ["a", "b"])
        incremental = CountDataCube(["a", "b"])
        for row in small_table.iter_rows():
            incremental.observe((row[0], row[1]))
        for target in all_groupings(["a", "b"]):
            assert incremental.counts(target) == bulk.counts(target)

    def test_negative_counts_rejected(self):
        cube = CountDataCube(["a"])
        with pytest.raises(ValueError):
            cube.observe_counts({("g",): -1})


class TestProjections:
    @pytest.fixture
    def cube(self):
        cube = CountDataCube(["a", "b"])
        cube.observe_counts({("a1", "b1"): 3, ("a1", "b2"): 5, ("a2", "b1"): 2})
        return cube

    def test_num_groups_per_grouping(self, cube):
        assert cube.num_groups([]) == 1
        assert cube.num_groups(["a"]) == 2
        assert cube.num_groups(["b"]) == 2
        assert cube.num_groups(["a", "b"]) == 3

    def test_projected_counts(self, cube):
        assert cube.count(["a"], ("a1",)) == 8
        assert cube.count(["b"], ("b1",)) == 5
        assert cube.count([], ()) == 10

    def test_unseen_group_is_zero(self, cube):
        assert cube.count(["a"], ("a99",)) == 0


class TestSelectionProbability:
    def test_matches_equation_8(self):
        cube = CountDataCube(["a", "b"])
        cube.observe_counts({("a1", "b1"): 90, ("a1", "b2"): 10})
        budget = 10.0
        # For group (a1, b2):
        #   T=∅:      10 / (1 * 100) = 0.1
        #   T={a}:    10 / (1 * 100) = 0.1
        #   T={b}:    10 / (2 * 10)  = 0.5
        #   T={a,b}:  10 / (2 * 10)  = 0.5
        assert cube.selection_probability(("a1", "b2"), budget) == pytest.approx(0.5)
        # For group (a1, b1): max(0.1, 0.1, 10/180, 10/180) = 0.1.
        assert cube.selection_probability(("a1", "b1"), budget) == pytest.approx(0.1)

    def test_clamped_to_one(self):
        cube = CountDataCube(["a"])
        cube.observe_counts({("g",): 2})
        assert cube.selection_probability(("g",), 1000) == 1.0

    def test_unseen_group_probability_zero(self):
        cube = CountDataCube(["a"])
        cube.observe_counts({("g",): 5})
        assert cube.selection_probability(("other",), 10) == pytest.approx(
            min(1.0, 10 / 5)  # only the T=∅ grouping matches via total count
        )

    def test_probability_decreases_with_inserts(self):
        cube = CountDataCube(["a"])
        cube.observe_counts({("g",): 10})
        p1 = cube.selection_probability(("g",), 5)
        cube.observe_counts({("g",): 10})
        p2 = cube.selection_probability(("g",), 5)
        assert p2 < p1
