"""Tests for the Eq. 8 Congress maintainer."""

import numpy as np
import pytest

from repro.core import Congress
from repro.engine import ColumnType, Schema
from repro.maintenance import CongressMaintainer


@pytest.fixture
def schema():
    return Schema.of(
        ("a", ColumnType.STR), ("b", ColumnType.STR), ("v", ColumnType.FLOAT)
    )


def two_column_stream(rng, n):
    a = rng.choice(["a1", "a2"], size=n, p=[0.8, 0.2])
    b = rng.choice(["b1", "b2"], size=n, p=[0.9, 0.1])
    return list(zip(a.tolist(), b.tolist(), rng.normal(size=n).tolist()))


class TestProbabilityInvariant:
    def test_probability_monotonically_decreases(self, schema, rng):
        maintainer = CongressMaintainer(schema, ["a", "b"], 50, rng)
        previous = None
        for i in range(500):
            maintainer.insert(("a1", "b1", float(i)))
            current = maintainer.current_probability(("a1", "b1"))
            if previous is not None:
                assert current <= previous + 1e-12
            previous = current

    def test_expected_sizes_match_pre_scaling_targets(self, schema):
        """E[|S_g|] = max_T s_{g,T}(Y) -- Congress's pre-scaling column."""
        rng = np.random.default_rng(7)
        budget, n, trials = 200, 20_000, 6
        totals = {}
        counts_snapshot = None
        for __ in range(trials):
            maintainer = CongressMaintainer(schema, ["a", "b"], budget, rng)
            maintainer.insert_many(two_column_stream(rng, n))
            snapshot = maintainer.snapshot()
            counts_snapshot = snapshot.populations
            for key, rows in snapshot.rows_by_group.items():
                totals[key] = totals.get(key, 0) + len(rows)
        means = {key: value / trials for key, value in totals.items()}
        allocation = Congress().allocate(counts_snapshot, ("a", "b"), budget)
        for key, target in allocation.pre_scaling.items():
            capped = min(target, counts_snapshot[key])
            assert abs(means.get(key, 0) - capped) / max(capped, 1) < 0.30

    def test_settle_all_idempotent(self, schema, rng):
        maintainer = CongressMaintainer(schema, ["a", "b"], 100, rng)
        maintainer.insert_many(two_column_stream(rng, 2000))
        maintainer.settle_all()
        first = maintainer.snapshot().sample_sizes()
        # A second settle with no inserts must not evict anything.
        maintainer.settle_all()
        assert maintainer.snapshot().sample_sizes() == first

    def test_periodic_settling_option(self, schema, rng):
        maintainer = CongressMaintainer(
            schema, ["a", "b"], 100, rng, settle_every=100
        )
        maintainer.insert_many(two_column_stream(rng, 1000))
        snapshot = maintainer.snapshot()
        assert snapshot.total_sample_size > 0

    def test_negative_budget_rejected(self, schema, rng):
        with pytest.raises(ValueError):
            CongressMaintainer(schema, ["a", "b"], -5, rng)


class TestNewGroups:
    def test_new_group_gets_sampled(self, schema, rng):
        maintainer = CongressMaintainer(schema, ["a", "b"], 100, rng)
        maintainer.insert_many(two_column_stream(rng, 5000))
        # A brand-new tiny group arrives.
        for i in range(5):
            maintainer.insert(("new", "new", float(i)))
        snapshot = maintainer.snapshot()
        # Tiny group's selection probability is 1 (Senate share exceeds n_g).
        assert len(snapshot.rows_by_group.get(("new", "new"), [])) == 5

    def test_populations_track_cube(self, schema, rng):
        maintainer = CongressMaintainer(schema, ["a", "b"], 100, rng)
        rows = two_column_stream(rng, 3000)
        maintainer.insert_many(rows)
        true_counts = {}
        for a, b, __ in rows:
            true_counts[(a, b)] = true_counts.get((a, b), 0) + 1
        assert maintainer.snapshot().populations == true_counts


class TestExpectedSizesHelper:
    def test_matches_probability_times_population(self, schema, rng):
        maintainer = CongressMaintainer(schema, ["a", "b"], 100, rng)
        maintainer.insert_many(two_column_stream(rng, 2000))
        expected = maintainer.expected_sizes()
        for key, value in expected.items():
            probability = maintainer.current_probability(key)
            population = maintainer.cube.finest_counts()[key]
            assert value == pytest.approx(probability * population)
