"""Refresh/insert edge cases: maintained vs. rebuild paths, zero-budget
strata, and groups born after the synopsis was built."""

import numpy as np
import pytest

from repro import AquaSystem, House
from repro.engine import Column, ColumnType, Schema, Table


def two_group_table(n_big=900, n_small=100, seed=3):
    rng = np.random.default_rng(seed)
    g = np.array(["big"] * n_big + ["small"] * n_small)
    v = rng.normal(50.0, 5.0, n_big + n_small)
    schema = Schema(
        [
            Column("g", ColumnType.STR, "grouping"),
            Column("v", ColumnType.FLOAT, "aggregate"),
        ]
    )
    return Table.from_columns(schema, g=g, v=v)


SQL = "select g, sum(v) s from rel group by g order by g"


@pytest.fixture
def system():
    system = AquaSystem(space_budget=100, rng=np.random.default_rng(2))
    system.register_table("rel", two_group_table())
    return system


class TestRefreshWithoutMaintainer:
    def test_refresh_flushes_and_rebuilds(self, system):
        for __ in range(50):
            system.insert("rel", ("small", 1000.0))
        assert system._state("rel").inserts_since_refresh == 50
        synopsis = system.refresh_synopsis("rel")
        assert system._state("rel").inserts_since_refresh == 0
        assert not system._state("rel").pending_rows
        assert synopsis.sample.total_population == 1050

    def test_new_group_visible_after_refresh(self, system):
        for __ in range(40):
            system.insert("rel", ("brand_new", 7.0))
        system.refresh_synopsis("rel")
        keys = set(system.synopsis("rel").sample.strata)
        assert ("brand_new",) in keys
        answer = system.answer(SQL)
        assert "brand_new" in set(answer.result.column("g"))

    def test_answer_before_refresh_misses_new_group_guarded(self, system):
        """A group living only in pending rows is invisible to the synopsis
        -- the guard cannot conjure it (missing-group detection is synopsis-
        side), but the answer it serves must still be NaN-free."""
        for __ in range(5):
            system.insert("rel", ("brand_new", 7.0))
        answer = system.answer(SQL)
        errors = np.asarray(answer.result.column("s_error"), dtype=float)
        assert not np.isnan(errors).any()


class TestRefreshWithMaintainer:
    def test_refresh_uses_maintainer_stream(self, system):
        system.enable_maintenance("rel")
        for __ in range(50):
            system.insert("rel", ("small", 1000.0))
        synopsis = system.refresh_synopsis("rel")
        assert system._state("rel").inserts_since_refresh == 0
        assert synopsis.sample.total_population == 1050
        assert synopsis.sample_size <= system.space_budget

    def test_maintainer_insert_counter(self, system):
        system.enable_maintenance("rel")
        assert system._state("rel").maintainer.inserts_seen == 1000
        for __ in range(7):
            system.insert("rel", ("small", 1.0))
        assert system._state("rel").maintainer.inserts_seen == 1007
        assert system.health("rel").maintainer_inserts == 1007

    def test_group_only_in_inserted_rows(self, system):
        system.enable_maintenance("rel")
        for __ in range(30):
            system.insert("rel", ("late", 3.0))
        system.refresh_synopsis("rel")
        strata = system.synopsis("rel").sample.strata
        assert ("late",) in strata
        assert strata[("late",)].population == 30
        answer = system.answer(SQL)
        assert "late" in set(answer.result.column("g"))

    def test_exact_and_guarded_agree_after_refresh(self, system):
        system.enable_maintenance("rel")
        for __ in range(50):
            system.insert("rel", ("small", 100.0))
        system.refresh_synopsis("rel")
        answer = system.answer(SQL)
        exact = {r["g"]: r["s"] for r in system.exact(SQL).to_dicts()}
        for row in answer.result.to_dicts():
            assert row["s"] == pytest.approx(exact[row["g"]], rel=0.5)


class TestZeroBudgetStrata:
    def test_house_starves_small_group_health_degraded(self):
        """House allocation with a tight budget can give a group zero
        tuples; health reports the coverage gap and the guard repairs the
        group instead of dropping it."""
        system = AquaSystem(
            space_budget=8,
            allocation_strategy=House(),
            rng=np.random.default_rng(4),
        )
        system.register_table("rel", two_group_table(n_big=990, n_small=10))
        strata = system.synopsis("rel").sample.strata
        if strata[("small",)].sample_size > 0:
            pytest.skip("allocation gave the small group tuples after all")
        assert system.health("rel").status == "degraded"
        answer = system.answer(SQL)
        assert "small" in set(answer.result.column("g"))
        errors = np.asarray(answer.result.column("s_error"), dtype=float)
        assert not np.isnan(errors).any()

    def test_compare_reports_staleness_honestly(self, system):
        for __ in range(25):
            system.insert("rel", ("small", 9.0))
        report = system.compare(SQL)
        # compare() flushes pending rows so both sides see the same data;
        # the synopsis itself is still 25 inserts behind, and says so.
        assert report.stale_inserts == 25
        assert "stale" in report.describe()
        assert not system._state("rel").pending_rows

    def test_compare_describe_handles_inf_speedup(self, system):
        report = system.compare(SQL)
        report.approximate.elapsed_seconds = 0.0
        assert "n/a" in report.describe()
