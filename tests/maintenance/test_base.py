"""Unit tests for maintainer plumbing: KeyExtractor and MaintainedSample."""

import numpy as np
import pytest

from repro.engine import ColumnType, Schema, SchemaError
from repro.maintenance import KeyExtractor, MaintainedSample


@pytest.fixture
def schema():
    return Schema.of(
        ("a", ColumnType.STR), ("b", ColumnType.INT), ("v", ColumnType.FLOAT)
    )


class TestKeyExtractor:
    def test_extracts_in_grouping_order(self, schema):
        extract = KeyExtractor(schema, ["b", "a"])
        assert extract(("x", 7, 1.0)) == (7, "x")

    def test_normalizes_numpy_scalars(self, schema):
        extract = KeyExtractor(schema, ["a"])
        key = extract((np.str_("x"), np.int64(1), np.float64(2.0)))
        assert key == ("x",)
        assert type(key[0]) is str

    def test_unknown_column_rejected(self, schema):
        with pytest.raises(SchemaError):
            KeyExtractor(schema, ["missing"])


class TestMaintainedSample:
    def _sample(self, schema):
        return MaintainedSample(
            schema=schema,
            grouping_columns=("a",),
            rows_by_group={
                ("x",): [("x", 1, 1.0), ("x", 2, 2.0)],
                ("y",): [("y", 3, 3.0)],
            },
            populations={("x",): 10, ("y",): 3},
        )

    def test_sizes(self, schema):
        sample = self._sample(schema)
        assert sample.total_sample_size == 3
        assert sample.sample_sizes() == {("x",): 2, ("y",): 1}

    def test_to_stratified_populations(self, schema):
        stratified = self._sample(schema).to_stratified()
        assert stratified.stratum(("x",)).population == 10
        assert stratified.stratum(("x",)).scale_factor == pytest.approx(5.0)
        assert stratified.stratum(("y",)).scale_factor == pytest.approx(3.0)

    def test_to_stratified_base_rows(self, schema):
        stratified = self._sample(schema).to_stratified()
        assert stratified.base_table.num_rows == 3
        # Row indices must be disjoint and cover the base table.
        all_indices = sorted(
            int(i)
            for stratum in stratified.strata.values()
            for i in stratum.row_indices
        )
        assert all_indices == [0, 1, 2]

    def test_estimators_work_on_maintained(self, schema):
        from repro.estimators import estimate_single

        stratified = self._sample(schema).to_stratified()
        single = estimate_single(stratified, "count", None)
        # 2 tuples scaled by 5 + 1 tuple scaled by 3 = 13 = total population.
        assert single.value == pytest.approx(13.0)

    def test_empty_sample(self, schema):
        sample = MaintainedSample(
            schema=schema, grouping_columns=("a",),
            rows_by_group={}, populations={},
        )
        stratified = sample.to_stratified()
        assert stratified.total_sample_size == 0

    def test_missing_population_defaults_to_sample_size(self, schema):
        sample = MaintainedSample(
            schema=schema,
            grouping_columns=("a",),
            rows_by_group={("x",): [("x", 1, 1.0)]},
            populations={},
        )
        stratified = sample.to_stratified()
        assert stratified.stratum(("x",)).population == 1
