"""Property-based tests over all four maintainers with random streams."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import ColumnType, Schema
from repro.maintenance import maintainer_for

SCHEMA = Schema.of(("g", ColumnType.STR), ("v", ColumnType.INT))

streams = st.lists(
    st.tuples(
        st.sampled_from(["g0", "g1", "g2", "g3"]),
        st.integers(min_value=0, max_value=1000),
    ),
    min_size=0,
    max_size=300,
)

STRATEGIES = ("house", "senate", "basic_congress", "congress")


class TestMaintainerInvariants:
    @given(stream=streams, budget=st.integers(min_value=0, max_value=50))
    @settings(max_examples=60, deadline=None)
    def test_populations_always_exact(self, stream, budget):
        """Every maintainer tracks true group populations exactly."""
        rng = np.random.default_rng(0)
        truth = {}
        for g, __ in stream:
            truth[(g,)] = truth.get((g,), 0) + 1
        for strategy in STRATEGIES:
            maintainer = maintainer_for(strategy, SCHEMA, ["g"], budget, rng)
            maintainer.insert_many(stream)
            assert maintainer.snapshot().populations == truth

    @given(stream=streams, budget=st.integers(min_value=1, max_value=50))
    @settings(max_examples=60, deadline=None)
    def test_sampled_rows_come_from_stream(self, stream, budget):
        """Samples never invent tuples."""
        rng = np.random.default_rng(1)
        stream_set = set(stream)
        for strategy in STRATEGIES:
            maintainer = maintainer_for(strategy, SCHEMA, ["g"], budget, rng)
            maintainer.insert_many(stream)
            snapshot = maintainer.snapshot()
            for key, rows in snapshot.rows_by_group.items():
                for row in rows:
                    assert tuple(row) in stream_set
                    assert (str(row[0]),) == key

    @given(stream=streams, budget=st.integers(min_value=1, max_value=50))
    @settings(max_examples=60, deadline=None)
    def test_group_sizes_never_exceed_populations(self, stream, budget):
        rng = np.random.default_rng(2)
        for strategy in STRATEGIES:
            maintainer = maintainer_for(strategy, SCHEMA, ["g"], budget, rng)
            maintainer.insert_many(stream)
            snapshot = maintainer.snapshot()
            for key, rows in snapshot.rows_by_group.items():
                assert len(rows) <= snapshot.populations[key]

    @given(stream=streams)
    @settings(max_examples=40, deadline=None)
    def test_house_senate_within_budget(self, stream):
        """House and Senate never exceed their fixed budget."""
        rng = np.random.default_rng(3)
        budget = 20
        for strategy in ("house", "senate"):
            maintainer = maintainer_for(strategy, SCHEMA, ["g"], budget, rng)
            maintainer.insert_many(stream)
            assert maintainer.snapshot().total_sample_size <= budget

    @given(stream=streams, budget=st.integers(min_value=1, max_value=40))
    @settings(max_examples=40, deadline=None)
    def test_small_streams_fully_retained_by_biased_schemes(
        self, stream, budget
    ):
        """When the whole stream fits the Senate share per group, Basic
        Congress and Congress retain everything."""
        rng = np.random.default_rng(4)
        truth = {}
        for g, __ in stream:
            truth[(g,)] = truth.get((g,), 0) + 1
        if not truth:
            return
        m = len(truth)
        if max(truth.values()) > budget / m:
            return  # some group exceeds its guaranteed share; skip
        for strategy in ("basic_congress", "congress"):
            maintainer = maintainer_for(strategy, SCHEMA, ["g"], budget, rng)
            maintainer.insert_many(stream)
            assert maintainer.snapshot().total_sample_size == len(stream)
