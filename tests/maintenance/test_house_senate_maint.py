"""Unit and statistical tests for House and Senate maintainers."""

import numpy as np
import pytest

from repro.maintenance import HouseMaintainer, SenateMaintainer


def stream(rng, n, probabilities=(0.7, 0.2, 0.1)):
    """Rows (group, value) with the given group mix."""
    groups = rng.choice(["g0", "g1", "g2"], size=n, p=list(probabilities))
    values = rng.normal(size=n)
    return list(zip(groups.tolist(), values.tolist()))


@pytest.fixture
def schema():
    from repro.engine import ColumnType, Schema

    return Schema.of(("g", ColumnType.STR), ("v", ColumnType.FLOAT))


class TestHouseMaintainer:
    def test_reservoir_size_capped(self, schema, rng):
        maintainer = HouseMaintainer(schema, ["g"], 100, rng)
        maintainer.insert_many(stream(rng, 5000))
        snapshot = maintainer.snapshot()
        assert snapshot.total_sample_size == 100

    def test_populations_exact(self, schema, rng):
        rows = stream(rng, 2000)
        maintainer = HouseMaintainer(schema, ["g"], 50, rng)
        maintainer.insert_many(rows)
        snapshot = maintainer.snapshot()
        true_counts = {}
        for g, __ in rows:
            true_counts[(g,)] = true_counts.get((g,), 0) + 1
        assert snapshot.populations == true_counts

    def test_group_shares_proportional(self, schema):
        rng = np.random.default_rng(0)
        maintainer = HouseMaintainer(schema, ["g"], 500, rng)
        maintainer.insert_many(stream(rng, 20_000))
        sizes = maintainer.snapshot().sample_sizes()
        # Dominant group should hold roughly its population share.
        assert 0.6 < sizes[("g0",)] / 500 < 0.8

    def test_to_stratified_round_trip(self, schema, rng):
        maintainer = HouseMaintainer(schema, ["g"], 100, rng)
        maintainer.insert_many(stream(rng, 3000))
        stratified = maintainer.snapshot().to_stratified()
        assert stratified.total_sample_size == 100
        for stratum in stratified.strata.values():
            assert stratum.population >= stratum.sample_size

    def test_small_stream_fully_kept(self, schema, rng):
        maintainer = HouseMaintainer(schema, ["g"], 100, rng)
        maintainer.insert_many(stream(rng, 30))
        assert maintainer.snapshot().total_sample_size == 30

    def test_negative_capacity_rejected(self, schema, rng):
        with pytest.raises(ValueError):
            HouseMaintainer(schema, ["g"], -1, rng)


class TestSenateMaintainer:
    def test_equal_shares_across_skewed_groups(self, schema):
        rng = np.random.default_rng(1)
        maintainer = SenateMaintainer(schema, ["g"], 300, rng)
        maintainer.insert_many(stream(rng, 20_000, (0.9, 0.08, 0.02)))
        sizes = maintainer.snapshot().sample_sizes()
        assert sizes == {("g0",): 100, ("g1",): 100, ("g2",): 100}

    def test_total_within_budget(self, schema, rng):
        maintainer = SenateMaintainer(schema, ["g"], 100, rng)
        maintainer.insert_many(stream(rng, 10_000))
        assert maintainer.snapshot().total_sample_size <= 100

    def test_new_group_triggers_shrink(self, schema, rng):
        maintainer = SenateMaintainer(schema, ["g"], 100, rng)
        # One group fills its 100-slot reservoir...
        maintainer.insert_many([("g0", float(i)) for i in range(500)])
        assert maintainer.snapshot().sample_sizes() == {("g0",): 100}
        # ...then a second group appears: targets drop to 50 each.
        maintainer.insert_many([("g1", float(i)) for i in range(500)])
        sizes = maintainer.snapshot().sample_sizes()
        assert sizes[("g0",)] == 50
        assert sizes[("g1",)] == 50

    def test_tiny_group_fully_enumerated(self, schema, rng):
        maintainer = SenateMaintainer(schema, ["g"], 100, rng)
        rows = [("big", float(i)) for i in range(1000)] + [("tiny", 1.0)] * 5
        maintainer.insert_many(rows)
        sizes = maintainer.snapshot().sample_sizes()
        assert sizes[("tiny",)] == 5

    def test_num_groups(self, schema, rng):
        maintainer = SenateMaintainer(schema, ["g"], 100, rng)
        maintainer.insert_many(stream(rng, 1000))
        assert maintainer.num_groups == 3

    def test_per_group_uniformity(self, schema):
        """Within one group, every stream position is equally likely kept."""
        rng = np.random.default_rng(5)
        n, k, trials = 40, 10, 1500
        counts = np.zeros(n)
        for __ in range(trials):
            maintainer = SenateMaintainer(schema, ["g"], 20, rng)
            # Two groups -> per-group target 10.
            for i in range(n):
                maintainer.insert(("g0", float(i)))
                maintainer.insert(("g1", -1.0))
            for row in maintainer.snapshot().rows_by_group[("g0",)]:
                counts[int(row[1])] += 1
        freqs = counts / trials
        expected = k / n
        assert np.all(np.abs(freqs - expected) < 0.06)
