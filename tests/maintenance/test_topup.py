"""Tests for the Section 4.6 top-up construction of Congress samples."""

import numpy as np
import pytest

from repro.core import Congress, allocate_from_table
from repro.maintenance import construct_congress_topup


class TestTopUpConstruction:
    def test_sizes_track_equation_5(self, skewed_table):
        """Mean per-group sizes match Congress's Eq. 5 targets."""
        rng = np.random.default_rng(0)
        budget = 600
        trials = 6
        sums = {}
        for __ in range(trials):
            sample = construct_congress_topup(
                skewed_table, ["a", "b"], budget, rng
            )
            for key, size in sample.sample_sizes().items():
                sums[key] = sums.get(key, 0) + size
        allocation = allocate_from_table(
            Congress(), skewed_table, ["a", "b"], budget
        )
        for key, target in allocation.fractional.items():
            capped = min(target, allocation.populations[key])
            mean = sums.get(key, 0) / trials
            assert abs(mean - capped) <= max(0.2 * capped, 5), (
                key, mean, capped,
            )

    def test_total_within_budget(self, skewed_table, rng):
        sample = construct_congress_topup(skewed_table, ["a", "b"], 500, rng)
        # Tiny groups cap at their population, so total can fall below X,
        # but must never exceed it (plus rounding slack of one per group).
        assert sample.total_sample_size <= 500 + len(sample.strata)

    def test_no_duplicate_rows(self, skewed_table, rng):
        sample = construct_congress_topup(skewed_table, ["a", "b"], 800, rng)
        for stratum in sample.strata.values():
            indices = stratum.row_indices.tolist()
            assert len(indices) == len(set(indices))

    def test_rows_belong_to_their_stratum(self, skewed_table, rng):
        sample = construct_congress_topup(skewed_table, ["a", "b"], 300, rng)
        for key, stratum in sample.strata.items():
            for idx in stratum.row_indices[:10]:
                row = skewed_table.row(int(idx))
                assert (str(row[0]), str(row[1])) == key

    def test_small_budget(self, skewed_table, rng):
        sample = construct_congress_topup(skewed_table, ["a", "b"], 10, rng)
        assert 0 < sample.total_sample_size <= 10 + len(sample.strata)

    def test_estimates_work(self, skewed_table, rng):
        from repro.estimators import estimate_single

        sample = construct_congress_topup(skewed_table, ["a", "b"], 1000, rng)
        exact = float(np.sum(skewed_table.column("q")))
        single = estimate_single(sample, "sum", "q")
        assert single.value == pytest.approx(exact, rel=0.15)
