"""Tests for the Basic Congress maintainer (Section 6, Theorem 6.1)."""

import numpy as np
import pytest

from repro.engine import ColumnType, Schema
from repro.maintenance import BasicCongressMaintainer


@pytest.fixture
def schema():
    return Schema.of(("g", ColumnType.STR), ("v", ColumnType.FLOAT))


def skewed_stream(rng, n, probabilities):
    labels = [f"g{i}" for i in range(len(probabilities))]
    groups = rng.choice(labels, size=n, p=list(probabilities))
    return list(zip(groups.tolist(), rng.normal(size=n).tolist()))


class TestInvariants:
    def test_reservoir_counts_match_membership(self, schema):
        rng = np.random.default_rng(2)
        maintainer = BasicCongressMaintainer(schema, ["g"], 200, rng)
        maintainer.insert_many(skewed_stream(rng, 5000, (0.8, 0.15, 0.05)))
        # x_g bookkeeping must equal actual reservoir membership.
        membership = {}
        for __, key, __row in maintainer._reservoir.items():
            membership[key] = membership.get(key, 0) + 1
        for key, count in membership.items():
            assert maintainer.reservoir_count(key) == count

    def test_no_duplicates_between_reservoir_and_delta(self, schema):
        rng = np.random.default_rng(3)
        maintainer = BasicCongressMaintainer(schema, ["g"], 100, rng)
        rows = skewed_stream(rng, 3000, (0.9, 0.07, 0.03))
        # Make rows unique so we can detect duplicates by value.
        rows = [(g, float(i)) for i, (g, __) in enumerate(rows)]
        maintainer.insert_many(rows)
        snapshot = maintainer.snapshot()
        seen = set()
        for group_rows in snapshot.rows_by_group.values():
            for row in group_rows:
                assert row not in seen
                seen.add(row)

    def test_tiny_group_fully_retained(self, schema, rng):
        maintainer = BasicCongressMaintainer(schema, ["g"], 100, rng)
        rows = [("big", float(i)) for i in range(5000)]
        rows[100:103] = [("tiny", -1.0), ("tiny", -2.0), ("tiny", -3.0)]
        maintainer.insert_many(rows)
        snapshot = maintainer.snapshot()
        assert len(snapshot.rows_by_group[("tiny",)]) == 3

    def test_populations_exact(self, schema, rng):
        maintainer = BasicCongressMaintainer(schema, ["g"], 50, rng)
        rows = skewed_stream(rng, 1000, (0.5, 0.5))
        maintainer.insert_many(rows)
        true_counts = {}
        for g, __ in rows:
            true_counts[(g,)] = true_counts.get((g,), 0) + 1
        assert maintainer.snapshot().populations == true_counts


class TestAllocationShape:
    def test_sizes_track_max_of_house_and_senate(self, schema):
        """E[size_g] should be ~max(house_g, senate_g) at budget Y."""
        rng = np.random.default_rng(4)
        probabilities = (0.85, 0.10, 0.05)
        budget, n = 300, 30_000
        trials = 8
        sums = {f"g{i}": 0.0 for i in range(3)}
        for __ in range(trials):
            maintainer = BasicCongressMaintainer(schema, ["g"], budget, rng)
            maintainer.insert_many(skewed_stream(rng, n, probabilities))
            sizes = maintainer.snapshot().sample_sizes()
            for i in range(3):
                sums[f"g{i}"] += sizes.get((f"g{i}",), 0)
        means = {g: total / trials for g, total in sums.items()}
        senate_share = budget / 3
        for i, p in enumerate(probabilities):
            expected = max(budget * p, senate_share)
            assert abs(means[f"g{i}"] - expected) / expected < 0.25

    def test_small_streams_keep_everything(self, schema, rng):
        maintainer = BasicCongressMaintainer(schema, ["g"], 1000, rng)
        rows = skewed_stream(rng, 100, (0.6, 0.4))
        maintainer.insert_many(rows)
        assert maintainer.snapshot().total_sample_size == 100


class TestUniformityWithinGroup:
    def test_each_group_member_equally_likely(self, schema):
        """Theorem 6.1: reservoir + delta is uniform within each group."""
        rng = np.random.default_rng(6)
        n_per_group, trials = 30, 1200
        counts = np.zeros(n_per_group)
        for __ in range(trials):
            maintainer = BasicCongressMaintainer(schema, ["g"], 20, rng)
            # Group g0 is large (30 of 60); g1 the other half.
            rows = []
            for i in range(n_per_group):
                rows.append(("g0", float(i)))
                rows.append(("g1", float(1000 + i)))
            maintainer.insert_many(rows)
            snapshot = maintainer.snapshot()
            for row in snapshot.rows_by_group.get(("g0",), []):
                counts[int(row[1])] += 1
        freqs = counts / trials
        # All positions should be kept equally often.
        assert freqs.std() / freqs.mean() < 0.2
