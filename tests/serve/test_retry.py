"""Retry policy: backoff math, retryability, deadline-aware sleeps."""

import random

import pytest

from repro.errors import DeadlineExceeded, TransientError
from repro.serve.deadline import Deadline, ManualClock
from repro.serve.retry import RetryPolicy


def _flaky(failures, error=TransientError):
    """A callable that fails ``failures`` times, then returns 'ok'."""
    calls = {"n": 0}

    def fn():
        calls["n"] += 1
        if calls["n"] <= failures:
            raise error(f"fault {calls['n']}")
        return "ok"

    fn.calls = calls
    return fn


class TestCall:
    def test_success_first_try(self):
        sleeps = []
        assert (
            RetryPolicy().call(lambda: "ok", sleep=sleeps.append) == "ok"
        )
        assert sleeps == []

    def test_retries_transient_then_succeeds(self):
        fn = _flaky(2)
        sleeps = []
        policy = RetryPolicy(max_attempts=3, jitter=0.0)
        assert policy.call(fn, sleep=sleeps.append) == "ok"
        assert fn.calls["n"] == 3
        assert len(sleeps) == 2

    def test_non_retryable_propagates_immediately(self):
        fn = _flaky(1, error=ValueError)
        with pytest.raises(ValueError):
            RetryPolicy().call(fn, sleep=lambda _s: None)
        assert fn.calls["n"] == 1

    def test_exhausted_attempts_raise_last_error(self):
        fn = _flaky(10)
        with pytest.raises(TransientError, match="fault 3"):
            RetryPolicy(max_attempts=3).call(fn, sleep=lambda _s: None)
        assert fn.calls["n"] == 3

    def test_on_retry_sees_each_backoff(self):
        fn = _flaky(2)
        seen = []
        RetryPolicy(max_attempts=3).call(
            fn,
            sleep=lambda _s: None,
            on_retry=lambda index, error: seen.append((index, str(error))),
        )
        assert [index for index, _ in seen] == [0, 1]


class TestBackoff:
    def test_exponential_without_jitter(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=1.0, jitter=0.0
        )
        assert [policy.delay(i) for i in range(5)] == pytest.approx(
            [0.1, 0.2, 0.4, 0.8, 1.0]  # capped at max_delay
        )

    def test_full_jitter_stays_in_range(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=1.0)
        rng = random.Random(7)
        for i in range(6):
            raw = min(1.0, 0.1 * 2.0**i)
            for _ in range(50):
                assert 0.0 <= policy.delay(i, rng=rng) <= raw

    def test_partial_jitter_has_a_floor(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=1.0, max_delay=1.0, jitter=0.5
        )
        rng = random.Random(7)
        for _ in range(50):
            assert 0.05 <= policy.delay(0, rng=rng) <= 0.1

    def test_seeded_rng_is_deterministic(self):
        policy = RetryPolicy(base_delay=0.1)
        a = [policy.delay(i, rng=random.Random(3)) for i in range(3)]
        b = [policy.delay(i, rng=random.Random(3)) for i in range(3)]
        assert a == b


class TestDeadlineInteraction:
    def test_sleep_clamped_to_remaining_budget(self):
        clock = ManualClock()
        deadline = Deadline(0.05, clock=clock)
        sleeps = []
        policy = RetryPolicy(
            max_attempts=3, base_delay=10.0, max_delay=10.0, jitter=0.0
        )
        policy.call(
            _flaky(1), deadline=deadline, sleep=sleeps.append
        )
        assert sleeps == [pytest.approx(0.05)]

    def test_expired_budget_reraises_without_sleeping(self):
        clock = ManualClock()
        deadline = Deadline(1.0, clock=clock)
        sleeps = []
        fn = _flaky(10)

        def sleep(seconds):
            sleeps.append(seconds)
            clock.advance(seconds)

        clock.advance(2.0)  # budget already gone
        with pytest.raises(TransientError, match="fault 1"):
            RetryPolicy(max_attempts=5).call(
                fn, deadline=deadline, sleep=sleep
            )
        assert fn.calls["n"] == 1
        assert sleeps == []

    def test_deadline_error_is_not_retried(self):
        fn = _flaky(1, error=DeadlineExceeded)
        with pytest.raises(DeadlineExceeded):
            RetryPolicy().call(fn, sleep=lambda _s: None)
        assert fn.calls["n"] == 1


class TestValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)
