"""Serving-layer budget semantics: ``budget_satisfied`` and degradation.

The non-negotiable rule under test: a degraded answer must never satisfy
a ``max_rel_error`` budget silently -- degradation strips the accuracy
promise, so ``budget_satisfied`` is pinned ``False`` on that path no
matter what the unguarded error columns say.
"""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.aqua import AquaSystem
from repro.engine import Column, ColumnType, Schema, Table
from repro.serve import QueryService, ServiceConfig, serve_http
from repro.testing.faults import ServiceFaultInjector

SQL = "SELECT g, SUM(v) AS s FROM t GROUP BY g"
SQL2 = "SELECT g, AVG(v) AS a FROM t GROUP BY g"


def _system(portfolio=True):
    rng = np.random.default_rng(3)
    schema = Schema(
        [
            Column("g", ColumnType.STR, "grouping"),
            Column("v", ColumnType.FLOAT, "aggregate"),
        ]
    )
    system = AquaSystem(
        space_budget=300, rng=np.random.default_rng(9), telemetry=True
    )
    system.register_table(
        "t",
        Table(
            schema,
            {
                "g": rng.choice(["a", "b", "c"], size=2000),
                "v": rng.normal(100.0, 10.0, size=2000),
            },
        ),
    )
    if portfolio:
        system.build_portfolio("t")
    return system


def _service(system=None, config=None, **kwargs):
    system = system if system is not None else _system()
    kwargs.setdefault("sleep", lambda _s: None)
    return QueryService(system, config, **kwargs)


class TestBudgetSatisfied:
    def test_no_budget_reports_none(self):
        with _service() as service:
            assert service.query(SQL).budget_satisfied is None

    def test_error_budget_satisfied_on_clean_path(self):
        with _service() as service:
            result = service.query(SQL, max_rel_error=0.5)
            assert result.budget_satisfied is True
            assert not result.degraded
            answer = result.answer
            assert answer.chosen_synopsis in {"fine", "mid", "coarse"}
            promised = answer.promised_rel_error
            assert promised is None or promised <= 0.5 * (1 + 1e-9)

    def test_generous_time_budget_satisfied(self):
        with _service() as service:
            result = service.query(SQL, max_ms=60_000.0)
            assert result.budget_satisfied is True

    def test_hopeless_time_budget_reported_unsatisfied(self):
        with _service() as service:
            result = service.query(SQL, max_ms=1e-9)
            # Still served (time budgets are goals, not deadlines), but
            # honestly reported as missed.
            assert result.budget_satisfied is False
            assert result.result.num_rows == 3

    def test_budget_without_portfolio_propagates_typed_error(self):
        from repro.errors import SynopsisMissingError

        with _service(_system(portfolio=False)) as service:
            with pytest.raises(SynopsisMissingError):
                service.query(SQL, max_rel_error=0.5)


class TestDegradedBudgets:
    def _shed(self, service, system, **budgets):
        """Run one gated load-shed round; return the shed result."""
        with ServiceFaultInjector(system) as faults:
            gate = faults.gate_queries()
            first = service.submit(SQL)
            shed = service.submit(SQL2, **budgets)
            gate.set()
            first.result()
            return shed.result()

    def test_degraded_never_satisfies_error_budget(self):
        system = _system()
        config = ServiceConfig(
            workers=1, queue_depth=3, degrade_queue_fraction=0.5
        )
        with _service(system, config) as service:
            result = self._shed(service, system, max_rel_error=100.0)
            assert result.degraded
            # Even an absurdly loose error budget is never "satisfied"
            # by a degraded answer.
            assert result.budget_satisfied is False

    def test_degraded_path_uses_coarsest_portfolio_member(self):
        system = _system()
        config = ServiceConfig(
            workers=1, queue_depth=3, degrade_queue_fraction=0.5
        )
        with _service(system, config) as service:
            result = self._shed(service, system, max_rel_error=0.5)
            assert result.degraded
            coarsest = system.portfolio("t").coarsest().name
            assert result.answer.chosen_synopsis == coarsest
            tags = set(result.result.column("provenance").tolist())
            assert tags == {"degraded"}

    def test_degraded_without_portfolio_still_serves(self):
        system = _system(portfolio=False)
        config = ServiceConfig(
            workers=1, queue_depth=3, degrade_queue_fraction=0.5
        )
        with _service(system, config) as service:
            result = self._shed(service, system, max_rel_error=0.5)
            assert result.degraded
            assert result.budget_satisfied is False
            assert result.answer.chosen_synopsis is None


class TestHttpBudgets:
    @pytest.fixture
    def served(self):
        system = _system()
        service = QueryService(
            system,
            ServiceConfig(workers=2, queue_depth=2),
            sleep=lambda _s: None,
        )
        server = serve_http(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield system, service, server.url
        finally:
            server.shutdown()
            server.server_close()
            service.close()
            thread.join(timeout=5)

    @staticmethod
    def _post(url, payload):
        request = urllib.request.Request(
            f"{url}/query",
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())

    def test_budget_fields_in_payload(self, served):
        __, __, url = served
        status, payload = self._post(
            url, {"sql": SQL, "max_rel_error": 0.5}
        )
        assert status == 200
        assert payload["budget_satisfied"] is True
        assert payload["chosen_synopsis"] in {"fine", "mid", "coarse"}
        assert payload["predicted_rel_error"] is not None

    def test_budget_free_payload_keeps_null_fields(self, served):
        __, __, url = served
        status, payload = self._post(url, {"sql": SQL})
        assert status == 200
        assert payload["budget_satisfied"] is None
        assert payload["chosen_synopsis"] is None

    def test_malformed_budget_is_client_error(self, served):
        __, __, url = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(url, {"sql": SQL, "max_rel_error": "soon"})
        assert excinfo.value.code == 400
