"""Deterministic fault injection for streaming service (ISSUE 8 satellite).

Covers the interruption contract end to end:

* a deadline expiring mid-stream ends the stream with the last complete
  ``StreamingAnswer`` re-emitted under ``partial`` provenance -- and
  leaves both the ``AnswerCache`` and the ``PlanCache`` unpolluted;
* ``SlowScanTable`` + ``ManualClock`` make the timing a statement about
  the test, not the machine;
* an open circuit breaker refuses *new* streams with ``OverloadError``
  (streams have no degraded mode);
* admission control: full queue and load shedding reject streams, the
  slot is held for the stream's lifetime and released at close.
"""

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.aqua import AquaSystem
from repro.engine import Column, ColumnType, Schema, Table
from repro.errors import (
    AquaError,
    DeadlineExceeded,
    OverloadError,
    RateLimitExceeded,
    StreamError,
)
from repro.serve import QueryService, ServiceConfig
from repro.serve.breaker import BreakerConfig, OPEN
from repro.serve.deadline import Deadline, ManualClock
from repro.serve.http import serve_http
from repro.testing.faults import ServiceFaultInjector

SQL = "SELECT g, SUM(v) AS s, AVG(v) AS a FROM t GROUP BY g ORDER BY g"


def _table(n=4000, seed=3):
    rng = np.random.default_rng(seed)
    schema = Schema(
        [
            Column("g", ColumnType.STR, "grouping"),
            Column("v", ColumnType.FLOAT, "aggregate"),
        ]
    )
    return Table(
        schema,
        {
            "g": rng.choice(["a", "b", "c"], size=n),
            "v": rng.normal(100.0, 10.0, size=n),
        },
    )


def _system(**kwargs):
    system = AquaSystem(
        space_budget=300,
        rng=np.random.default_rng(9),
        telemetry=True,
        **kwargs,
    )
    system.register_table("t", _table())
    return system


def _service(system=None, config=None, **kwargs):
    system = system if system is not None else _system()
    kwargs.setdefault("sleep", lambda _s: None)
    return QueryService(system, config, **kwargs)


class TestDeadlineMidStream:
    def test_partial_provenance_and_no_cache_pollution(self):
        clock = ManualClock()
        system = _system()
        answer_stats = system.answer_cache.stats
        plan_entries = len(system.plan_cache)
        with ServiceFaultInjector(system) as faults:
            # Every chunk cut / scan read costs 1s of manual-clock time;
            # a 10s deadline admits the first chunk and dies in the second.
            faults.slow_base_scan("t", cost_seconds=1.0, clock=clock)
            answers = list(
                system.sql_stream(
                    SQL,
                    chunk_rows=1000,
                    deadline=Deadline(10.0, clock=clock),
                    rng=np.random.default_rng(5),
                )
            )
        assert len(answers) >= 2
        terminal = answers[-1]
        assert terminal.provenance == "partial"
        assert not terminal.final
        assert not terminal.converged
        # The terminal answer re-states the last complete emission.
        assert terminal.result == answers[-2].result
        assert terminal.rows_seen == answers[-2].rows_seen
        # No AnswerCache pollution: a later stream starts from scratch.
        assert system.answer_cache.stats.size == answer_stats.size
        replay = next(iter(system.sql_stream(SQL, chunk_rows=1000)))
        assert not replay.cache_hit
        # The optimized plan IS memoized (that is the plan cache's job),
        # but only under the stream strategy key -- no phantom entries.
        assert len(system.plan_cache) <= plan_entries + 1

    def test_expiry_before_first_answer_raises(self):
        clock = ManualClock()
        system = _system()
        with ServiceFaultInjector(system) as faults:
            faults.slow_base_scan("t", cost_seconds=10.0, clock=clock)
            with pytest.raises(DeadlineExceeded):
                list(
                    system.sql_stream(
                        SQL,
                        chunk_rows=1000,
                        deadline=Deadline(5.0, clock=clock),
                    )
                )

    def test_service_counts_partial_stream_as_deadline(self):
        clock = ManualClock()
        system = _system()
        with _service(system) as service:
            with ServiceFaultInjector(system) as faults:
                faults.slow_base_scan("t", cost_seconds=1.0, clock=clock)
                answers = list(
                    service.stream(
                        SQL,
                        chunk_rows=1000,
                        deadline=Deadline(10.0, clock=clock),
                    )
                )
            assert answers[-1].provenance == "partial"
            assert service.stats.outcomes.get("deadline") == 1
            # The deadline is budget exhaustion, not table trouble: the
            # breaker must not trip.
            assert service.breaker("t").state == "closed"


class TestBreakerRefusesStreams:
    def test_open_breaker_raises_overload(self):
        system = _system()
        with _service(
            system,
            breaker=BreakerConfig(failure_threshold=2, cooldown_seconds=30.0),
            clock=ManualClock(),
        ) as service:
            with ServiceFaultInjector(system) as faults:
                faults.error_burst(
                    2, factory=lambda: AquaError("synopsis trouble")
                )
                for _ in range(2):
                    with pytest.raises(AquaError):
                        service.query(SQL)
            assert service.breaker("t").state == OPEN
            with pytest.raises(OverloadError) as exc_info:
                service.stream(SQL)
            assert exc_info.value.retry_after_seconds > 0
            assert service.stats.rejected_overload == 1

    def test_clean_stream_records_breaker_success(self):
        system = _system()
        with _service(system) as service:
            answers = list(service.stream(SQL, chunk_rows=1000))
            assert answers[-1].final
            assert service.breaker("t").state == "closed"
            assert service.stats.outcomes == {"ok": 1}


class TestStreamAdmission:
    def test_full_queue_rejects_stream(self):
        config = ServiceConfig(
            workers=1, queue_depth=0, degrade_queue_fraction=None
        )
        with _service(config=config) as service:
            stream = service.stream(SQL, chunk_rows=1000)
            next(stream)  # slot now held by the open stream
            with pytest.raises(OverloadError):
                service.stream(SQL)
            stream.close()
            # Slot released on close: a new stream admits again.
            list(service.stream(SQL, chunk_rows=2000))

    def test_load_shedding_rejects_stream(self):
        config = ServiceConfig(
            workers=1, queue_depth=1, degrade_queue_fraction=0.9
        )
        with _service(config=config) as service:
            stream = service.stream(SQL, chunk_rows=1000)
            next(stream)
            # Depth 2/2 >= 0.9 * capacity: streams shed instead of degrade.
            with pytest.raises(OverloadError, match="shed"):
                service.stream(SQL)
            stream.close()

    def test_rate_limit_applies(self):
        config = ServiceConfig(tenant_rate=0.0, tenant_burst=1.0)
        with _service(config=config, clock=ManualClock()) as service:
            list(service.stream(SQL, chunk_rows=2000))
            with pytest.raises(RateLimitExceeded):
                service.stream(SQL)

    def test_invalid_query_is_invalid_outcome(self):
        with _service() as service:
            with pytest.raises(StreamError):
                list(service.stream("SELECT g, v FROM t WHERE v > 0"))
            assert service.stats.outcomes.get("invalid") == 1


class TestStreamingHTTP:
    def test_ndjson_events_and_terminal_chunk(self):
        system = _system()
        with _service(system) as service:
            server = serve_http(service)
            thread = threading.Thread(
                target=server.serve_forever, daemon=True
            )
            thread.start()
            try:
                body = json.dumps({"sql": SQL, "chunk_rows": 1000}).encode()
                request = urllib.request.Request(
                    server.url + "/query?stream=1", data=body
                )
                with urllib.request.urlopen(request, timeout=30) as response:
                    assert response.status == 200
                    assert (
                        response.headers["Content-Type"]
                        == "application/x-ndjson"
                    )
                    events = [
                        json.loads(line)
                        for line in response.read().decode().splitlines()
                        if line
                    ]
            finally:
                server.shutdown()
                thread.join(timeout=10)
        assert len(events) >= 2
        fractions = [event["fraction"] for event in events]
        assert fractions == sorted(fractions)
        assert events[-1]["final"]
        assert events[-1]["provenance"] == "exact"
        assert all(not event["final"] for event in events[:-1])
        assert events[0]["columns"] == ["g", "s", "a", "s_error", "a_error"]

    def test_stream_errors_are_json_before_first_chunk(self):
        with _service() as service:
            server = serve_http(service)
            thread = threading.Thread(
                target=server.serve_forever, daemon=True
            )
            thread.start()
            try:
                body = json.dumps({"sql": "SELECT g, v FROM t"}).encode()
                request = urllib.request.Request(
                    server.url + "/query?stream=1", data=body
                )
                with pytest.raises(urllib.error.HTTPError) as exc_info:
                    urllib.request.urlopen(request, timeout=30)
                assert exc_info.value.code == 400
                payload = json.loads(exc_info.value.read())
                assert payload["error"] == "StreamError"
            finally:
                server.shutdown()
                thread.join(timeout=10)
