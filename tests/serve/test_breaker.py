"""Circuit-breaker state machine: failures, escalations, cooldown probes."""

import pytest

from repro.serve.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerConfig,
    CircuitBreaker,
)
from repro.serve.deadline import ManualClock


def _breaker(clock=None, **kwargs):
    defaults = dict(
        failure_threshold=3,
        escalation_threshold=2,
        cooldown_seconds=10.0,
        half_open_probes=1,
    )
    defaults.update(kwargs)
    return CircuitBreaker(
        BreakerConfig(**defaults), clock=clock or ManualClock()
    )


class TestOpening:
    def test_starts_closed_and_allows(self):
        breaker = _breaker()
        assert breaker.state == CLOSED
        assert breaker.allow_full_service()
        assert breaker.open_reason == ""

    def test_consecutive_failures_open(self):
        breaker = _breaker()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow_full_service()
        assert "3 consecutive failures" in breaker.open_reason

    def test_success_resets_failure_streak(self):
        breaker = _breaker()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_consecutive_escalations_open(self):
        breaker = _breaker()
        breaker.record_escalation()
        assert breaker.state == CLOSED
        breaker.record_escalation()
        assert breaker.state == OPEN
        assert "escalation" in breaker.open_reason

    def test_failures_and_escalations_are_separate_streaks(self):
        breaker = _breaker()
        breaker.record_failure()
        breaker.record_escalation()  # resets the failure streak
        breaker.record_failure()  # resets the escalation streak
        breaker.record_escalation()
        assert breaker.state == CLOSED

    def test_zero_threshold_disables_signal(self):
        breaker = _breaker(failure_threshold=0)
        for _ in range(20):
            breaker.record_failure()
        assert breaker.state == CLOSED


class TestRecovery:
    def test_cooldown_half_opens(self):
        clock = ManualClock()
        breaker = _breaker(clock=clock)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(9.9)
        assert breaker.state == OPEN
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN

    def test_half_open_limits_probes(self):
        clock = ManualClock()
        breaker = _breaker(clock=clock, half_open_probes=2)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(11.0)
        assert breaker.allow_full_service()
        assert breaker.allow_full_service()
        assert not breaker.allow_full_service()  # probe budget spent

    def test_probe_success_closes(self):
        clock = ManualClock()
        breaker = _breaker(clock=clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(11.0)
        assert breaker.allow_full_service()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.open_reason == ""

    def test_probe_failure_reopens(self):
        clock = ManualClock()
        breaker = _breaker(clock=clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(11.0)
        assert breaker.allow_full_service()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.open_reason == "probe failed"

    def test_probe_escalation_reopens(self):
        clock = ManualClock()
        breaker = _breaker(clock=clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(11.0)
        assert breaker.allow_full_service()
        breaker.record_escalation()
        assert breaker.state == OPEN


class TestConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            BreakerConfig(failure_threshold=-1)
        with pytest.raises(ValueError):
            BreakerConfig(cooldown_seconds=-1.0)
        with pytest.raises(ValueError):
            BreakerConfig(half_open_probes=0)
