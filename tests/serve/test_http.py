"""The HTTP front-end: endpoints, status mapping, shared admission."""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.aqua import AquaSystem
from repro.engine import Column, ColumnType, Schema, Table
from repro.serve import QueryService, ServiceConfig, serve_http
from repro.testing.faults import ServiceFaultInjector

SQL = "SELECT g, SUM(v) AS s FROM t GROUP BY g"


def _system():
    rng = np.random.default_rng(3)
    schema = Schema(
        [
            Column("g", ColumnType.STR, "grouping"),
            Column("v", ColumnType.FLOAT, "aggregate"),
        ]
    )
    system = AquaSystem(
        space_budget=300, rng=np.random.default_rng(9), telemetry=True
    )
    system.register_table(
        "t",
        Table(
            schema,
            {
                "g": rng.choice(["a", "b", "c"], size=2000),
                "v": rng.normal(100.0, 10.0, size=2000),
            },
        ),
    )
    return system


@pytest.fixture
def served():
    """A live HTTP server over a small service; yields (system, service, url)."""
    system = _system()
    service = QueryService(
        system,
        ServiceConfig(workers=2, queue_depth=2),
        sleep=lambda _s: None,
    )
    server = serve_http(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield system, service, server.url
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(timeout=5)


def _post(url, payload):
    request = urllib.request.Request(
        f"{url}/query",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.loads(response.read())


def _get(url, path):
    with urllib.request.urlopen(f"{url}{path}") as response:
        return response.status, response.read()


class TestQueryEndpoint:
    def test_answers_sql(self, served):
        _system_, _service, url = served
        status, payload = _post(url, {"sql": SQL})
        assert status == 200
        assert {"g", "s", "provenance"} <= set(payload["columns"])
        assert len(payload["rows"]) == 3
        assert not payload["degraded"]
        assert payload["attempts"] == 1

    def test_bad_sql_is_400(self, served):
        _system_, _service, url = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(url, {"sql": "SELEC nonsense"})
        assert excinfo.value.code == 400

    def test_missing_sql_is_400(self, served):
        _system_, _service, url = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(url, {"tenant": "alice"})
        assert excinfo.value.code == 400

    def test_unknown_table_is_404(self, served):
        _system_, _service, url = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(url, {"sql": "SELECT g, SUM(v) AS s FROM nope GROUP BY g"})
        assert excinfo.value.code == 404

    def test_expired_deadline_is_504_with_stage(self, served):
        _system_, _service, url = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(url, {"sql": SQL, "deadline_seconds": 0})
        assert excinfo.value.code == 504
        body = json.loads(excinfo.value.read())
        assert body["error"] == "DeadlineExceeded"
        assert body["stage"] == "queue"

    def test_saturated_service_is_429_with_retry_after(self, served):
        system, service, url = served
        with ServiceFaultInjector(system) as faults:
            gate = faults.gate_queries()
            futures = [
                service.submit(SQL) for _ in range(service.config.capacity)
            ]
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(url, {"sql": SQL})
            assert excinfo.value.code == 429
            assert excinfo.value.headers["Retry-After"] is not None
            body = json.loads(excinfo.value.read())
            assert body["error"] == "OverloadError"
            gate.set()
            for future in futures:
                future.result()

    def test_unknown_path_is_404(self, served):
        _system_, _service, url = served
        request = urllib.request.Request(
            f"{url}/nope", data=b"{}", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 404


class TestIntrospectionEndpoints:
    def test_health(self, served):
        _system_, _service, url = served
        status, body = _get(url, "/health")
        assert status == 200
        assert json.loads(body)["status"] == "ok"

    def test_stats_reflect_served_queries(self, served):
        _system_, service, url = served
        service.query(SQL)
        status, body = _get(url, "/stats")
        assert status == 200
        stats = json.loads(body)
        assert stats["admitted"] >= 1
        assert stats["outcomes"].get("ok", 0) >= 1
        assert stats["capacity"] == service.config.capacity

    def test_metrics_exposition(self, served):
        _system_, service, url = served
        service.query(SQL)
        status, body = _get(url, "/metrics")
        assert status == 200
        assert b"serve_requests_total" in body

    def test_get_unknown_path_is_404(self, served):
        _system_, _service, url = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(url, "/nope")
        assert excinfo.value.code == 404


class TestEventsEndpoint:
    def test_events_reflect_served_queries(self, served):
        _system_, service, url = served
        service.query(SQL)
        status, body = _get(url, "/events")
        assert status == 200
        payload = json.loads(body)
        assert payload["enabled"] is True
        assert payload["events"]
        event = payload["events"][-1]
        assert event["table"] == "t"
        assert event["status"] == "ok"
        assert event["trace_id"].startswith("q")

    def test_events_limit_query_param(self, served):
        _system_, service, url = served
        for _ in range(4):
            service.query(SQL)
        status, body = _get(url, "/events?limit=2")
        assert status == 200
        assert len(json.loads(body)["events"]) == 2

    def test_events_bad_limit_is_400(self, served):
        _system_, _service, url = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(url, "/events?limit=nope")
        assert excinfo.value.code == 400

    def test_events_violations_filter(self, served):
        _system_, service, url = served
        service.query(SQL)
        status, body = _get(url, "/events?violations=1")
        assert status == 200
        assert json.loads(body)["events"] == []


class TestSloEndpoint:
    def test_slo_404_without_monitor(self, served):
        _system_, _service, url = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(url, "/slo")
        assert excinfo.value.code == 404

    def test_slo_reports_compliance(self, served):
        from repro.obs.slo import SLOMonitor

        system, service, url = served
        system.attach_slo(SLOMonitor())
        service.query(SQL)
        status, body = _get(url, "/slo")
        assert status == 200
        payload = json.loads(body)
        names = {slo["name"] for slo in payload["slos"]}
        assert "bound_violation_rate" in names
        assert payload["firing"] == []


class TestOpenMetricsEndpoint:
    def test_openmetrics_format_negotiated_by_query_param(self, served):
        _system_, service, url = served
        service.query(SQL)
        status, body = _get(url, "/metrics?format=openmetrics")
        assert status == 200
        assert body.rstrip().endswith(b"# EOF")

    def test_default_format_stays_prometheus(self, served):
        _system_, service, url = served
        service.query(SQL)
        _status, body = _get(url, "/metrics")
        assert b"# EOF" not in body
