"""QueryService behaviour: admission, degradation, deadlines, retries.

Determinism notes: worker saturation uses the fault injector's query gate
(no sleeps), time-based behaviour (rate limits, breaker cooldowns, slow
scans) runs on a shared :class:`ManualClock`, and retry backoff uses an
injected no-op sleep.
"""

import threading

import numpy as np
import pytest

from repro.aqua import AquaSystem
from repro.engine import Column, ColumnType, Schema, Table
from repro.errors import (
    AquaError,
    CircuitOpenError,
    DeadlineExceeded,
    OverloadError,
    RateLimitExceeded,
    ServeError,
    TransientError,
)
from repro.serve import QueryService, ServiceConfig
from repro.serve.breaker import BreakerConfig, OPEN
from repro.serve.deadline import Deadline, ManualClock
from repro.testing.faults import ServiceFaultInjector

SQL = "SELECT g, SUM(v) AS s FROM t GROUP BY g"
SQL2 = "SELECT g, AVG(v) AS a FROM t GROUP BY g"
SQL3 = "SELECT g, COUNT(*) AS c FROM t GROUP BY g"


def _table(n=2000, seed=3):
    rng = np.random.default_rng(seed)
    schema = Schema(
        [
            Column("g", ColumnType.STR, "grouping"),
            Column("v", ColumnType.FLOAT, "aggregate"),
        ]
    )
    return Table(
        schema,
        {
            "g": rng.choice(["a", "b", "c"], size=n),
            "v": rng.normal(100.0, 10.0, size=n),
        },
    )


def _system(**kwargs):
    system = AquaSystem(
        space_budget=300,
        rng=np.random.default_rng(9),
        telemetry=True,
        **kwargs,
    )
    system.register_table("t", _table())
    return system


def _service(system=None, config=None, **kwargs):
    system = system if system is not None else _system()
    kwargs.setdefault("sleep", lambda _s: None)
    return QueryService(system, config, **kwargs)


class TestHappyPath:
    def test_query_returns_answer(self):
        with _service() as service:
            result = service.query(SQL)
            assert result.result.num_rows == 3
            assert not result.degraded
            assert result.attempts == 1
            assert service.stats.outcomes == {"ok": 1}

    def test_query_objects_accepted(self):
        from repro.engine.sql import parse_query

        with _service() as service:
            result = service.query(parse_query(SQL))
            assert result.result.num_rows == 3

    def test_closed_service_rejects(self):
        service = _service()
        service.close()
        with pytest.raises(ServeError):
            service.query(SQL)

    def test_stats_describe_renders(self):
        with _service() as service:
            service.query(SQL)
            text = service.stats.describe()
            assert "admitted 1" in text
            assert "breaker[t]: closed" in text


class TestAdmissionControl:
    def test_saturated_pool_rejects_immediately(self):
        system = _system()
        config = ServiceConfig(
            workers=2, queue_depth=2, admission_timeout_seconds=0.0
        )
        with _service(system, config) as service:
            with ServiceFaultInjector(system) as faults:
                gate = faults.gate_queries()
                futures = [service.submit(SQL) for _ in range(4)]
                assert service.pending == 4
                with pytest.raises(OverloadError) as excinfo:
                    service.submit(SQL)
                assert excinfo.value.retry_after_seconds > 0
                gate.set()
                for future in futures:
                    future.result()
            assert service.stats.rejected_overload == 1
            assert service.stats.admitted == 4

    def test_rejection_within_admission_timeout(self):
        import time

        system = _system()
        timeout = 0.1
        config = ServiceConfig(
            workers=1, queue_depth=0, admission_timeout_seconds=timeout
        )
        with _service(system, config) as service:
            with ServiceFaultInjector(system) as faults:
                gate = faults.gate_queries()
                future = service.submit(SQL)
                start = time.monotonic()
                with pytest.raises(OverloadError):
                    service.submit(SQL)
                elapsed = time.monotonic() - start
                # Must wait for the timeout, then give up promptly.
                assert timeout <= elapsed < timeout + 2.0
                gate.set()
                future.result()

    def test_slot_freed_after_completion(self):
        config = ServiceConfig(
            workers=1, queue_depth=0, degrade_queue_fraction=None
        )
        with _service(config=config) as service:
            for _ in range(5):  # each waits; none is rejected
                service.query(SQL3)
            assert service.stats.rejected == 0
            assert service.pending == 0


class TestRateLimiting:
    def test_tenant_bucket_rejects_then_refills(self):
        clock = ManualClock()
        config = ServiceConfig(tenant_rate=1.0, tenant_burst=2.0)
        with _service(config=config, clock=clock) as service:
            service.query(SQL, tenant="alice")
            service.query(SQL, tenant="alice")
            with pytest.raises(RateLimitExceeded) as excinfo:
                service.submit(SQL, tenant="alice")
            assert excinfo.value.tenant == "alice"
            clock.advance(1.0)
            service.query(SQL, tenant="alice")
            assert service.stats.rejected_rate_limit == 1

    def test_overrides_give_tenants_their_own_limits(self):
        clock = ManualClock()
        config = ServiceConfig(tenant_rate=1.0, tenant_burst=1.0)
        with _service(
            config=config,
            clock=clock,
            tenant_overrides={"vip": (100.0, 100.0)},
        ) as service:
            for _ in range(10):
                service.query(SQL, tenant="vip")
            service.query(SQL, tenant="alice")
            with pytest.raises(RateLimitExceeded):
                service.submit(SQL, tenant="alice")


class TestDegradation:
    def test_deep_queue_sheds_load(self):
        system = _system()
        config = ServiceConfig(
            workers=1, queue_depth=3, degrade_queue_fraction=0.5
        )
        with _service(system, config) as service:
            with ServiceFaultInjector(system) as faults:
                gate = faults.gate_queries()
                first = service.submit(SQL)
                shed = [service.submit(SQL2), service.submit(SQL3)]
                gate.set()
                full = first.result()
                degraded = [future.result() for future in shed]
            assert not full.degraded
            for result in degraded:
                assert result.degraded
                assert result.degradation == "load_shed"
                tags = set(result.result.column("provenance").tolist())
                assert tags == {"degraded"}
            assert service.stats.degraded == 2

    def test_degraded_answer_not_replayed_as_clean(self):
        system = _system()
        config = ServiceConfig(
            workers=1, queue_depth=3, degrade_queue_fraction=0.5
        )
        with _service(system, config) as service:
            with ServiceFaultInjector(system) as faults:
                gate = faults.gate_queries()
                first = service.submit(SQL)
                shed = service.submit(SQL2)
                gate.set()
                first.result()
                assert shed.result().degraded
            clean = service.query(SQL2)
            assert not clean.degraded
            tags = set(clean.result.column("provenance").tolist())
            assert "degraded" not in tags

    def test_open_breaker_degrades(self):
        clock = ManualClock()
        system = _system()
        with _service(
            system,
            breaker=BreakerConfig(
                failure_threshold=2, cooldown_seconds=30.0
            ),
            clock=clock,
        ) as service:
            with ServiceFaultInjector(system) as faults:
                faults.error_burst(
                    2, factory=lambda: AquaError("synopsis trouble")
                )
                for _ in range(2):
                    with pytest.raises(AquaError):
                        service.query(SQL)
            assert service.breaker("t").state == OPEN
            result = service.query(SQL)
            assert result.degraded
            assert result.degradation == "breaker_open"
            assert set(result.result.column("provenance").tolist()) == {
                "degraded"
            }
            assert service.stats.breakers["t"] == OPEN

    def test_breaker_recovers_through_probe(self):
        clock = ManualClock()
        system = _system()
        with _service(
            system,
            breaker=BreakerConfig(
                failure_threshold=1, cooldown_seconds=5.0
            ),
            clock=clock,
        ) as service:
            with ServiceFaultInjector(system) as faults:
                faults.error_burst(
                    1, factory=lambda: AquaError("synopsis trouble")
                )
                with pytest.raises(AquaError):
                    service.query(SQL)
            assert service.breaker("t").state == OPEN
            clock.advance(6.0)
            probe = service.query(SQL)  # half-open probe, full ladder
            assert not probe.degraded
            assert service.breaker("t").state == "closed"

    def test_breaker_open_raises_when_degradation_disabled(self):
        system = _system()
        config = ServiceConfig(degrade_on_breaker=False)
        with _service(
            system,
            config,
            breaker=BreakerConfig(failure_threshold=1),
        ) as service:
            with ServiceFaultInjector(system) as faults:
                faults.error_burst(
                    1, factory=lambda: AquaError("synopsis trouble")
                )
                with pytest.raises(AquaError):
                    service.query(SQL)
            with pytest.raises(CircuitOpenError):
                service.query(SQL)
            assert service.stats.outcomes.get("breaker_open") == 1

    def test_degraded_system_serves_sheds(self):
        cheap = _system()
        system = _system()
        config = ServiceConfig(
            workers=1, queue_depth=3, degrade_queue_fraction=0.5
        )
        with _service(
            system, config, degraded_system=cheap
        ) as service:
            with ServiceFaultInjector(system) as faults:
                gate = faults.gate_queries()
                first = service.submit(SQL)
                shed = service.submit(SQL2)
                gate.set()
                first.result()
                degraded = shed.result()
            assert degraded.degraded
            # Served by the fallback system: the primary's gate never saw it.
            assert set(degraded.result.column("provenance").tolist()) == {
                "degraded"
            }


class TestRetries:
    def test_transient_faults_retried_transparently(self):
        system = _system()
        with _service(system) as service:
            with ServiceFaultInjector(system) as faults:
                faults.error_burst(2)  # default: TransientError
                result = service.query(SQL)
            assert result.attempts == 3
            assert service.stats.retries == 2
            assert service.stats.outcomes == {"ok": 1}

    def test_exhausted_retries_surface_transient_error(self):
        system = _system()
        with _service(system) as service:
            with ServiceFaultInjector(system) as faults:
                faults.error_burst(10)
                with pytest.raises(TransientError):
                    service.query(SQL)
            assert service.stats.outcomes == {"error": 1}


class TestDeadlines:
    def test_expired_deadline_dies_in_queue(self):
        clock = ManualClock()
        with _service(clock=clock) as service:
            with pytest.raises(DeadlineExceeded) as excinfo:
                service.query(SQL, deadline=Deadline(0.0, clock=clock))
            assert excinfo.value.stage == "queue"
            assert service.stats.outcomes == {"deadline": 1}

    def test_slow_scan_dies_mid_execution_with_stage(self):
        clock = ManualClock()
        system = _system()
        with _service(system, clock=clock) as service:
            with ServiceFaultInjector(system) as faults:
                slow = faults.slow_scan("t", cost_seconds=0.5, clock=clock)
                with pytest.raises(DeadlineExceeded) as excinfo:
                    service.query(SQL, deadline=Deadline(1.0, clock=clock))
                assert excinfo.value.stage == "scan"
                assert slow.reads >= 2
            assert service.stats.outcomes == {"deadline": 1}

    def test_default_deadline_applies(self):
        clock = ManualClock()
        system = _system()
        config = ServiceConfig(default_deadline_seconds=1.0)
        with _service(system, config, clock=clock) as service:
            with ServiceFaultInjector(system) as faults:
                faults.slow_scan("t", cost_seconds=2.0, clock=clock)
                with pytest.raises(DeadlineExceeded):
                    service.query(SQL)

    def test_deadline_failure_leaves_no_partial_cache_state(self):
        """A query killed mid-GROUP BY must not poison either cache."""
        clock = ManualClock()
        system = _system()
        with _service(system, clock=clock) as service:
            with ServiceFaultInjector(system) as faults:
                faults.slow_scan("t", cost_seconds=0.5, clock=clock)
                with pytest.raises(DeadlineExceeded) as excinfo:
                    service.query(SQL, deadline=Deadline(1.0, clock=clock))
                assert excinfo.value.stage == "scan"
                # No partial answer was stored for the doomed query.
                assert len(system.answer_cache) == 0
            # Unhindered, the same query completes and *then* caches.
            first = service.query(SQL)
            assert first.result.num_rows == 3
            assert len(system.answer_cache) == 1
            before = system.answer_cache.stats.hits
            service.query(SQL)
            assert system.answer_cache.stats.hits == before + 1

    def test_system_answer_accepts_deadline_directly(self):
        clock = ManualClock()
        system = _system()
        with ServiceFaultInjector(system) as faults:
            faults.slow_scan("t", cost_seconds=5.0, clock=clock)
            with pytest.raises(DeadlineExceeded):
                system.answer(SQL, deadline=Deadline(1.0, clock=clock))


class TestErrorTaxonomy:
    def test_bad_sql_is_invalid(self):
        from repro.engine.sql import SqlError

        with _service() as service:
            with pytest.raises(SqlError):
                service.query("SELEC nonsense")
            assert service.stats.outcomes == {"invalid": 1}

    def test_unknown_table_is_invalid(self):
        from repro.errors import TableNotRegisteredError

        with _service() as service:
            with pytest.raises(TableNotRegisteredError):
                service.query("SELECT g, SUM(v) AS s FROM nope GROUP BY g")
            assert service.stats.outcomes == {"invalid": 1}


class TestObservability:
    def test_serve_metrics_registered(self):
        system = _system()
        with _service(system) as service:
            service.query(SQL)
            with pytest.raises(OverloadError):
                gated = ServiceFaultInjector(system)
                try:
                    gated.gate_queries()
                    futures = [
                        service.submit(SQL)
                        for _ in range(service.config.capacity)
                    ]
                    service.submit(SQL)
                finally:
                    gated.release()
                    for future in futures:
                        future.result()
                    gated.restore()
            names = set(system.metrics.names())
            assert "serve_requests_total" in names
            assert "serve_queue_wait_seconds" in names
            assert "serve_latency_seconds" in names
            assert "serve_rejected_total" in names
            assert "serve_queue_depth" in names
            text = system.metrics.to_prometheus()
            # Exposition labels are sorted by name for stable output.
            assert 'serve_requests_total{outcome="ok",tenant="default"}' in text

    def test_answer_trace_survives_serving(self):
        system = _system()
        system.tracer.enable()
        with _service(system) as service:
            result = service.query(SQL)
            trace = result.answer.trace
            assert trace is not None
            assert trace.root.name == "answer"
            assert trace.stage_seconds()  # per-stage timings captured


class TestConcurrentLoad:
    def test_deterministic_load_test(self):
        """Saturation -> bounded rejections; everything admitted completes."""
        system = _system()
        config = ServiceConfig(
            workers=4, queue_depth=4, degrade_queue_fraction=0.75
        )
        clients = 8
        per_client = 5
        results, errors = [], []
        lock = threading.Lock()

        with _service(system, config) as service:

            def client(k):
                for i in range(per_client):
                    try:
                        answer = service.query(SQL if i % 2 else SQL3)
                        with lock:
                            results.append(answer)
                    except (OverloadError, RateLimitExceeded) as exc:
                        with lock:
                            errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(k,))
                for k in range(clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = service.stats
        assert len(results) + len(errors) == clients * per_client
        assert stats.admitted == len(results)
        assert stats.rejected_overload == len(errors)
        assert stats.pending == 0
        # Every served answer is either full-service or honestly degraded.
        for answer in results:
            if answer.degraded:
                tags = set(answer.result.column("provenance").tolist())
                assert tags == {"degraded"}
