"""Token-bucket rate limiting: refill math, tenant isolation, typed errors."""

import pytest

from repro.errors import RateLimitExceeded
from repro.serve.deadline import ManualClock
from repro.serve.limiter import TenantRateLimiter, TokenBucket


class TestTokenBucket:
    def test_burst_then_empty(self):
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=ManualClock())
        assert [bucket.try_acquire() for _ in range(3)] == [True] * 3
        assert not bucket.try_acquire()

    def test_refills_at_rate(self):
        clock = ManualClock()
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
        assert bucket.try_acquire(2.0)
        assert not bucket.try_acquire()
        clock.advance(0.5)  # 2/s * 0.5s = 1 token back
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = ManualClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        clock.advance(100.0)
        assert bucket.available == pytest.approx(2.0)

    def test_retry_after(self):
        clock = ManualClock()
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        assert bucket.retry_after() == 0.0
        assert bucket.try_acquire()
        assert bucket.retry_after() == pytest.approx(0.5)

    def test_zero_rate_never_refills(self):
        bucket = TokenBucket(rate=0.0, burst=1.0, clock=ManualClock())
        assert bucket.try_acquire()
        assert bucket.retry_after() == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=-1.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)


class TestTenantRateLimiter:
    def test_disabled_by_default(self):
        limiter = TenantRateLimiter(clock=ManualClock())
        assert not limiter.enabled
        for _ in range(100):
            limiter.admit("anyone")  # never raises

    def test_enforces_default_limits(self):
        limiter = TenantRateLimiter(rate=1.0, burst=2.0, clock=ManualClock())
        limiter.admit("alice")
        limiter.admit("alice")
        with pytest.raises(RateLimitExceeded) as excinfo:
            limiter.admit("alice")
        assert excinfo.value.tenant == "alice"
        assert excinfo.value.retry_after_seconds == pytest.approx(1.0)

    def test_tenants_do_not_share_buckets(self):
        limiter = TenantRateLimiter(rate=1.0, burst=1.0, clock=ManualClock())
        limiter.admit("alice")
        limiter.admit("bob")  # bob's own bucket is still full
        with pytest.raises(RateLimitExceeded):
            limiter.admit("alice")

    def test_overrides_beat_default(self):
        clock = ManualClock()
        limiter = TenantRateLimiter(
            rate=1.0,
            burst=1.0,
            overrides={"vip": (100.0, 5.0)},
            clock=clock,
        )
        for _ in range(5):
            limiter.admit("vip")
        with pytest.raises(RateLimitExceeded):
            limiter.admit("vip")
        limiter.admit("alice")  # default burst of 1
        with pytest.raises(RateLimitExceeded):
            limiter.admit("alice")

    def test_refill_readmits(self):
        clock = ManualClock()
        limiter = TenantRateLimiter(rate=1.0, burst=1.0, clock=clock)
        limiter.admit("alice")
        with pytest.raises(RateLimitExceeded):
            limiter.admit("alice")
        clock.advance(1.0)
        limiter.admit("alice")

    def test_tenant_balances_reported(self):
        limiter = TenantRateLimiter(rate=1.0, burst=3.0, clock=ManualClock())
        limiter.admit("alice")
        balances = limiter.tenants()
        assert balances["alice"] == pytest.approx(2.0)
