"""Deadline primitives: manual clock, expiry, context propagation."""

import pytest

from repro.errors import DeadlineExceeded
from repro.serve.deadline import (
    Deadline,
    ManualClock,
    check_deadline,
    current_deadline,
    deadline_scope,
)


class TestManualClock:
    def test_starts_at_zero_and_advances(self):
        clock = ManualClock()
        assert clock() == 0.0
        assert clock.advance(1.5) == 1.5
        assert clock() == 1.5

    def test_never_moves_backward(self):
        clock = ManualClock(10.0)
        with pytest.raises(ValueError):
            clock.advance(-1.0)
        assert clock() == 10.0


class TestDeadline:
    def test_remaining_and_expiry(self):
        clock = ManualClock()
        deadline = Deadline(2.0, clock=clock)
        assert deadline.remaining == pytest.approx(2.0)
        assert not deadline.expired
        clock.advance(1.0)
        assert deadline.remaining == pytest.approx(1.0)
        clock.advance(1.0)
        assert deadline.expired
        assert deadline.remaining == pytest.approx(0.0)

    def test_check_raises_typed_error_with_stage(self):
        clock = ManualClock()
        deadline = Deadline(1.0, clock=clock)
        deadline.check("scan")  # not expired: no-op
        clock.advance(3.0)
        with pytest.raises(DeadlineExceeded) as excinfo:
            deadline.check("scan")
        assert excinfo.value.stage == "scan"
        assert excinfo.value.elapsed_seconds == pytest.approx(3.0)

    def test_zero_deadline_is_born_expired(self):
        deadline = Deadline(0.0, clock=ManualClock())
        assert deadline.expired
        with pytest.raises(DeadlineExceeded):
            deadline.check("queue")

    def test_negative_seconds_rejected(self):
        with pytest.raises(ValueError):
            Deadline(-1.0)

    def test_resolve(self):
        clock = ManualClock()
        assert Deadline.resolve(None) is None
        existing = Deadline(1.0, clock=clock)
        assert Deadline.resolve(existing) is existing
        resolved = Deadline.resolve(2.5, clock=clock)
        assert resolved.seconds == 2.5
        with pytest.raises(TypeError):
            Deadline.resolve(True)
        with pytest.raises(TypeError):
            Deadline.resolve("3")


class TestDeadlineScope:
    def test_scope_installs_and_restores(self):
        clock = ManualClock()
        deadline = Deadline(1.0, clock=clock)
        assert current_deadline() is None
        with deadline_scope(deadline):
            assert current_deadline() is deadline
        assert current_deadline() is None

    def test_none_scope_is_a_no_op(self):
        with deadline_scope(None):
            assert current_deadline() is None
            check_deadline("anywhere")  # must not raise

    def test_inner_scope_wins(self):
        clock = ManualClock()
        outer = Deadline(10.0, clock=clock)
        inner = Deadline(1.0, clock=clock)
        with deadline_scope(outer):
            with deadline_scope(inner):
                assert current_deadline() is inner
            assert current_deadline() is outer

    def test_check_deadline_raises_through_scope(self):
        clock = ManualClock()
        with deadline_scope(Deadline(1.0, clock=clock)):
            clock.advance(2.0)
            with pytest.raises(DeadlineExceeded) as excinfo:
                check_deadline("partition_scan")
        assert excinfo.value.stage == "partition_scan"

    def test_scope_restored_after_exception(self):
        clock = ManualClock()
        with pytest.raises(RuntimeError):
            with deadline_scope(Deadline(1.0, clock=clock)):
                raise RuntimeError("boom")
        assert current_deadline() is None
