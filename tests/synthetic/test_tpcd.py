"""Unit tests for the lineitem generator (Section 7.1.1)."""

import numpy as np
import pytest

from repro.sampling import group_counts
from repro.synthetic import (
    GROUPING_COLUMNS,
    LINEITEM_SCHEMA,
    LineitemConfig,
    generate_lineitem,
)


class TestConfig:
    def test_distinct_per_column(self):
        assert LineitemConfig(num_groups=1000).distinct_per_column == 10
        assert LineitemConfig(num_groups=27).distinct_per_column == 3
        assert LineitemConfig(num_groups=10).distinct_per_column == 2

    def test_actual_num_groups(self):
        assert LineitemConfig(num_groups=1000).actual_num_groups == 1000
        assert LineitemConfig(num_groups=10).actual_num_groups == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            LineitemConfig(table_size=0)
        with pytest.raises(ValueError):
            LineitemConfig(group_skew=-0.5)


class TestGeneration:
    @pytest.fixture(scope="class")
    def table(self):
        return generate_lineitem(
            LineitemConfig(table_size=30_000, num_groups=64, group_skew=1.0)
        )

    def test_schema(self, table):
        assert table.schema == LINEITEM_SCHEMA

    def test_row_count(self, table):
        assert table.num_rows == 30_000

    def test_lid_sequential(self, table):
        assert table.column("l_id").tolist() == list(range(1, 30_001))

    def test_group_count(self, table):
        counts = group_counts(table, GROUPING_COLUMNS)
        assert len(counts) == 64
        assert all(v >= 1 for v in counts.values())

    def test_distinct_values_per_column(self, table):
        for name in GROUPING_COLUMNS:
            assert len(np.unique(table.column(name))) == 4  # 64^(1/3)

    def test_group_sizes_skewed(self, table):
        counts = sorted(group_counts(table, GROUPING_COLUMNS).values())
        assert counts[-1] > 5 * counts[0]

    def test_zero_skew_uniform_groups(self):
        table = generate_lineitem(
            LineitemConfig(table_size=6400, num_groups=64, group_skew=0.0)
        )
        counts = group_counts(table, GROUPING_COLUMNS)
        assert set(counts.values()) == {100}

    def test_aggregate_ranges(self, table):
        qty = table.column("l_quantity")
        assert qty.min() >= 1 and qty.max() <= 50
        price = table.column("l_extendedprice")
        assert price.min() >= 900

    def test_reproducible_by_seed(self):
        config = LineitemConfig(table_size=5000, num_groups=27, seed=5)
        assert generate_lineitem(config) == generate_lineitem(config)

    def test_different_seeds_differ(self):
        a = generate_lineitem(LineitemConfig(table_size=5000, num_groups=27, seed=1))
        b = generate_lineitem(LineitemConfig(table_size=5000, num_groups=27, seed=2))
        assert a != b

    def test_lid_uncorrelated_with_groups(self, table):
        """Row order is shuffled, so an l_id range hits all groups."""
        head = table.filter(table.column("l_id") <= 5000)
        counts = group_counts(head, GROUPING_COLUMNS)
        assert len(counts) > 50  # nearly all 64 groups appear

    def test_table_smaller_than_groups_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            generate_lineitem(LineitemConfig(table_size=10, num_groups=1000))
