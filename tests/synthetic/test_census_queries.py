"""Unit tests for the census generator and the paper's query classes."""

import numpy as np
import pytest

from repro.engine import Between
from repro.sampling import group_counts
from repro.synthetic import (
    CensusConfig,
    STATE_NAMES,
    generate_census,
    qg0,
    qg0_set,
    qg2,
    qg3,
)


class TestCensus:
    @pytest.fixture(scope="class")
    def table(self):
        return generate_census(CensusConfig(population=20_000, num_states=20))

    def test_population(self, table):
        assert table.num_rows == 20_000

    def test_states_subset(self, table):
        states = set(np.unique(table.column("st")).tolist())
        assert states <= set(STATE_NAMES)
        assert len(states) == 20

    def test_state_sizes_skewed(self, table):
        counts = group_counts(table, ["st"])
        sizes = sorted(counts.values())
        assert sizes[-1] > 5 * sizes[0]

    def test_genders(self, table):
        assert set(np.unique(table.column("gen")).tolist()) == {"M", "F"}

    def test_income_positive(self, table):
        assert (table.column("sal") > 0).all()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CensusConfig(num_states=0)
        with pytest.raises(ValueError):
            CensusConfig(population=10, num_states=20)


class TestQueries:
    def test_qg2_shape(self):
        query = qg2().query
        assert query.group_by == ("l_returnflag", "l_linestatus")
        assert len(query.aggregates()) == 2

    def test_qg3_shape(self):
        query = qg3().query
        assert query.group_by == (
            "l_returnflag", "l_linestatus", "l_shipdate",
        )

    def test_qg0_range(self):
        query = qg0(100, 700).query
        assert query.group_by == ()
        assert isinstance(query.where, Between)

    def test_qg0_set_count_and_selectivity(self, rng):
        queries = qg0_set(100_000, num_queries=20, selectivity=0.07, rng=rng)
        assert len(queries) == 20
        for q in queries:
            where = q.query.where
            low = where.low.value
            high = where.high.value
            assert high - low == 7000
            assert 0 <= low <= 100_000

    def test_qg0_set_invalid_selectivity(self, rng):
        with pytest.raises(ValueError):
            qg0_set(1000, selectivity=0.0, rng=rng)

    def test_custom_table_name(self):
        assert "FROM my_table" in qg2("my_table").sql
