"""Unit and integration tests for the TPC-D star schema generator."""

import numpy as np
import pytest

from repro.aqua import build_join_synopsis, materialize_star_join
from repro.core import Congress
from repro.engine import Catalog, execute, parse_query
from repro.synthetic import NATIONS, TpcdStarConfig, generate_tpcd_star


@pytest.fixture(scope="module")
def star_setup():
    catalog = Catalog()
    star, tables = generate_tpcd_star(
        TpcdStarConfig(num_orders=4000, seed=5), catalog
    )
    return catalog, star, tables


class TestGeneration:
    def test_all_tables_registered(self, star_setup):
        catalog, __, __tables = star_setup
        for name in ("part", "supplier", "customer", "orders",
                     "orders_wide", "lineitem"):
            assert name in catalog

    def test_fanout_range(self, star_setup):
        __, __, tables = star_setup
        lineitems = tables["lineitem"].num_rows
        orders = tables["orders"].num_rows
        assert orders <= lineitems <= 7 * orders

    def test_foreign_keys_resolve(self, star_setup):
        """Every lineitem FK must hit a dimension row (no dangling)."""
        __, __, tables = star_setup
        lineitem = tables["lineitem"]
        assert set(np.unique(lineitem.column("l_partkey"))) <= set(
            tables["part"].column("p_partkey").tolist()
        )
        assert set(np.unique(lineitem.column("l_suppkey"))) <= set(
            tables["supplier"].column("s_suppkey").tolist()
        )
        assert set(np.unique(lineitem.column("l_orderkey"))) <= set(
            tables["orders"].column("o_orderkey").tolist()
        )

    def test_orders_wide_flattens_customer(self, star_setup):
        __, __, tables = star_setup
        wide = tables["orders_wide"]
        assert "c_nation" in wide.schema
        assert wide.num_rows == tables["orders"].num_rows

    def test_nation_skew(self, star_setup):
        __, __, tables = star_setup
        nations = tables["customer"].column("c_nation")
        values, counts = np.unique(nations, return_counts=True)
        assert counts.max() > 3 * counts.min()

    def test_nations_from_catalog(self, star_setup):
        __, __, tables = star_setup
        observed = set(np.unique(tables["supplier"].column("s_nation")))
        assert observed <= set(NATIONS)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TpcdStarConfig(num_orders=0)

    def test_reproducible(self):
        c1, c2 = Catalog(), Catalog()
        __, t1 = generate_tpcd_star(TpcdStarConfig(num_orders=500, seed=9), c1)
        __, t2 = generate_tpcd_star(TpcdStarConfig(num_orders=500, seed=9), c2)
        assert t1["lineitem"] == t2["lineitem"]


class TestJoinSynopsisOverStar:
    def test_materialize_preserves_cardinality(self, star_setup):
        catalog, star, tables = star_setup
        wide = materialize_star_join(catalog, star)
        assert wide.num_rows == tables["lineitem"].num_rows
        for column in ("c_nation", "p_brand", "s_nation", "o_orderpriority"):
            assert column in wide.schema

    def test_rollup_on_dimension_attributes(self, star_setup):
        catalog, star, __ = star_setup
        rng = np.random.default_rng(0)
        sample, wide = build_join_synopsis(
            catalog, star, ["c_nation", "p_brand"], 1500,
            strategy=Congress(), register_as="li_wide", rng=rng,
        )
        assert sample.total_sample_size == 1500

        from repro.metrics import groupby_error
        from repro.rewrite import Integrated

        sql = (
            "select c_nation, p_brand, sum(l_extendedprice) rev "
            "from li_wide group by c_nation, p_brand"
        )
        query = parse_query(sql)
        exact = execute(query, catalog)
        rewrite = Integrated()
        synopsis = rewrite.install(sample, "li_wide", catalog)
        approx = rewrite.plan(query, synopsis).execute(catalog)
        error = groupby_error(
            exact, approx, ["c_nation", "p_brand"], "rev"
        )
        assert not error.missing_groups
        assert error.eps_l1 < 30
