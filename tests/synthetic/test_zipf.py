"""Unit tests for Zipf utilities."""

import numpy as np
import pytest

from repro.synthetic import ninety_ten_share, zipf_choice, zipf_sizes, zipf_weights


class TestZipfWeights:
    def test_normalized(self):
        assert zipf_weights(100, 0.86).sum() == pytest.approx(1.0)

    def test_zero_skew_is_uniform(self):
        weights = zipf_weights(10, 0.0)
        np.testing.assert_allclose(weights, 0.1)

    def test_monotone_decreasing(self):
        weights = zipf_weights(50, 1.0)
        assert (np.diff(weights) < 0).all()

    def test_higher_z_more_skewed(self):
        light = zipf_weights(100, 0.5)
        heavy = zipf_weights(100, 1.5)
        assert heavy[0] > light[0]

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(10, -1.0)


class TestZipfSizes:
    def test_total_preserved(self):
        sizes = zipf_sizes(10_000, 37, 1.2)
        assert sizes.sum() == 10_000

    def test_minimum_enforced(self):
        sizes = zipf_sizes(1000, 100, 1.5)
        assert sizes.min() >= 1

    def test_uniform_split(self):
        sizes = zipf_sizes(100, 10, 0.0)
        assert (sizes == 10).all()

    def test_skew_ratio(self):
        sizes = zipf_sizes(100_000, 100, 1.5)
        assert sizes[0] / sizes[-1] > 50

    def test_infeasible_rejected(self):
        with pytest.raises(ValueError):
            zipf_sizes(5, 10, 1.0)

    def test_custom_minimum(self):
        sizes = zipf_sizes(1000, 20, 1.5, min_size=10)
        assert sizes.min() >= 10
        assert sizes.sum() == 1000


class TestZipfChoice:
    def test_values_from_domain(self, rng):
        domain = ["a", "b", "c"]
        draws = zipf_choice(domain, 1.0, 100, rng)
        assert set(draws.tolist()) <= set(domain)

    def test_rank_one_most_frequent(self):
        rng = np.random.default_rng(1)
        draws = zipf_choice(np.arange(10), 1.5, 5000, rng)
        counts = np.bincount(draws, minlength=10)
        assert counts[0] == counts.max()

    def test_shuffled_ranks_change_favourite(self):
        rng = np.random.default_rng(2)
        draws = zipf_choice(np.arange(10), 1.5, 5000, rng, shuffle_ranks=True)
        counts = np.bincount(draws, minlength=10)
        # With shuffling, rank 1 usually isn't domain[0]; just check skew
        # exists and the draw is valid.
        assert counts.max() > 2 * counts.min()


class TestNinetyTen:
    def test_z086_is_roughly_ninety_ten(self):
        """The paper: z=0.86 'results in a 90-10 distribution'."""
        share = ninety_ten_share(1000, 0.86)
        # At this scale the top 10% hold ~60-75%; at higher z it's 90+.
        # Verify monotonicity and that 0.86 is markedly skewed.
        assert share > 0.5
        assert ninety_ten_share(1000, 1.5) > share > ninety_ten_share(1000, 0.3)
