"""Roll-up subsumption: answer coarse group-bys from cached fine states.

The paper's Section 6 builds the congressional datacube by *merging* the
strata of a fine grouping into every coarser roll-up.  This module runs
that construction in reverse at answer time: when a query misses the
answer cache, a previously-answered query over the same synopsis may
have left behind a :class:`ReuseSnapshot` -- per-stratum expansion
moments at the finest (stratification) granularity -- from which any
coarser ``GROUP BY`` over a subsumed predicate can be finalized without
touching the synopsis rows again.

Subsumption rules (all must hold, checked by :class:`RollupIndex`):

* same base table, same table **version**, same synopsis (allocation /
  rewrite strategy / budget / stratification), same confidence;
* the probe's ``GROUP BY`` is a subset of the stratification columns
  (each stratum then lies wholly inside one answer group);
* the probe's canonical WHERE conjuncts are a superset of the entry's:
  the entry predicate covers at least the probe's rows, and every
  *extra* probe conjunct references only stratification columns, so it
  is constant per stratum and selects whole strata (datacube slicing);
* every probe aggregate is an expansion-estimable SUM/COUNT/AVG whose
  input expression has moments in the snapshot.

Bit-identity: the snapshot's per-stratum moments are ``np.bincount``
reductions of exactly the arrays :func:`repro.estimators.point.estimate`
builds, and :meth:`ReuseSnapshot.finalize` is the *only* arithmetic that
turns moments into estimates and Chebyshev half-widths -- the direct
answer path uses it too (see ``AquaSystem._attach_error_bounds``).  Two
routes to the same coarse answer therefore agree bit-for-bit, which the
Hypothesis suite in ``tests/aqua/test_reuse_properties.py`` asserts.

Degraded and streaming answers never register snapshots (they do not
represent a completed synopsis scan at a single version).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..engine.aggregates import (
    Aggregate,
    AggregateState,
    finalize_state,
    rollup_state,
)
from ..engine.predicates import Predicate
from ..engine.render import render_expression, render_predicate
from ..engine.table import Table
from ..plan.canonical import canonicalize_expression, canonicalize_predicate
from ..plan.optimizer import _conjoin, _split_and
from ..sampling.groups import GroupKey, make_key, project_key
from ..sampling.stratified import StratifiedSample

__all__ = [
    "ONES_KEY",
    "ReuseSnapshot",
    "RollupAnswer",
    "RollupIndex",
    "RollupIndexStats",
    "moment_keys",
]

# Moment-table key for the implicit all-ones column: COUNT is the scaled
# sum of ones, and AVG's denominator is the same state.  ``Lit(1)``
# renders to "1", so an explicit SUM(1) shares it, correctly.
ONES_KEY = "1"


def moment_keys(aggregate: Aggregate) -> Tuple[str, ...]:
    """Canonical moment-table keys ``aggregate`` needs to finalize."""
    if aggregate.func == "count":
        return (ONES_KEY,)
    key = render_expression(canonicalize_expression(aggregate.expr))
    if aggregate.func == "avg":
        return (key, ONES_KEY)
    return (key,)


@dataclass(frozen=True)
class _ExprMoments:
    """Per-stratum moments for one aggregate input expression.

    ``state`` is a mergeable SUM :class:`AggregateState` over the scaled,
    predicate-masked values (the expansion estimator's numerator), one
    entry per stratum; ``var_contrib`` is each stratum's contribution
    ``N_h^2 (1 - n_h/N_h) s_h^2 / n_h`` to the estimator's variance.
    Both roll up to any coarser grouping by pure summation.
    """

    state: AggregateState
    var_contrib: np.ndarray


@dataclass(frozen=True)
class RollupAnswer:
    """A finalized roll-up: sorted group keys with estimates and bounds."""

    group_by: Tuple[str, ...]
    keys: Tuple[GroupKey, ...]
    support: np.ndarray
    values: Dict[str, np.ndarray]
    halfwidths: Dict[str, np.ndarray]


@dataclass(frozen=True)
class ReuseSnapshot:
    """Per-stratum expansion moments from one answered synopsis query.

    Everything here is finer-grained than any servable probe: strata are
    the synopsis' stratification groups, and the moments are masked by
    the entry query's WHERE predicate only (not by its GROUP BY), so one
    snapshot serves every coarser grouping and every whole-strata slice.
    """

    base_name: str
    version: int
    synopsis_signature: Tuple
    grouping_columns: Tuple[str, ...]
    entry_group_by: Tuple[str, ...]
    conjuncts: Tuple[str, ...]
    confidence: float
    describe_source: str
    stratum_keys: Tuple[GroupKey, ...]
    key_table: Table
    populations: np.ndarray
    sizes: np.ndarray
    support: np.ndarray
    moments: Dict[str, _ExprMoments]

    @classmethod
    def build(
        cls,
        sample: StratifiedSample,
        predicate: Optional[Predicate],
        aggregates: Sequence[Aggregate],
        *,
        base_name: str,
        version: int,
        synopsis_signature: Tuple,
        confidence: float,
        entry_group_by: Tuple[str, ...] = (),
        describe_source: str = "",
    ) -> Optional["ReuseSnapshot"]:
        """Scan the sample once and record per-stratum moments.

        Returns ``None`` for empty samples.  Mirrors the row assembly of
        :func:`repro.estimators.point.estimate` exactly (same strata
        order, same concatenation, same masking) so per-stratum bincounts
        match what a direct estimate would accumulate.
        """
        strata = [s for s in sample.strata.values() if s.sample_size > 0]
        if not strata:
            return None
        base = sample.base_table
        indices = np.concatenate([s.row_indices for s in strata])
        sf = np.concatenate(
            [np.full(s.sample_size, s.scale_factor) for s in strata]
        )
        stratum_ids = np.concatenate(
            [
                np.full(s.sample_size, i, dtype=np.int64)
                for i, s in enumerate(strata)
            ]
        )
        rows = base.take(indices)
        qualifies = (
            predicate.evaluate(rows)
            if predicate is not None
            else np.ones(rows.num_rows, dtype=bool)
        )
        num_strata = len(strata)
        populations = np.array([s.population for s in strata], dtype=np.float64)
        sizes = np.array([s.sample_size for s in strata], dtype=np.float64)
        support = np.bincount(
            stratum_ids[qualifies], minlength=num_strata
        ).astype(np.int64)

        needed: Dict[str, Optional[object]] = {ONES_KEY: None}
        for aggregate in aggregates:
            if aggregate.func == "count":
                continue
            expr = canonicalize_expression(aggregate.expr)
            needed.setdefault(render_expression(expr), expr)

        moments: Dict[str, _ExprMoments] = {}
        with np.errstate(divide="ignore", invalid="ignore"):
            fpc = 1.0 - sizes / populations
            for key, expr in needed.items():
                if expr is None:
                    values = np.ones(rows.num_rows)
                else:
                    values = np.asarray(expr.evaluate(rows), dtype=np.float64)
                masked = np.where(qualifies, values, 0.0)
                scaled = np.bincount(
                    stratum_ids, weights=masked * sf, minlength=num_strata
                )
                sums = np.bincount(
                    stratum_ids, weights=masked, minlength=num_strata
                )
                sumsq = np.bincount(
                    stratum_ids,
                    weights=masked * masked,
                    minlength=num_strata,
                )
                means = sums / sizes
                sample_var = np.where(
                    sizes > 1,
                    np.maximum(sumsq - sizes * means * means, 0.0)
                    / np.maximum(sizes - 1.0, 1.0),
                    0.0,
                )
                var_contrib = (
                    populations * populations * fpc * sample_var / sizes
                )
                moments[key] = _ExprMoments(
                    state=AggregateState(
                        "sum", support.astype(np.float64), scaled
                    ),
                    var_contrib=var_contrib,
                )

        stratum_keys = tuple(make_key(s.key) for s in strata)
        grouping = tuple(sample.grouping_columns)
        key_schema = [base.schema.column(name) for name in grouping]
        from ..engine.schema import Schema

        key_table = Table.from_rows(Schema(key_schema), stratum_keys)
        return cls(
            base_name=base_name,
            version=version,
            synopsis_signature=synopsis_signature,
            grouping_columns=grouping,
            entry_group_by=tuple(entry_group_by),
            conjuncts=_conjunct_texts(predicate),
            confidence=confidence,
            describe_source=describe_source,
            stratum_keys=stratum_keys,
            key_table=key_table,
            populations=populations,
            sizes=sizes,
            support=support,
            moments=moments,
        )

    def can_finalize(
        self,
        group_by: Sequence[str],
        aggregates: Sequence[Aggregate],
    ) -> bool:
        """Whether this snapshot has the grouping and moments to serve."""
        if not set(group_by) <= set(self.grouping_columns):
            return False
        for aggregate in aggregates:
            if aggregate.func not in ("sum", "count", "avg"):
                return False
            if any(k not in self.moments for k in moment_keys(aggregate)):
                return False
        return True

    def finalize(
        self,
        group_by: Sequence[str],
        aggregates: Sequence[Aggregate],
        extra_predicate: Optional[Predicate] = None,
    ) -> RollupAnswer:
        """Roll the per-stratum states up to ``group_by`` and finalize.

        ``extra_predicate`` (conjuncts over stratification columns only)
        selects whole strata before the roll-up -- datacube slicing.
        Groups with zero qualifying sample tuples are absent, mirroring
        :func:`repro.estimators.point.estimate`.
        """
        if not self.can_finalize(group_by, aggregates):
            raise ValueError(
                f"snapshot over {self.grouping_columns} cannot finalize "
                f"GROUP BY {tuple(group_by)}"
            )
        num_strata = len(self.stratum_keys)
        included = np.ones(num_strata, dtype=bool)
        if extra_predicate is not None:
            included = np.asarray(
                extra_predicate.evaluate(self.key_table), dtype=bool
            )
        idx = np.flatnonzero(included)

        projected = [
            project_key(self.stratum_keys[i], self.grouping_columns, group_by)
            for i in idx
        ]
        ordered_keys = sorted(set(projected))
        gid = {key: g for g, key in enumerate(ordered_keys)}
        targets = np.array(
            [gid[key] for key in projected], dtype=np.int64
        ).reshape(len(idx))
        num_groups = len(ordered_keys)

        support = np.zeros(num_groups, dtype=np.int64)
        np.add.at(support, targets, self.support[idx])

        finalized: Dict[str, np.ndarray] = {}
        variances: Dict[str, np.ndarray] = {}
        for key in set(
            k for aggregate in aggregates for k in moment_keys(aggregate)
        ):
            entry = self.moments[key]
            sliced = AggregateState(
                "sum", entry.state.count[idx], entry.state.total[idx]
            )
            coarse = rollup_state(sliced, targets, num_groups)
            finalized[key] = finalize_state(coarse)
            variances[key] = np.bincount(
                targets,
                weights=entry.var_contrib[idx],
                minlength=num_groups,
            )

        keep = support > 0
        values: Dict[str, np.ndarray] = {}
        halfwidths: Dict[str, np.ndarray] = {}
        scale = float(np.sqrt(1.0 - self.confidence))
        for aggregate in aggregates:
            if aggregate.func == "count":
                value = finalized[ONES_KEY]
                variance = variances[ONES_KEY]
            elif aggregate.func == "sum":
                key = moment_keys(aggregate)[0]
                value = finalized[key]
                variance = variances[key]
            else:  # avg: ratio estimator with delta-method variance
                key = moment_keys(aggregate)[0]
                num, num_var = finalized[key], variances[key]
                den, den_var = finalized[ONES_KEY], variances[ONES_KEY]
                with np.errstate(divide="ignore", invalid="ignore"):
                    value = np.where(den != 0, num / den, np.nan)
                    variance = np.where(
                        den != 0,
                        (num_var + value * value * den_var) / (den * den),
                        np.nan,
                    )
            with np.errstate(invalid="ignore"):
                half = np.where(
                    variance >= 0, np.sqrt(variance) / scale, np.nan
                )
            values[aggregate.alias] = value[keep]
            halfwidths[aggregate.alias] = half[keep]

        kept_keys = tuple(
            key for key, ok in zip(ordered_keys, keep) if ok
        )
        return RollupAnswer(
            group_by=tuple(group_by),
            keys=kept_keys,
            support=support[keep],
            values=values,
            halfwidths=halfwidths,
        )


def _conjunct_texts(predicate: Optional[Predicate]) -> Tuple[str, ...]:
    from ..plan.canonical import predicate_conjuncts

    return predicate_conjuncts(predicate)


@dataclass
class RollupIndexStats:
    """Counters for the subsumption index (thread-safe snapshot)."""

    entries: int = 0
    hits: int = 0
    misses: int = 0
    registrations: int = 0
    invalidations: int = 0

    def describe(self) -> str:
        return (
            f"rollup index: entries={self.entries} hits={self.hits} "
            f"misses={self.misses} registered={self.registrations} "
            f"invalidated={self.invalidations}"
        )


@dataclass(frozen=True)
class _Match:
    """A successful subsumption lookup."""

    snapshot: ReuseSnapshot
    extra_predicate: Optional[Predicate]
    extra_conjuncts: Tuple[str, ...] = ()


class RollupIndex:
    """Bounded per-table index of :class:`ReuseSnapshot` entries.

    LRU-bounded; thread-safe.  Entries are keyed by
    ``(table, version, synopsis, predicate fingerprint, confidence)`` so
    re-registering the same logical scan replaces rather than grows, and
    invalidation by table name drops every entry atomically with the
    answer-cache entries it mirrors (callers hold the table lock).
    """

    def __init__(self, capacity: int = 64):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple, ReuseSnapshot]" = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._registrations = 0
        self._invalidations = 0

    def _key(self, snapshot: ReuseSnapshot) -> Tuple:
        return (
            snapshot.base_name,
            snapshot.version,
            snapshot.synopsis_signature,
            snapshot.conjuncts,
            snapshot.confidence,
        )

    def register(self, snapshot: ReuseSnapshot) -> None:
        with self._lock:
            key = self._key(snapshot)
            if key in self._entries:
                self._entries.pop(key)
            self._entries[key] = snapshot
            self._registrations += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def lookup(
        self,
        *,
        base_name: str,
        version: int,
        synopsis_signature: Tuple,
        where: Optional[Predicate],
        group_by: Sequence[str],
        aggregates: Sequence[Aggregate],
        confidence: float,
        count: bool = True,
    ) -> Optional[_Match]:
        """Find a snapshot that subsumes the probe, or ``None``.

        Prefers the candidate with the fewest extra conjuncts (an exact
        predicate match beats one that needs slicing).  ``count=False``
        probes without touching the hit/miss counters or LRU order (used
        by ``explain``).
        """
        if where is not None:
            canonical = canonicalize_predicate(where)
            parts = _split_and(canonical)
            texts = [render_predicate(part) for part in parts]
        else:
            parts, texts = [], []
        probe_set = set(texts)

        best: Optional[_Match] = None
        with self._lock:
            candidates = [
                snapshot
                for snapshot in self._entries.values()
                if snapshot.base_name == base_name
                and snapshot.version == version
                and snapshot.synopsis_signature == synopsis_signature
                and snapshot.confidence == confidence
            ]
        for snapshot in candidates:
            entry_set = set(snapshot.conjuncts)
            if not entry_set <= probe_set:
                continue
            extra = [
                (part, text)
                for part, text in zip(parts, texts)
                if text not in entry_set
            ]
            if any(
                not set(part.referenced_columns())
                <= set(snapshot.grouping_columns)
                for part, _ in extra
            ):
                continue
            if not snapshot.can_finalize(group_by, aggregates):
                continue
            if best is not None and len(best.extra_conjuncts) <= len(extra):
                continue
            best = _Match(
                snapshot=snapshot,
                extra_predicate=(
                    _conjoin([part for part, _ in extra]) if extra else None
                ),
                extra_conjuncts=tuple(text for _, text in extra),
            )
        if count:
            with self._lock:
                if best is not None:
                    self._hits += 1
                    self._entries.move_to_end(self._key(best.snapshot))
                else:
                    self._misses += 1
        return best

    def invalidate(self, base_name: str) -> int:
        """Drop every entry for ``base_name``; returns the count dropped."""
        with self._lock:
            stale = [
                key for key in self._entries if key[0] == base_name
            ]
            for key in stale:
                self._entries.pop(key)
            self._invalidations += len(stale)
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._invalidations += len(self._entries)
            self._entries.clear()

    def stats(self) -> RollupIndexStats:
        with self._lock:
            return RollupIndexStats(
                entries=len(self._entries),
                hits=self._hits,
                misses=self._misses,
                registrations=self._registrations,
                invalidations=self._invalidations,
            )
