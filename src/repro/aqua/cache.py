"""Bounded LRU cache for served approximate answers.

Identical aggregate queries are common in dashboard-style workloads; the
synopsis scan is already fast, but parse + rewrite + scan + error bounds +
guard still cost a pipeline per call.  :class:`AnswerCache` memoizes whole
:class:`~repro.aqua.system.ApproximateAnswer` objects.

Correctness is carried by the key, not by heuristics:

* the key includes the base table's *data version*, a counter
  :class:`~repro.aqua.system.AquaSystem` bumps on every ``insert()``,
  pending-row flush, synopsis build/refresh, and re-registration -- so any
  mutation invalidates all prior entries for that table at lookup time;
* the query is keyed by its alias-insensitive *canonical fingerprint*
  (:func:`repro.plan.canonicalize_query`), so semantically equivalent
  spellings -- reordered conjuncts, renamed output aliases, permuted
  GROUP BY columns -- share one entry, which the system reconciles back
  to the probe's spelling on a hit;
* serve-time knobs that change the answer (guard policy thresholds,
  confidence, bound method) are folded into the key as a fingerprint;
* guard-*degraded* answers (repairs, exact fallbacks, dropped groups) are
  never stored: a degraded answer reflects transient synopsis trouble and
  must not be replayed as a clean one.

Hit/miss counts are tracked locally and (when a registry is supplied)
mirrored to ``aqua_answer_cache_{hits,misses,evictions}_total``; semantic
tier attribution (``exact`` / ``canonical`` / ``rollup``, recorded by the
system's tier ladder via :meth:`AnswerCache.record_tier_hit`) is mirrored
to ``aqua_answer_cache_semantic_hits_total{tier=...}``.  See
``docs/CACHING.md`` for the tier ladder.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Hashable, Optional

from ..obs import MetricsRegistry

__all__ = ["AnswerCache", "CacheStats"]


@dataclass(frozen=True)
class CacheStats:
    """Cumulative cache effectiveness counters.

    ``hits``/``misses`` count lookups against the entry map;
    ``exact_hits``/``canonical_hits``/``rollup_hits`` attribute served
    answers to the semantic tier that produced them (roll-up hits are
    map *misses* served from the subsumption index, so
    ``hits + rollup_hits`` is the total served without recomputation).
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    capacity: int = 0
    exact_hits: int = 0
    canonical_hits: int = 0
    rollup_hits: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def semantic_hit_rate(self) -> float:
        """Answers served by any tier over all lookups."""
        total = self.hits + self.misses
        return (self.hits + self.rollup_hits) / total if total else 0.0

    def describe(self) -> str:
        return (
            f"answer cache: {self.size}/{self.capacity} entries, "
            f"{self.hits} hits / {self.misses} misses "
            f"({self.hit_rate:.0%} hit rate), {self.evictions} evicted\n"
            f"tiers: exact={self.exact_hits} "
            f"canonical={self.canonical_hits} rollup={self.rollup_hits} "
            f"({self.semantic_hit_rate:.0%} served without recomputation)"
        )


class AnswerCache:
    """A bounded least-recently-used answer store.

    Keys are opaque hashables built by the caller (see
    :meth:`AquaSystem._cache_key`): ``(table, version, canonical
    fingerprint, policy fingerprint, ...)``.  ``get`` promotes on hit;
    ``put`` evicts the least-recently-used entry once ``capacity`` is
    exceeded.

    Thread-safe: the serving layer's worker pool hits one shared cache
    concurrently, so every entry-map access (including the LRU
    ``move_to_end`` that makes even ``get`` a write) runs under one lock.
    Cached values are treated as immutable by all callers.
    """

    def __init__(
        self,
        capacity: int = 128,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._metrics = metrics
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._tier_hits: Dict[str, int] = {}

    def attach_metrics(self, metrics: Optional[MetricsRegistry]) -> None:
        """(Re)bind the registry the cache mirrors its counters into."""
        self._metrics = metrics

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Hashable):
        """The cached value for ``key`` (promoted to most-recent), or None."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                self._count("aqua_answer_cache_misses_total")
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            self._count("aqua_answer_cache_hits_total")
            return entry

    def peek(self, key: Hashable):
        """The cached value for ``key`` without counting or promoting.

        Used by ``explain`` to report which tier *would* serve a query
        without perturbing the hit/miss counters or the LRU order.
        """
        with self._lock:
            return self._entries.get(key)

    def record_tier_hit(self, tier: str) -> None:
        """Attribute one served answer to a semantic tier.

        ``tier`` is ``"exact"``, ``"canonical"``, or ``"rollup"``;
        mirrored to ``aqua_answer_cache_semantic_hits_total{tier=...}``
        when a metrics registry is attached.
        """
        with self._lock:
            self._tier_hits[tier] = self._tier_hits.get(tier, 0) + 1
        if self._metrics is not None and self._metrics.enabled:
            self._metrics.counter(
                "aqua_answer_cache_semantic_hits_total",
                "Answers served without recomputation, by semantic tier "
                "(exact/canonical/rollup).",
                ("tier",),
            ).inc(tier=tier)

    def put(self, key: Hashable, value) -> None:
        """Store ``value``, evicting the LRU entry when over capacity."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
                self._count("aqua_answer_cache_evictions_total")

    def invalidate(self, table: Optional[str] = None) -> int:
        """Drop entries (all, or those whose key starts with ``table``).

        Version-keyed lookups make explicit invalidation unnecessary for
        correctness; this exists to reclaim memory eagerly (the shell's
        ``.cache clear``) and returns the number of entries dropped.
        """
        with self._lock:
            if table is None:
                dropped = len(self._entries)
                self._entries.clear()
                return dropped
            doomed = [
                key
                for key in self._entries
                if isinstance(key, tuple) and key and key[0] == table
            ]
            for key in doomed:
                del self._entries[key]
            return len(doomed)

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self.capacity,
                exact_hits=self._tier_hits.get("exact", 0),
                canonical_hits=self._tier_hits.get("canonical", 0),
                rollup_hits=self._tier_hits.get("rollup", 0),
            )

    def _count(self, name: str) -> None:
        if self._metrics is None or not self._metrics.enabled:
            return
        self._metrics.counter(
            name,
            "Answer-cache lookups by outcome (see repro.aqua.cache).",
        ).inc()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AnswerCache({len(self._entries)}/{self.capacity})"
