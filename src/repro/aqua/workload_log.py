"""Mining group preferences from a query workload.

Section 4.7 assumes relative preferences ``r_h`` "whenever they can be
determined", and the paper's Aqua section notes that "work is also in
progress to automatically extract this information from a query workload".
This module implements that extraction:

* every answered query is recorded in a :class:`QueryLog`;
* grouping frequencies (how often each subset ``T ⊆ G`` is grouped by) and
  slice frequencies (how often WHERE pins a grouping column to a value)
  are tallied;
* :meth:`QueryLog.to_preferences` converts the tallies into the
  :class:`~repro.core.workload.GroupPreferences` consumed by
  ``WorkloadCongress`` -- groupings the analysts actually use get more of
  the budget, and frequently-sliced group values get a per-group boost.

Laplace smoothing keeps never-seen groupings from being starved entirely
(they still deserve the congressional guarantee, just less of it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..core.workload import GroupPreferences
from ..engine.expressions import Col, Lit
from ..engine.predicates import And, Comparison, Predicate
from ..engine.query import Query
from ..engine.sql import parse_query
from ..sampling.groups import all_groupings

__all__ = ["QueryLog"]


def _equality_slices(predicate: Optional[Predicate]) -> List[Tuple[str, object]]:
    """Extract ``column = literal`` conjuncts from a WHERE predicate."""
    if predicate is None:
        return []
    if isinstance(predicate, And):
        return _equality_slices(predicate.left) + _equality_slices(
            predicate.right
        )
    if isinstance(predicate, Comparison) and predicate.op == "=":
        left, right = predicate.left, predicate.right
        if isinstance(left, Col) and isinstance(right, Lit):
            return [(left.name, right.value)]
        if isinstance(right, Col) and isinstance(left, Lit):
            return [(right.name, left.value)]
    return []


@dataclass
class QueryLog:
    """Accumulates queries over one base table and derives preferences."""

    base_table: str
    grouping_columns: Tuple[str, ...]
    _grouping_counts: Dict[Tuple[str, ...], int] = field(default_factory=dict)
    _slice_counts: Dict[Tuple[str, object], int] = field(default_factory=dict)
    _total: int = 0

    def record(self, query: Union[str, Query]) -> None:
        """Record one user query (SQL text or parsed).

        Queries over other tables are ignored; grouping columns outside the
        stratification set are ignored (Congress cannot help them).
        """
        parsed = parse_query(query) if isinstance(query, str) else query
        if parsed.base_table_name() != self.base_table:
            return
        grouping = tuple(
            name for name in parsed.group_by if name in self.grouping_columns
        )
        self._grouping_counts[grouping] = (
            self._grouping_counts.get(grouping, 0) + 1
        )
        for column, value in _equality_slices(parsed.where):
            if column in self.grouping_columns:
                key = (column, value)
                self._slice_counts[key] = self._slice_counts.get(key, 0) + 1
        self._total += 1

    @property
    def total_queries(self) -> int:
        return self._total

    def grouping_frequencies(self) -> Dict[Tuple[str, ...], float]:
        """Observed fraction of queries per grouping (unsmoothed)."""
        if self._total == 0:
            return {}
        return {
            grouping: count / self._total
            for grouping, count in self._grouping_counts.items()
        }

    def slice_frequencies(self) -> Dict[Tuple[str, object], float]:
        """Observed fraction of queries slicing each (column, value)."""
        if self._total == 0:
            return {}
        return {
            key: count / self._total
            for key, count in self._slice_counts.items()
        }

    def to_preferences(self, smoothing: float = 1.0) -> GroupPreferences:
        """Convert the log into Section 4.7 preference weights.

        Each grouping ``T`` receives a multiplicative boost proportional to
        ``(count_T + smoothing)`` -- Laplace smoothing so unseen groupings
        keep a floor share.  Each sliced group value additionally gets a
        per-group weight boost proportional to how often analysts pin it.
        """
        if smoothing < 0:
            raise ValueError(f"smoothing must be >= 0, got {smoothing}")
        preferences = GroupPreferences()
        groupings = all_groupings(self.grouping_columns)
        denominator = self._total + smoothing * len(groupings)
        if denominator <= 0:
            return preferences
        for grouping in groupings:
            count = self._grouping_counts.get(tuple(grouping), 0)
            weight = (count + smoothing) / denominator
            # Normalize so an all-uniform workload yields boost 1 for all.
            preferences.set_grouping_weight(
                grouping, weight * len(groupings)
            )
        # Per-group boosts from slices: a value pinned in fraction p of the
        # queries gets a (1 + p) boost relative to its grouping's default
        # share (set_boost keeps this independent of m_T).
        for (column, value), count in self._slice_counts.items():
            fraction = count / max(self._total, 1)
            preferences.set_boost((column,), (value,), 1.0 + fraction)
        return preferences
