"""A portfolio of congressional samples with budget-driven selection.

The paper builds *one* congressional sample per (table, grouping columns,
allocation, budget) and the caller picks it manually.  BlinkDB's insight
(PAPERS.md) is that a warehouse should instead maintain *many* samples --
varying allocation strategy, sample rate, and grouping-column sets -- and
let the planner resolve a per-query **error budget** (``max_rel_error``)
or **latency budget** (``max_ms``) to the cheapest sample predicted to
satisfy it.  This module is that layer:

* :class:`SynopsisSpec` -- the recipe for one portfolio member (name,
  allocation strategy, tuple budget, optional grouping-column subset);
* :class:`PortfolioMember` -- a built member: the installed
  :class:`~repro.aqua.synopsis.Synopsis` plus the table version and row
  count it was built against (staleness bookkeeping);
* :class:`CostErrorModel` -- the prediction side.  Error comes from the
  synopses' own stratum cardinalities: the qualifying sample tuples per
  answer group (measured by evaluating the query's WHERE against the
  sample itself, which is budget-bounded and therefore cheap) drive a
  Chebyshev-shaped ``z * cv / sqrt(m_effective)`` relative-error
  prediction.  Cost is a two-coefficient latency line ``a + b * rows``
  whose slope is re-calibrated by EWMA from every observed answer -- the
  :class:`~repro.aqua.workload_log.QueryLog` history in coefficient form;
* :class:`SynopsisPortfolio` -- membership, the budget resolver
  (:meth:`~SynopsisPortfolio.resolve`), and a version-keyed resolution
  cache so a base-table insert (which bumps ``_TableState.version``)
  invalidates every cached budget-to-synopsis decision.

Selection semantics (see ``docs/PORTFOLIO.md``):

* ``max_rel_error=e`` -- the *cheapest* member whose predicted worst-group
  relative error is ``<= e`` (reason ``"error_budget"``).  If no member is
  predicted to meet ``e``, the most accurate member is chosen (reason
  ``"best_effort"``) and the caller's guard ladder enforces the bound the
  hard way (per-group repair, exact fallback) -- a budget answer is never
  *silently* out of bound.
* ``max_ms=t`` -- among members predicted to answer within ``t``, the most
  accurate one (reason ``"time_budget"``); none fitting, the cheapest
  member overall (``"best_effort"``).
* both -- the error rule applied to the subset predicted to fit ``t``.

Ties prefer members whose grouping columns cover the groupings the
:class:`~repro.aqua.workload_log.QueryLog` says analysts actually use.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.allocation import AllocationStrategy
from ..core.basic_congress import BasicCongress
from ..core.congress import Congress
from ..core.house import House
from ..engine.query import Query
from ..engine.render import render_query
from ..errors import AquaError
from ..estimators.point import group_support
from .synopsis import Synopsis
from .workload_log import QueryLog

__all__ = [
    "CostErrorModel",
    "PortfolioChoice",
    "PortfolioMember",
    "SynopsisPortfolio",
    "SynopsisSpec",
    "default_portfolio_specs",
]

#: Resolution reasons (the ``reason`` label of ``portfolio_selections_total``).
REASON_ERROR_BUDGET = "error_budget"
REASON_TIME_BUDGET = "time_budget"
REASON_BEST_EFFORT = "best_effort"
REASON_FORCED = "forced"

_RESOLUTION_CACHE_CAPACITY = 256


@dataclass(frozen=True)
class SynopsisSpec:
    """The recipe for one portfolio member.

    Attributes:
        name: member name, unique within the portfolio (used in catalog
            relation names, metrics labels, and golden files).
        budget: sample-tuple budget for this member (the paper's ``X``).
        allocation: allocation strategy shaping the member's sample.
        grouping_columns: optional stratification subset; ``None`` uses the
            table's registered grouping columns.
    """

    name: str
    budget: int
    allocation: AllocationStrategy
    grouping_columns: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise AquaError("portfolio member spec needs a name")
        if self.budget < 1:
            raise AquaError(
                f"member {self.name!r} budget must be >= 1, got {self.budget}"
            )


@dataclass
class PortfolioMember:
    """One built member: the synopsis plus its build-time bookkeeping."""

    spec: SynopsisSpec
    synopsis: Synopsis
    built_version: int = 0
    rows_at_build: int = 0

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def sample_size(self) -> int:
        return self.synopsis.sample_size

    def staleness(self, current_rows: int) -> int:
        """Rows added to the base table since this member was built."""
        return max(current_rows - self.rows_at_build, 0)


@dataclass(frozen=True)
class PortfolioChoice:
    """The resolver's verdict for one (query, budget) pair.

    Attributes:
        member: the chosen member name.
        synopsis: the chosen member's synopsis.
        predicted_rel_error: the model's worst-group relative-error
            prediction for this query on the chosen member (``inf`` when
            the member's sample has no qualifying tuples at all).
        predicted_seconds: the model's latency prediction.
        reason: why this member won (``error_budget`` / ``time_budget`` /
            ``best_effort`` / ``forced``).
        rows_at_build: base rows the member covered when built (staleness
            accounting in the answer pipeline).
        considered: how many members were scored.
    """

    member: str
    synopsis: Synopsis
    predicted_rel_error: float
    predicted_seconds: float
    reason: str
    rows_at_build: int
    considered: int

    @property
    def within_error_budget(self) -> bool:
        return self.reason == REASON_ERROR_BUDGET


class CostErrorModel:
    """Predicts relative error and latency for a (query, member) pair.

    **Error.**  A congressional sample answers a group with ``m``
    qualifying tuples at a relative half-width of roughly
    ``z * cv / sqrt(m)``: ``z`` is the Chebyshev multiplier at the
    system's confidence (``1/sqrt(1 - confidence)``, matching the bound
    the answer pipeline actually attaches) and ``cv`` the within-group
    coefficient of variation, defaulting to 1 and re-estimated by EWMA
    from audited answers.  Qualifying tuples come from the sample itself:
    :func:`~repro.estimators.point.group_support` evaluates the query's
    WHERE over the (budget-bounded) sample, so the prediction is seeded
    from the synopsis' own stratum cardinalities, not from base-table
    scans.  The closed form used by the property tests,
    :meth:`predicted_rel_error`, makes the two monotonicities explicit:
    non-increasing in sample size, non-decreasing in predicate
    selectivity (the fraction of rows the predicate *eliminates*).

    **Cost.**  Latency is a line ``a + b * sample_rows``.  ``a`` is the
    pipeline's fixed overhead (parse/rewrite/bounds), ``b`` the per-row
    scan+aggregate cost; :meth:`observe_latency` folds every observed
    answer into ``b`` by EWMA, so the line tracks the hardware and the
    workload history rather than a guess.
    """

    def __init__(
        self,
        confidence: float = 0.95,
        cv: float = 1.0,
        overhead_seconds: float = 5e-4,
        seconds_per_row: float = 2e-7,
        ewma_alpha: float = 0.2,
    ):
        if not 0.0 < confidence < 1.0:
            raise AquaError(
                f"confidence must be in (0, 1), got {confidence}"
            )
        if not 0.0 < ewma_alpha <= 1.0:
            raise AquaError(
                f"ewma_alpha must be in (0, 1], got {ewma_alpha}"
            )
        self.confidence = confidence
        self.cv = cv
        self._overhead = overhead_seconds
        self._per_row = seconds_per_row
        self._alpha = ewma_alpha
        self._latency_observations = 0
        self._error_observations = 0
        self._lock = threading.Lock()

    # -- closed forms (the property-test surface) ----------------------------

    @staticmethod
    def z_multiplier(confidence: float) -> float:
        """Chebyshev multiplier at ``confidence`` (matches answer bounds)."""
        return 1.0 / math.sqrt(max(1.0 - confidence, 1e-12))

    @classmethod
    def predicted_rel_error(
        cls,
        sample_tuples: float,
        selectivity: float = 0.0,
        cv: float = 1.0,
        confidence: float = 0.95,
    ) -> float:
        """Predicted worst-group relative error, closed form.

        Args:
            sample_tuples: qualifying sample tuples available to the group
                before the predicate (the member's per-group sample size).
            selectivity: fraction of tuples the WHERE predicate
                *eliminates* (0 = keeps everything, 1 = keeps nothing).
            cv: within-group coefficient of variation.
            confidence: the bound's confidence level.

        Monotone non-increasing in ``sample_tuples`` and monotone
        non-decreasing in ``selectivity`` -- the two facts the Hypothesis
        suite pins.  Returns ``inf`` when fewer than one tuple is expected
        to survive the predicate (the sample cannot answer at all).
        """
        if sample_tuples < 0:
            raise AquaError(
                f"sample_tuples must be >= 0, got {sample_tuples}"
            )
        selectivity = min(max(selectivity, 0.0), 1.0)
        effective = sample_tuples * (1.0 - selectivity)
        if effective < 1.0:
            return float("inf")
        return cls.z_multiplier(confidence) * cv / math.sqrt(effective)

    def predicted_seconds(self, sample_rows: int) -> float:
        """Predicted end-to-end answer latency for a member of this size."""
        return self._overhead + self._per_row * max(sample_rows, 0)

    # -- per-query prediction ------------------------------------------------

    def predict_query_rel_error(
        self, query: Query, synopsis: Synopsis
    ) -> float:
        """Worst-group relative-error prediction for ``query`` on a member.

        Evaluates the query's WHERE against the member's own sample (cheap:
        samples are budget-bounded) to get qualifying tuples per answer
        group; the thinnest group dominates the prediction, mirroring the
        worst-group promise the answer pipeline reports.
        """
        support = group_support(
            synopsis.sample,
            predicate=query.where,
            group_by=list(query.group_by),
        )
        if not support:
            return float("inf")
        thinnest = min(support.values())
        return self.predicted_rel_error(
            thinnest, 0.0, cv=self.cv, confidence=self.confidence
        )

    # -- calibration from served answers -------------------------------------

    def observe_latency(self, sample_rows: int, seconds: float) -> None:
        """Fold one observed (member size, answer latency) pair into ``b``."""
        if sample_rows <= 0 or seconds <= 0 or not math.isfinite(seconds):
            return
        implied = max(seconds - self._overhead, 0.0) / sample_rows
        with self._lock:
            self._per_row = (
                (1.0 - self._alpha) * self._per_row + self._alpha * implied
            )
            self._latency_observations += 1

    def observe_rel_error(
        self, sample_tuples: int, observed_rel_error: float
    ) -> None:
        """Re-estimate ``cv`` from an observed worst-group relative error."""
        if (
            sample_tuples < 1
            or not math.isfinite(observed_rel_error)
            or observed_rel_error < 0
        ):
            return
        implied_cv = (
            observed_rel_error
            * math.sqrt(sample_tuples)
            / self.z_multiplier(self.confidence)
        )
        with self._lock:
            self.cv = (1.0 - self._alpha) * self.cv + self._alpha * implied_cv
            self._error_observations += 1

    def describe(self) -> str:
        return (
            f"model: rel_error ~ {self.z_multiplier(self.confidence):.2f} * "
            f"{self.cv:.3f} / sqrt(m); "
            f"latency ~ {self._overhead * 1000:.2f}ms + "
            f"{self._per_row * 1e6:.3f}us/row "
            f"({self._latency_observations} latency obs, "
            f"{self._error_observations} error obs)"
        )


@dataclass
class SynopsisPortfolio:
    """The members, the model, and the budget resolver for one table."""

    base_name: str
    model: CostErrorModel
    workload: Optional[QueryLog] = None
    members: "OrderedDict[str, PortfolioMember]" = field(
        default_factory=OrderedDict
    )
    _resolutions: "OrderedDict[Tuple, PortfolioChoice]" = field(
        default_factory=OrderedDict, repr=False
    )
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False
    )

    def add_member(
        self,
        spec: SynopsisSpec,
        synopsis: Synopsis,
        built_version: int,
        rows_at_build: int,
    ) -> PortfolioMember:
        member = PortfolioMember(
            spec=spec,
            synopsis=synopsis,
            built_version=built_version,
            rows_at_build=rows_at_build,
        )
        with self._lock:
            self.members[spec.name] = member
            self._resolutions.clear()
        return member

    def member(self, name: str) -> PortfolioMember:
        try:
            return self.members[name]
        except KeyError:
            raise AquaError(
                f"portfolio for {self.base_name!r} has no member {name!r}; "
                f"members: {sorted(self.members)}"
            ) from None

    def coarsest(self) -> PortfolioMember:
        """The smallest-sample member -- the degradation ladder's pick."""
        if not self.members:
            raise AquaError(f"portfolio for {self.base_name!r} is empty")
        return min(self.members.values(), key=lambda m: m.sample_size)

    def specs(self) -> Tuple[SynopsisSpec, ...]:
        return tuple(member.spec for member in self.members.values())

    # -- resolution -----------------------------------------------------------

    def _workload_affinity(self, member: PortfolioMember) -> float:
        """How much of the observed workload this member's columns cover."""
        if self.workload is None or self.workload.total_queries == 0:
            return 0.0
        columns = set(member.synopsis.grouping_columns)
        return sum(
            fraction
            for grouping, fraction in
            self.workload.grouping_frequencies().items()
            if set(grouping) <= columns
        )

    def _scored(
        self, query: Query
    ) -> List[Tuple[PortfolioMember, float, float]]:
        """Members with (predicted seconds, predicted rel error), cheapest
        first; workload affinity breaks latency ties."""
        scored = []
        for member in self.members.values():
            seconds = self.model.predicted_seconds(member.sample_size)
            rel_error = self.model.predict_query_rel_error(
                query, member.synopsis
            )
            scored.append((member, seconds, rel_error))
        scored.sort(
            key=lambda item: (item[1], -self._workload_affinity(item[0]))
        )
        return scored

    def resolve(
        self,
        query: Query,
        max_rel_error: Optional[float] = None,
        max_ms: Optional[float] = None,
        version: int = 0,
    ) -> PortfolioChoice:
        """Pick the cheapest member predicted to satisfy the budget(s).

        Resolutions are memoized under ``(version, rendered query,
        budgets)``: any base-table mutation bumps the version, so a cached
        pre-insert choice can never answer a post-insert query.
        """
        if max_rel_error is None and max_ms is None:
            raise AquaError(
                "resolve() needs max_rel_error and/or max_ms; for "
                "budget-free answers use the primary synopsis"
            )
        if max_rel_error is not None and max_rel_error <= 0:
            raise AquaError(
                f"max_rel_error must be > 0, got {max_rel_error}"
            )
        if max_ms is not None and max_ms <= 0:
            raise AquaError(f"max_ms must be > 0, got {max_ms}")
        if not self.members:
            raise AquaError(
                f"portfolio for {self.base_name!r} has no members; call "
                "build_portfolio() first"
            )
        key = (version, render_query(query), max_rel_error, max_ms)
        with self._lock:
            cached = self._resolutions.get(key)
            if cached is not None:
                self._resolutions.move_to_end(key)
                return cached
        choice = self._resolve_uncached(query, max_rel_error, max_ms)
        with self._lock:
            self._resolutions[key] = choice
            self._resolutions.move_to_end(key)
            while len(self._resolutions) > _RESOLUTION_CACHE_CAPACITY:
                self._resolutions.popitem(last=False)
        return choice

    def _resolve_uncached(
        self,
        query: Query,
        max_rel_error: Optional[float],
        max_ms: Optional[float],
    ) -> PortfolioChoice:
        scored = self._scored(query)
        considered = len(scored)
        in_time = (
            scored
            if max_ms is None
            else [s for s in scored if s[1] * 1000.0 <= max_ms]
        )
        if max_rel_error is not None:
            pool = in_time or scored
            for member, seconds, rel_error in pool:
                if rel_error <= max_rel_error:
                    reason = (
                        REASON_ERROR_BUDGET
                        if in_time or max_ms is None
                        else REASON_BEST_EFFORT
                    )
                    return self._choice(
                        member, rel_error, seconds, reason, considered
                    )
            # Nothing predicted to meet the error bound: serve the most
            # accurate candidate and let the guard ladder enforce e.
            member, seconds, rel_error = min(pool, key=lambda s: (s[2], s[1]))
            return self._choice(
                member, rel_error, seconds, REASON_BEST_EFFORT, considered
            )
        # Pure time budget: the most accurate member that fits.
        if in_time:
            member, seconds, rel_error = min(
                in_time, key=lambda s: (s[2], s[1])
            )
            return self._choice(
                member, rel_error, seconds, REASON_TIME_BUDGET, considered
            )
        member, seconds, rel_error = scored[0]  # cheapest overall
        return self._choice(
            member, rel_error, seconds, REASON_BEST_EFFORT, considered
        )

    def forced_choice(self, name: str, query: Query) -> PortfolioChoice:
        """A non-budget choice of a specific member (degradation ladder)."""
        member = self.member(name)
        return self._choice(
            member,
            self.model.predict_query_rel_error(query, member.synopsis),
            self.model.predicted_seconds(member.sample_size),
            REASON_FORCED,
            considered=1,
        )

    def _choice(
        self,
        member: PortfolioMember,
        rel_error: float,
        seconds: float,
        reason: str,
        considered: int,
    ) -> PortfolioChoice:
        return PortfolioChoice(
            member=member.name,
            synopsis=member.synopsis,
            predicted_rel_error=rel_error,
            predicted_seconds=seconds,
            reason=reason,
            rows_at_build=member.rows_at_build,
            considered=considered,
        )

    def invalidate_resolutions(self) -> None:
        with self._lock:
            self._resolutions.clear()

    @property
    def resolution_cache_size(self) -> int:
        with self._lock:
            return len(self._resolutions)

    def describe(self) -> str:
        """Multi-line human-readable summary (the shell's ``.portfolio``)."""
        lines = [
            f"portfolio[{self.base_name}]: {len(self.members)} members, "
            f"{self.resolution_cache_size} cached resolutions"
        ]
        for member in self.members.values():
            synopsis = member.synopsis
            lines.append(
                f"  {member.name}: {synopsis.allocation_strategy} "
                f"budget={member.spec.budget} size={member.sample_size} "
                f"cols=({', '.join(synopsis.grouping_columns)}) "
                f"~{self.model.predicted_seconds(member.sample_size) * 1000:.2f}ms "
                f"built@rows={member.rows_at_build}"
            )
        lines.append("  " + self.model.describe())
        return "\n".join(lines)


def default_portfolio_specs(
    space_budget: int,
    grouping_columns: Sequence[str],
    workload: Optional[QueryLog] = None,
) -> Tuple[SynopsisSpec, ...]:
    """The stock >= 3-member ladder for a table.

    * ``fine`` -- Congress at the full budget: every grouping covered at
      the paper's best allocation; the accuracy anchor.
    * ``mid`` -- BasicCongress at a quarter budget: cheaper, still
      group-aware.
    * ``coarse`` -- House at a sixteenth budget: the latency floor the
      degradation ladder reaches for.
    * ``hot`` (only when the workload log shows a dominant non-trivial
      grouping) -- Congress over just that grouping's columns at half
      budget: the BlinkDB move of specializing for what analysts ask.
    """
    if space_budget < 4:
        raise AquaError(
            f"portfolio needs a space budget >= 4, got {space_budget}"
        )
    specs = [
        SynopsisSpec(
            name="fine", budget=space_budget, allocation=Congress()
        ),
        SynopsisSpec(
            name="mid",
            budget=max(space_budget // 4, 2),
            allocation=BasicCongress(),
        ),
        SynopsisSpec(
            name="coarse",
            budget=max(space_budget // 16, 2),
            allocation=House(),
        ),
    ]
    if workload is not None and workload.total_queries > 0:
        frequencies = workload.grouping_frequencies()
        hot = max(frequencies, key=frequencies.get)
        if hot and frequencies[hot] >= 0.5 and set(hot) != set(
            grouping_columns
        ):
            specs.append(
                SynopsisSpec(
                    name="hot",
                    budget=max(space_budget // 2, 2),
                    allocation=Congress(),
                    grouping_columns=tuple(hot),
                )
            )
    return tuple(specs)
