"""The Aqua approximate-query-answering middleware (Section 2, Figure 1).

:class:`AquaSystem` sits "atop" the relational engine exactly as the paper's
Aqua sits atop a commercial DBMS:

1. the warehouse administrator registers base tables and a space budget;
2. Aqua precomputes sample synopses (by default congressional samples) and
   stores them as regular relations in the engine's catalog;
3. user SQL against the *base* table is rewritten to run against the
   synopsis relations, with aggregate scale-up and per-group error bounds
   (the ``sum_error`` column of Figure 2);
4. synopses are kept up to date under inserts via the Section 6 maintainers,
   without re-reading the base relation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.allocation import AllocationStrategy, allocate_from_table
from ..core.congress import Congress
from ..engine.catalog import Catalog
from ..engine.executor import execute
from ..engine.query import Query
from ..engine.schema import Column, ColumnType, Schema
from ..engine.sql import parse_query
from ..engine.table import Table
from ..estimators.errors import (
    DEFAULT_CONFIDENCE,
    chebyshev_halfwidth,
    hoeffding_halfwidth_stratified_sum,
)
from ..estimators.point import estimate
from ..sampling.groups import finest_group_ids, make_key, project_key
from ..maintenance.base import SampleMaintainer
from ..maintenance.onepass import maintainer_for, subsample_to_budget
from ..rewrite.base import RewriteStrategy
from ..rewrite.nested_integrated import NestedIntegrated
from ..sampling.stratified import StratifiedSample
from .synopsis import Synopsis

__all__ = ["AquaSystem", "ApproximateAnswer", "AquaError", "ComparisonReport"]


class AquaError(RuntimeError):
    """Raised for misconfiguration: unknown tables, missing synopses, etc."""


@dataclass
class ApproximateAnswer:
    """An approximate answer with its provenance.

    Attributes:
        result: the answer table; each aggregate alias ``a`` is accompanied
            by an ``a_error`` column -- the half-width of the confidence
            interval at ``confidence`` (Chebyshev over the stratified
            variance estimate), mirroring Figure 4.
        confidence: the confidence level of the error columns.
        synopsis: the synopsis used.
        elapsed_seconds: wall-clock execution time of the rewritten plan.
    """

    result: Table
    confidence: float
    synopsis: Synopsis
    elapsed_seconds: float


@dataclass
class ComparisonReport:
    """Side-by-side approximate vs. exact answer with error metrics."""

    approximate: ApproximateAnswer
    exact: Table
    exact_elapsed_seconds: float
    errors: Dict[str, "GroupByError"]  # per aggregate alias

    @property
    def speedup(self) -> float:
        """Exact time over approximate time (>1 = approximation faster)."""
        approx_time = self.approximate.elapsed_seconds
        if approx_time <= 0:
            return float("inf")
        return self.exact_elapsed_seconds / approx_time

    def describe(self) -> str:
        lines = [
            f"speedup: {self.speedup:.1f}x "
            f"(exact {self.exact_elapsed_seconds * 1000:.1f} ms, "
            f"approx {self.approximate.elapsed_seconds * 1000:.1f} ms)"
        ]
        for alias, error in self.errors.items():
            lines.append(
                f"{alias}: mean {error.eps_l1:.2f}%  worst {error.eps_inf:.2f}%  "
                f"coverage {error.coverage:.0%}"
            )
        return "\n".join(lines)


@dataclass
class _TableState:
    table: Table
    grouping_columns: Tuple[str, ...]
    maintainer: Optional[SampleMaintainer] = None
    pending_rows: List[Tuple] = field(default_factory=list)


class AquaSystem:
    """Approximate query answering middleware over the in-memory engine."""

    def __init__(
        self,
        space_budget: int,
        allocation_strategy: Optional[AllocationStrategy] = None,
        rewrite_strategy: Optional[RewriteStrategy] = None,
        confidence: float = DEFAULT_CONFIDENCE,
        bound_method: str = "chebyshev",
        rng: Optional[np.random.Generator] = None,
    ):
        """Args:
        space_budget: sample tuples per synopsis (the paper's ``X``).
        allocation_strategy: defaults to :class:`Congress`.
        rewrite_strategy: defaults to :class:`NestedIntegrated` (the
            paper's fastest strategy across most of the measured range).
        confidence: confidence level for error bounds (Aqua default 90%).
        bound_method: ``"chebyshev"`` (default; uses the stratified
            variance estimate) or ``"hoeffding"`` (distribution-free, uses
            per-stratum value ranges precomputed from the base table --
            applies to SUM/COUNT; AVG always falls back to Chebyshev).
        rng: numpy generator for sampling.
        """
        if space_budget < 1:
            raise AquaError(f"space budget must be >= 1, got {space_budget}")
        if bound_method not in ("chebyshev", "hoeffding"):
            raise AquaError(
                f"bound_method must be chebyshev or hoeffding, "
                f"got {bound_method!r}"
            )
        self.catalog = Catalog()
        self._budget = space_budget
        self._allocation = allocation_strategy or Congress()
        self._rewrite = rewrite_strategy or NestedIntegrated()
        self._confidence = confidence
        self._bound_method = bound_method
        self._rng = rng if rng is not None else np.random.default_rng()
        self._tables: Dict[str, _TableState] = {}
        self._synopses: Dict[str, Synopsis] = {}

    # -- administration ------------------------------------------------------

    @property
    def space_budget(self) -> int:
        return self._budget

    def register_table(
        self,
        name: str,
        table: Table,
        grouping_columns: Optional[Sequence[str]] = None,
        build: bool = True,
    ) -> Optional[Synopsis]:
        """Register a base table and (by default) build its synopsis.

        Args:
            name: table name for SQL queries.
            table: the base relation.
            grouping_columns: stratification columns; defaults to the
                schema's ``grouping``-role columns.
            build: build the synopsis now (else call :meth:`build_synopsis`).
        """
        if grouping_columns is None:
            grouping_columns = table.schema.grouping_columns()
        if not grouping_columns:
            raise AquaError(
                f"table {name!r} has no grouping columns; annotate the "
                "schema roles or pass grouping_columns explicitly"
            )
        for column in grouping_columns:
            table.schema.column(column)
        self.catalog.register(name, table, replace=True)
        self._tables[name] = _TableState(table, tuple(grouping_columns))
        if build:
            return self.build_synopsis(name)
        return None

    def build_synopsis(self, name: str) -> Synopsis:
        """(Re)build the sample synopsis for a registered table."""
        state = self._state(name)
        allocation = allocate_from_table(
            self._allocation, state.table, state.grouping_columns, self._budget
        )
        sample = StratifiedSample.build(
            state.table,
            state.grouping_columns,
            allocation.rounded(),
            rng=self._rng,
        )
        return self._install(name, sample)

    def _install(self, name: str, sample: StratifiedSample) -> Synopsis:
        installed = self._rewrite.install(sample, name, self.catalog, replace=True)
        synopsis = Synopsis(
            base_name=name,
            grouping_columns=tuple(sample.grouping_columns),
            allocation_strategy=getattr(self._allocation, "name", "custom"),
            rewrite_strategy=self._rewrite.name,
            budget=self._budget,
            sample=sample,
            installed=installed,
        )
        self._synopses[name] = synopsis
        return synopsis

    def synopsis(self, name: str) -> Synopsis:
        try:
            return self._synopses[name]
        except KeyError:
            raise AquaError(f"no synopsis built for table {name!r}") from None

    def _state(self, name: str) -> _TableState:
        try:
            return self._tables[name]
        except KeyError:
            raise AquaError(f"table {name!r} is not registered") from None

    # -- query answering -------------------------------------------------

    def answer(self, sql: Union[str, Query]) -> ApproximateAnswer:
        """Rewrite and execute a user query against the synopsis.

        The query must aggregate over a single registered base table.  The
        result carries an ``<alias>_error`` column per SUM/COUNT/AVG
        aggregate: the Chebyshev half-width at the configured confidence.
        """
        query = parse_query(sql) if isinstance(sql, str) else sql
        base_name = query.base_table_name()
        synopsis = self.synopsis(base_name)

        start = time.perf_counter()
        plan = self._rewrite.plan(query, synopsis.installed)
        result = plan.execute(self.catalog)
        elapsed = time.perf_counter() - start

        result = self._attach_error_bounds(query, synopsis, result)
        return ApproximateAnswer(
            result=result,
            confidence=self._confidence,
            synopsis=synopsis,
            elapsed_seconds=elapsed,
        )

    def compare(self, sql: Union[str, Query]) -> "ComparisonReport":
        """Answer approximately *and* exactly, and score the difference.

        Intended for calibration sessions: the administrator samples a few
        representative queries to decide whether the space budget is
        adequate (the paper's Section 7 protocol, as an API).
        """
        query = parse_query(sql) if isinstance(sql, str) else sql
        answer = self.answer(query)
        start = time.perf_counter()
        exact = self.exact(query)
        exact_elapsed = time.perf_counter() - start

        from ..metrics.groupby_error import GroupByError, groupby_error

        per_aggregate: Dict[str, GroupByError] = {}
        key_columns = list(query.group_by)
        for aggregate in query.aggregates():
            per_aggregate[aggregate.alias] = groupby_error(
                exact, answer.result, key_columns, aggregate.alias
            )
        return ComparisonReport(
            approximate=answer,
            exact=exact,
            exact_elapsed_seconds=exact_elapsed,
            errors=per_aggregate,
        )

    def explain(self, sql: Union[str, Query]) -> str:
        """Show the rewritten plan (the paper's Figure 2/8-11 view)."""
        query = parse_query(sql) if isinstance(sql, str) else sql
        synopsis = self.synopsis(query.base_table_name())
        plan = self._rewrite.plan(query, synopsis.installed)
        return plan.describe()

    def exact(self, sql: Union[str, Query]) -> Table:
        """Execute the query against the base relation (ground truth)."""
        query = parse_query(sql) if isinstance(sql, str) else sql
        self._flush_pending(query.base_table_name())
        return execute(query, self.catalog)

    def _attach_error_bounds(
        self, query: Query, synopsis: Synopsis, result: Table
    ) -> Table:
        group_by = list(query.group_by)
        key_arrays = [result.column(name) for name in group_by]
        for aggregate in query.aggregates():
            if aggregate.func not in ("sum", "count", "avg"):
                continue
            use_hoeffding = (
                self._bound_method == "hoeffding"
                and aggregate.func in ("sum", "count")
                and set(group_by) <= set(synopsis.grouping_columns)
            )
            if use_hoeffding:
                hoeffding = self._hoeffding_halfwidths(
                    query, synopsis, aggregate, group_by
                )
            estimates = (
                None
                if use_hoeffding
                else estimate(
                    synopsis.sample,
                    aggregate.func,
                    None if aggregate.func == "count" else aggregate.expr,
                    predicate=query.where,
                    group_by=group_by,
                )
            )
            halfwidths = np.full(result.num_rows, np.nan)
            for i in range(result.num_rows):
                key = tuple(
                    arr[i].item() if hasattr(arr[i], "item") else arr[i]
                    for arr in key_arrays
                )
                if use_hoeffding:
                    halfwidths[i] = hoeffding.get(key, np.nan)
                else:
                    group_estimate = estimates.get(key)
                    if (
                        group_estimate is not None
                        and group_estimate.variance >= 0
                    ):
                        halfwidths[i] = chebyshev_halfwidth(
                            group_estimate.std_error, self._confidence
                        )
            result = result.with_column(
                Column(f"{aggregate.alias}_error", ColumnType.FLOAT), halfwidths
            )
        return result

    def _hoeffding_halfwidths(
        self, query: Query, synopsis: Synopsis, aggregate, group_by
    ) -> Dict[Tuple, float]:
        """Per-answer-group Hoeffding half-widths for a SUM/COUNT estimate.

        Uses exact per-stratum value ranges computed from the base table
        (Aqua precomputes such hints with the synopsis).  Ranges are
        zero-extended because the WHERE predicate zeroes out non-qualifying
        tuples in the estimator.
        """
        state = self._state(synopsis.base_name)
        base = state.table
        if aggregate.func == "count":
            values = np.ones(base.num_rows)
        else:
            values = np.asarray(
                aggregate.expr.evaluate(base), dtype=np.float64
            )
        ids, keys = finest_group_ids(base, synopsis.grouping_columns)
        num = len(keys)
        from ..engine.aggregates import grouped_reduce

        lows = np.minimum(grouped_reduce("min", values, ids, num), 0.0)
        highs = np.maximum(grouped_reduce("max", values, ids, num), 0.0)
        ranges = highs - lows

        # Collect strata per answer group.
        per_answer: Dict[Tuple, List[int]] = {}
        for stratum_index, key in enumerate(keys):
            answer = project_key(
                key, synopsis.grouping_columns, group_by
            )
            per_answer.setdefault(answer, []).append(stratum_index)

        sample = synopsis.sample
        out: Dict[Tuple, float] = {}
        for answer, stratum_indices in per_answer.items():
            r, n, m = [], [], []
            for index in stratum_indices:
                stratum = sample.strata.get(keys[index])
                if stratum is None or stratum.sample_size == 0:
                    continue
                r.append(float(ranges[index]))
                n.append(float(stratum.population))
                m.append(int(stratum.sample_size))
            if m:
                out[answer] = hoeffding_halfwidth_stratified_sum(
                    r, n, m, self._confidence
                )
        return out

    # -- incremental maintenance -------------------------------------------

    def enable_maintenance(self, name: str) -> None:
        """Switch a table's synopsis to streaming maintenance (Section 6).

        The existing base rows are streamed through the strategy's
        maintainer once; subsequent :meth:`insert` calls update the
        maintainer at O(1)-ish cost without touching the base relation.
        """
        state = self._state(name)
        strategy_name = getattr(self._allocation, "name", "congress")
        maintainer = maintainer_for(
            strategy_name,
            state.table.schema,
            state.grouping_columns,
            self._budget,
            self._rng,
        )
        maintainer.insert_table(state.table)
        state.maintainer = maintainer

    def insert(self, name: str, row: Sequence) -> None:
        """Insert one tuple into a table (buffered) and its maintainer."""
        state = self._state(name)
        state.pending_rows.append(tuple(row))
        if state.maintainer is not None:
            state.maintainer.insert(row)

    def insert_many(self, name: str, rows: Sequence[Sequence]) -> None:
        for row in rows:
            self.insert(name, row)

    def refresh_synopsis(self, name: str) -> Synopsis:
        """Re-materialize the synopsis from the maintainer's current state."""
        state = self._state(name)
        if state.maintainer is None:
            # No maintainer: fall back to a full rebuild from base data.
            self._flush_pending(name)
            return self.build_synopsis(name)
        maintained = state.maintainer.snapshot()
        maintained = subsample_to_budget(maintained, self._budget, self._rng)
        return self._install(name, maintained.to_stratified())

    def _flush_pending(self, name: str) -> None:
        state = self._tables.get(name)
        if state is None or not state.pending_rows:
            return
        appended = Table.from_rows(state.table.schema, state.pending_rows)
        state.table = state.table.concat(appended)
        state.pending_rows.clear()
        self.catalog.register(name, state.table, replace=True)
