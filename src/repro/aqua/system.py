"""The Aqua approximate-query-answering middleware (Section 2, Figure 1).

:class:`AquaSystem` sits "atop" the relational engine exactly as the paper's
Aqua sits atop a commercial DBMS:

1. the warehouse administrator registers base tables and a space budget;
2. Aqua precomputes sample synopses (by default congressional samples) and
   stores them as regular relations in the engine's catalog;
3. user SQL against the *base* table is rewritten to run against the
   synopsis relations, with aggregate scale-up and per-group error bounds
   (the ``sum_error`` column of Figure 2);
4. synopses are kept up to date under inserts via the Section 6 maintainers,
   without re-reading the base relation.

On top of the paper's pipeline sits a *guarded answering* layer
(:mod:`repro.aqua.guard`): :meth:`AquaSystem.answer` validates the synopsis,
checks staleness, and escalates per answer group -- synopsis answer, then
partial-exact repair of low-support/unbounded groups from the base table,
then a full exact fallback -- tagging every group with its provenance.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field, replace as dataclass_replace
from functools import reduce
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.allocation import AllocationStrategy
from ..core.congress import Congress
from ..engine.aggregates import Aggregate
from ..engine.catalog import Catalog, CatalogError
from ..engine.executor import ParallelConfig, ParallelExecutor
from ..engine.expressions import Col, Lit
from ..engine.predicates import And, Comparison, InList, Or
from ..engine.query import Projection, Query
from ..engine.render import render_query
from ..engine.schema import Column, ColumnType
from ..engine.sql import parse_query
from ..engine.table import Table
from ..errors import (
    AquaError,
    DeadlineExceeded,
    GuardViolationError,
    StaleSynopsisError,
    SynopsisCorruptError,
    SynopsisMissingError,
    TableNotRegisteredError,
)
from ..estimators.errors import (
    DEFAULT_CONFIDENCE,
    chebyshev_halfwidth,
    hoeffding_halfwidth_stratified_sum,
    relative_halfwidth,
)
from ..estimators.point import estimate, group_support
from ..obs import MetricsRegistry, QueryTrace, Telemetry, Tracer
from ..plan import (
    CostModel,
    PlanCache,
    canonicalize,
    canonicalize_query,
    execute_plan,
    lower_query,
    lower_rewritten,
    optimize as optimize_plan,
    render_plan,
)
from ..sampling.groups import GroupKey, finest_group_ids, make_key, project_key
from ..maintenance.base import SampleMaintainer
from ..maintenance.onepass import maintainer_for, subsample_to_budget
from ..rewrite.base import RewriteStrategy
from ..rewrite.nested_integrated import NestedIntegrated
from ..serve.deadline import (
    Deadline,
    check_deadline,
    current_deadline,
    deadline_scope,
)
from ..sampling.stratified import StratifiedSample
from .cache import AnswerCache, CacheStats
from .guard import (
    PROVENANCE_COLUMN,
    PROVENANCE_EXACT,
    PROVENANCE_REPAIRED,
    PROVENANCE_ROLLUP,
    PROVENANCE_SYNOPSIS,
    GuardPolicy,
    GuardReport,
    RefreshPolicy,
    SynopsisHealth,
    observe_guard,
    validate_sample,
)
from .portfolio import (
    CostErrorModel,
    PortfolioChoice,
    SynopsisPortfolio,
    SynopsisSpec,
    default_portfolio_specs,
)
from .reuse import ReuseSnapshot, RollupIndex
from .synopsis import Synopsis
from .workload_log import QueryLog

__all__ = [
    "AnswerCache",
    "AquaSystem",
    "ApproximateAnswer",
    "AquaError",
    "CacheStats",
    "ComparisonReport",
    "CostErrorModel",
    "GuardPolicy",
    "GuardReport",
    "ParallelConfig",
    "PlanCache",
    "PortfolioChoice",
    "RefreshPolicy",
    "SynopsisHealth",
    "SynopsisPortfolio",
    "SynopsisSpec",
    "Telemetry",
]

_SCALED_AGGREGATES = ("sum", "count", "avg")


def promised_rel_error_by_alias(result: Table) -> Dict[str, float]:
    """Worst finite per-group relative half-width, per aggregate alias.

    Zero-valued and non-finite groups are skipped (their relative error is
    undefined); an alias absent from the returned dict made no finite
    promise at all.
    """
    promised: Dict[str, float] = {}
    for name in result.schema.names:
        if not name.endswith("_error"):
            continue
        alias = name[: -len("_error")]
        if alias not in result.schema:
            continue
        halfwidths = result.column(name)
        estimates = result.column(alias)
        worst = -1.0
        for i in range(result.num_rows):
            halfwidth = float(halfwidths[i])
            try:
                value = float(estimates[i])
            except (TypeError, ValueError):
                continue
            if not (math.isfinite(halfwidth) and math.isfinite(value)):
                continue
            if value == 0.0:
                continue
            worst = max(worst, halfwidth / abs(value))
        if worst >= 0.0:
            promised[alias] = worst
    return promised


@dataclass
class ApproximateAnswer:
    """An approximate answer with its provenance.

    Attributes:
        result: the answer table; each aggregate alias ``a`` is accompanied
            by an ``a_error`` column -- the half-width of the confidence
            interval at ``confidence`` (Chebyshev over the stratified
            variance estimate), mirroring Figure 4.  Guarded answers also
            carry a per-group provenance column
            (``synopsis`` / ``repaired`` / ``exact``).
        confidence: the confidence level of the error columns.
        synopsis: the synopsis used.
        elapsed_seconds: wall-clock execution time of the rewritten plan.
        guard: what the guard did (``None`` for unguarded answers).
        trace: the per-stage :class:`~repro.obs.QueryTrace` (``None`` when
            the system's tracer is disabled).
        trace_id: the event-log identity of this answer (``None`` when the
            event log is disabled); shared with metric exemplars, retained
            traces, and audit back-annotations.
        cache_hit: served from the answer cache without recomputation.
        cache_tier: which semantic reuse tier served this answer --
            ``"exact"`` (same canonical fingerprint and same rendered
            text), ``"canonical"`` (fingerprint hit reconciled across
            aliases/group order), ``"rollup"`` (merged from a finer cached
            entry's aggregate states), or ``None`` (computed fresh).
        reused_from: for roll-up answers, the source entry's provenance
            chain (table@version, allocation/rewrite strategy, the fine
            entry's GROUP BY, and any whole-strata slice applied), so
            provenance is never lossy.
        chosen_synopsis: the portfolio member that served this answer
            (``None`` when answered without a budget, i.e. off the primary
            synopsis).
        predicted_rel_error: the cost/error model's worst-group prediction
            for the chosen member (``None`` without a portfolio choice).
    """

    result: Table
    confidence: float
    synopsis: Synopsis
    elapsed_seconds: float
    guard: Optional[GuardReport] = None
    trace: Optional[QueryTrace] = None
    trace_id: Optional[str] = None
    cache_hit: bool = False
    cache_tier: Optional[str] = None
    reused_from: Optional[str] = None
    chosen_synopsis: Optional[str] = None
    predicted_rel_error: Optional[float] = None

    @property
    def provenance_counts(self) -> Dict[str, int]:
        """Answer groups per provenance tag (empty when unguarded)."""
        return self.guard.counts if self.guard is not None else {}

    @property
    def promised_rel_error(self) -> Optional[float]:
        """Worst promised relative error across aggregates and groups.

        The answer's actual promise (from the attached ``<alias>_error``
        columns), as opposed to the model's *prediction*; ``None`` when no
        aggregate made a finite promise.  Repaired/exact groups carry zero
        half-widths, so guard escalation tightens this value.
        """
        promised = promised_rel_error_by_alias(self.result)
        return max(promised.values()) if promised else None

    @property
    def total_seconds(self) -> float:
        """End-to-end answer time: the traced total when available,
        otherwise the plan execution time."""
        if self.trace is not None:
            return self.trace.total_seconds
        return self.elapsed_seconds


def _fmt_pct(value: float) -> str:
    """Render a percentage, degrading NaN/inf to ``n/a``."""
    return f"{value:.2f}%" if math.isfinite(value) else "n/a"


@dataclass(frozen=True)
class _CacheEntry:
    """An answer-cache value: the answer plus reconciliation metadata.

    Entries are keyed by the alias-insensitive canonical fingerprint, so
    a hit may come from a differently-spelled query.  ``sql`` (the rendered
    text the entry was stored under) distinguishes *exact* hits from
    *canonical* ones; ``aliases`` and ``group_by`` let a canonical hit be
    reconciled -- result columns renamed to the probe's aliases, rows
    re-sorted to the probe's GROUP BY order -- before serving.
    """

    answer: ApproximateAnswer
    sql: str
    aliases: Tuple[str, ...]
    group_by: Tuple[str, ...]


@dataclass
class ComparisonReport:
    """Side-by-side approximate vs. exact answer with error metrics."""

    approximate: ApproximateAnswer
    exact: Table
    exact_elapsed_seconds: float
    errors: Dict[str, "GroupByError"]  # per aggregate alias
    stale_inserts: int = 0

    @property
    def speedup(self) -> float:
        """Exact time over approximate time (>1 = approximation faster).

        Uses the *traced* end-to-end approximate total when the answer
        carries a trace -- the plan-execution time alone understates what
        the user actually waited for (parse, bounds, guard work).
        """
        approx_time = self.approximate.total_seconds
        if approx_time <= 0:
            return float("inf")
        return self.exact_elapsed_seconds / approx_time

    def describe(self) -> str:
        speedup = self.speedup
        speedup_text = f"{speedup:.1f}x" if math.isfinite(speedup) else "n/a"
        lines = [
            f"speedup: {speedup_text} "
            f"(exact {self.exact_elapsed_seconds * 1000:.1f} ms, "
            f"approx {self.approximate.total_seconds * 1000:.1f} ms)"
        ]
        trace = self.approximate.trace
        if trace is not None:
            stages = "; ".join(
                f"{name} {seconds * 1000:.2f} ms"
                for name, seconds in trace.stage_seconds().items()
            )
            if stages:
                lines.append(f"approx stages: {stages}")
        if self.stale_inserts:
            lines.append(
                f"note: synopsis was stale by {self.stale_inserts} inserts "
                "at answer time"
            )
        if self.approximate.cache_tier is not None:
            tier_line = (
                f"approx served from cache tier "
                f"{self.approximate.cache_tier}"
            )
            if self.approximate.reused_from:
                tier_line += f" (source: {self.approximate.reused_from})"
            lines.append(tier_line)
        for alias, error in self.errors.items():
            lines.append(
                f"{alias}: mean {_fmt_pct(error.eps_l1)}  "
                f"worst {_fmt_pct(error.eps_inf)}  "
                f"coverage {error.coverage:.0%}"
            )
        return "\n".join(lines)


@dataclass
class _TableState:
    table: Table
    grouping_columns: Tuple[str, ...]
    maintainer: Optional[SampleMaintainer] = None
    pending_rows: List[Tuple] = field(default_factory=list)
    inserts_since_refresh: int = 0
    rows_at_refresh: int = 0
    refresh_policy: Optional[RefreshPolicy] = None
    # Monotonic data version: bumped on every insert, flush, synopsis
    # (re)build and re-registration.  Answer-cache keys embed it, so any
    # mutation invalidates all prior cached answers for this table.
    version: int = 0
    # Serializes mutation (insert, pending-row flush, synopsis install)
    # against concurrent serving workers; reentrant because a flush can
    # happen inside a locked refresh.
    lock: threading.RLock = field(default_factory=threading.RLock)


class AquaSystem:
    """Approximate query answering middleware over the in-memory engine."""

    def __init__(
        self,
        space_budget: int,
        allocation_strategy: Optional[AllocationStrategy] = None,
        rewrite_strategy: Optional[RewriteStrategy] = None,
        confidence: float = DEFAULT_CONFIDENCE,
        bound_method: str = "chebyshev",
        rng: Optional[np.random.Generator] = None,
        guard_policy: Union[GuardPolicy, bool, None] = None,
        telemetry: Union[Telemetry, bool, None] = None,
        parallel: Union[ParallelConfig, bool, None] = None,
        cache: Union[AnswerCache, int, bool, None] = None,
        plan_cache: Union[PlanCache, int, bool, None] = None,
        semantic_reuse: Union[RollupIndex, int, bool, None] = None,
    ):
        """Args:
        space_budget: sample tuples per synopsis (the paper's ``X``).
        allocation_strategy: defaults to :class:`Congress`.
        rewrite_strategy: defaults to :class:`NestedIntegrated` (the
            paper's fastest strategy across most of the measured range).
        confidence: confidence level for error bounds (Aqua default 90%).
        bound_method: ``"chebyshev"`` (default; uses the stratified
            variance estimate) or ``"hoeffding"`` (distribution-free, uses
            per-stratum value ranges precomputed from the base table --
            applies to SUM/COUNT; AVG always falls back to Chebyshev).
        rng: numpy generator for sampling.
        guard_policy: default serve-time guard for :meth:`answer`.
            ``None``/``True`` installs the default :class:`GuardPolicy`;
            ``False`` disables guarding unless a policy is passed per call.
        telemetry: a :class:`~repro.obs.Telemetry` bundle (tracer +
            metrics registry), ``True`` for an enabled bundle, or
            ``None``/``False`` for a disabled one (the default; a disabled
            bundle's overhead on :meth:`answer` is a no-op check per call
            site).  The bundle can be enabled/disabled later through
            :attr:`telemetry`.
        parallel: partition-parallel scan configuration for base-table
            work (exact answers, guard fallbacks, synopsis construction).
            A :class:`~repro.engine.executor.ParallelConfig`, ``True`` for
            defaults, ``False`` to force serial execution, or ``None``
            (default) to honour the ``REPRO_PARALLEL_WORKERS`` environment
            variable and otherwise use defaults (which still run serially
            on small inputs or single-CPU hosts -- see
            :class:`ParallelConfig`).  Results are group-for-group
            identical to serial execution.
        cache: the answer cache for :meth:`answer`.  ``None``/``True``
            installs a default 128-entry LRU, an ``int`` sets the
            capacity, an :class:`AnswerCache` is used as-is, and ``False``
            disables caching.  Entries are keyed by table data version and
            normalized plan, so inserts and refreshes invalidate; guard-
            degraded answers are never cached.
        plan_cache: the optimized-logical-plan cache (see
            :class:`~repro.plan.PlanCache`).  ``None``/``True`` installs a
            default 256-entry LRU, an ``int`` sets the capacity, a
            :class:`~repro.plan.PlanCache` is used as-is, and ``False``
            plans every query from scratch.  Keys embed the table data
            version and rewrite strategy, so mutations invalidate.
        semantic_reuse: the roll-up subsumption index (see
            :class:`~repro.aqua.reuse.RollupIndex` and
            ``docs/CACHING.md``).  ``None`` (default) follows the answer
            cache -- enabled with a default 64-entry LRU unless
            ``cache=False``; ``True`` force-enables, an ``int`` sets the
            capacity, a :class:`~repro.aqua.reuse.RollupIndex` is used
            as-is, and ``False`` disables the roll-up tier
            (exact/canonical caching still applies).  Entries are
            version-keyed and additionally invalidated eagerly on
            insert/flush/refresh/re-register.
        """
        if space_budget < 1:
            raise AquaError(f"space budget must be >= 1, got {space_budget}")
        if bound_method not in ("chebyshev", "hoeffding"):
            raise AquaError(
                f"bound_method must be chebyshev or hoeffding, "
                f"got {bound_method!r}"
            )
        self.catalog = Catalog()
        self._budget = space_budget
        self._allocation = allocation_strategy or Congress()
        self._rewrite = rewrite_strategy or NestedIntegrated()
        self._confidence = confidence
        self._bound_method = bound_method
        self._rng = rng if rng is not None else np.random.default_rng()
        self._tables: Dict[str, _TableState] = {}
        self._synopses: Dict[str, Synopsis] = {}
        self._query_logs: Dict[str, QueryLog] = {}
        self._portfolios: Dict[str, SynopsisPortfolio] = {}
        if telemetry is None or telemetry is False:
            self.telemetry = Telemetry.disabled()
        elif telemetry is True:
            self.telemetry = Telemetry.enabled()
        elif isinstance(telemetry, Telemetry):
            self.telemetry = telemetry
        else:
            raise AquaError(
                "telemetry must be a Telemetry bundle, True, False, or "
                f"None; got {telemetry!r}"
            )
        if guard_policy is False:
            self._guard: Optional[GuardPolicy] = None
        elif guard_policy is None or guard_policy is True:
            self._guard = GuardPolicy()
        elif isinstance(guard_policy, GuardPolicy):
            self._guard = guard_policy
        else:
            raise AquaError(
                "guard_policy must be a GuardPolicy, True, False, or None; "
                f"got {guard_policy!r}"
            )
        if parallel is False:
            self._executor: Optional[ParallelExecutor] = None
        elif parallel is None or parallel is True:
            config = (
                ParallelConfig.from_env() if parallel is None else None
            ) or ParallelConfig()
            self._executor = ParallelExecutor(config, self.telemetry)
        elif isinstance(parallel, ParallelConfig):
            self._executor = ParallelExecutor(parallel, self.telemetry)
        else:
            raise AquaError(
                "parallel must be a ParallelConfig, True, False, or None; "
                f"got {parallel!r}"
            )
        if cache is False:
            self._cache: Optional[AnswerCache] = None
        elif cache is None or cache is True:
            self._cache = AnswerCache()
        elif isinstance(cache, AnswerCache):
            self._cache = cache
        elif isinstance(cache, int):
            self._cache = AnswerCache(capacity=cache)
        else:
            raise AquaError(
                "cache must be an AnswerCache, int capacity, True, False, "
                f"or None; got {cache!r}"
            )
        if self._cache is not None:
            self._cache.attach_metrics(self.telemetry.metrics)
        if plan_cache is False:
            self._plan_cache: Optional[PlanCache] = None
        elif plan_cache is None or plan_cache is True:
            self._plan_cache = PlanCache()
        elif isinstance(plan_cache, PlanCache):
            self._plan_cache = plan_cache
        elif isinstance(plan_cache, int):
            self._plan_cache = PlanCache(capacity=plan_cache)
        else:
            raise AquaError(
                "plan_cache must be a PlanCache, int capacity, True, False, "
                f"or None; got {plan_cache!r}"
            )
        if self._plan_cache is not None:
            self._plan_cache.attach_metrics(self.telemetry.metrics)
        if semantic_reuse is False:
            self._reuse: Optional[RollupIndex] = None
        elif semantic_reuse is None:
            # Follow the answer cache: ``cache=False`` means "recompute
            # every answer", which the roll-up tier must honour too.
            self._reuse = RollupIndex() if self._cache is not None else None
        elif semantic_reuse is True:
            self._reuse = RollupIndex()
        elif isinstance(semantic_reuse, RollupIndex):
            self._reuse = semantic_reuse
        elif isinstance(semantic_reuse, int):
            self._reuse = RollupIndex(capacity=semantic_reuse)
        else:
            raise AquaError(
                "semantic_reuse must be a RollupIndex, int capacity, True, "
                f"False, or None; got {semantic_reuse!r}"
            )
        # Per-thread return channel: _attach_error_bounds deposits the
        # ReuseSnapshot it built so _answer_stages can register it after
        # the guard verdict, without changing the method's signature
        # (testing.faults shadows it).
        self._reuse_local = threading.local()
        self._auditor = None
        self._slo = None

    # -- administration ------------------------------------------------------

    @property
    def auditor(self):
        """The attached accuracy auditor, if any (see :meth:`attach_auditor`)."""
        return self._auditor

    @property
    def slo(self):
        """The attached SLO monitor, if any (see :meth:`attach_slo`)."""
        return self._slo

    def attach_auditor(self, auditor) -> None:
        """Shadow-audit a sample of served answers against the exact path.

        Every non-degraded :meth:`answer` (served with ``audit=True``, the
        default) is offered to the auditor, which makes its own sampling
        decision and recomputes the chosen answers exactly off the serving
        thread -- see :class:`~repro.obs.audit.AccuracyAuditor`.  Pass
        ``None`` to detach.
        """
        self._auditor = auditor

    def attach_slo(self, slo) -> None:
        """Feed serving outcomes into an :class:`~repro.obs.slo.SLOMonitor`.

        :meth:`answer` then records end-to-end latency and the
        degraded/clean verdict per query; the attached auditor (if any)
        feeds the ``bound_violation_rate`` stream.  Pass ``None`` to
        detach.
        """
        self._slo = slo

    @property
    def space_budget(self) -> int:
        return self._budget

    @property
    def guard_policy(self) -> Optional[GuardPolicy]:
        """The default guard applied by :meth:`answer` (None = unguarded)."""
        return self._guard

    @property
    def executor(self) -> Optional[ParallelExecutor]:
        """The partitioned scan executor (None = forced serial)."""
        return self._executor

    @property
    def parallel_config(self) -> Optional[ParallelConfig]:
        """The active parallel-scan configuration (None = forced serial)."""
        return self._executor.config if self._executor is not None else None

    def set_parallel(
        self, parallel: Union[ParallelConfig, bool, None]
    ) -> None:
        """Reconfigure parallel scanning at runtime (the shell's ``.parallel``)."""
        if parallel is False:
            self._executor = None
        elif parallel is True or parallel is None:
            self._executor = ParallelExecutor(ParallelConfig(), self.telemetry)
        elif isinstance(parallel, ParallelConfig):
            self._executor = ParallelExecutor(parallel, self.telemetry)
        else:
            raise AquaError(
                "parallel must be a ParallelConfig, True, False, or None; "
                f"got {parallel!r}"
            )

    @property
    def answer_cache(self) -> Optional[AnswerCache]:
        """The answer cache (None = caching disabled)."""
        return self._cache

    @property
    def plan_cache(self) -> Optional[PlanCache]:
        """The optimized-plan cache (None = planning is never memoized)."""
        return self._plan_cache

    @property
    def rollup_index(self) -> Optional[RollupIndex]:
        """The roll-up subsumption index (None = rollup tier disabled)."""
        return self._reuse

    def set_cache(
        self, cache: Union[AnswerCache, int, bool, None]
    ) -> None:
        """Replace, resize, enable, or disable the answer cache.

        The roll-up subsumption index follows: disabling the cache also
        disables semantic reuse ("recompute every answer" must mean all
        tiers), and re-enabling restores a default index if none is set.
        """
        if cache is False:
            self._cache = None
            self._reuse = None
            return
        if cache is True or cache is None:
            self._cache = AnswerCache()
        elif isinstance(cache, AnswerCache):
            self._cache = cache
        elif isinstance(cache, int):
            self._cache = AnswerCache(capacity=cache)
        else:
            raise AquaError(
                "cache must be an AnswerCache, int capacity, True, False, "
                f"or None; got {cache!r}"
            )
        self._cache.attach_metrics(self.telemetry.metrics)
        if self._reuse is None:
            self._reuse = RollupIndex()

    def table_version(self, name: str) -> int:
        """The table's monotonic data version (cache-invalidation token)."""
        return self._state(name).version

    def table_names(self) -> List[str]:
        """Registered base-table names (synopsis relations excluded)."""
        return sorted(self._tables)

    def register_table(
        self,
        name: str,
        table: Table,
        grouping_columns: Optional[Sequence[str]] = None,
        build: bool = True,
    ) -> Optional[Synopsis]:
        """Register a base table and (by default) build its synopsis.

        Args:
            name: table name for SQL queries.
            table: the base relation.
            grouping_columns: stratification columns; defaults to the
                schema's ``grouping``-role columns.
            build: build the synopsis now (else call :meth:`build_synopsis`).
        """
        if grouping_columns is None:
            grouping_columns = table.schema.grouping_columns()
        if not grouping_columns:
            raise AquaError(
                f"table {name!r} has no grouping columns; annotate the "
                "schema roles or pass grouping_columns explicitly"
            )
        for column in grouping_columns:
            table.schema.column(column)
        self.catalog.register(name, table, replace=True)
        previous = self._tables.get(name)
        self._tables[name] = _TableState(
            table,
            tuple(grouping_columns),
            # Re-registration continues the version sequence so cached
            # answers for the replaced data can never be served again.
            version=previous.version + 1 if previous is not None else 0,
        )
        if previous is not None and self._reuse is not None:
            self._reuse.invalidate(name)
        if build:
            return self.build_synopsis(name)
        return None

    def build_synopsis(self, name: str) -> Synopsis:
        """(Re)build the sample synopsis for a registered table."""
        state = self._state(name)
        start = time.perf_counter()
        with self.telemetry.tracer.span("build_synopsis", table=name):
            # Both full-table passes of the one-pass construction -- the
            # allocation's group-count scan (a planner-lowered COUNT(*)
            # GROUP BY over the base relation) and the per-stratum
            # membership scan -- run partitioned when an executor is
            # configured; the merged counts and member lists are identical
            # to a serial scan's, so the drawn sample is bit-for-bit the
            # same.
            counts = self._group_count_scan(name, state.grouping_columns)
            allocation = self._allocation.allocate(
                counts, state.grouping_columns, self._budget
            )
            sample = StratifiedSample.build(
                state.table,
                state.grouping_columns,
                allocation.rounded(),
                rng=self._rng,
                scan=self._executor,
            )
            synopsis = self._install(name, sample)
        metrics = self.telemetry.metrics
        if metrics.enabled:
            metrics.histogram(
                "aqua_synopsis_build_seconds",
                "Wall time to (re)build one synopsis from the base table.",
                ("table",),
            ).observe(time.perf_counter() - start, table=name)
        return synopsis

    def _group_count_scan(
        self, name: str, grouping_columns: Tuple[str, ...]
    ) -> Dict[GroupKey, int]:
        """Per-finest-group tuple counts ``n_g`` via the plan executor.

        Lowers ``SELECT G..., COUNT(*) FROM name GROUP BY G`` through the
        planner, so the allocation's counting pass takes the same operator
        path (and the same parallel GroupBy) as every other scan.  The
        GroupBy's sorted group order matches
        :func:`repro.sampling.groups.group_counts` exactly, so downstream
        order-sensitive consumers (largest-remainder rounding ties) see
        identical input and the drawn sample stays bit-for-bit the same.
        """
        query = Query(
            select=tuple(
                Projection(Col(column), column) for column in grouping_columns
            )
            + (Aggregate("count", Lit(1), "__count"),),
            from_item=name,
            group_by=tuple(grouping_columns),
        )
        result = execute_plan(
            optimize_plan(lower_query(query, self.catalog)),
            self.catalog,
            parallel=self._executor,
            tracer=self.telemetry.tracer,
        )
        arrays = [result.column(column) for column in grouping_columns]
        counts = result.column("__count")
        return {
            make_key(tuple(arr[i] for arr in arrays)): int(counts[i])
            for i in range(result.num_rows)
        }

    def _install(self, name: str, sample: StratifiedSample) -> Synopsis:
        installed = self._rewrite.install(sample, name, self.catalog, replace=True)
        synopsis = Synopsis(
            base_name=name,
            grouping_columns=tuple(sample.grouping_columns),
            allocation_strategy=getattr(self._allocation, "name", "custom"),
            rewrite_strategy=self._rewrite.name,
            budget=self._budget,
            sample=sample,
            installed=installed,
        )
        self._synopses[name] = synopsis
        state = self._tables.get(name)
        if state is not None:
            with state.lock:
                state.inserts_since_refresh = 0
                state.rows_at_refresh = state.table.num_rows + len(
                    state.pending_rows
                )
                state.version += 1  # new synopsis -> new answers
                if self._reuse is not None:
                    self._reuse.invalidate(name)
        return synopsis

    def synopsis(self, name: str) -> Synopsis:
        try:
            return self._synopses[name]
        except KeyError:
            if name not in self._tables:
                raise TableNotRegisteredError(
                    f"table {name!r} is not registered"
                ) from None
            raise SynopsisMissingError(
                f"no synopsis built for table {name!r}"
            ) from None

    def _state(self, name: str) -> _TableState:
        try:
            return self._tables[name]
        except KeyError:
            raise TableNotRegisteredError(
                f"table {name!r} is not registered"
            ) from None

    # -- synopsis portfolio --------------------------------------------------

    def portfolio(self, name: str) -> SynopsisPortfolio:
        """The table's synopsis portfolio (see :meth:`build_portfolio`)."""
        portfolio = self._portfolios.get(name)
        if portfolio is None:
            self._state(name)  # typed error for unregistered tables
            raise SynopsisMissingError(
                f"no portfolio built for table {name!r}; call "
                "build_portfolio() before answering with "
                "max_rel_error/max_ms budgets"
            )
        return portfolio

    def has_portfolio(self, name: str) -> bool:
        return name in self._portfolios

    def build_portfolio(
        self,
        name: str,
        specs: Optional[Sequence[SynopsisSpec]] = None,
    ) -> SynopsisPortfolio:
        """(Re)build a multi-member synopsis portfolio for a table.

        Each :class:`~repro.aqua.portfolio.SynopsisSpec` becomes one
        congressional sample -- its own allocation strategy, tuple budget,
        and (optionally) grouping-column subset -- installed as regular
        catalog relations under ``{table}__pf_{member}`` names.  With
        ``specs=None`` the stock ladder from
        :func:`~repro.aqua.portfolio.default_portfolio_specs` is used
        (``fine``/``mid``/``coarse``, plus a workload-hot member when the
        table's query log shows a dominant grouping).

        Pending inserts are flushed first so every member covers the same
        base rows; the table's data version is bumped afterwards, so
        cached answers and cached budget resolutions from before the build
        can never be served again.
        """
        state = self._state(name)
        self._flush_pending(name)
        workload = self.query_log(name)
        if specs is None:
            specs = default_portfolio_specs(
                self._budget, state.grouping_columns, workload
            )
        if len(specs) < 1:
            raise AquaError("build_portfolio needs at least one spec")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise AquaError(f"duplicate portfolio member names: {names}")
        existing = self._portfolios.get(name)
        model = (
            existing.model
            if existing is not None
            else CostErrorModel(confidence=self._confidence)
        )
        portfolio = SynopsisPortfolio(
            base_name=name, model=model, workload=workload
        )
        start = time.perf_counter()
        with self.telemetry.tracer.span(
            "build_portfolio", table=name, members=len(specs)
        ):
            for spec in specs:
                synopsis = self._build_member(name, state, spec)
                portfolio.add_member(
                    spec,
                    synopsis,
                    built_version=state.version,
                    rows_at_build=state.table.num_rows
                    + len(state.pending_rows),
                )
        self._portfolios[name] = portfolio
        with state.lock:
            state.version += 1  # new members -> new answers and resolutions
            if self._reuse is not None:
                self._reuse.invalidate(name)
        metrics = self.telemetry.metrics
        if metrics.enabled:
            metrics.gauge(
                "portfolio_members",
                "Synopsis portfolio members per table.",
                ("table",),
            ).set(len(portfolio.members), table=name)
            metrics.histogram(
                "portfolio_build_seconds",
                "Wall time to (re)build a whole synopsis portfolio.",
                ("table",),
            ).observe(time.perf_counter() - start, table=name)
        return portfolio

    def refresh_portfolio(
        self, name: str, trigger: str = "manual"
    ) -> SynopsisPortfolio:
        """Rebuild every portfolio member from the current base relation.

        Keeps the existing specs and the calibrated cost/error model;
        bumps the data version so stale budget resolutions invalidate.
        """
        portfolio = self.portfolio(name)
        metrics = self.telemetry.metrics
        if metrics.enabled:
            metrics.counter(
                "portfolio_refreshes_total",
                "Portfolio refreshes, by table and trigger.",
                ("table", "trigger"),
            ).inc(table=name, trigger=trigger)
        return self.build_portfolio(name, specs=portfolio.specs())

    def _build_member(
        self, name: str, state: _TableState, spec: SynopsisSpec
    ) -> Synopsis:
        """Build and install one portfolio member's congressional sample.

        The sample relations are installed under a decorated name
        (``{table}__pf_{member}``) so members coexist in the catalog, but
        the installed handle's ``base_name`` stays the real table: the
        rewriter validates queries against it.
        """
        grouping = tuple(spec.grouping_columns or state.grouping_columns)
        for column in grouping:
            state.table.schema.column(column)  # typed error on bad columns
        counts = self._group_count_scan(name, grouping)
        allocation = spec.allocation.allocate(counts, grouping, spec.budget)
        sample = StratifiedSample.build(
            state.table,
            grouping,
            allocation.rounded(),
            rng=self._rng,
            scan=self._executor,
        )
        installed = self._rewrite.install(
            sample, f"{name}__pf_{spec.name}", self.catalog, replace=True
        )
        installed = dataclass_replace(installed, base_name=name)
        return Synopsis(
            base_name=name,
            grouping_columns=grouping,
            allocation_strategy=getattr(spec.allocation, "name", "custom"),
            rewrite_strategy=self._rewrite.name,
            budget=spec.budget,
            sample=sample,
            installed=installed,
        )

    def _observe_portfolio_answer(
        self,
        table: str,
        choice: PortfolioChoice,
        answer: ApproximateAnswer,
        max_rel_error: Optional[float],
    ) -> None:
        """Selection metrics, prediction-miss accounting, model feedback."""
        portfolio = self._portfolios.get(table)
        if portfolio is not None and answer.elapsed_seconds > 0:
            portfolio.model.observe_latency(
                choice.synopsis.sample_size, answer.elapsed_seconds
            )
        miss = False
        if max_rel_error is not None and choice.within_error_budget:
            counts = answer.provenance_counts
            if counts.get(PROVENANCE_REPAIRED, 0) or counts.get(
                PROVENANCE_EXACT, 0
            ):
                # The model said the member would hold the bound, but the
                # guard had to escalate groups -- a prediction miss (the
                # promise itself still holds, via the ladder).
                miss = True
            promised = answer.promised_rel_error
            if promised is not None and promised > max_rel_error * (
                1.0 + 1e-9
            ):
                miss = True
        metrics = self.telemetry.metrics
        if not metrics.enabled:
            return
        metrics.counter(
            "portfolio_selections_total",
            "Budget resolutions, by table, chosen member, and reason.",
            ("table", "synopsis", "reason"),
        ).inc(table=table, synopsis=choice.member, reason=choice.reason)
        if math.isfinite(choice.predicted_rel_error):
            metrics.histogram(
                "portfolio_predicted_rel_error",
                "The model's predicted worst-group relative error at "
                "selection time.",
                ("table",),
                buckets=(
                    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                    0.25, 0.5, 1.0, 2.5,
                ),
            ).observe(choice.predicted_rel_error, table=table)
        if miss:
            metrics.counter(
                "portfolio_prediction_miss_total",
                "Answers whose member was predicted within the error "
                "budget but needed guard escalation (or broke the "
                "promise).",
                ("table", "synopsis"),
            ).inc(table=table, synopsis=choice.member)

    # -- health & staleness --------------------------------------------------

    def set_refresh_policy(
        self, name: str, policy: Optional[RefreshPolicy]
    ) -> None:
        """Attach (or clear) an auto-refresh drift policy for a table."""
        state = self._state(name)
        state.refresh_policy = policy
        self._maybe_auto_refresh(name)

    def health(
        self, name: str, stale_after_fraction: float = 0.1
    ) -> SynopsisHealth:
        """Health report: sample ratio, strata coverage, drift, validity."""
        state = self._state(name)
        synopsis = self._synopses.get(name)
        maintained = state.maintainer is not None
        maintainer_inserts = (
            getattr(state.maintainer, "inserts_seen", 0) if maintained else 0
        )
        if synopsis is None:
            return SynopsisHealth(
                table=name,
                built=False,
                base_rows=state.table.num_rows,
                pending_rows=len(state.pending_rows),
                sample_size=0,
                budget=self._budget,
                strata_total=0,
                strata_covered=0,
                inserts_since_refresh=state.inserts_since_refresh,
                rows_at_refresh=state.rows_at_refresh,
                maintained=maintained,
                maintainer_inserts=maintainer_inserts,
                issues=("no synopsis built",),
                stale_after_fraction=stale_after_fraction,
            )
        strata = synopsis.sample.strata
        total = sum(1 for s in strata.values() if s.population > 0)
        covered = sum(
            1 for s in strata.values() if s.population > 0 and s.sample_size > 0
        )
        return SynopsisHealth(
            table=name,
            built=True,
            base_rows=state.table.num_rows,
            pending_rows=len(state.pending_rows),
            sample_size=synopsis.sample_size,
            budget=self._budget,
            strata_total=total,
            strata_covered=covered,
            inserts_since_refresh=state.inserts_since_refresh,
            rows_at_refresh=state.rows_at_refresh,
            maintained=maintained,
            maintainer_inserts=maintainer_inserts,
            issues=tuple(self._synopsis_issues(state, synopsis)),
            stale_after_fraction=stale_after_fraction,
        )

    def _synopsis_issues(
        self,
        state: _TableState,
        synopsis: Synopsis,
        expected_rows: Optional[int] = None,
    ) -> List[str]:
        """Structural validation plus base-coverage bookkeeping.

        ``expected_rows`` is the base row count this synopsis is supposed
        to cover: the table's ``rows_at_refresh`` for the primary synopsis
        (the default), a member's ``rows_at_build`` for portfolio members
        (which may legitimately differ from the primary's bookkeeping).
        """
        issues = validate_sample(synopsis.sample)
        covered = synopsis.sample.total_population
        if expected_rows is None:
            expected_rows = state.rows_at_refresh
        if expected_rows and covered != expected_rows:
            issues.append(
                f"synopsis strata cover {covered} rows but "
                f"{expected_rows} were present at the last refresh"
            )
        return issues

    def _maybe_auto_refresh(self, name: str) -> None:
        state = self._tables.get(name)
        if (
            state is None
            or state.refresh_policy is None
            or name not in self._synopses
        ):
            return
        if state.refresh_policy.should_refresh(
            state.inserts_since_refresh, state.rows_at_refresh
        ):
            self.refresh_synopsis(name, trigger="auto")

    # -- observability -------------------------------------------------------

    @property
    def tracer(self) -> Tracer:
        """The system's span tracer (disabled by default)."""
        return self.telemetry.tracer

    @property
    def metrics(self) -> MetricsRegistry:
        """The system's metrics registry (disabled by default)."""
        return self.telemetry.metrics

    def query_log(self, name: str) -> QueryLog:
        """The auto-recorded workload log for a registered table.

        Every query served by :meth:`answer` is recorded automatically, so
        :meth:`~repro.aqua.workload_log.QueryLog.to_preferences` can mine
        grouping preferences without any manual logging.
        """
        state = self._state(name)
        log = self._query_logs.get(name)
        if log is None:
            log = QueryLog(name, state.grouping_columns)
            self._query_logs[name] = log
        return log

    def _observe_answer(
        self, answer: ApproximateAnswer, wall_seconds: float
    ) -> None:
        """Record one served answer into the metrics registry."""
        metrics = self.telemetry.metrics
        table = answer.synopsis.base_name
        metrics.counter(
            "aqua_queries_total",
            "Queries served by AquaSystem.answer(), per table.",
            ("table",),
        ).inc(table=table)
        metrics.histogram(
            "aqua_answer_seconds",
            "End-to-end answer() latency in seconds.",
            ("table",),
        ).observe(wall_seconds, table=table)
        if answer.trace is not None:
            stage_latency = metrics.histogram(
                "aqua_stage_seconds",
                "Per-pipeline-stage answer latency in seconds.",
                ("stage",),
            )
            for stage, seconds in answer.trace.stage_seconds().items():
                stage_latency.observe(seconds, stage=stage)
        if answer.guard is not None:
            observe_guard(metrics, table, answer.guard)

    # -- query answering -------------------------------------------------

    def _resolve_guard(
        self, guard: Union[GuardPolicy, bool, None]
    ) -> Optional[GuardPolicy]:
        if guard is None:
            return self._guard
        if guard is False:
            return None
        if guard is True:
            return self._guard if self._guard is not None else GuardPolicy()
        if isinstance(guard, GuardPolicy):
            return guard
        raise AquaError(
            f"guard must be a GuardPolicy, True, False, or None; got {guard!r}"
        )

    def answer(
        self,
        sql: Union[str, Query],
        guard: Union[GuardPolicy, bool, None] = None,
        deadline: Union[Deadline, float, None] = None,
        audit: bool = True,
        max_rel_error: Optional[float] = None,
        max_ms: Optional[float] = None,
        use_synopsis: Optional[str] = None,
    ) -> ApproximateAnswer:
        """Rewrite and execute a user query against the synopsis.

        The query must aggregate over a single registered base table.  The
        result carries an ``<alias>_error`` column per SUM/COUNT/AVG
        aggregate: the Chebyshev half-width at the configured confidence.

        When a guard policy is active (the default), the answer is served
        through an escalation ladder: the synopsis answer is checked group
        by group; groups with too little sample support, non-finite
        aggregates, or unusable error bounds are *repaired* from the base
        table; and structurally corrupt or overly stale synopses degrade to
        a full exact answer (or a typed error, per the policy).  Guarded
        results carry a per-group provenance column.

        When the system's tracer is enabled, the returned answer carries a
        :class:`~repro.obs.QueryTrace` whose top-level stages (``parse``,
        ``validate``, ``rewrite``, ``execute``, ``error_bounds``,
        ``guard``) account for the pipeline's wall time; when the metrics
        registry is enabled, query counters, per-stage latency histograms,
        and guard provenance counters are updated.  The query is always
        recorded in the table's :meth:`query_log` for workload mining.

        The pipeline honours an optional per-query *deadline*: a typed
        :class:`~repro.errors.DeadlineExceeded` (tagged with the stage or
        plan operator it died in) aborts the answer cooperatively -- stage
        boundaries here, per-operator in the plan executor, per-partition
        in the parallel scanner.  With ``deadline=None``, any deadline
        installed by an enclosing
        :func:`~repro.serve.deadline.deadline_scope` (e.g. the serving
        layer's) still applies.

        Args:
            sql: SQL text or a :class:`~repro.engine.query.Query`.
            guard: per-call guard override -- a :class:`GuardPolicy`,
                ``False`` to serve unguarded, or ``None`` to use the
                system's default policy.
            deadline: time budget for this answer -- seconds, a
                :class:`~repro.serve.deadline.Deadline`, or ``None`` to
                inherit the ambient scope (if any).
            max_rel_error: error budget -- resolve the answer against the
                table's synopsis portfolio (see :meth:`build_portfolio`),
                choosing the cheapest member predicted to keep the worst
                per-group relative error at or below this bound.  The guard
                policy is tightened to ``max_relative_halfwidth <=
                max_rel_error`` so a prediction miss falls through the
                ladder (repair, exact) instead of breaking the promise.
            max_ms: latency budget in milliseconds -- prefer the most
                accurate portfolio member predicted to answer within it.
                Advisory (a model prediction), not a hard deadline; pass
                ``deadline`` for hard cutoffs.
            use_synopsis: serve from this specific portfolio member,
                bypassing budget resolution (the serving layer's
                degradation ladder uses this to reach for the coarsest
                member before giving up on sampling entirely).
            audit: offer this answer to the attached accuracy auditor and
                record it in the attached SLO monitor's served stream.
                The serving layer passes ``False`` for answers it is about
                to degrade (load shedding, open breaker): those answers
                carry no accuracy promise, so auditing them -- or counting
                them as cleanly served -- would corrupt both signals.
        """
        telemetry = self.telemetry
        tracer = telemetry.tracer
        events = telemetry.events
        measure = (
            telemetry.metrics.enabled
            or events.enabled
            or self._slo is not None
        )
        wall_start = time.perf_counter() if measure else 0.0
        trace_id = events.next_trace_id() if events.enabled else None
        with deadline_scope(Deadline.resolve(deadline)):
            had_deadline = current_deadline() is not None
            root = tracer.span("answer")
            try:
                with root:
                    answer = self._answer_pipeline(
                        sql,
                        guard,
                        tracer,
                        root,
                        max_rel_error=max_rel_error,
                        max_ms=max_ms,
                        use_synopsis=use_synopsis,
                    )
            except Exception as exc:
                if measure:
                    self._finish_failed(
                        sql,
                        trace_id,
                        exc,
                        time.perf_counter() - wall_start,
                        had_deadline,
                        root,
                    )
                raise
        if root.is_recording:
            answer.trace = QueryTrace(root)
        answer.trace_id = trace_id
        wall = time.perf_counter() - wall_start if measure else 0.0
        if telemetry.metrics.enabled:
            self._observe_answer(answer, wall)
        self._finish_answer(sql, answer, trace_id, wall, had_deadline, audit)
        return answer

    def _finish_answer(
        self,
        sql: Union[str, Query],
        answer: ApproximateAnswer,
        trace_id: Optional[str],
        wall: float,
        had_deadline: bool,
        audit: bool,
    ) -> None:
        """Post-answer observability: SLOs, event log, trace store, audit."""
        telemetry = self.telemetry
        degraded = answer.guard is not None and answer.guard.degraded
        if self._slo is not None:
            self._slo.record_latency(wall)
            if audit:
                self._slo.record_served(degraded)
        event = None
        if telemetry.events.enabled:
            table = answer.synopsis.base_name
            event = telemetry.events.emit(
                trace_id=trace_id,
                table=table,
                sql=sql if isinstance(sql, str) else render_query(sql),
                synopsis_version=self._version_or_none(table),
                allocation=getattr(
                    self._allocation, "name", type(self._allocation).__name__
                ),
                strategy=self._rewrite.name,
                provenance=answer.provenance_counts,
                promised_rel_error=self._promised_rel_error(answer.result),
                chosen_synopsis=answer.chosen_synopsis,
                predicted_rel_error=answer.predicted_rel_error,
                groups=answer.result.num_rows,
                stage_seconds=(
                    answer.trace.stage_seconds()
                    if answer.trace is not None
                    else {}
                ),
                duration_seconds=wall,
                cache_hit=answer.cache_hit,
                cache_tier=answer.cache_tier,
                reused_from=answer.reused_from,
                degraded=degraded,
                degradation="guard" if degraded else None,
                deadline=had_deadline,
            )
        if answer.trace is not None and trace_id is not None:
            telemetry.traces.offer(trace_id, answer.trace, degraded=degraded)
        if audit and not degraded and self._auditor is not None:
            query = parse_query(sql) if isinstance(sql, str) else sql
            self._auditor.offer(query, answer, event)

    def _finish_failed(
        self,
        sql: Union[str, Query],
        trace_id: Optional[str],
        exc: BaseException,
        wall: float,
        had_deadline: bool,
        root,
    ) -> None:
        """Best-effort observability for answers that died mid-pipeline."""
        telemetry = self.telemetry
        if self._slo is not None:
            self._slo.record_latency(wall)
        if telemetry.events.enabled:
            table = ""
            try:
                query = parse_query(sql) if isinstance(sql, str) else sql
                table = query.base_table_name()
            except Exception:
                pass
            telemetry.events.emit(
                trace_id=trace_id,
                table=table,
                sql=sql if isinstance(sql, str) else render_query(sql),
                status=(
                    "deadline"
                    if isinstance(exc, DeadlineExceeded)
                    else "error"
                ),
                error=str(exc),
                duration_seconds=wall,
                deadline=had_deadline,
            )
        if root.is_recording and trace_id is not None:
            telemetry.traces.offer(trace_id, QueryTrace(root), error=True)

    def _version_or_none(self, table: str) -> Optional[int]:
        try:
            return self._state(table).version
        except TableNotRegisteredError:
            return None

    @staticmethod
    def _promised_rel_error(result: Table) -> Dict[str, float]:
        """Worst finite per-group relative half-width, per aggregate alias."""
        return promised_rel_error_by_alias(result)

    def _cache_key(
        self,
        query: Query,
        base_name: str,
        policy: Optional[GuardPolicy],
        budget: Tuple = (),
        canonical=None,
    ):
        """The answer-cache key for this (query, serving configuration).

        ``None`` when caching is disabled.  The key embeds the table's
        *current* data version, the query's alias-insensitive canonical
        fingerprint (see :func:`repro.plan.canonicalize_query` -- predicate
        spelling, output aliases, and GROUP BY column order no longer
        fragment the cache), and every serve-time knob that changes the
        answer (guard policy -- hashable because it is frozen --
        confidence, bound method, and the budget tuple ``(max_rel_error,
        max_ms, chosen member)`` for portfolio-resolved answers).  Reads
        the version at call time: lookups use the pre-pipeline version,
        stores the post-pipeline one, so a mid-pipeline refresh stores
        under the version whose synopsis actually produced the answer.

        Pass a precomputed ``canonical`` (:class:`~repro.plan.CanonicalQuery`)
        to avoid re-canonicalizing between the lookup and the store.
        """
        if self._cache is None:
            return None
        if canonical is None:
            canonical = canonicalize_query(query)
        return (
            base_name,
            self._state(base_name).version,
            canonical.fingerprint,
            policy,
            self._confidence,
            self._bound_method,
            budget,
        )

    def _plan_key(
        self, base_name: str, strategy: str, relation: str, fingerprint: str
    ):
        """The plan-cache key: version + strategy + relation + fingerprint.

        ``None`` when plan caching is disabled.  ``fingerprint`` is the
        canonical-plan digest from :func:`repro.plan.canonicalize`, so
        trivially-equivalent spellings (predicate order, folded constants)
        share one optimized plan.  The version covers every mutation that
        can change synopsis relations (insert, flush, refresh,
        re-register), so a stale optimized plan can never be replayed
        against rebuilt samples.  ``relation`` is the sample relation the
        rewrite reads: portfolio members of the same table produce
        *different* plans for the same query, and the member relation name
        keeps their cache entries apart.
        """
        if self._plan_cache is None:
            return None
        return (
            base_name,
            self._state(base_name).version,
            strategy,
            relation,
            fingerprint,
        )

    def _cost_model(self) -> CostModel:
        """A plan cost model seeded from the live catalog's cardinalities.

        Synopsis relations are registered in the catalog, so the model
        sees the *actual* sample sizes -- the portfolio's finest member
        costs more than its coarsest -- and the optimizer's rule gate
        (:func:`repro.plan.optimize` with ``cost_model``) never keeps a
        rewrite predicted to slow the plan.
        """
        return CostModel.from_catalog(self.catalog)

    def _optimized_plan(self, rewritten, base_name, relation=""):
        """Lower + optimize the rewritten query, memoized in the plan cache.

        The lowered plan is canonicalized first, and its fingerprint keys
        the cache -- so equivalent predicate spellings amortize the
        optimizer pass, which is the expensive part.  Optimization is
        cost-gated against catalog cardinalities (see :meth:`_cost_model`).
        Returns ``(logical_plan, was_cached)``.
        """
        lowered = lower_rewritten(rewritten, self.catalog)
        if self._plan_cache is None:
            return optimize_plan(lowered, cost_model=self._cost_model()), False
        lowered, fingerprint = canonicalize(lowered)
        key = self._plan_key(
            base_name, rewritten.strategy, relation, fingerprint
        )
        cached = self._plan_cache.get(key)
        if cached is not None:
            return cached, True
        logical = optimize_plan(lowered, cost_model=self._cost_model())
        self._plan_cache.put(key, logical)
        return logical, False

    def _answer_pipeline(
        self,
        sql: Union[str, Query],
        guard: Union[GuardPolicy, bool, None],
        tracer: Tracer,
        root,
        max_rel_error: Optional[float] = None,
        max_ms: Optional[float] = None,
        use_synopsis: Optional[str] = None,
    ) -> ApproximateAnswer:
        """Cache front-end around the staged pipeline.

        A hit must be indistinguishable from recomputation: the key carries
        the data version (so any insert/flush/refresh/re-register since the
        entry was stored forces a miss) and guard-degraded answers are never
        stored, so a cached answer is always a clean one for current data.
        Budgeted answers additionally key on ``(max_rel_error, max_ms,
        chosen member)``, so the same query under different budgets -- or
        after a portfolio re-resolution -- never collides.
        """
        check_deadline("parse")
        with tracer.span("parse"):
            query = parse_query(sql) if isinstance(sql, str) else sql
            policy = self._resolve_guard(guard)
            base_name = query.base_table_name()
            state = self._state(base_name)
            self.query_log(base_name).record(query)
        root.set(table=base_name, guarded=policy is not None)

        choice: Optional[PortfolioChoice] = None
        if (
            max_rel_error is not None
            or max_ms is not None
            or use_synopsis is not None
        ):
            check_deadline("resolve")
            with tracer.span("resolve") as resolve_span:
                portfolio = self.portfolio(base_name)
                if use_synopsis is not None:
                    choice = portfolio.forced_choice(use_synopsis, query)
                else:
                    choice = portfolio.resolve(
                        query,
                        max_rel_error=max_rel_error,
                        max_ms=max_ms,
                        version=state.version,
                    )
                resolve_span.set(
                    synopsis=choice.member, reason=choice.reason
                )
            if max_rel_error is not None and use_synopsis is None:
                # Tighten the guard so a prediction miss falls through the
                # ladder (repair/exact) rather than breaking the promise.
                if policy is None:
                    policy = GuardPolicy(
                        max_relative_halfwidth=max_rel_error
                    )
                elif (
                    policy.max_relative_halfwidth is None
                    or policy.max_relative_halfwidth > max_rel_error
                ):
                    policy = dataclass_replace(
                        policy, max_relative_halfwidth=max_rel_error
                    )
            root.set(synopsis=choice.member)

        budget = (
            (max_rel_error, max_ms, choice.member)
            if choice is not None
            else ()
        )
        canonical = (
            canonicalize_query(query) if self._cache is not None else None
        )
        key = self._cache_key(query, base_name, policy, budget, canonical)
        if key is not None:
            entry = self._cache.get(key)
            if entry is not None:
                # Shallow copy: the caller attaches this call's trace and
                # trace id to the returned object, which must not leak
                # into the cache.  A canonical hit is additionally
                # reconciled (aliases renamed, rows re-sorted) to the
                # probe's spelling.
                answer, tier = self._reconcile_cached(entry, query, canonical)
                root.set(cache=tier)
                self._cache.record_tier_hit(tier)
                return answer
            root.set(cache="miss")

        if choice is None:
            answer = self._rollup_answer(
                query, base_name, state, policy, tracer
            )
            if answer is not None:
                root.set(cache="rollup")
                if key is not None:
                    self._cache.record_tier_hit("rollup")
                    if answer.guard is None or not answer.guard.degraded:
                        self._cache.put(
                            self._cache_key(
                                query, base_name, policy, budget, canonical
                            ),
                            self._cache_entry(answer, query, canonical),
                        )
                return answer

        answer = self._answer_stages(
            query,
            policy,
            base_name,
            state,
            tracer,
            choice=choice,
            budgets=(max_rel_error, max_ms),
        )
        if choice is not None:
            answer.chosen_synopsis = choice.member
            answer.predicted_rel_error = choice.predicted_rel_error
            self._observe_portfolio_answer(
                base_name, choice, answer, max_rel_error
            )
        if key is not None and (
            answer.guard is None or not answer.guard.degraded
        ):
            self._cache.put(
                self._cache_key(query, base_name, policy, budget, canonical),
                self._cache_entry(answer, query, canonical),
            )
        return answer

    def _cache_entry(
        self, answer: ApproximateAnswer, query: Query, canonical
    ) -> _CacheEntry:
        return _CacheEntry(
            answer=dataclass_replace(answer, trace=None),
            sql=render_query(query),
            aliases=tuple(canonical.aliases),
            group_by=tuple(query.group_by),
        )

    def _reconcile_cached(
        self, entry: _CacheEntry, query: Query, canonical
    ) -> Tuple[ApproximateAnswer, str]:
        """Serve a fingerprint hit, reconciling spelling differences.

        An *exact* hit (same rendered text) is returned as-is.  A
        *canonical* hit -- same semantics, different aliases or GROUP BY
        column order -- renames the result's aggregate/projection columns
        (and their ``_error`` companions) to the probe's aliases and, for
        probes without an ORDER BY, re-sorts rows into the probe's group
        order, so the served table is indistinguishable from direct
        execution of the probe.
        """
        answer = entry.answer
        if entry.sql == render_query(query):
            return (
                dataclass_replace(
                    answer, trace=None, cache_hit=True, cache_tier="exact"
                ),
                "exact",
            )
        result = answer.result
        mapping: Dict[str, str] = {}
        for old, new in zip(entry.aliases, canonical.aliases):
            if old == new:
                continue
            mapping[old] = new
            if f"{old}_error" in result.schema:
                mapping[f"{old}_error"] = f"{new}_error"
        if mapping:
            result = result.rename(mapping)
        if tuple(entry.group_by) != tuple(query.group_by) and not query.order_by:
            alias_of = {
                item.expr.name: item.alias
                for item in query.projections()
                if isinstance(item.expr, Col)
            }
            order = [
                alias_of[name]
                for name in query.group_by
                if name in alias_of
            ]
            if order:
                result = result.sort_by(order)
        return (
            dataclass_replace(
                answer,
                result=result,
                trace=None,
                cache_hit=True,
                cache_tier="canonical",
            ),
            "canonical",
        )

    @staticmethod
    def _synopsis_signature(synopsis: Synopsis) -> Tuple:
        """What must match for a snapshot to serve a probe bit-identically.

        The installed sample relation name is included because portfolio
        members are distinct *draws*: a member with the primary's exact
        strategy/budget/grouping still holds different rows, so its
        moments must never serve a primary-synopsis probe.
        """
        return (
            synopsis.installed.sample_name,
            synopsis.allocation_strategy,
            synopsis.rewrite_strategy,
            synopsis.budget,
            tuple(synopsis.grouping_columns),
        )

    def _rollup_answer(
        self,
        query: Query,
        base_name: str,
        state: _TableState,
        policy: Optional[GuardPolicy],
        tracer: Tracer,
    ) -> Optional[ApproximateAnswer]:
        """Serve from the roll-up subsumption tier, or ``None`` on a miss.

        A hit merges a finer cached entry's per-stratum aggregate states
        down to the probe's GROUP BY (the paper's Section 6 datacube
        construction run in reverse), recomputing estimates *and*
        Chebyshev half-widths from the merged moments -- bit-identical to
        what the direct pipeline would produce at this version, because
        both run :meth:`ReuseSnapshot.finalize`.  The answer then passes
        through the normal guard ladder; its provenance is re-tagged
        ``rollup`` and the source entry recorded in ``reused_from``.
        """
        if self._reuse is None or self._bound_method != "chebyshev":
            return None
        if query.having is not None or not isinstance(query.from_item, str):
            return None
        aggregates = query.aggregates()
        if not aggregates or any(
            aggregate.func not in _SCALED_AGGREGATES
            for aggregate in aggregates
        ):
            return None
        projected = {
            item.expr.name
            for item in query.projections()
            if isinstance(item.expr, Col)
        }
        if not set(query.group_by) <= projected:
            return None
        synopsis = self._synopses.get(base_name)
        if synopsis is None:
            return None
        match = self._reuse.lookup(
            base_name=base_name,
            version=state.version,
            synopsis_signature=self._synopsis_signature(synopsis),
            where=query.where,
            group_by=query.group_by,
            aggregates=aggregates,
            confidence=self._confidence,
        )
        if match is None:
            return None
        check_deadline("rollup")
        start = time.perf_counter()
        with tracer.span("rollup", source=match.snapshot.describe_source):
            rollup = match.snapshot.finalize(
                query.group_by, aggregates, match.extra_predicate
            )
            result = self._rollup_result(query, state, rollup)
        answer = ApproximateAnswer(
            result=result,
            confidence=self._confidence,
            synopsis=synopsis,
            elapsed_seconds=time.perf_counter() - start,
        )
        if policy is not None:
            answer = self._guard_answer(
                query, synopsis, answer, policy, state.inserts_since_refresh
            )
        source = match.snapshot.describe_source
        if match.extra_conjuncts:
            source += f" sliced by ({' AND '.join(match.extra_conjuncts)})"
        answer = self._tag_rollup(answer, policy)
        answer.cache_tier = "rollup"
        answer.reused_from = source
        return answer

    def _rollup_result(
        self, query: Query, state: _TableState, rollup
    ) -> Table:
        """Materialize a :class:`~repro.aqua.reuse.RollupAnswer` as the
        probe's answer table: select-order columns, base-schema key types,
        ``<alias>_error`` columns appended in aggregate order (the same
        layout :meth:`_attach_error_bounds` produces), then ORDER BY and
        LIMIT applied exactly as the physical plan would."""
        from ..engine.schema import Schema

        base_schema = state.table.schema
        position = {name: i for i, name in enumerate(rollup.group_by)}
        schema_columns: List[Column] = []
        columns: Dict[str, object] = {}
        for item in query.select:
            if isinstance(item, Aggregate):
                schema_columns.append(Column(item.alias, ColumnType.FLOAT))
                columns[item.alias] = rollup.values[item.alias]
            else:
                name = item.expr.name
                schema_columns.append(
                    Column(item.alias, base_schema.column(name).ctype)
                )
                i = position[name]
                columns[item.alias] = [key[i] for key in rollup.keys]
        for aggregate in query.aggregates():
            error_name = f"{aggregate.alias}_error"
            schema_columns.append(Column(error_name, ColumnType.FLOAT))
            columns[error_name] = rollup.halfwidths[aggregate.alias]
        result = Table.from_columns(Schema(tuple(schema_columns)), **columns)
        if query.order_by:
            result = result.sort_by(list(query.order_by))
        if query.limit is not None:
            result = result.head(query.limit)
        return result

    def _tag_rollup(
        self, answer: ApproximateAnswer, policy: Optional[GuardPolicy]
    ) -> ApproximateAnswer:
        """Re-tag clean synopsis provenance as ``rollup``.

        Repaired/exact groups keep their tags (the guard really did that
        work), and :attr:`GuardReport.degraded` treats ``rollup`` as
        clean, so a roll-up-served answer is cacheable exactly when its
        direct-path twin would be.
        """
        report = answer.guard
        if report is not None:
            answer.guard = dataclass_replace(
                report,
                provenance={
                    key: (
                        PROVENANCE_ROLLUP
                        if tag == PROVENANCE_SYNOPSIS
                        else tag
                    )
                    for key, tag in report.provenance.items()
                },
            )
        column = (
            policy.provenance_column
            if policy is not None
            else PROVENANCE_COLUMN
        )
        if column in answer.result.schema:
            tags = answer.result.column(column)
            retagged = np.where(
                tags == PROVENANCE_SYNOPSIS, PROVENANCE_ROLLUP, tags
            )
            data = answer.result.columns()
            data[column] = retagged
            answer.result = Table(answer.result.schema, data)
        return answer

    def _answer_stages(
        self,
        query: Query,
        policy: Optional[GuardPolicy],
        base_name: str,
        state: _TableState,
        tracer: Tracer,
        choice: Optional[PortfolioChoice] = None,
        budgets: Tuple[Optional[float], Optional[float]] = (None, None),
    ) -> ApproximateAnswer:
        """The staged answer pipeline, one span per stage.

        Each stage starts with an ambient-deadline check, so an expired
        query dies at the next stage boundary with the stage name on the
        typed error; the plan/parallel executors check at finer grain
        (per operator, per partition) inside the execute stage.

        With a portfolio ``choice`` the chosen member replaces the primary
        synopsis throughout: its sample answers the query, its build-time
        row count anchors staleness and coverage validation, and a
        stale-triggered refresh rebuilds the *portfolio* (re-resolving the
        budgets against the fresh members) rather than the primary.
        """
        check_deadline("validate")
        with tracer.span("validate") as validate_span:
            self._maybe_auto_refresh(base_name)
            if choice is not None:
                synopsis = choice.synopsis
                current_rows = state.table.num_rows + len(state.pending_rows)
                stale = max(current_rows - choice.rows_at_build, 0)
            else:
                synopsis = self.synopsis(base_name)
                stale = state.inserts_since_refresh
            validate_span.set(stale_inserts=stale)
            if (
                policy is not None
                and policy.staleness_limit is not None
                and stale > policy.staleness_limit
            ):
                if policy.on_stale == "refresh":
                    if choice is not None:
                        portfolio = self.refresh_portfolio(
                            base_name, trigger="guard"
                        )
                        max_rel_error, max_ms = budgets
                        if max_rel_error is not None or max_ms is not None:
                            choice = portfolio.resolve(
                                query,
                                max_rel_error=max_rel_error,
                                max_ms=max_ms,
                                version=state.version,
                            )
                        else:
                            choice = portfolio.forced_choice(
                                choice.member, query
                            )
                        synopsis = choice.synopsis
                    else:
                        synopsis = self.refresh_synopsis(
                            base_name, trigger="guard"
                        )
                    stale = 0
                elif policy.on_stale == "raise":
                    raise StaleSynopsisError(
                        f"synopsis for {base_name!r} is stale: {stale} "
                        f"inserts since the last refresh exceed the limit "
                        f"of {policy.staleness_limit}; call "
                        "refresh_synopsis() or relax the guard policy"
                    )
                elif policy.on_stale == "exact":
                    return self._exact_answer(
                        query,
                        synopsis,
                        policy,
                        reason=f"stale synopsis ({stale} inserts over the "
                        f"limit of {policy.staleness_limit})",
                        stale=stale,
                    )
                # "serve": accept the staleness and continue.

            if policy is not None:
                issues = self._synopsis_issues(
                    state,
                    synopsis,
                    expected_rows=(
                        choice.rows_at_build if choice is not None else None
                    ),
                )
                if issues:
                    detail = "; ".join(issues)
                    if (
                        policy.on_corrupt == "raise"
                        or not policy.exact_fallback
                    ):
                        raise SynopsisCorruptError(
                            f"synopsis for {base_name!r} failed validation: "
                            f"{detail}"
                        )
                    return self._exact_answer(
                        query,
                        synopsis,
                        policy,
                        reason=f"corrupt synopsis: {detail}",
                        stale=stale,
                        issues=tuple(issues),
                    )

        check_deadline("rewrite")
        with tracer.span("rewrite", strategy=self._rewrite.name):
            plan = self._rewrite.plan(query, synopsis.installed)

        check_deadline("plan_optimize")
        with tracer.span("plan_optimize") as plan_span:
            logical, cached_plan = self._optimized_plan(
                plan, base_name, synopsis.installed.sample_name
            )
            plan_span.set(cache="hit" if cached_plan else "miss")

        check_deadline("execute")
        start = time.perf_counter()
        with tracer.span("execute") as execute_span:
            try:
                # Synopsis scans stay serial regardless of the executor:
                # samples are budget-bounded (small), and serial execution
                # keeps answers bit-identical across parallel configs.
                # Base-table scans (exact, guard repair, synopsis builds)
                # are where the partitioned GroupBy pays off.
                result = execute_plan(logical, self.catalog, tracer=tracer)
            except CatalogError as exc:
                raise SynopsisCorruptError(
                    f"synopsis relations for {base_name!r} are missing from "
                    f"the catalog: {exc}"
                ) from exc
            execute_span.set(rows=result.num_rows)
        elapsed = time.perf_counter() - start

        check_deadline("error_bounds")
        with tracer.span("error_bounds"):
            self._reuse_local.snapshot = None
            result = self._attach_error_bounds(query, synopsis, result)
            snapshot = getattr(self._reuse_local, "snapshot", None)
            self._reuse_local.snapshot = None
        answer = ApproximateAnswer(
            result=result,
            confidence=self._confidence,
            synopsis=synopsis,
            elapsed_seconds=elapsed,
        )
        if policy is not None:
            check_deadline("guard")
            with tracer.span("guard") as guard_span:
                answer = self._guard_answer(
                    query, synopsis, answer, policy, stale
                )
                if answer.guard is not None:
                    guard_span.set(**answer.guard.counts)
        # Degraded answers never populate the semantic tiers: the snapshot
        # describes a clean synopsis scan, and a degraded verdict means
        # that scan was not what the user was served.
        if (
            snapshot is not None
            and self._reuse is not None
            and (answer.guard is None or not answer.guard.degraded)
        ):
            self._reuse.register(snapshot)
        return answer

    # -- the guard ladder ---------------------------------------------------

    def _result_keys(
        self, table: Table, group_by: Sequence[str]
    ) -> List[GroupKey]:
        if not group_by:
            return [() for __ in range(table.num_rows)]
        arrays = [table.column(name) for name in group_by]
        return [
            make_key(tuple(arr[i] for arr in arrays))
            for i in range(table.num_rows)
        ]

    def _missing_groups(
        self,
        query: Query,
        synopsis: Synopsis,
        group_by: Sequence[str],
        present: set,
    ) -> List[GroupKey]:
        """Answer groups the synopsis knows exist but failed to estimate.

        Only detectable when the query groups by a subset of the
        stratification columns: then every populated stratum projects onto
        an expected answer group.  (A WHERE clause may legitimately empty a
        group -- the repair query settles that against the base table.)
        HAVING and LIMIT legitimately drop groups from the answer, so no
        absence is diagnosable under them.
        """
        if query.having is not None or query.limit is not None:
            return []
        if not group_by or not set(group_by) <= set(synopsis.grouping_columns):
            return []
        expected = set()
        for key, stratum in synopsis.sample.strata.items():
            if stratum.population > 0:
                expected.add(
                    project_key(key, synopsis.grouping_columns, group_by)
                )
        return sorted(expected - present)

    def _flag_groups(
        self,
        query: Query,
        result: Table,
        keys: List[GroupKey],
        support: Dict[GroupKey, int],
        policy: GuardPolicy,
    ) -> Dict[GroupKey, str]:
        """Per-row threshold checks: support, finiteness, bound quality."""
        error_columns = {
            a.alias: f"{a.alias}_error"
            for a in query.aggregates()
            if a.func in _SCALED_AGGREGATES
        }
        flagged: Dict[GroupKey, str] = {}
        for i, key in enumerate(keys):
            reasons = []
            group_support_count = support.get(key, 0)
            if group_support_count < policy.min_group_support:
                reasons.append(
                    f"sample support {group_support_count} below minimum "
                    f"{policy.min_group_support}"
                )
            for aggregate in query.aggregates():
                try:
                    value = float(result.column(aggregate.alias)[i])
                except (TypeError, ValueError):
                    continue  # non-numeric aggregate (e.g. MIN over strings)
                if not math.isfinite(value):
                    reasons.append(f"{aggregate.alias} is not finite")
                    continue
                error_name = error_columns.get(aggregate.alias)
                if error_name is None:
                    continue
                halfwidth = float(result.column(error_name)[i])
                if math.isnan(halfwidth):
                    reasons.append(f"{error_name} is NaN")
                elif policy.max_relative_halfwidth is not None:
                    relative = relative_halfwidth(halfwidth, value)
                    if relative > policy.max_relative_halfwidth:
                        reasons.append(
                            f"{aggregate.alias} relative half-width "
                            f"{relative:.3g} exceeds "
                            f"{policy.max_relative_halfwidth:.3g}"
                        )
            if reasons:
                flagged[key] = "; ".join(reasons)
        return flagged

    def _guard_answer(
        self,
        query: Query,
        synopsis: Synopsis,
        answer: ApproximateAnswer,
        policy: GuardPolicy,
        stale: int,
    ) -> ApproximateAnswer:
        tracer = self.telemetry.tracer
        metrics = self.telemetry.metrics
        result = answer.result
        group_by = list(query.group_by)
        keys = self._result_keys(result, group_by)
        with tracer.span("support"):
            support = group_support(
                synopsis.sample, predicate=query.where, group_by=group_by
            )
        if metrics.enabled:
            support_histogram = metrics.histogram(
                "aqua_group_support_tuples",
                "Sample tuples backing each answer group.",
                buckets=(0, 1, 2, 5, 10, 25, 50, 100, 250, 1000, 10000),
            )
            for key in keys:
                support_histogram.observe(support.get(key, 0))
        flagged = self._flag_groups(query, result, keys, support, policy)
        missing = self._missing_groups(query, synopsis, group_by, set(keys))

        needy = len(flagged) + len(missing)
        if needy == 0:
            provenance = {key: PROVENANCE_SYNOPSIS for key in keys}
            tagged = self._attach_provenance(
                result, [PROVENANCE_SYNOPSIS] * len(keys), policy
            )
            report = GuardReport(
                policy=policy, provenance=provenance, stale_inserts=stale
            )
            return ApproximateAnswer(
                result=tagged,
                confidence=answer.confidence,
                synopsis=synopsis,
                elapsed_seconds=answer.elapsed_seconds,
                guard=report,
            )

        total = len(keys) + len(missing)
        repair_unsupported = (
            query.having is not None or query.limit is not None or not group_by
        )
        if (
            not policy.repair
            or repair_unsupported
            or needy / max(total, 1) > policy.max_repair_fraction
        ):
            reason = (
                f"{needy} of {total} answer groups failed the guard "
                f"({'; '.join(sorted(set(flagged.values())) or ['missing groups'])})"
            )
            if not policy.exact_fallback:
                raise GuardViolationError(
                    f"cannot serve {query.base_table_name()!r}: {reason} and "
                    "exact fallback is disabled by the guard policy"
                )
            return self._exact_answer(
                query, synopsis, policy, reason=reason, stale=stale,
                flagged=flagged,
            )
        return self._repair_answer(
            query, synopsis, answer, policy, stale, keys, flagged, missing
        )

    def _repair_answer(
        self,
        query: Query,
        synopsis: Synopsis,
        answer: ApproximateAnswer,
        policy: GuardPolicy,
        stale: int,
        keys: List[GroupKey],
        flagged: Dict[GroupKey, str],
        missing: List[GroupKey],
    ) -> ApproximateAnswer:
        """Patch only the failing groups from the base table.

        This is the paper's small-group problem handled at serve time: the
        synopsis answer is kept for well-supported groups, while flagged and
        missing groups are recomputed exactly over just their base rows.
        """
        result = answer.result
        group_by = list(query.group_by)
        repair_keys = sorted(set(flagged) | set(missing))
        repair_query = self._restrict_to_groups(query, group_by, repair_keys)

        start = time.perf_counter()
        with self.telemetry.tracer.span(
            "repair", groups=len(repair_keys)
        ):
            repair = self.exact(repair_query)
        repair_elapsed = time.perf_counter() - start

        repair_rows: Dict[GroupKey, Dict[str, object]] = {}
        for i, key in enumerate(self._result_keys(repair, group_by)):
            repair_rows[key] = {
                name: repair.column(name)[i] for name in repair.schema.names
            }

        error_names = {
            f"{a.alias}_error"
            for a in query.aggregates()
            if a.func in _SCALED_AGGREGATES
        }
        names = result.schema.names
        rows: List[Tuple] = []
        tags: List[str] = []
        provenance: Dict[GroupKey, str] = {}
        dropped: List[GroupKey] = []
        for i, key in enumerate(keys):
            if key in flagged:
                fixed = repair_rows.get(key)
                if fixed is None:
                    # The base table has no qualifying rows for this group:
                    # the flagged estimate was a phantom; drop it.
                    dropped.append(key)
                    continue
                rows.append(
                    tuple(
                        0.0 if name in error_names else fixed[name]
                        for name in names
                    )
                )
                tags.append(PROVENANCE_REPAIRED)
                provenance[key] = PROVENANCE_REPAIRED
            else:
                rows.append(tuple(result.column(name)[i] for name in names))
                tags.append(PROVENANCE_SYNOPSIS)
                provenance[key] = PROVENANCE_SYNOPSIS
        for key in missing:
            fixed = repair_rows.get(key)
            if fixed is None:
                continue  # group has no qualifying base rows after all
            rows.append(
                tuple(
                    0.0 if name in error_names else fixed[name]
                    for name in names
                )
            )
            tags.append(PROVENANCE_REPAIRED)
            provenance[key] = PROVENANCE_REPAIRED

        merged = Table.from_rows(result.schema, rows)
        merged = self._attach_provenance(merged, tags, policy)
        if query.order_by:
            merged = merged.sort_by(list(query.order_by))
        report = GuardReport(
            policy=policy,
            provenance=provenance,
            flagged=dict(flagged),
            dropped=tuple(dropped),
            stale_inserts=stale,
        )
        return ApproximateAnswer(
            result=merged,
            confidence=answer.confidence,
            synopsis=synopsis,
            elapsed_seconds=answer.elapsed_seconds + repair_elapsed,
            guard=report,
        )

    def _restrict_to_groups(
        self, query: Query, group_by: Sequence[str], keys: Sequence[GroupKey]
    ) -> Query:
        """The original query, restricted to the given answer groups."""
        if len(group_by) == 1:
            key_predicate = InList.of(
                Col(group_by[0]), [key[0] for key in keys]
            )
        else:
            terms = []
            for key in keys:
                equalities = [
                    Comparison.of(Col(column), "=", value)
                    for column, value in zip(group_by, key)
                ]
                terms.append(reduce(And, equalities))
            key_predicate = reduce(Or, terms)
        where = (
            key_predicate
            if query.where is None
            else And(query.where, key_predicate)
        )
        return dataclass_replace(query, where=where, order_by=(), limit=None)

    def _attach_provenance(
        self, table: Table, tags: Sequence[str], policy: GuardPolicy
    ) -> Table:
        name = policy.provenance_column
        if name in table.schema:
            return table  # user query already owns the name; don't clobber
        return table.with_column(Column(name, ColumnType.STR), list(tags))

    def _exact_answer(
        self,
        query: Query,
        synopsis: Synopsis,
        policy: GuardPolicy,
        reason: str,
        stale: int,
        issues: Tuple[str, ...] = (),
        flagged: Optional[Dict[GroupKey, str]] = None,
    ) -> ApproximateAnswer:
        """Full exact fallback, shaped like an approximate answer.

        Error columns are attached as zeros (an exact answer has no
        sampling error) and every group is tagged ``exact``.
        """
        start = time.perf_counter()
        with self.telemetry.tracer.span("exact_fallback", reason=reason):
            result = self.exact(query)
        elapsed = time.perf_counter() - start
        for aggregate in query.aggregates():
            if aggregate.func not in _SCALED_AGGREGATES:
                continue
            result = result.with_column(
                Column(f"{aggregate.alias}_error", ColumnType.FLOAT),
                np.zeros(result.num_rows),
            )
        keys = self._result_keys(result, list(query.group_by))
        result = self._attach_provenance(
            result, [PROVENANCE_EXACT] * len(keys), policy
        )
        report = GuardReport(
            policy=policy,
            provenance={key: PROVENANCE_EXACT for key in keys},
            flagged=dict(flagged or {}),
            issues=issues,
            stale_inserts=stale,
            fallback_reason=reason,
        )
        return ApproximateAnswer(
            result=result,
            confidence=self._confidence,
            synopsis=synopsis,
            elapsed_seconds=elapsed,
            guard=report,
        )

    # -- calibration & ground truth -----------------------------------------

    def compare(
        self,
        sql: Union[str, Query],
        guard: Union[GuardPolicy, bool, None] = None,
    ) -> "ComparisonReport":
        """Answer approximately *and* exactly, and score the difference.

        Intended for calibration sessions: the administrator samples a few
        representative queries to decide whether the space budget is
        adequate (the paper's Section 7 protocol, as an API).  Pending
        inserts are flushed first so the approximate and exact answers are
        scored against the same relation; any synopsis staleness at answer
        time is recorded honestly in the report instead of silently skewing
        the error metrics.
        """
        query = parse_query(sql) if isinstance(sql, str) else sql
        base_name = query.base_table_name()
        state = self._state(base_name)
        self._flush_pending(base_name)
        answer = self.answer(query, guard=guard)
        # Read staleness after answering: a guard-triggered refresh clears it.
        stale_inserts = state.inserts_since_refresh
        start = time.perf_counter()
        exact = self.exact(query)
        exact_elapsed = time.perf_counter() - start

        from ..metrics.groupby_error import GroupByError, groupby_error

        per_aggregate: Dict[str, GroupByError] = {}
        key_columns = list(query.group_by)
        for aggregate in query.aggregates():
            per_aggregate[aggregate.alias] = groupby_error(
                exact, answer.result, key_columns, aggregate.alias
            )
        return ComparisonReport(
            approximate=answer,
            exact=exact,
            exact_elapsed_seconds=exact_elapsed,
            errors=per_aggregate,
            stale_inserts=stale_inserts,
        )

    def explain(
        self,
        sql: Union[str, Query],
        analyze: bool = False,
        max_rel_error: Optional[float] = None,
        max_ms: Optional[float] = None,
    ) -> str:
        """Show the rewritten plan (the paper's Figure 2/8-11 view).

        Always includes -- telemetry on or off -- the rewrite strategy,
        the synopsis relations the rewrite reads (sample-table
        provenance), and the *optimized* operator tree with estimated
        per-operator cardinalities.

        With an error/latency budget (``max_rel_error`` / ``max_ms``) the
        plan is resolved against the table's synopsis portfolio exactly as
        :meth:`answer` would, and the output leads with the chosen member,
        its predictions, and the resolution reason.

        With ``analyze=True`` the plan is also *executed*: the operator
        tree is re-rendered with actual rows and inclusive per-operator
        timings, and the per-stage span tree of a traced answer is
        appended -- the ``EXPLAIN ANALYZE`` of the approximate pipeline.
        """
        query = parse_query(sql) if isinstance(sql, str) else sql
        base_name = query.base_table_name()
        choice = None
        if max_rel_error is not None or max_ms is not None:
            portfolio = self.portfolio(base_name)
            choice = portfolio.resolve(
                query,
                max_rel_error=max_rel_error,
                max_ms=max_ms,
                version=self._state(base_name).version,
            )
            synopsis = choice.synopsis
        else:
            synopsis = self.synopsis(base_name)
        plan = self._rewrite.plan(query, synopsis.installed)
        logical, __ = self._optimized_plan(
            plan, base_name, synopsis.installed.sample_name
        )

        installed = synopsis.installed
        tables = installed.sample_name
        if installed.aux_name is not None:
            tables += f", {installed.aux_name}"
        lines = [plan.describe()]
        if choice is not None:
            predicted_error = (
                f"{choice.predicted_rel_error:.3g}"
                if math.isfinite(choice.predicted_rel_error)
                else "inf"
            )
            lines.append(
                f"-- portfolio: chose {choice.member!r} "
                f"({choice.reason}; predicted rel error "
                f"{predicted_error}, predicted "
                f"{choice.predicted_seconds * 1000:.2f} ms, "
                f"{choice.considered} members considered)"
            )
        budget = (
            (max_rel_error, max_ms, choice.member)
            if choice is not None
            else ()
        )
        lines += [
            f"-- synopsis tables: {tables}",
            f"-- sample: {synopsis.sample_size} of "
            f"{synopsis.sample.total_population} rows "
            f"(budget {synopsis.budget}, "
            f"allocation {synopsis.allocation_strategy})",
            f"-- cache: {self._probe_cache_tier(query, base_name, budget)}",
            "-- plan:",
            render_plan(logical, catalog=self.catalog),
        ]
        if analyze:
            collect: Dict[Tuple[int, ...], Tuple[int, float]] = {}
            execute_plan(logical, self.catalog, collect=collect)
            lines.append("-- plan (actual):")
            lines.append(
                render_plan(logical, catalog=self.catalog, actuals=collect)
            )
            trace = self.trace_answer(query).trace
            lines.append("-- analyze:")
            lines.append(trace.render())
        return "\n".join(lines)

    def _probe_cache_tier(
        self, query: Query, base_name: str, budget: Tuple = ()
    ) -> str:
        """Which tier would serve this query right now (counters untouched).

        Probes with the system's *default* guard policy -- what a plain
        :meth:`answer` call would use -- and reports ``exact``,
        ``canonical``, ``rollup (from <source>)``, ``miss``, or
        ``disabled``.
        """
        if self._cache is None and self._reuse is None:
            return "disabled"
        policy = self._resolve_guard(None)
        if self._cache is not None:
            canonical = canonicalize_query(query)
            key = self._cache_key(query, base_name, policy, budget, canonical)
            entry = self._cache.peek(key)
            if entry is not None:
                if entry.sql == render_query(query):
                    return "exact"
                return "canonical"
        if self._reuse is not None and not budget:
            synopsis = self._synopses.get(base_name)
            aggregates = query.aggregates()
            if (
                synopsis is not None
                and aggregates
                and self._bound_method == "chebyshev"
                and query.having is None
                and isinstance(query.from_item, str)
                and all(
                    aggregate.func in _SCALED_AGGREGATES
                    for aggregate in aggregates
                )
            ):
                match = self._reuse.lookup(
                    base_name=base_name,
                    version=self._state(base_name).version,
                    synopsis_signature=self._synopsis_signature(synopsis),
                    where=query.where,
                    group_by=query.group_by,
                    aggregates=aggregates,
                    confidence=self._confidence,
                    count=False,
                )
                if match is not None:
                    return f"rollup (from {match.snapshot.describe_source})"
        return "miss"

    def trace_answer(
        self,
        sql: Union[str, Query],
        guard: Union[GuardPolicy, bool, None] = None,
    ) -> ApproximateAnswer:
        """:meth:`answer` with the tracer force-enabled for this one call.

        The tracer's previous enabled state is restored afterwards, so a
        library user can trace a single query without reconfiguring the
        system.  The returned answer always carries a ``trace``.
        """
        tracer = self.telemetry.tracer
        was_enabled = tracer.enabled
        tracer.enable()
        try:
            return self.answer(sql, guard=guard)
        finally:
            tracer.enabled = was_enabled

    def exact(self, sql: Union[str, Query]) -> Table:
        """Execute the query against the base relation (ground truth).

        The query is lowered and optimized through the same plan IR that
        serves approximate answers, then executed by the physical plan
        executor; aggregate scans run partition-parallel when the system
        has an executor and the relation is large enough.  This is the
        machinery the guard's exact fallback and per-group repairs use, so
        degraded service keeps up with base tables the synopsis was built
        to avoid scanning.
        """
        query = parse_query(sql) if isinstance(sql, str) else sql
        self._flush_pending(query.base_table_name())
        try:
            logical = optimize_plan(
                lower_query(query, self.catalog),
                cost_model=self._cost_model(),
            )
            return execute_plan(
                logical,
                self.catalog,
                parallel=self._executor,
                tracer=self.telemetry.tracer,
            )
        except CatalogError as exc:
            raise TableNotRegisteredError(str(exc)) from exc

    def sql_stream(
        self,
        sql: Union[str, Query],
        *,
        chunk_rows: int = 1024,
        until_rel_error: Optional[float] = None,
        deadline: Union["Deadline", float, None] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        """Answer progressively: a stream of converging per-group estimates.

        Online aggregation over the *base* relation (no synopsis): the rows
        are scanned in one uniform random permutation, cut into
        ``chunk_rows``-row chunks, and folded through the mergeable
        group-by partials, so the prefix seen after ``k`` chunks is a
        simple random sample and every emitted
        :class:`~repro.aqua.stream.StreamingAnswer` carries unbiased
        estimates with shrinking CI half-widths (``<alias>_error`` columns,
        same shape as :meth:`answer` results).

        The terminal emission of a run-to-completion stream is computed by
        the batch plan executor over the whole relation, making it
        bit-identical to :meth:`exact` (``final=True``, zero half-widths);
        it is then stored in the answer cache.  ``until_rel_error`` stops
        the stream early once every group's relative half-width is at or
        below the target (``converged=True``, not cached).  A ``deadline``
        (explicit, or ambient via
        :func:`~repro.serve.deadline.deadline_scope`) is checked
        cooperatively between chunks; expiry re-emits the last complete
        answer with ``provenance="partial"`` instead of raising mid-merge,
        unless no answer was completed at all (then
        :class:`~repro.errors.DeadlineExceeded` propagates).

        Raises :class:`~repro.errors.StreamError` before the first chunk
        for non-streamable queries (nested FROM, no aggregates) or invalid
        knobs.  See ``docs/STREAMING.md`` for the full emission contract.
        """
        from .stream import stream_answers

        return stream_answers(
            self,
            sql,
            chunk_rows=chunk_rows,
            until_rel_error=until_rel_error,
            deadline=deadline,
            rng=rng,
        )

    def _attach_error_bounds(
        self, query: Query, synopsis: Synopsis, result: Table
    ) -> Table:
        """Attach ``<alias>_error`` half-width columns to a plan result.

        Expansion-servable queries (Chebyshev bounds, SUM/COUNT/AVG only,
        GROUP BY within the stratification columns) take the snapshot
        path: one pass over the sample records per-stratum moments
        (:class:`~repro.aqua.reuse.ReuseSnapshot`), and *both* the served
        values and the half-widths are finalized from those moments --
        the exact arithmetic a future roll-up of this snapshot will run,
        which is what makes roll-up answers bit-identical to direct ones.
        The built snapshot is deposited in a per-thread slot for
        :meth:`_answer_stages` to register after the guard verdict.
        Everything else falls back to the legacy per-aggregate
        :func:`~repro.estimators.point.estimate` path.
        """
        snapshot = self._reuse_snapshot(query, synopsis)
        if snapshot is not None:
            self._reuse_local.snapshot = snapshot
            return self._snapshot_bounds(query, snapshot, result)
        metrics = self.telemetry.metrics
        group_by = list(query.group_by)
        key_arrays = [result.column(name) for name in group_by]
        for aggregate in query.aggregates():
            if aggregate.func not in _SCALED_AGGREGATES:
                continue
            use_hoeffding = (
                self._bound_method == "hoeffding"
                and aggregate.func in ("sum", "count")
                and set(group_by) <= set(synopsis.grouping_columns)
            )
            if use_hoeffding:
                hoeffding = self._hoeffding_halfwidths(
                    query, synopsis, aggregate, group_by
                )
            estimates = (
                None
                if use_hoeffding
                else estimate(
                    synopsis.sample,
                    aggregate.func,
                    None if aggregate.func == "count" else aggregate.expr,
                    predicate=query.where,
                    group_by=group_by,
                )
            )
            halfwidths = np.full(result.num_rows, np.nan)
            for i in range(result.num_rows):
                key = tuple(
                    arr[i].item() if hasattr(arr[i], "item") else arr[i]
                    for arr in key_arrays
                )
                if use_hoeffding:
                    halfwidths[i] = hoeffding.get(key, np.nan)
                else:
                    group_estimate = estimates.get(key)
                    if (
                        group_estimate is not None
                        and group_estimate.variance >= 0
                    ):
                        halfwidths[i] = chebyshev_halfwidth(
                            group_estimate.std_error, self._confidence
                        )
            if metrics.enabled:
                halfwidth_histogram = metrics.histogram(
                    "aqua_relative_halfwidth",
                    "Error-bound half-width over estimate magnitude, per "
                    "answer group and aggregate.",
                    buckets=(
                        0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                        0.25, 0.5, 1.0, 2.5,
                    ),
                )
                values = result.column(aggregate.alias)
                for i in range(result.num_rows):
                    if not math.isfinite(halfwidths[i]):
                        continue
                    relative = relative_halfwidth(
                        halfwidths[i], float(values[i])
                    )
                    if math.isfinite(relative):
                        halfwidth_histogram.observe(relative)
            result = result.with_column(
                Column(f"{aggregate.alias}_error", ColumnType.FLOAT), halfwidths
            )
        return result

    def _reuse_snapshot(
        self, query: Query, synopsis: Synopsis
    ) -> Optional[ReuseSnapshot]:
        """Build per-stratum moments when the query is expansion-servable.

        ``None`` when the roll-up tier is disabled or the query needs the
        legacy estimate path (Hoeffding bounds, non-scaled aggregates,
        HAVING, nested FROM, or a GROUP BY outside the stratification
        columns).
        """
        if self._reuse is None or self._bound_method != "chebyshev":
            return None
        if query.having is not None or not isinstance(query.from_item, str):
            return None
        aggregates = query.aggregates()
        if not aggregates or any(
            aggregate.func not in _SCALED_AGGREGATES
            for aggregate in aggregates
        ):
            return None
        if not set(query.group_by) <= set(synopsis.grouping_columns):
            return None
        version = self._state(synopsis.base_name).version
        group_text = ", ".join(query.group_by) if query.group_by else "()"
        source = (
            f"{synopsis.base_name}@v{version} "
            f"{synopsis.allocation_strategy}/{synopsis.rewrite_strategy} "
            f"GROUP BY ({group_text})"
        )
        return ReuseSnapshot.build(
            synopsis.sample,
            query.where,
            aggregates,
            base_name=synopsis.base_name,
            version=version,
            synopsis_signature=self._synopsis_signature(synopsis),
            confidence=self._confidence,
            entry_group_by=tuple(query.group_by),
            describe_source=source,
        )

    def _snapshot_bounds(
        self, query: Query, snapshot: ReuseSnapshot, result: Table
    ) -> Table:
        """Finalize values *and* half-widths from the snapshot's moments.

        Overwrites the plan-computed aggregate columns with the moment
        finalization (the two agree to floating-point summation order;
        serving the finalized values is what guarantees roll-up answers
        reproduce direct ones bit-for-bit) and appends the ``_error``
        columns, preserving the legacy layout and the relative-half-width
        histogram.
        """
        metrics = self.telemetry.metrics
        group_by = list(query.group_by)
        key_arrays = [result.column(name) for name in group_by]
        rollup = snapshot.finalize(query.group_by, query.aggregates())
        index = {key: g for g, key in enumerate(rollup.keys)}
        row_keys = [
            tuple(
                arr[i].item() if hasattr(arr[i], "item") else arr[i]
                for arr in key_arrays
            )
            for i in range(result.num_rows)
        ]
        replaced = result.columns()
        errors: List[Tuple[str, np.ndarray]] = []
        for aggregate in query.aggregates():
            values = np.array(
                result.column(aggregate.alias), dtype=np.float64
            )
            halfwidths = np.full(result.num_rows, np.nan)
            for i, key in enumerate(row_keys):
                g = index.get(key)
                if g is None:
                    continue
                values[i] = rollup.values[aggregate.alias][g]
                halfwidths[i] = rollup.halfwidths[aggregate.alias][g]
            if metrics.enabled:
                halfwidth_histogram = metrics.histogram(
                    "aqua_relative_halfwidth",
                    "Error-bound half-width over estimate magnitude, per "
                    "answer group and aggregate.",
                    buckets=(
                        0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                        0.25, 0.5, 1.0, 2.5,
                    ),
                )
                for i in range(result.num_rows):
                    if not math.isfinite(halfwidths[i]):
                        continue
                    relative = relative_halfwidth(
                        halfwidths[i], float(values[i])
                    )
                    if math.isfinite(relative):
                        halfwidth_histogram.observe(relative)
            replaced[aggregate.alias] = values
            errors.append((f"{aggregate.alias}_error", halfwidths))
        result = Table(result.schema, replaced)
        for name, halfwidths in errors:
            result = result.with_column(
                Column(name, ColumnType.FLOAT), halfwidths
            )
        return result

    def _hoeffding_halfwidths(
        self, query: Query, synopsis: Synopsis, aggregate, group_by
    ) -> Dict[Tuple, float]:
        """Per-answer-group Hoeffding half-widths for a SUM/COUNT estimate.

        Uses exact per-stratum value ranges computed from the base table
        (Aqua precomputes such hints with the synopsis).  Ranges are
        zero-extended because the WHERE predicate zeroes out non-qualifying
        tuples in the estimator.
        """
        state = self._state(synopsis.base_name)
        base = state.table
        if aggregate.func == "count":
            values = np.ones(base.num_rows)
        else:
            values = np.asarray(
                aggregate.expr.evaluate(base), dtype=np.float64
            )
        ids, keys = finest_group_ids(base, synopsis.grouping_columns)
        num = len(keys)
        from ..engine.aggregates import grouped_reduce

        lows = np.minimum(grouped_reduce("min", values, ids, num), 0.0)
        highs = np.maximum(grouped_reduce("max", values, ids, num), 0.0)
        ranges = highs - lows

        # Collect strata per answer group.
        per_answer: Dict[Tuple, List[int]] = {}
        for stratum_index, key in enumerate(keys):
            answer = project_key(
                key, synopsis.grouping_columns, group_by
            )
            per_answer.setdefault(answer, []).append(stratum_index)

        sample = synopsis.sample
        out: Dict[Tuple, float] = {}
        for answer, stratum_indices in per_answer.items():
            r, n, m = [], [], []
            for index in stratum_indices:
                stratum = sample.strata.get(keys[index])
                if stratum is None or stratum.sample_size == 0:
                    continue
                r.append(float(ranges[index]))
                n.append(float(stratum.population))
                m.append(int(stratum.sample_size))
            if m:
                out[answer] = hoeffding_halfwidth_stratified_sum(
                    r, n, m, self._confidence
                )
        return out

    # -- incremental maintenance -------------------------------------------

    def enable_maintenance(self, name: str) -> None:
        """Switch a table's synopsis to streaming maintenance (Section 6).

        The existing base rows are streamed through the strategy's
        maintainer once; subsequent :meth:`insert` calls update the
        maintainer at O(1)-ish cost without touching the base relation.
        """
        state = self._state(name)
        strategy_name = getattr(self._allocation, "name", "congress")
        maintainer = maintainer_for(
            strategy_name,
            state.table.schema,
            state.grouping_columns,
            self._budget,
            self._rng,
        )
        maintainer.insert_table(state.table)
        state.maintainer = maintainer

    def insert(self, name: str, row: Sequence) -> None:
        """Insert one tuple into a table (buffered) and its maintainer."""
        state = self._state(name)
        with state.lock:
            state.pending_rows.append(tuple(row))
            state.inserts_since_refresh += 1
            state.version += 1  # invalidates cached answers for this table
            if self._reuse is not None:
                self._reuse.invalidate(name)
            if state.maintainer is not None:
                state.maintainer.insert(row)
                state.maintainer.inserts_seen += 1
        metrics = self.telemetry.metrics
        if metrics.enabled:
            metrics.counter(
                "aqua_inserts_total",
                "Tuples inserted through AquaSystem.insert(), per table.",
                ("table",),
            ).inc(table=name)
            metrics.gauge(
                "aqua_pending_rows",
                "Inserted rows buffered but not yet flushed to the base "
                "relation.",
                ("table",),
            ).set(len(state.pending_rows), table=name)
        self._maybe_auto_refresh(name)

    def insert_many(self, name: str, rows: Sequence[Sequence]) -> None:
        for row in rows:
            self.insert(name, row)

    def refresh_synopsis(self, name: str, trigger: str = "manual") -> Synopsis:
        """Re-materialize the synopsis from the maintainer's current state.

        Args:
            name: the table whose synopsis to refresh.
            trigger: provenance of the refresh for telemetry: ``"manual"``
                (API call), ``"auto"`` (drift policy), or ``"guard"``
                (stale-synopsis escalation).
        """
        state = self._state(name)
        metrics = self.telemetry.metrics
        start = time.perf_counter()
        with self.telemetry.tracer.span(
            "refresh_synopsis", table=name, trigger=trigger
        ):
            if state.maintainer is None:
                # No maintainer: fall back to a full rebuild from base data.
                self._flush_pending(name)
                synopsis = self.build_synopsis(name)
            else:
                maintained = state.maintainer.snapshot()
                maintained = subsample_to_budget(
                    maintained, self._budget, self._rng
                )
                synopsis = self._install(name, maintained.to_stratified())
        if metrics.enabled:
            metrics.counter(
                "aqua_refreshes_total",
                "Synopsis refreshes, by table and trigger "
                "(manual/auto/guard).",
                ("table", "trigger"),
            ).inc(table=name, trigger=trigger)
            metrics.histogram(
                "aqua_refresh_seconds",
                "Wall time of one synopsis refresh.",
                ("table",),
            ).observe(time.perf_counter() - start, table=name)
        return synopsis

    def _flush_pending(self, name: str) -> None:
        state = self._tables.get(name)
        if state is None:
            return
        with state.lock:
            if not state.pending_rows:
                return
            flushed = len(state.pending_rows)
            with self.telemetry.tracer.span(
                "flush", table=name, rows=flushed
            ):
                appended = Table.from_rows(
                    state.table.schema, state.pending_rows
                )
                state.table = state.table.concat(appended)
                state.pending_rows.clear()
                state.version += 1
                if self._reuse is not None:
                    self._reuse.invalidate(name)
                self.catalog.register(name, state.table, replace=True)
        metrics = self.telemetry.metrics
        if metrics.enabled:
            metrics.counter(
                "aqua_flushes_total",
                "Pending-row flushes into the base relation, per table.",
                ("table",),
            ).inc(table=name)
            metrics.counter(
                "aqua_flushed_rows_total",
                "Rows moved from the pending buffer to the base relation.",
                ("table",),
            ).inc(flushed, table=name)
            metrics.gauge(
                "aqua_pending_rows",
                "Inserted rows buffered but not yet flushed to the base "
                "relation.",
                ("table",),
            ).set(0, table=name)
