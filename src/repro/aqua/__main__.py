"""Entry point for ``python -m repro.aqua``."""

import sys

from .cli import main

sys.exit(main())
