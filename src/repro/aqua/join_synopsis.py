"""Join synopses over star schemas (Section 2, [AGPR99]).

Aqua sidesteps the well-known problem of joining samples by precomputing
*join synopses*: uniform (here: congressional) samples of the **result** of
the foreign-key joins of the star schema.  Any multi-table query over the
star can then be rewritten as a query on a single join-synopsis relation --
which is exactly why the paper restricts its discussion to single-relation
queries.

For foreign-key joins the join result has the fact table's cardinality, and
each fact row joins to exactly one row per dimension.  We exploit this:
:func:`materialize_star_join` widens the fact table by its dimensions, after
which the ordinary congressional machinery applies (including grouping on
*dimension* attributes, the common OLAP case).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..core.allocation import AllocationStrategy, build_sample
from ..core.congress import Congress
from ..engine.catalog import Catalog
from ..engine.join import hash_join
from ..engine.table import Table
from ..sampling.stratified import StratifiedSample

__all__ = ["ForeignKey", "StarSchema", "materialize_star_join", "build_join_synopsis"]


@dataclass(frozen=True)
class ForeignKey:
    """A fact-to-dimension foreign key edge."""

    fact_column: str
    dimension_table: str
    dimension_key: str


@dataclass(frozen=True)
class StarSchema:
    """A star: one fact table plus foreign keys into dimension tables."""

    fact_table: str
    foreign_keys: Tuple[ForeignKey, ...]

    @classmethod
    def of(cls, fact_table: str, *foreign_keys: ForeignKey) -> "StarSchema":
        return cls(fact_table, tuple(foreign_keys))


def materialize_star_join(catalog: Catalog, star: StarSchema) -> Table:
    """Compute the full foreign-key join of the star (fact cardinality).

    Raises if any fact row dangles (no matching dimension row) -- a genuine
    FK violation -- since silently dropping rows would bias every synopsis
    built from the result.
    """
    result = catalog.get(star.fact_table)
    expected_rows = result.num_rows
    for fk in star.foreign_keys:
        dimension = catalog.get(fk.dimension_table)
        keys = dimension.column(fk.dimension_key)
        if len(np.unique(keys)) != len(keys):
            raise ValueError(
                f"dimension key {fk.dimension_table}.{fk.dimension_key} "
                "is not unique"
            )
        result = hash_join(
            result,
            dimension,
            [fk.fact_column],
            [fk.dimension_key],
            suffix=f"_{fk.dimension_table}",
        )
        if result.num_rows != expected_rows:
            raise ValueError(
                f"foreign key {star.fact_table}.{fk.fact_column} -> "
                f"{fk.dimension_table}.{fk.dimension_key} has "
                f"{expected_rows - result.num_rows} dangling fact rows"
            )
    return result


def build_join_synopsis(
    catalog: Catalog,
    star: StarSchema,
    grouping_columns: Sequence[str],
    budget: int,
    strategy: Optional[AllocationStrategy] = None,
    register_as: Optional[str] = None,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[StratifiedSample, Table]:
    """Build a congressional sample of the star's join result.

    Args:
        catalog: catalog holding the fact and dimension tables.
        star: the star schema.
        grouping_columns: stratification columns; may freely mix fact and
            dimension attributes (post-join names).
        budget: sample size.
        strategy: allocation strategy (default :class:`Congress`).
        register_as: if given, the widened join result is registered in the
            catalog under this name so queries can target it.
        rng: numpy generator.

    Returns:
        ``(sample, wide_table)`` -- the stratified sample over the join
        result and the join result itself.
    """
    wide = materialize_star_join(catalog, star)
    if register_as is not None:
        catalog.register(register_as, wide, replace=True)
    sample = build_sample(
        strategy or Congress(), wide, grouping_columns, budget, rng=rng
    )
    return sample, wide
