"""Synopsis metadata: what Aqua knows about each precomputed sample.

A :class:`Synopsis` ties together the base table, the allocation strategy
that shaped the sample, the physical :class:`StratifiedSample`, and the
rewrite strategy's installed relation names.  It is what the Aqua rewriter
consults when a user query arrives (Figure 1's "Statistics Collector" +
"Query Rewriter" handshake).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..rewrite.base import InstalledSynopsis
from ..sampling.groups import GroupKey
from ..sampling.stratified import StratifiedSample

__all__ = ["Synopsis"]


@dataclass
class Synopsis:
    """One installed sample synopsis for a base table."""

    base_name: str
    grouping_columns: Tuple[str, ...]
    allocation_strategy: str
    rewrite_strategy: str
    budget: int
    sample: StratifiedSample
    installed: InstalledSynopsis

    @property
    def sample_size(self) -> int:
        return self.sample.total_sample_size

    @property
    def sampling_fraction(self) -> float:
        population = self.sample.total_population
        if population == 0:
            return 0.0
        return self.sample_size / population

    @property
    def empty_strata(self) -> Tuple[GroupKey, ...]:
        """Keys of populated strata that received no sample tuples.

        A nonempty result means some base-table groups are invisible to the
        synopsis -- the answer-time guard repairs them from the base table,
        and :meth:`AquaSystem.health` reports them as reduced coverage.
        """
        return tuple(
            key
            for key, stratum in sorted(self.sample.strata.items())
            if stratum.population > 0 and stratum.sample_size == 0
        )

    def validate(self) -> List[str]:
        """Structural issues with the underlying sample (empty = sound)."""
        from .guard import validate_sample

        return validate_sample(self.sample)

    def describe(self) -> str:
        """One-line human-readable summary (for example scripts)."""
        return (
            f"synopsis[{self.base_name}] strategy={self.allocation_strategy} "
            f"rewrite={self.rewrite_strategy} size={self.sample_size} "
            f"({100 * self.sampling_fraction:.2f}% of "
            f"{self.sample.total_population} rows), "
            f"strata={len(self.sample.strata)}"
        )
