"""An interactive Aqua shell: SQL in, approximate answers out.

Usage::

    python -m repro.aqua                      # demo census warehouse
    python -m repro.aqua --csv sales.csv --table sales \\
        --grouping region,product --budget 5000

Commands inside the shell::

    <any SQL>          answer approximately from the synopsis
    .exact <SQL>       answer exactly from the base table
    .stream <SQL>      answer progressively (online aggregation)
    .serve ...         route queries through the concurrent query service
    .synopsis          describe the installed synopsis
    .portfolio         describe / build synopsis portfolios; answer
                       under an error budget (.portfolio 0.1 SELECT ...)
    .health            report synopsis health per table
    .tables            list catalog tables
    .budget            show the space budget
    .help              this text
    .quit              exit

The shell is also importable (:class:`AquaShell`) and drives the same code
paths as the library API, so it doubles as an end-to-end smoke test.
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import IO, List, Optional, Sequence

from ..core.congress import Congress
from ..engine.io import read_csv
from ..engine.sql import SqlError
from ..synthetic.census import CensusConfig, generate_census
from ..engine.executor import ParallelConfig
from .system import AquaError, AquaSystem

__all__ = ["AquaShell", "main"]

_HELP = """commands:
  <SQL>            approximate answer from the synopsis
  .exact <SQL>     exact answer from the base table
  .explain <SQL>   rewrite strategy, synopsis tables, and operator tree
  .compare <SQL>   run approximately AND exactly; report error + speedup
  .trace <SQL>     answer AND show the per-stage span tree (timings)
  .stream <SQL>    answer progressively from the base table: one line per
                   chunk (fraction seen, worst relative halfwidth), then
                   the final exact table
  .stats [json|prom]  metrics so far (human, JSON, or Prometheus text)
  .parallel [N|off]   show / set parallel scan workers (off = serial)
  .cache [N|off|clear]  show / size / disable / clear the answer cache
  .serve [on [N]|off|<SQL>]  serving stats / start N workers / stop /
                   answer through the admission-controlled service
  .events [N]      last N query events from the structured event log
  .slo             SLO compliance and firing burn-rate alerts
  .report          full observability report (events + SLOs + audit)
  .synopsis        describe the installed synopsis
  .portfolio [build [table]]  describe synopsis portfolios / build the
                   stock fine/mid/coarse ladder for a table
  .portfolio <e> <SQL>  answer under an error budget: the cheapest
                   portfolio member predicted to keep the worst group
                   relative error <= e (e.g. .portfolio 0.1 SELECT ...)
  .health          synopsis health per table (coverage, drift, issues)
  .tables          list registered tables
  .budget          show the space budget
  .help            show this help
  .quit            exit"""

_MAX_PRINT_ROWS = 25


class AquaShell:
    """Line-oriented shell over an :class:`AquaSystem`."""

    def __init__(
        self,
        aqua: AquaSystem,
        out: Optional[IO[str]] = None,
        service=None,
    ):
        self._aqua = aqua
        self._out = out if out is not None else sys.stdout
        self._service = service

    def _print(self, text: str = "") -> None:
        print(text, file=self._out)

    def _print_table(self, table) -> None:
        names = table.schema.names
        self._print("  ".join(names))
        for i, row in enumerate(table.iter_rows()):
            if i >= _MAX_PRINT_ROWS:
                self._print(f"... ({table.num_rows - _MAX_PRINT_ROWS} more rows)")
                break
            cells = [self._format_cell(value) for value in row]
            self._print("  ".join(cells))

    @staticmethod
    def _format_cell(value) -> str:
        if isinstance(value, float):
            return f"{value:.6g}" if math.isfinite(value) else "n/a"
        return str(value)

    def _print_stats(self, mode: str) -> None:
        metrics = self._aqua.metrics
        if mode == "json":
            self._print(metrics.to_json(indent=2))
            return
        if mode in ("prom", "prometheus"):
            self._print(metrics.to_prometheus().rstrip("\n"))
            return
        if mode:
            self._print("usage: .stats [json|prom]")
            return
        snapshot = metrics.snapshot()
        if not snapshot:
            if not metrics.enabled:
                self._print("metrics registry is disabled")
            else:
                self._print("no metrics recorded yet")
            return
        for name, data in snapshot.items():
            for sample in data["values"]:
                labels = ",".join(
                    f"{key}={value}"
                    for key, value in sample["labels"].items()
                )
                rendered = f"{name}{{{labels}}}" if labels else name
                if data["type"] == "histogram":
                    self._print(
                        f"{rendered}  count={sample['count']} "
                        f"sum={sample['sum']:.6g}"
                    )
                else:
                    self._print(f"{rendered}  {sample['value']:.6g}")

    def _handle_stream(self, sql: str) -> None:
        if not sql:
            self._print("usage: .stream <SQL>")
            return
        last = None
        for answer in self._aqua.sql_stream(sql):
            last = answer
            if answer.final:
                tag = "exact" if not answer.cache_hit else "exact (cached)"
                self._print(
                    f"chunk {answer.chunk_index + 1}/{answer.chunks_total}  "
                    f"100% seen  {tag}"
                )
            else:
                rel = answer.max_rel_halfwidth
                rendered = f"{rel:.3%}" if math.isfinite(rel) else "n/a"
                self._print(
                    f"chunk {answer.chunk_index + 1}/{answer.chunks_total}  "
                    f"{answer.fraction:.0%} seen  "
                    f"worst rel halfwidth {rendered}  [{answer.provenance}]"
                )
        if last is not None:
            self._print_table(last.result)

    def _handle_parallel(self, arg: str) -> None:
        if not arg:
            config = self._aqua.parallel_config
            if config is None:
                self._print("parallel scans: off (serial execution)")
            else:
                self._print(
                    f"parallel scans: {config.workers} workers "
                    f"({config.backend}), min {config.min_partition_rows} "
                    "rows per partition"
                )
            return
        if arg in ("off", "serial", "0"):
            self._aqua.set_parallel(False)
            self._print("parallel scans: off")
            return
        try:
            workers = int(arg)
        except ValueError:
            self._print("usage: .parallel [N|off]")
            return
        self._aqua.set_parallel(ParallelConfig(max_workers=workers))
        self._print(
            f"parallel scans: {self._aqua.parallel_config.workers} workers"
        )

    def _handle_cache(self, arg: str) -> None:
        cache = self._aqua.answer_cache
        if not arg:
            if cache is None:
                self._print("answer cache: off")
            else:
                self._print(cache.stats.describe())
                self._print_rollup_stats()
            return
        if arg in ("off", "0"):
            self._aqua.set_cache(False)
            self._print("answer cache: off")
            return
        if arg == "clear":
            if cache is None:
                self._print("answer cache: off")
            else:
                self._print(f"dropped {cache.invalidate()} cached answers")
                rollup = self._aqua.rollup_index
                if rollup is not None:
                    rollup.clear()
            return
        try:
            capacity = int(arg)
        except ValueError:
            self._print("usage: .cache [N|off|clear]")
            return
        self._aqua.set_cache(capacity)
        self._print(self._aqua.answer_cache.stats.describe())
        self._print_rollup_stats()

    def _print_rollup_stats(self) -> None:
        rollup = self._aqua.rollup_index
        if rollup is not None:
            self._print(rollup.stats().describe())

    def _handle_serve(self, arg: str) -> None:
        # Imported here so the shell stays usable without dragging the
        # serving stack into plain library use.
        from ..serve.service import QueryService, ServiceConfig

        if not arg:
            if self._service is None:
                self._print("serving: off (.serve on [N] to start)")
            else:
                self._print(self._service.stats.describe())
            return
        if arg == "off":
            if self._service is not None:
                self._service.close()
                self._service = None
            self._print("serving: off")
            return
        if arg == "on" or arg.startswith("on "):
            if self._service is not None:
                self._print(self._service.stats.describe())
                return
            rest = arg[2:].strip()
            try:
                workers = int(rest) if rest else 4
            except ValueError:
                self._print("usage: .serve [on [N]|off|<SQL>]")
                return
            self._service = QueryService(
                self._aqua, ServiceConfig(workers=workers)
            )
            self._print(
                f"serving: on ({workers} workers, capacity "
                f"{self._service.config.capacity})"
            )
            return
        if self._service is None:
            self._print("serving is off; .serve on [N] first")
            return
        served = self._service.query(arg)
        self._print_table(served.result)
        state = (
            f"degraded ({served.degradation})" if served.degraded else "full"
        )
        self._print(
            f"[served: {state}; {served.attempts} attempt(s), "
            f"{served.served_seconds * 1000:.1f} ms]"
        )

    def close(self) -> None:
        """Release shell-owned resources (the .serve worker pool)."""
        if self._service is not None:
            self._service.close()
            self._service = None

    def _handle_events(self, arg: str) -> None:
        events = self._aqua.telemetry.events
        if not events.enabled and len(events) == 0:
            self._print("event log is disabled")
            return
        try:
            limit = int(arg) if arg else 10
        except ValueError:
            self._print("usage: .events [N]")
            return
        recent = events.events(limit=limit)
        if not recent:
            self._print("no events recorded yet")
            return
        for event in recent:
            flags = []
            if event.cache_tier is not None:
                flags.append(f"cache:{event.cache_tier}")
            elif event.cache_hit:
                flags.append("cache")
            if event.reused_from:
                flags.append(f"from {event.reused_from}")
            if event.degraded:
                flags.append(event.degradation or "degraded")
            if event.audited:
                flags.append(
                    f"audited({event.bound_violations} violations)"
                )
            suffix = f" [{', '.join(flags)}]" if flags else ""
            self._print(
                f"{event.trace_id}  {event.status:<8} "
                f"{event.table or '-':<12} "
                f"{event.duration_seconds * 1000:8.2f} ms  "
                f"{event.groups} groups{suffix}"
            )

    def _handle_slo(self) -> None:
        slo = self._aqua.slo
        if slo is None:
            self._print(
                "no SLO monitor attached (AquaSystem.attach_slo)"
            )
            return
        self._print(slo.describe())

    def _handle_portfolio(self, args: str) -> None:
        """``.portfolio`` / ``.portfolio build [table]`` / ``.portfolio <e> <SQL>``."""
        if not args:
            names = self._aqua.table_names()
            described = 0
            for name in names:
                if self._aqua.has_portfolio(name):
                    self._print(self._aqua.portfolio(name).describe())
                    described += 1
            if not described:
                self._print(
                    "no portfolios built; use .portfolio build [table]"
                )
            return
        parts = args.split(None, 1)
        if parts[0] == "build":
            names = (
                [parts[1].strip()]
                if len(parts) > 1
                else self._aqua.table_names()
            )
            for name in names:
                portfolio = self._aqua.build_portfolio(name)
                self._print(portfolio.describe())
            return
        try:
            budget = float(parts[0])
        except ValueError:
            self._print("usage: .portfolio [build [table]] | .portfolio <e> <SQL>")
            return
        if len(parts) < 2:
            self._print("usage: .portfolio <e> <SQL>")
            return
        answer = self._aqua.answer(parts[1], max_rel_error=budget)
        self._print_table(answer.result)
        predicted = (
            f"{answer.predicted_rel_error:.3g}"
            if answer.predicted_rel_error is not None
            and math.isfinite(answer.predicted_rel_error)
            else "n/a"
        )
        promised = answer.promised_rel_error
        promised_text = f"{promised:.3g}" if promised is not None else "n/a"
        self._print(
            f"[member {answer.chosen_synopsis!r}; predicted rel error "
            f"{predicted}, promised {promised_text}]"
        )
        self._print(
            f"[budget {budget:g}; {answer.confidence:.0%} confidence, "
            f"{answer.elapsed_seconds * 1000:.1f} ms]"
        )

    def _handle_report(self) -> None:
        from ..obs.slo import ObservabilityReport

        report = ObservabilityReport(
            events=self._aqua.telemetry.events,
            slo=self._aqua.slo,
            auditor=self._aqua.auditor,
        )
        self._print(report.render())

    def execute_line(self, line: str) -> bool:
        """Process one input line; returns False when the shell should exit."""
        line = line.strip()
        if not line:
            return True
        try:
            if line in (".quit", ".exit"):
                return False
            if line == ".help":
                self._print(_HELP)
            elif line == ".tables":
                for name in self._aqua.catalog.names():
                    self._print(name)
            elif line == ".budget":
                self._print(str(self._aqua.space_budget))
            elif line == ".synopsis":
                for name in list(self._aqua.catalog.names()):
                    try:
                        self._print(self._aqua.synopsis(name).describe())
                    except AquaError:
                        continue
            elif line == ".health":
                names = self._aqua.table_names()
                if not names:
                    self._print("no tables registered")
                for name in names:
                    self._print(self._aqua.health(name).describe())
            elif line.startswith(".exact"):
                sql = line[len(".exact"):].strip()
                if not sql:
                    self._print("usage: .exact <SQL>")
                else:
                    self._print_table(self._aqua.exact(sql))
            elif line.startswith(".explain"):
                sql = line[len(".explain"):].strip()
                if not sql:
                    self._print("usage: .explain <SQL>")
                else:
                    self._print(self._aqua.explain(sql))
            elif line.startswith(".compare"):
                sql = line[len(".compare"):].strip()
                if not sql:
                    self._print("usage: .compare <SQL>")
                else:
                    self._print(self._aqua.compare(sql).describe())
            elif line.startswith(".trace"):
                sql = line[len(".trace"):].strip()
                if not sql:
                    self._print("usage: .trace <SQL>")
                else:
                    answer = self._aqua.trace_answer(sql)
                    self._print_table(answer.result)
                    self._print(answer.trace.render())
            elif line.startswith(".stream"):
                self._handle_stream(line[len(".stream"):].strip())
            elif line.startswith(".stats"):
                self._print_stats(line[len(".stats"):].strip())
            elif line.startswith(".parallel"):
                self._handle_parallel(line[len(".parallel"):].strip())
            elif line.startswith(".cache"):
                self._handle_cache(line[len(".cache"):].strip())
            elif line.startswith(".portfolio"):
                self._handle_portfolio(line[len(".portfolio"):].strip())
            elif line.startswith(".serve"):
                self._handle_serve(line[len(".serve"):].strip())
            elif line.startswith(".events"):
                self._handle_events(line[len(".events"):].strip())
            elif line == ".slo":
                self._handle_slo()
            elif line == ".report":
                self._handle_report()
            elif line.startswith("."):
                self._print(f"unknown command {line.split()[0]!r}; try .help")
            else:
                answer = self._aqua.answer(line)
                self._print_table(answer.result)
                self._print(
                    f"[approximate; {answer.confidence:.0%} confidence, "
                    f"{answer.elapsed_seconds * 1000:.1f} ms]"
                )
                if answer.guard is not None and answer.guard.degraded:
                    self._print(f"[{answer.guard.describe()}]")
        except (AquaError, SqlError, ValueError) as exc:
            self._print(f"error: {exc}")
        return True

    def run(self, lines: Optional[Sequence[str]] = None) -> None:
        """Run over an iterable of lines (or interactively from stdin)."""
        try:
            if lines is None:
                self._print("aqua> congressional-sample shell; .help for help")
                while True:
                    try:
                        line = input("aqua> ")
                    except (EOFError, KeyboardInterrupt):
                        self._print()
                        break
                    if not self.execute_line(line):
                        break
            else:
                for line in lines:
                    if not self.execute_line(line):
                        break
        finally:
            self.close()


def build_system(args: argparse.Namespace) -> AquaSystem:
    """Construct the AquaSystem described by the CLI arguments.

    The shell runs with telemetry enabled (``.trace`` and ``.stats`` would
    otherwise have nothing to show) unless ``--no-telemetry`` is given.
    """
    workers = getattr(args, "workers", None)
    aqua = AquaSystem(
        space_budget=args.budget,
        allocation_strategy=Congress(),
        telemetry=not getattr(args, "no_telemetry", False),
        parallel=(
            ParallelConfig(max_workers=workers) if workers else None
        ),
    )
    if args.csv:
        if not args.table or not args.grouping:
            raise SystemExit("--csv requires --table and --grouping")
        table = read_csv(args.csv)
        aqua.register_table(
            args.table, table, grouping_columns=args.grouping.split(",")
        )
    else:
        census = generate_census(CensusConfig(population=100_000, seed=1))
        aqua.register_table("census", census)
    return aqua


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.aqua",
        description="Interactive approximate-query shell (Aqua).",
    )
    parser.add_argument("--csv", help="load a CSV file as the base table")
    parser.add_argument("--table", help="table name for the CSV data")
    parser.add_argument(
        "--grouping", help="comma-separated grouping columns for the CSV data"
    )
    parser.add_argument(
        "--budget", type=int, default=5000, help="sample tuples to keep"
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="parallel scan workers for base-table work (default: env/auto)",
    )
    parser.add_argument(
        "--no-telemetry", action="store_true",
        help="disable tracing/metrics (.trace and .stats go dark)",
    )
    parser.add_argument(
        "--execute", "-e", action="append", default=None,
        help="run this statement and exit (repeatable)",
    )
    args = parser.parse_args(argv)

    aqua = build_system(args)
    shell = AquaShell(aqua)
    if args.execute:
        shell.run(args.execute)
    else:
        shell.run()
    return 0


if __name__ == "__main__":
    sys.exit(main())
