"""Interactive roll-up / drill-down over an Aqua synopsis.

The paper motivates congressional samples with the OLAP exploration loop:
"group-by queries ... form an essential part of the common drill-down and
roll-up processes".  :class:`CubeExplorer` packages that loop: hold a set of
measures, drill into or roll up grouping columns, slice on values -- every
navigation step is answered approximately from the *same* congressional
sample, which is precisely the guarantee Congress provides (good accuracy
for *all* groupings of the grouping columns).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..engine.query import Query
from ..engine.sql import parse_query
from .system import ApproximateAnswer, AquaError, AquaSystem

__all__ = ["Measure", "CubeExplorer"]


@dataclass(frozen=True)
class Measure:
    """One aggregate to display at every navigation step."""

    func: str
    column: Optional[str]
    alias: str

    def to_sql(self) -> str:
        if self.func == "count" and self.column is None:
            return f"count(*) AS {self.alias}"
        return f"{self.func}({self.column}) AS {self.alias}"


class CubeExplorer:
    """Stateful drill-down/roll-up navigator over one synopsis."""

    def __init__(
        self,
        aqua: AquaSystem,
        table: str,
        measures: Sequence[Measure],
        grouping: Sequence[str] = (),
    ):
        """Args:
        aqua: the Aqua system holding the synopsis.
        table: base table name (must have a built synopsis).
        measures: aggregates computed at every step.
        grouping: initial grouping columns (default: fully rolled up).
        """
        if not measures:
            raise AquaError("at least one measure is required")
        self._aqua = aqua
        self._table = table
        self._synopsis = aqua.synopsis(table)  # validates the table
        self._measures = list(measures)
        available = set(self._synopsis.grouping_columns)
        for column in grouping:
            if column not in available:
                raise AquaError(
                    f"{column!r} is not a grouping column of {table!r} "
                    f"(have {sorted(available)})"
                )
        self._grouping: List[str] = list(grouping)
        self._slices: List[Tuple[str, Union[str, int, float]]] = []
        self._history: List[str] = []

    # -- navigation ----------------------------------------------------------

    @property
    def grouping(self) -> Tuple[str, ...]:
        return tuple(self._grouping)

    @property
    def slices(self) -> Tuple[Tuple[str, Union[str, int, float]], ...]:
        return tuple(self._slices)

    def history(self) -> List[str]:
        """Navigation steps taken so far, oldest first."""
        return list(self._history)

    def drilldown(self, column: str) -> "CubeExplorer":
        """Add a grouping column (finer partitioning)."""
        if column not in self._synopsis.grouping_columns:
            raise AquaError(
                f"cannot drill into {column!r}: not a stratification column"
            )
        if column in self._grouping:
            raise AquaError(f"already grouped by {column!r}")
        self._grouping.append(column)
        self._history.append(f"drilldown({column})")
        return self

    def rollup(self, column: Optional[str] = None) -> "CubeExplorer":
        """Remove a grouping column (default: the most recent)."""
        if not self._grouping:
            raise AquaError("already fully rolled up")
        if column is None:
            column = self._grouping[-1]
        if column not in self._grouping:
            raise AquaError(f"not currently grouped by {column!r}")
        self._grouping.remove(column)
        self._history.append(f"rollup({column})")
        return self

    def slice(self, column: str, value: Union[str, int, float]) -> "CubeExplorer":
        """Restrict to one value of a column (WHERE equality)."""
        self._slices.append((column, value))
        self._history.append(f"slice({column}={value!r})")
        return self

    def unslice(self, column: str) -> "CubeExplorer":
        """Drop all slices on ``column``."""
        before = len(self._slices)
        self._slices = [s for s in self._slices if s[0] != column]
        if len(self._slices) == before:
            raise AquaError(f"no slice on {column!r} to remove")
        self._history.append(f"unslice({column})")
        return self

    # -- answering -------------------------------------------------------

    def to_sql(self) -> str:
        """The SQL for the current navigation state."""
        select_parts = list(self._grouping) + [
            measure.to_sql() for measure in self._measures
        ]
        sql = f"SELECT {', '.join(select_parts)} FROM {self._table}"
        if self._slices:
            conditions = []
            for column, value in self._slices:
                literal = f"'{value}'" if isinstance(value, str) else repr(value)
                conditions.append(f"{column} = {literal}")
            sql += " WHERE " + " AND ".join(conditions)
        if self._grouping:
            sql += " GROUP BY " + ", ".join(self._grouping)
            sql += " ORDER BY " + ", ".join(self._grouping)
        return sql

    def to_query(self) -> Query:
        return parse_query(self.to_sql())

    def view(self) -> ApproximateAnswer:
        """Answer the current navigation state from the synopsis."""
        return self._aqua.answer(self.to_sql())

    def view_exact(self):
        """Ground truth for the current state (for comparisons/demos)."""
        return self._aqua.exact(self.to_sql())
