"""The Aqua approximate-query-answering middleware (Section 2)."""

from .join_synopsis import (
    ForeignKey,
    StarSchema,
    build_join_synopsis,
    materialize_star_join,
)
from .guard import (
    PROVENANCE_COLUMN,
    PROVENANCE_EXACT,
    PROVENANCE_REPAIRED,
    PROVENANCE_ROLLUP,
    PROVENANCE_SYNOPSIS,
    GuardPolicy,
    GuardReport,
    RefreshPolicy,
    SynopsisHealth,
    observe_guard,
    validate_sample,
)
from ..engine.executor import ParallelConfig, ParallelExecutor
from ..obs import MetricsRegistry, QueryTrace, Telemetry, Tracer
from .cache import AnswerCache, CacheStats
from .olap import CubeExplorer, Measure
from .portfolio import (
    CostErrorModel,
    PortfolioChoice,
    PortfolioMember,
    SynopsisPortfolio,
    SynopsisSpec,
    default_portfolio_specs,
)
from .reuse import ReuseSnapshot, RollupIndex, RollupIndexStats
from .stream import StreamingAnswer, stream_answers
from .synopsis import Synopsis
from .system import ApproximateAnswer, AquaError, AquaSystem, ComparisonReport
from .workload_log import QueryLog

__all__ = [
    "AnswerCache",
    "ApproximateAnswer",
    "AquaError",
    "AquaSystem",
    "CacheStats",
    "ComparisonReport",
    "ParallelConfig",
    "ParallelExecutor",
    "GuardPolicy",
    "GuardReport",
    "MetricsRegistry",
    "QueryTrace",
    "RefreshPolicy",
    "SynopsisHealth",
    "Telemetry",
    "Tracer",
    "observe_guard",
    "PROVENANCE_COLUMN",
    "PROVENANCE_SYNOPSIS",
    "PROVENANCE_REPAIRED",
    "PROVENANCE_ROLLUP",
    "PROVENANCE_EXACT",
    "validate_sample",
    "ReuseSnapshot",
    "RollupIndex",
    "RollupIndexStats",
    "CostErrorModel",
    "CubeExplorer",
    "Measure",
    "PortfolioChoice",
    "PortfolioMember",
    "QueryLog",
    "SynopsisPortfolio",
    "SynopsisSpec",
    "default_portfolio_specs",
    "ForeignKey",
    "StarSchema",
    "StreamingAnswer",
    "Synopsis",
    "stream_answers",
    "build_join_synopsis",
    "materialize_star_join",
]
