"""Guarded answering: serve-time quality control for approximate answers.

The paper promises that *every* group in *every* group-by query receives a
usable approximate answer.  In practice a deployed synopsis can fail that
promise in several ways: a group may have too few sample tuples for a
meaningful estimate (the Section 3 small-group problem surfacing at serve
time), error bounds may be inestimable (``NaN``), the synopsis may have
drifted behind the base table under inserts, or its stored state may be
corrupted.  Systems such as BlinkDB and VerdictDB treat these failure modes
as first-class, with error-bounded serving and fallback-to-exact paths; this
module is Aqua's equivalent.

Three pieces:

* :class:`GuardPolicy` -- serve-time thresholds (minimum per-group sample
  support, maximum relative half-width, staleness limit) and the escalation
  behaviour when they are violated.  :meth:`AquaSystem.answer` applies the
  policy through an escalation ladder: serve the synopsis answer, patch only
  the failing groups from the base table (*partial-exact repair*), or fall
  back to a full exact answer.  Every answer group carries a provenance tag
  (``synopsis`` / ``repaired`` / ``exact``).
* :class:`RefreshPolicy` -- an administrator-set drift threshold past which
  :meth:`AquaSystem.refresh_synopsis` is triggered automatically.
* :class:`SynopsisHealth` -- a structured report of sample/base ratio,
  strata coverage, pending-row drift, and validation issues, produced by
  :meth:`AquaSystem.health` and the shell's ``.health`` command.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..obs import MetricsRegistry
from ..sampling.groups import GroupKey
from ..sampling.stratified import StratifiedSample

__all__ = [
    "PROVENANCE_COLUMN",
    "PROVENANCE_SYNOPSIS",
    "PROVENANCE_REPAIRED",
    "PROVENANCE_EXACT",
    "PROVENANCE_DEGRADED",
    "PROVENANCE_ROLLUP",
    "GuardPolicy",
    "RefreshPolicy",
    "GuardReport",
    "SynopsisHealth",
    "observe_guard",
    "validate_sample",
]

PROVENANCE_COLUMN = "provenance"
PROVENANCE_SYNOPSIS = "synopsis"
PROVENANCE_REPAIRED = "repaired"
PROVENANCE_EXACT = "exact"
#: Tag for groups served by merging a finer cached entry's aggregate
#: states (roll-up subsumption, see :mod:`repro.aqua.reuse`).  A clean
#: tier: the values are bit-identical to a fresh synopsis answer, so
#: :attr:`GuardReport.degraded` treats it like ``synopsis``.
PROVENANCE_ROLLUP = "rollup"
#: Tag applied by the serving layer (:mod:`repro.serve`) when an answer was
#: produced through the degradation ladder -- the guard ladder was skipped,
#: so none of the other tags' quality stories apply.
PROVENANCE_DEGRADED = "degraded"

_ON_STALE = ("refresh", "exact", "raise", "serve")
_ON_CORRUPT = ("exact", "raise")


@dataclass(frozen=True)
class GuardPolicy:
    """Serve-time quality thresholds and escalation behaviour.

    Attributes:
        min_group_support: minimum qualifying sample tuples an answer group
            needs before its estimate is trusted; groups below are repaired
            from the base table.
        max_relative_halfwidth: if set, groups whose error half-width
            exceeds this fraction of the estimate's magnitude are repaired.
        staleness_limit: if set, maximum inserts since the last synopsis
            build/refresh before ``on_stale`` kicks in.
        on_stale: ``"refresh"`` (rebuild the synopsis, then serve),
            ``"exact"`` (serve the exact answer), ``"raise"``
            (:class:`~repro.errors.StaleSynopsisError`), or ``"serve"``
            (ignore staleness).
        on_corrupt: ``"exact"`` (serve the exact answer) or ``"raise"``
            (:class:`~repro.errors.SynopsisCorruptError`) when synopsis
            validation fails.
        repair: allow partial-exact repair of failing groups.
        exact_fallback: allow the full exact fallback; when disabled, an
            unservable answer raises
            :class:`~repro.errors.GuardViolationError` instead.
        max_repair_fraction: when more than this fraction of answer groups
            needs repair, skip per-group patching and serve the whole query
            exactly (repairing most groups costs as much as one exact run).
        provenance_column: name of the per-group provenance column attached
            to guarded results (skipped if the query already uses the name).
    """

    min_group_support: int = 2
    max_relative_halfwidth: Optional[float] = None
    staleness_limit: Optional[int] = None
    on_stale: str = "refresh"
    on_corrupt: str = "exact"
    repair: bool = True
    exact_fallback: bool = True
    max_repair_fraction: float = 0.5
    provenance_column: str = PROVENANCE_COLUMN

    def __post_init__(self) -> None:
        if self.min_group_support < 0:
            raise ValueError(
                f"min_group_support must be >= 0, got {self.min_group_support}"
            )
        if (
            self.max_relative_halfwidth is not None
            and self.max_relative_halfwidth < 0
        ):
            raise ValueError(
                "max_relative_halfwidth must be >= 0, "
                f"got {self.max_relative_halfwidth}"
            )
        if self.staleness_limit is not None and self.staleness_limit < 0:
            raise ValueError(
                f"staleness_limit must be >= 0, got {self.staleness_limit}"
            )
        if self.on_stale not in _ON_STALE:
            raise ValueError(
                f"on_stale must be one of {_ON_STALE}, got {self.on_stale!r}"
            )
        if self.on_corrupt not in _ON_CORRUPT:
            raise ValueError(
                f"on_corrupt must be one of {_ON_CORRUPT}, "
                f"got {self.on_corrupt!r}"
            )
        if not 0.0 <= self.max_repair_fraction <= 1.0:
            raise ValueError(
                "max_repair_fraction must be in [0, 1], "
                f"got {self.max_repair_fraction}"
            )


@dataclass(frozen=True)
class RefreshPolicy:
    """Auto-refresh trigger: rebuild the synopsis once drift passes a bound.

    Attributes:
        max_inserts: refresh after this many inserts since the last
            build/refresh.
        max_drift_fraction: refresh once inserts-since-refresh exceeds this
            fraction of the rows covered at the last refresh.
    """

    max_inserts: Optional[int] = None
    max_drift_fraction: Optional[float] = None

    def should_refresh(
        self, inserts_since_refresh: int, rows_at_refresh: int
    ) -> bool:
        if (
            self.max_inserts is not None
            and inserts_since_refresh > self.max_inserts
        ):
            return True
        if self.max_drift_fraction is not None:
            base = max(rows_at_refresh, 1)
            if inserts_since_refresh / base > self.max_drift_fraction:
                return True
        return False


@dataclass
class GuardReport:
    """What the guard did while producing one answer.

    Attributes:
        policy: the policy that was applied.
        provenance: per answer-group provenance tag.
        flagged: answer groups that failed a threshold, with the reason.
        dropped: flagged groups that turned out not to exist in the base
            table (e.g. filtered out by the WHERE clause) and were removed.
        issues: synopsis validation issues found before serving.
        stale_inserts: inserts the serving synopsis was behind by.
        fallback_reason: set when the whole answer was served exactly.
    """

    policy: GuardPolicy
    provenance: Dict[GroupKey, str] = field(default_factory=dict)
    flagged: Dict[GroupKey, str] = field(default_factory=dict)
    dropped: Tuple[GroupKey, ...] = ()
    issues: Tuple[str, ...] = ()
    stale_inserts: int = 0
    fallback_reason: Optional[str] = None

    @property
    def counts(self) -> Dict[str, int]:
        """Number of answer groups per provenance tag."""
        out: Dict[str, int] = {}
        for tag in self.provenance.values():
            out[tag] = out.get(tag, 0) + 1
        return out

    @property
    def degraded(self) -> bool:
        """True when anything other than the plain synopsis answer served."""
        return bool(
            self.fallback_reason
            or self.dropped
            or any(
                tag not in (PROVENANCE_SYNOPSIS, PROVENANCE_ROLLUP)
                for tag in self.provenance.values()
            )
        )

    def describe(self) -> str:
        parts = ", ".join(
            f"{count} {tag}" for tag, count in sorted(self.counts.items())
        )
        lines = [f"guard: {parts or 'no groups'}"]
        if self.fallback_reason:
            lines.append(f"fallback: {self.fallback_reason}")
        for key, reason in sorted(self.flagged.items()):
            lines.append(f"flagged {key}: {reason}")
        if self.dropped:
            lines.append(f"dropped (no base rows): {list(self.dropped)}")
        return "\n".join(lines)


@dataclass(frozen=True)
class SynopsisHealth:
    """Structured health report for one table's synopsis.

    Attributes:
        table: base table name.
        built: whether a synopsis exists at all.
        base_rows: rows in the materialized base relation.
        pending_rows: inserted rows buffered but not yet flushed.
        sample_size: tuples in the synopsis sample.
        budget: the system's space budget.
        strata_total: strata with a nonzero population.
        strata_covered: of those, strata holding at least one sample tuple.
        inserts_since_refresh: inserts since the synopsis was last
            built/refreshed.
        rows_at_refresh: rows the synopsis covered when last refreshed.
        maintained: whether a streaming maintainer is attached.
        maintainer_inserts: rows the maintainer has consumed (0 if none).
        issues: validation problems (empty for a structurally sound sample).
        stale_after_fraction: drift fraction past which status is "stale".
    """

    table: str
    built: bool
    base_rows: int
    pending_rows: int
    sample_size: int
    budget: int
    strata_total: int
    strata_covered: int
    inserts_since_refresh: int
    rows_at_refresh: int
    maintained: bool
    maintainer_inserts: int = 0
    issues: Tuple[str, ...] = ()
    stale_after_fraction: float = 0.1

    @property
    def sample_ratio(self) -> float:
        """Sample size over current base size (including pending rows)."""
        return self.sample_size / max(self.base_rows + self.pending_rows, 1)

    @property
    def strata_coverage(self) -> float:
        """Fraction of populated strata holding at least one sample tuple."""
        if self.strata_total == 0:
            return 1.0
        return self.strata_covered / self.strata_total

    @property
    def drift_fraction(self) -> float:
        """Inserts since refresh over rows covered at refresh."""
        return self.inserts_since_refresh / max(self.rows_at_refresh, 1)

    @property
    def status(self) -> str:
        """``missing`` / ``corrupt`` / ``stale`` / ``degraded`` / ``ok``."""
        if not self.built:
            return "missing"
        if self.issues:
            return "corrupt"
        if self.drift_fraction > self.stale_after_fraction:
            return "stale"
        if self.strata_coverage < 1.0:
            return "degraded"
        return "ok"

    def describe(self) -> str:
        if not self.built:
            return (
                f"health[{self.table}] status=missing "
                f"(no synopsis built; {self.base_rows} base rows, "
                f"{self.pending_rows} pending)"
            )
        text = (
            f"health[{self.table}] status={self.status} "
            f"sample={self.sample_size}/{self.base_rows + self.pending_rows} "
            f"({100 * self.sample_ratio:.2f}%) "
            f"strata={self.strata_covered}/{self.strata_total} "
            f"drift={self.inserts_since_refresh} "
            f"pending={self.pending_rows}"
        )
        if self.maintained:
            text += f" maintained={self.maintainer_inserts} rows"
        if self.issues:
            text += "\n  issues: " + "; ".join(self.issues)
        return text


def observe_guard(
    metrics: MetricsRegistry, table: str, report: GuardReport
) -> None:
    """Record one :class:`GuardReport` into a metrics registry.

    Emits per-provenance answer-group counters (``synopsis`` / ``repaired``
    / ``exact``), flagged/dropped group counters, whole-answer fallback
    counts, and the staleness-drift gauge observed at answer time.  A
    disabled registry makes this a no-op.
    """
    if not metrics.enabled:
        return
    groups = metrics.counter(
        "aqua_guard_groups_total",
        "Answer groups served, by table and provenance tag.",
        ("table", "provenance"),
    )
    for tag, count in report.counts.items():
        groups.inc(count, table=table, provenance=tag)
    if report.flagged:
        metrics.counter(
            "aqua_guard_flagged_groups_total",
            "Answer groups that failed a guard threshold.",
            ("table",),
        ).inc(len(report.flagged), table=table)
    if report.dropped:
        metrics.counter(
            "aqua_guard_dropped_groups_total",
            "Flagged groups dropped as phantoms (no qualifying base rows).",
            ("table",),
        ).inc(len(report.dropped), table=table)
    if report.fallback_reason is not None:
        metrics.counter(
            "aqua_guard_fallbacks_total",
            "Whole answers escalated to the exact fallback.",
            ("table",),
        ).inc(table=table)
    metrics.gauge(
        "aqua_stale_inserts",
        "Inserts the serving synopsis was behind by at answer time.",
        ("table",),
    ).set(report.stale_inserts, table=table)


def validate_sample(sample: StratifiedSample) -> List[str]:
    """Structural validation of a stratified sample.

    Returns a list of human-readable issues; an empty list means the sample
    is structurally sound (populations plausible, scale factors finite and
    positive, row indices inside the base table and duplicate-free).  Used
    by the answer-time guard and by :meth:`AquaSystem.health`.
    """
    issues: List[str] = []
    num_base = sample.base_table.num_rows
    for key, stratum in sorted(sample.strata.items()):
        if stratum.population < 0:
            issues.append(
                f"stratum {key}: negative population {stratum.population}"
            )
        if stratum.sample_size > max(stratum.population, 0):
            issues.append(
                f"stratum {key}: sample size {stratum.sample_size} exceeds "
                f"population {stratum.population}"
            )
        indices = np.asarray(stratum.row_indices)
        if len(indices):
            if indices.min() < 0 or indices.max() >= num_base:
                issues.append(
                    f"stratum {key}: row indices out of bounds for base "
                    f"table of {num_base} rows"
                )
            elif len(np.unique(indices)) != len(indices):
                issues.append(f"stratum {key}: duplicate row indices")
        if stratum.sample_size > 0:
            sf = stratum.scale_factor
            if not math.isfinite(sf) or sf <= 0:
                issues.append(f"stratum {key}: corrupt scale factor {sf}")
    return issues
